"""Cipher modes of operation.

The paper's cipher suites use block ciphers in CBC mode ("one of the most
popular modes", Section 2), where each plaintext block is XORed with the
previous ciphertext block -- deliberately serializing the blocks of a
message -- and RC4 as a stream cipher.  :class:`CBC` keeps the running IV
across calls because SSLv3 chains the IV from record to record.
"""

from __future__ import annotations

from typing import Protocol

from ..perf import charge, mix
from ..runtime import fastpath_enabled


class BlockCipher(Protocol):
    """Structural interface implemented by AES, DES and TripleDES."""

    name: str
    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


#: Per-block CBC overhead: load previous ciphertext, XOR four words (or two
#: for 64-bit blocks; the difference is noise), pointer bookkeeping.
CBC_BLOCK = mix(movl=8, xorl=4, addl=2, cmpl=1, jnz=1)

#: Per-call overhead of the mode wrapper (the EVP-style dispatch the
#: throughput numbers of Table 11 include).
MODE_CALL = mix(pushl=4, movl=10, popl=4, call=2, ret=2, cmpl=2, jnz=2)


class CBC:
    """Cipher-block chaining with persistent IV state."""

    def __init__(self, cipher: BlockCipher, iv: bytes):
        if len(iv) != cipher.block_size:
            raise ValueError(
                f"IV must be {cipher.block_size} bytes for {cipher.name}")
        self.cipher = cipher
        self.block_size = cipher.block_size
        self._iv = iv

    @property
    def iv(self) -> bytes:
        """The current chaining value."""
        return self._iv

    def encrypt(self, data: bytes) -> bytes:
        bs = self.block_size
        if len(data) % bs:
            raise ValueError("CBC input must be a whole number of blocks")
        out = bytearray()
        prev = self._iv
        enc = self.cipher.encrypt_block
        if fastpath_enabled():
            from_bytes = int.from_bytes
            for i in range(0, len(data), bs):
                block = (from_bytes(data[i:i + bs], "big")
                         ^ from_bytes(prev, "big")).to_bytes(bs, "big")
                prev = enc(block)
                out += prev
        else:
            for i in range(0, len(data), bs):
                block = bytes(a ^ b for a, b in zip(data[i:i + bs], prev))
                prev = enc(block)
                out += prev
        self._iv = prev
        nblocks = len(data) // bs
        if nblocks:
            charge(CBC_BLOCK, times=nblocks, function="cbc_encrypt")
        charge(MODE_CALL, function="cbc_encrypt")
        return bytes(out)

    def decrypt(self, data: bytes) -> bytes:
        bs = self.block_size
        if len(data) % bs:
            raise ValueError("CBC input must be a whole number of blocks")
        out = bytearray()
        prev = self._iv
        dec = self.cipher.decrypt_block
        if fastpath_enabled():
            from_bytes = int.from_bytes
            for i in range(0, len(data), bs):
                ct = data[i:i + bs]
                plain = dec(ct)
                out += (from_bytes(plain, "big")
                        ^ from_bytes(prev, "big")).to_bytes(bs, "big")
                prev = ct
        else:
            for i in range(0, len(data), bs):
                ct = data[i:i + bs]
                plain = dec(ct)
                out += bytes(a ^ b for a, b in zip(plain, prev))
                prev = ct
        self._iv = prev
        nblocks = len(data) // bs
        if nblocks:
            charge(CBC_BLOCK, times=nblocks, function="cbc_decrypt")
        charge(MODE_CALL, function="cbc_decrypt")
        return bytes(out)


def cbc_encrypt(cipher: BlockCipher, iv: bytes, data: bytes) -> bytes:
    """One-shot CBC encryption."""
    return CBC(cipher, iv).encrypt(data)


def cbc_decrypt(cipher: BlockCipher, iv: bytes, data: bytes) -> bytes:
    """One-shot CBC decryption."""
    return CBC(cipher, iv).decrypt(data)
