"""Cryptographic primitives (OpenSSL ``libcrypto`` equivalent).

Every algorithm the paper studies -- RSA, AES, DES, 3DES, RC4, MD5, SHA-1 --
implemented from scratch, bit-exact against published test vectors, and
instrumented with the analytic x86 cost model of :mod:`repro.perf`.
"""

from .aes import AES
from .des import DES, TripleDES
from .dh import DhError, DhKeyPair, DhParams
from .mac import hmac, ssl3_mac
from .md5 import MD5
from .modes import CBC, cbc_decrypt, cbc_encrypt
from .pkcs1 import Pkcs1Error
from .rand import PseudoRandom, rand_pseudo_bytes, reseed
from .rc4 import RC4
from .rsa import RsaError, RsaPrivateKey, RsaPublicKey, generate_key
from .sha1 import SHA1
from .sha256 import SHA256

__all__ = [
    "AES", "DES", "TripleDES", "RC4",
    "DhError", "DhKeyPair", "DhParams",
    "MD5", "SHA1", "SHA256", "hmac", "ssl3_mac",
    "CBC", "cbc_decrypt", "cbc_encrypt",
    "Pkcs1Error", "PseudoRandom", "rand_pseudo_bytes", "reseed",
    "RsaError", "RsaPrivateKey", "RsaPublicKey", "generate_key",
]
