"""AES / Rijndael (FIPS 197), table-based, instrumented.

This is the 32-bit table implementation the paper profiles (Section 5.1.1):
four 256-entry tables ``Te0..Te3`` fold SubBytes, ShiftRows and MixColumns
into four lookups per output word, so one main round is sixteen table
lookups XORed with the round keys (Table 4).  The paper's Table 5 splits a
block operation into (1) state load + initial AddRoundKey, (2) the main
rounds -- 9 for a 128-bit key, 13 for a 256-bit key, ~71%/78% of the time --
and (3) the last round (which uses the plain S-box) plus the state store.
The decryption path uses the inverse tables ``Td0..Td3`` over an
InvMixColumns-transformed key schedule (the standard equivalent inverse
cipher), making decryption cost symmetric with encryption.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..perf import charge, mix
from ..runtime import fastpath_enabled

_M32 = 0xFFFFFFFF

# ---------------------------------------------------------------------------
# S-box generation (from GF(2^8) arithmetic, not a pasted table)
# ---------------------------------------------------------------------------

def _gf_mul(a: int, b: int) -> int:
    p = 0
    for _ in range(8):
        if b & 1:
            p ^= a
        hi = a & 0x80
        a = (a << 1) & 0xFF
        if hi:
            a ^= 0x1B
        b >>= 1
    return p


def _build_sbox() -> tuple:
    # Multiplicative inverses in GF(2^8) via exponentiation tables on the
    # generator 3, then the affine transform of FIPS 197 section 5.1.1.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]
    sbox = [0] * 256
    for v in range(256):
        inv = 0 if v == 0 else exp[255 - log[v]]
        s = inv
        for shift in (1, 2, 3, 4):
            s ^= ((inv << shift) | (inv >> (8 - shift))) & 0xFF
        sbox[v] = s ^ 0x63
    inv_sbox = [0] * 256
    for v, s in enumerate(sbox):
        inv_sbox[s] = v
    return tuple(sbox), tuple(inv_sbox)


SBOX, INV_SBOX = _build_sbox()


def _build_enc_tables() -> List[tuple]:
    te0 = []
    for x in range(256):
        s = SBOX[x]
        w = (_gf_mul(s, 2) << 24) | (s << 16) | (s << 8) | _gf_mul(s, 3)
        te0.append(w)
    te = [tuple(te0)]
    for r in (8, 16, 24):
        te.append(tuple(((w >> r) | (w << (32 - r))) & _M32 for w in te0))
    return te


def _build_dec_tables() -> List[tuple]:
    td0 = []
    for x in range(256):
        s = INV_SBOX[x]
        w = ((_gf_mul(s, 14) << 24) | (_gf_mul(s, 9) << 16)
             | (_gf_mul(s, 13) << 8) | _gf_mul(s, 11))
        td0.append(w)
    td = [tuple(td0)]
    for r in (8, 16, 24):
        td.append(tuple(((w >> r) | (w << (32 - r))) & _M32 for w in td0))
    return td


TE0, TE1, TE2, TE3 = _build_enc_tables()
TD0, TD1, TD2, TD3 = _build_dec_tables()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)

# ---------------------------------------------------------------------------
# Instruction mixes
# ---------------------------------------------------------------------------
# Target structure (Tables 5, 11, 12): ~800 instructions per 16-byte block
# for AES-128 (path length 50/byte), split ~12% init / 71% main rounds /
# 17% last round+store; CPI 0.66 with movl/xorl dominating.

#: Phase 1: load the 16-byte block into the four state words and XOR the
#: initial round key (shift/XOR per the paper).
AES_INIT = mix(movl=36, xorl=14, movb=16, shll=8, orl=8, pushl=5, popl=2,
               cmpl=1, addl=2)

#: One main round: 4 basic operations x (4 byte extractions via shrl/andl/
#: movb, 4 table loads, 4 XORs) + round-key load/XOR + loop control.
AES_ROUND = mix(movl=23.5, xorl=16.5, movb=7.0, andl=4.5, shrl=3.0,
                decl=1.5, jnz=1.4, incl=1.1, xorb=1.0, addl=0.8,
                leal=0.5, pushl=0.2, popl=0.2)

#: Phase 3: the last round (S-box bytes, no MixColumns) and the store of the
#: cipher state back to the byte array.
AES_FINAL = mix(movl=42, xorl=20, movb=24, andl=12, shrl=10, shll=8, orl=6,
                xorb=4, popl=3, ret=1, call=1)

#: One word of key expansion (S-box substitutions, rcon XOR, stores).
AES_KEXP_WORD = mix(movl=4, movb=2, xorl=2, shrl=1, andl=1, shll=0.5,
                    orl=0.5, cmpl=0.5, jnz=0.5)

#: Per-call overhead of AES_set_encrypt_key / AES_encrypt.
AES_CALL = mix(pushl=4, movl=8, popl=4, call=1, ret=1, cmpl=1, jnz=1)

#: Each round's sixteen lookups are mutually independent, but the paper's
#: P4 pays L1 load-use latency on every lookup of the round-to-round chain:
#: measured CPI 0.66 versus ~0.50 at the throughput limit.
AES_STALL = 1.32


# ---------------------------------------------------------------------------
# Key expansion
# ---------------------------------------------------------------------------

def _expand_key(key: bytes) -> List[int]:
    nk = len(key) // 4
    nr = nk + 6
    w = [int.from_bytes(key[4 * i:4 * i + 4], "big") for i in range(nk)]
    for i in range(nk, 4 * (nr + 1)):
        t = w[i - 1]
        if i % nk == 0:
            t = ((t << 8) | (t >> 24)) & _M32  # RotWord
            t = ((SBOX[(t >> 24) & 0xFF] << 24) | (SBOX[(t >> 16) & 0xFF] << 16)
                 | (SBOX[(t >> 8) & 0xFF] << 8) | SBOX[t & 0xFF])
            t ^= _RCON[i // nk - 1] << 24
        elif nk > 6 and i % nk == 4:
            t = ((SBOX[(t >> 24) & 0xFF] << 24) | (SBOX[(t >> 16) & 0xFF] << 16)
                 | (SBOX[(t >> 8) & 0xFF] << 8) | SBOX[t & 0xFF])
        w.append(w[i - nk] ^ t)
    return w


def _inv_mix_key(w: Sequence[int], nr: int) -> List[int]:
    """Equivalent-inverse-cipher key schedule: reverse round order and apply
    InvMixColumns to the inner round keys."""
    dw = list(w)
    # Reverse in round-sized chunks.
    out: List[int] = []
    for r in range(nr, -1, -1):
        out.extend(dw[4 * r:4 * r + 4])
    for i in range(4, 4 * nr):
        v = out[i]
        out[i] = (TD0[SBOX[(v >> 24) & 0xFF]] ^ TD1[SBOX[(v >> 16) & 0xFF]]
                  ^ TD2[SBOX[(v >> 8) & 0xFF]] ^ TD3[SBOX[v & 0xFF]])
    return out


#: Expanded-schedule memo for the fast path.  Key expansion is deterministic
#: in the key bytes, so contexts for a repeated key can share the schedule
#: lists; the modeled expansion cost is still charged per context.
_SCHEDULE_CACHE: Dict[bytes, Tuple[List[int], List[int]]] = {}
_SCHEDULE_CACHE_MAX = 512


def _schedules(key: bytes) -> Tuple[List[int], List[int]]:
    cached = _SCHEDULE_CACHE.get(key)
    if cached is None:
        ek = _expand_key(key)
        cached = (ek, _inv_mix_key(ek, len(key) // 4 + 6))
        if len(_SCHEDULE_CACHE) >= _SCHEDULE_CACHE_MAX:
            _SCHEDULE_CACHE.clear()
        _SCHEDULE_CACHE[key] = cached
    return cached


def _encrypt_core(ek: Sequence[int], rounds: int, block: bytes) -> bytes:
    """Uncharged fast encryption core (tables bound to locals)."""
    te0, te1, te2, te3 = TE0, TE1, TE2, TE3
    s0 = int.from_bytes(block[0:4], "big") ^ ek[0]
    s1 = int.from_bytes(block[4:8], "big") ^ ek[1]
    s2 = int.from_bytes(block[8:12], "big") ^ ek[2]
    s3 = int.from_bytes(block[12:16], "big") ^ ek[3]
    k = 4
    for _ in range(rounds - 1):
        t0 = (te0[(s0 >> 24) & 0xFF] ^ te1[(s1 >> 16) & 0xFF]
              ^ te2[(s2 >> 8) & 0xFF] ^ te3[s3 & 0xFF] ^ ek[k])
        t1 = (te0[(s1 >> 24) & 0xFF] ^ te1[(s2 >> 16) & 0xFF]
              ^ te2[(s3 >> 8) & 0xFF] ^ te3[s0 & 0xFF] ^ ek[k + 1])
        t2 = (te0[(s2 >> 24) & 0xFF] ^ te1[(s3 >> 16) & 0xFF]
              ^ te2[(s0 >> 8) & 0xFF] ^ te3[s1 & 0xFF] ^ ek[k + 2])
        t3 = (te0[(s3 >> 24) & 0xFF] ^ te1[(s0 >> 16) & 0xFF]
              ^ te2[(s1 >> 8) & 0xFF] ^ te3[s2 & 0xFF] ^ ek[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
        k += 4
    sb = SBOX
    t0 = ((sb[(s0 >> 24) & 0xFF] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
          | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ ek[k]
    t1 = ((sb[(s1 >> 24) & 0xFF] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
          | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ ek[k + 1]
    t2 = ((sb[(s2 >> 24) & 0xFF] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
          | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ ek[k + 2]
    t3 = ((sb[(s3 >> 24) & 0xFF] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
          | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ ek[k + 3]
    return ((t0 << 96) | (t1 << 64) | (t2 << 32) | t3).to_bytes(16, "big")


def _decrypt_core(dk: Sequence[int], rounds: int, block: bytes) -> bytes:
    """Uncharged fast decryption core (tables bound to locals)."""
    td0, td1, td2, td3 = TD0, TD1, TD2, TD3
    s0 = int.from_bytes(block[0:4], "big") ^ dk[0]
    s1 = int.from_bytes(block[4:8], "big") ^ dk[1]
    s2 = int.from_bytes(block[8:12], "big") ^ dk[2]
    s3 = int.from_bytes(block[12:16], "big") ^ dk[3]
    k = 4
    for _ in range(rounds - 1):
        t0 = (td0[(s0 >> 24) & 0xFF] ^ td1[(s3 >> 16) & 0xFF]
              ^ td2[(s2 >> 8) & 0xFF] ^ td3[s1 & 0xFF] ^ dk[k])
        t1 = (td0[(s1 >> 24) & 0xFF] ^ td1[(s0 >> 16) & 0xFF]
              ^ td2[(s3 >> 8) & 0xFF] ^ td3[s2 & 0xFF] ^ dk[k + 1])
        t2 = (td0[(s2 >> 24) & 0xFF] ^ td1[(s1 >> 16) & 0xFF]
              ^ td2[(s0 >> 8) & 0xFF] ^ td3[s3 & 0xFF] ^ dk[k + 2])
        t3 = (td0[(s3 >> 24) & 0xFF] ^ td1[(s2 >> 16) & 0xFF]
              ^ td2[(s1 >> 8) & 0xFF] ^ td3[s0 & 0xFF] ^ dk[k + 3])
        s0, s1, s2, s3 = t0, t1, t2, t3
        k += 4
    isb = INV_SBOX
    t0 = ((isb[(s0 >> 24) & 0xFF] << 24) | (isb[(s3 >> 16) & 0xFF] << 16)
          | (isb[(s2 >> 8) & 0xFF] << 8) | isb[s1 & 0xFF]) ^ dk[k]
    t1 = ((isb[(s1 >> 24) & 0xFF] << 24) | (isb[(s0 >> 16) & 0xFF] << 16)
          | (isb[(s3 >> 8) & 0xFF] << 8) | isb[s2 & 0xFF]) ^ dk[k + 1]
    t2 = ((isb[(s2 >> 24) & 0xFF] << 24) | (isb[(s1 >> 16) & 0xFF] << 16)
          | (isb[(s0 >> 8) & 0xFF] << 8) | isb[s3 & 0xFF]) ^ dk[k + 2]
    t3 = ((isb[(s3 >> 24) & 0xFF] << 24) | (isb[(s2 >> 16) & 0xFF] << 16)
          | (isb[(s1 >> 8) & 0xFF] << 8) | isb[s0 & 0xFF]) ^ dk[k + 3]
    return ((t0 << 96) | (t1 << 64) | (t2 << 32) | t3).to_bytes(16, "big")


class AES:
    """AES-128/192/256 on 16-byte blocks."""

    name = "aes"
    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in (16, 24, 32):
            raise ValueError("AES key must be 16, 24 or 32 bytes")
        self.key_size = len(key)
        self.rounds = len(key) // 4 + 6
        if fastpath_enabled():
            self._ek, self._dk = _schedules(bytes(key))
        else:
            self._ek = _expand_key(key)
            self._dk = _inv_mix_key(self._ek, self.rounds)
        nwords = 4 * (self.rounds + 1)
        # Decryption-schedule preparation costs the same expansion again
        # plus an InvMixColumns pass; SSL contexts need both directions.
        charge(AES_KEXP_WORD, times=2 * nwords, function="AES_set_encrypt_key")
        charge(AES_CALL, times=2, function="AES_set_encrypt_key")

    # -- core -----------------------------------------------------------------
    def encrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        if fastpath_enabled():
            charge(AES_INIT, function="AES_encrypt", stall=AES_STALL)
            charge(AES_ROUND, times=self.rounds - 1, function="AES_encrypt",
                   stall=AES_STALL)
            charge(AES_FINAL, function="AES_encrypt", stall=AES_STALL)
            charge(AES_CALL, function="AES_encrypt")
            return _encrypt_core(self._ek, self.rounds, block)
        ek = self._ek
        s0 = int.from_bytes(block[0:4], "big") ^ ek[0]
        s1 = int.from_bytes(block[4:8], "big") ^ ek[1]
        s2 = int.from_bytes(block[8:12], "big") ^ ek[2]
        s3 = int.from_bytes(block[12:16], "big") ^ ek[3]
        charge(AES_INIT, function="AES_encrypt", stall=AES_STALL)
        k = 4
        for _ in range(self.rounds - 1):
            t0 = (TE0[(s0 >> 24) & 0xFF] ^ TE1[(s1 >> 16) & 0xFF]
                  ^ TE2[(s2 >> 8) & 0xFF] ^ TE3[s3 & 0xFF] ^ ek[k])
            t1 = (TE0[(s1 >> 24) & 0xFF] ^ TE1[(s2 >> 16) & 0xFF]
                  ^ TE2[(s3 >> 8) & 0xFF] ^ TE3[s0 & 0xFF] ^ ek[k + 1])
            t2 = (TE0[(s2 >> 24) & 0xFF] ^ TE1[(s3 >> 16) & 0xFF]
                  ^ TE2[(s0 >> 8) & 0xFF] ^ TE3[s1 & 0xFF] ^ ek[k + 2])
            t3 = (TE0[(s3 >> 24) & 0xFF] ^ TE1[(s0 >> 16) & 0xFF]
                  ^ TE2[(s1 >> 8) & 0xFF] ^ TE3[s2 & 0xFF] ^ ek[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        charge(AES_ROUND, times=self.rounds - 1, function="AES_encrypt",
               stall=AES_STALL)
        sb = SBOX
        t0 = ((sb[(s0 >> 24) & 0xFF] << 24) | (sb[(s1 >> 16) & 0xFF] << 16)
              | (sb[(s2 >> 8) & 0xFF] << 8) | sb[s3 & 0xFF]) ^ ek[k]
        t1 = ((sb[(s1 >> 24) & 0xFF] << 24) | (sb[(s2 >> 16) & 0xFF] << 16)
              | (sb[(s3 >> 8) & 0xFF] << 8) | sb[s0 & 0xFF]) ^ ek[k + 1]
        t2 = ((sb[(s2 >> 24) & 0xFF] << 24) | (sb[(s3 >> 16) & 0xFF] << 16)
              | (sb[(s0 >> 8) & 0xFF] << 8) | sb[s1 & 0xFF]) ^ ek[k + 2]
        t3 = ((sb[(s3 >> 24) & 0xFF] << 24) | (sb[(s0 >> 16) & 0xFF] << 16)
              | (sb[(s1 >> 8) & 0xFF] << 8) | sb[s2 & 0xFF]) ^ ek[k + 3]
        charge(AES_FINAL, function="AES_encrypt", stall=AES_STALL)
        charge(AES_CALL, function="AES_encrypt")
        return b"".join(t.to_bytes(4, "big") for t in (t0, t1, t2, t3))

    def decrypt_block(self, block: bytes) -> bytes:
        if len(block) != 16:
            raise ValueError("AES block must be 16 bytes")
        if fastpath_enabled():
            charge(AES_INIT, function="AES_decrypt", stall=AES_STALL)
            charge(AES_ROUND, times=self.rounds - 1, function="AES_decrypt",
                   stall=AES_STALL)
            charge(AES_FINAL, function="AES_decrypt", stall=AES_STALL)
            charge(AES_CALL, function="AES_decrypt")
            return _decrypt_core(self._dk, self.rounds, block)
        dk = self._dk
        s0 = int.from_bytes(block[0:4], "big") ^ dk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ dk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ dk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ dk[3]
        charge(AES_INIT, function="AES_decrypt", stall=AES_STALL)
        k = 4
        for _ in range(self.rounds - 1):
            t0 = (TD0[(s0 >> 24) & 0xFF] ^ TD1[(s3 >> 16) & 0xFF]
                  ^ TD2[(s2 >> 8) & 0xFF] ^ TD3[s1 & 0xFF] ^ dk[k])
            t1 = (TD0[(s1 >> 24) & 0xFF] ^ TD1[(s0 >> 16) & 0xFF]
                  ^ TD2[(s3 >> 8) & 0xFF] ^ TD3[s2 & 0xFF] ^ dk[k + 1])
            t2 = (TD0[(s2 >> 24) & 0xFF] ^ TD1[(s1 >> 16) & 0xFF]
                  ^ TD2[(s0 >> 8) & 0xFF] ^ TD3[s3 & 0xFF] ^ dk[k + 2])
            t3 = (TD0[(s3 >> 24) & 0xFF] ^ TD1[(s2 >> 16) & 0xFF]
                  ^ TD2[(s1 >> 8) & 0xFF] ^ TD3[s0 & 0xFF] ^ dk[k + 3])
            s0, s1, s2, s3 = t0, t1, t2, t3
            k += 4
        charge(AES_ROUND, times=self.rounds - 1, function="AES_decrypt",
               stall=AES_STALL)
        isb = INV_SBOX
        t0 = ((isb[(s0 >> 24) & 0xFF] << 24) | (isb[(s3 >> 16) & 0xFF] << 16)
              | (isb[(s2 >> 8) & 0xFF] << 8) | isb[s1 & 0xFF]) ^ dk[k]
        t1 = ((isb[(s1 >> 24) & 0xFF] << 24) | (isb[(s0 >> 16) & 0xFF] << 16)
              | (isb[(s3 >> 8) & 0xFF] << 8) | isb[s2 & 0xFF]) ^ dk[k + 1]
        t2 = ((isb[(s2 >> 24) & 0xFF] << 24) | (isb[(s1 >> 16) & 0xFF] << 16)
              | (isb[(s0 >> 8) & 0xFF] << 8) | isb[s3 & 0xFF]) ^ dk[k + 2]
        t3 = ((isb[(s3 >> 24) & 0xFF] << 24) | (isb[(s2 >> 16) & 0xFF] << 16)
              | (isb[(s1 >> 8) & 0xFF] << 8) | isb[s0 & 0xFF]) ^ dk[k + 3]
        charge(AES_FINAL, function="AES_decrypt", stall=AES_STALL)
        charge(AES_CALL, function="AES_decrypt")
        return b"".join(t.to_bytes(4, "big") for t in (t0, t1, t2, t3))
