"""Prime generation for RSA key construction.

Key generation is *not* one of the paper's measured operations (the server's
key pair exists before any measured transaction), so this module runs on
native Python integers for speed and charges a single modelled cost under
``BN_generate_prime``.  The generated primes feed the fully instrumented
:mod:`repro.crypto.rsa` path, which is what the paper profiles.
"""

from __future__ import annotations

from ..perf import charge, mix
from .rand import PseudoRandom

_SMALL_PRIMES = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47,
                 53, 59, 61, 67, 71, 73, 79, 83, 89, 97, 101, 103, 107,
                 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173]

#: Nominal modelled cost per generated prime (trial division + Miller-Rabin
#: exponentiations happen off the instrumented path).
PRIME_GEN = mix(movl=400, mull=120, addl=120, adcl=60, cmpl=80, jnz=80,
                shrl=40, pushl=10, popl=10, call=6, ret=6)


def is_probable_prime(n: int, rng: PseudoRandom, rounds: int = 24) -> bool:
    """Miller-Rabin primality test with trial division pre-filter."""
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = 2 + rng.int_below(n - 3)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = (x * x) % n
            if x == n - 1:
                break
        else:
            return False
    return True


def generate_prime(bits: int, rng: PseudoRandom) -> int:
    """A random probable prime with exactly ``bits`` bits.

    The top two bits are forced high so that the product of two such primes
    has exactly ``2*bits`` bits, as RSA key generation requires.
    """
    if bits < 16:
        raise ValueError("refusing to generate primes below 16 bits")
    while True:
        candidate = rng.odd_int(bits)
        if is_probable_prime(candidate, rng):
            charge(PRIME_GEN, function="BN_generate_prime")
            return candidate
