"""SHA-1 message digest (FIPS 180-2), instrumented.

SHA-1 runs 80 steps over a 16-word message schedule expanded to 80 words.
The schedule expansion (``W[i] = rol1(W[i-3]^W[i-8]^W[i-14]^W[i-16])``) is
independent work that the out-of-order core overlaps with the step chain,
which is why the paper measures SHA-1 at CPI 0.52 -- the *lowest* of all the
studied kernels -- despite a path length twice MD5's (24 vs 12 instructions
per byte, Table 11).
"""

from __future__ import annotations

import struct

from ..perf import charge, mix
from ..runtime import fastpath_enabled

_MASK = 0xFFFFFFFF
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)

# ---------------------------------------------------------------------------
# Instruction mixes
# ---------------------------------------------------------------------------

#: One 64-byte block through sha1_block_data_order.  Derivation:
#:   * 16 big-endian message loads: movl + bswap each.
#:   * 64 schedule expansions: 2 movl (load/store W), 3 xorl, 1 roll.
#:   * 80 steps: e += rol5(a) + f(b,c,d) + W[i] + K.  f averages 2 xorl +
#:     0.6 andl + 0.35 orl across Ch/Parity/Maj rounds; rol5 and the b
#:     rotation give 1 roll + 1 rorl (compilers emit ror for rol30); the
#:     three additions are 2 addl + 1 leal; ~2.7 movl of register traffic.
#:   * state load/store and frame overhead.
SHA1_BLOCK = mix(
    movl=16 + 64 * 2.5 + 80 * 3.0 + 16,  # 432 (spills: only 8 x86 registers
    #                                       for a 5-word state + schedule)
    bswap=16,
    xorl=64 * 3 + 80 * 2.2,             # 368
    roll=64 * 1 + 80 * 1.0,             # 144
    rorl=80 * 1.0,                      # 80
    addl=80 * 2.3,                      # 184
    leal=80 * 1.1,                      # 88
    andl=80 * 0.7,                      # 56
    orl=80 * 0.4,                       # 32
    movb=44,                            # input copy path, amortized
    pushl=5, popl=5, call=1, ret=1, cmpl=2, jnz=2,
)

#: SHA1_Init: store 5 state words + length, zero buffer count.
SHA1_INIT = mix(movl=14, xorl=2, pushl=1, popl=1, call=1, ret=1)

#: SHA1_Update bookkeeping per call.
SHA1_UPDATE_CALL = mix(movl=14, addl=4, adcl=1, cmpl=3, jnz=3, shrl=2,
                       andl=2, pushl=3, popl=3, call=1, ret=1)

#: SHA1_Final bookkeeping (padding assembly, big-endian digest stores).
SHA1_FINAL = mix(movl=24, movb=10, bswap=5, addl=4, shrl=4, andl=3, cmpl=3,
                 jnz=3, pushl=3, popl=3, call=2, ret=2)

#: Dependency-stall factor: the schedule expansion and the five-register
#: step rotation expose independent operations, so SHA-1 runs close to the
#: throughput limit of the mix (~0.47 CPI); measured CPI is 0.52.
SHA1_STALL = 1.10


def _compress(state: tuple, block: bytes) -> tuple:
    """One application of the SHA-1 compression function (uncharged)."""
    w = list(struct.unpack(">16I", block))
    for i in range(16, 80):
        t = w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]
        w.append(((t << 1) | (t >> 31)) & _MASK)
    a, b, c, d, e = state
    for i in range(80):
        if i < 20:
            f = (b & c) | ((~b & _MASK) & d)
            k = _K[0]
        elif i < 40:
            f = b ^ c ^ d
            k = _K[1]
        elif i < 60:
            f = (b & c) | (b & d) | (c & d)
            k = _K[2]
        else:
            f = b ^ c ^ d
            k = _K[3]
        t = (((a << 5) | (a >> 27)) + f + e + k + w[i]) & _MASK
        a, b, c, d, e = t, a, ((b << 30) | (b >> 2)) & _MASK, c, d
    return ((state[0] + a) & _MASK, (state[1] + b) & _MASK,
            (state[2] + c) & _MASK, (state[3] + d) & _MASK,
            (state[4] + e) & _MASK)


def _build_compress_fast():
    """Generate a fully unrolled compression function (the fast backend).

    The message schedule expands into 80 locals and the 80 steps run as
    straight-line code with the round constants and boolean functions
    inlined; bit-identical to :func:`_compress` by construction.
    """
    lines = [
        "def _compress_fast(state, block):",
        "    " + ", ".join(f"w{i}" for i in range(16)) + " = _unpack(block)",
    ]
    for i in range(16, 80):
        lines.append(f"    t = w{i - 3} ^ w{i - 8} ^ w{i - 14} ^ w{i - 16}")
        lines.append(f"    w{i} = ((t << 1) | (t >> 31)) & 0xFFFFFFFF")
    lines.append("    a, b, c, d, e = state")
    names = ["a", "b", "c", "d", "e"]
    for i in range(80):
        A, B, C, D, E = names
        if i < 20:
            f = f"(({B} & {C}) | (({B} ^ 0xFFFFFFFF) & {D}))"
            k = _K[0]
        elif i < 40:
            f = f"({B} ^ {C} ^ {D})"
            k = _K[1]
        elif i < 60:
            f = f"(({B} & {C}) | ({B} & {D}) | ({C} & {D}))"
            k = _K[2]
        else:
            f = f"({B} ^ {C} ^ {D})"
            k = _K[3]
        lines.append(f"    {E} = ((({A} << 5) | ({A} >> 27)) + {f} + {E}"
                     f" + {k} + w{i}) & 0xFFFFFFFF")
        lines.append(f"    {B} = (({B} << 30) | ({B} >> 2)) & 0xFFFFFFFF")
        names = [E, A, B, C, D]
    A, B, C, D, E = names
    lines.append(f"    return ((state[0] + {A}) & 0xFFFFFFFF,"
                 f" (state[1] + {B}) & 0xFFFFFFFF,"
                 f" (state[2] + {C}) & 0xFFFFFFFF,"
                 f" (state[3] + {D}) & 0xFFFFFFFF,"
                 f" (state[4] + {E}) & 0xFFFFFFFF)")
    namespace = {"_unpack": struct.Struct(">16I").unpack}
    exec(compile("\n".join(lines), "<sha1-fastpath>", "exec"), namespace)
    return namespace["_compress_fast"]


_compress_fast = _build_compress_fast()


def compress(state: tuple, block: bytes) -> tuple:
    """Backend-dispatching SHA-1 compression (uncharged compute)."""
    if fastpath_enabled():
        return _compress_fast(state, block)
    return _compress(state, block)


class SHA1:
    """Incremental SHA-1 with the standard init/update/final API."""

    digest_size = 20
    block_size = 64
    name = "sha1"

    def __init__(self, data: bytes = b""):
        self._state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476,
                       0xC3D2E1F0)
        self._buffer = b""
        self._length = 0
        charge(SHA1_INIT, function="SHA1_Init")
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("SHA1.update requires bytes-like data")
        data = bytes(data)
        charge(SHA1_UPDATE_CALL, function="SHA1_Update")
        self._length += len(data)
        buf = self._buffer + data
        nblocks = len(buf) // 64
        if nblocks:
            fn = _compress_fast if fastpath_enabled() else _compress
            state = self._state
            for i in range(nblocks):
                state = fn(state, buf[i * 64:(i + 1) * 64])
            self._state = state
            charge(SHA1_BLOCK, times=nblocks, function="SHA1_Update",
                   stall=SHA1_STALL)
        self._buffer = buf[nblocks * 64:]

    def copy(self) -> "SHA1":
        """Snapshot the running context (used for SSLv3 finished hashes)."""
        clone = SHA1.__new__(SHA1)
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        charge(SHA1_INIT, function="SHA1_Init")
        return clone

    def digest(self) -> bytes:
        charge(SHA1_FINAL, function="SHA1_Final")
        bitlen = self._length * 8
        pad = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + pad + struct.pack(">Q", bitlen & (2**64 - 1))
        fn = _compress_fast if fastpath_enabled() else _compress
        state = self._state
        nblocks = len(tail) // 64
        for i in range(nblocks):
            state = fn(state, tail[i * 64:(i + 1) * 64])
        charge(SHA1_BLOCK, times=nblocks, function="SHA1_Final",
               stall=SHA1_STALL)
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def sha1(data: bytes = b"") -> SHA1:
    """Convenience constructor mirroring ``hashlib.sha1``."""
    return SHA1(data)
