"""RSA public-key encryption (the paper's asymmetric representative).

Section 5.2 partitions RSA decryption into six steps -- init, string-to-
bignum conversion, blinding, the modular-exponentiation computation,
bignum-to-string conversion, and PKCS #1 block parsing -- and measures the
computation at 97.0% (512-bit) / 98.8% (1024-bit) of the operation
(Table 7).  :meth:`RsaPrivateKey.decrypt` executes exactly those steps,
each inside a named profiler region, so the benchmark regenerating Table 7
reads the breakdown from real execution.

Two computation paths are provided:

* **CRT** (default): two half-width exponentiations mod p and q recombined
  via Garner's formula -- OpenSSL's standard private-key path, consistent
  with the paper's standalone RSA measurements (Table 7: ~6.0 M cycles for
  1024-bit);
* **non-CRT**: a single full-width exponentiation mod n, ~3.5-4x slower --
  consistent with the ~18.6 M cycles the paper reports for the RSA
  decryption inside the handshake (Table 2).  DESIGN.md discusses this
  internal tension in the paper; the SSL server context exposes the choice.

Blinding (step 3) follows OpenSSL's defence against the Brumley-Boneh
timing attack the paper cites: multiply the ciphertext by ``r^e`` before
exponentiating, multiply the result by ``r^{-1}``, and square the blinding
pair after each use.
"""

from __future__ import annotations

import copy
from typing import Dict, Optional, Tuple

from .. import perf
from ..bignum import BigNum, MontgomeryContext, mod_exp, mod_inverse
from ..perf import charge, mix
from . import pkcs1
from .primes import generate_prime
from .rand import PseudoRandom

#: Step 1 bookkeeping: RSA structure checks, BN_CTX acquisition.
RSA_INIT = mix(movl=120, addl=20, cmpl=30, jnz=30, pushl=12, popl=12,
               call=8, ret=8, xorl=8)

#: One-time error-string table registration, sampled into RSA profiles by
#: Oprofile (Table 8 shows ERR_load_BN_strings at 1.77%); charged on first
#: key use per process.
ERR_LOAD = mix(movl=900, movb=300, addl=150, cmpl=150, jnz=150, call=40,
               ret=40, pushl=40, popl=40)

#: Converting one byte between octet strings and bignum words
#: (BN_bin2bn / BN_bn2bin).
DATA_CONV_BYTE = mix(movb=1, movl=0.5, shll=0.5, orl=0.5, decl=0.5, jnz=0.5)

_err_tables_loaded = False


class ErrorTables:
    """Per-process error-string registration state (ERR_load_BN_strings).

    The real library loads its error strings once per *process*.  A key
    constructed normally shares the module-global flag (one charge per
    experiment, however many keys exist).  A :meth:`RsaPrivateKey.replica`
    carries its own fresh ``ErrorTables`` instead: each pre-fork farm
    worker is its own process and pays the one-shot charge on its first
    private-key operation.  Because the flag travels *with the key*, a
    serial farm loop and the process-parallel backend charge it at the
    same point on each worker's clock by construction -- no serial-prefix
    special case in the parallel protocol.
    """

    __slots__ = ("loaded",)

    def __init__(self, loaded: bool = False):
        self.loaded = loaded


def reset_error_tables() -> None:
    """Re-arm the one-time ERR_load_BN_strings charge (experiment isolation).

    The real library registers its error strings once per process; Table 8's
    profile catches that cost, so benchmarks reproducing it from a cold
    start call this first.
    """
    global _err_tables_loaded
    _err_tables_loaded = False


def error_tables_loaded() -> bool:
    """Whether this process has already paid the one-time ERR_LOAD charge.

    The charge is *process*-global state that the paper's profile observes
    exactly once (Table 8's ``ERR_load_BN_strings`` row).  The parallel
    farm backend ships this flag to its worker processes so that a pool
    run charges it in exactly the same place the serial interleaving
    would -- never once per process.
    """
    return _err_tables_loaded


def set_error_tables_loaded(loaded: bool) -> None:
    """Overwrite the one-time-charge flag (parallel-worker handoff)."""
    global _err_tables_loaded
    _err_tables_loaded = bool(loaded)


def _charge_data_conv(nbytes: int, function: str) -> None:
    charge(DATA_CONV_BYTE, times=nbytes, function=function)


class RsaError(ValueError):
    """RSA-level failure (bad lengths, bad padding, corrupt input)."""


class RsaPublicKey:
    """An RSA public key ``(n, e)``."""

    def __init__(self, n: BigNum, e: BigNum):
        if n.is_zero() or not n.is_odd():
            raise RsaError("modulus must be odd and non-zero")
        self.n = n
        self.e = e
        self.size = (n.nbits() + 7) // 8
        self._mont: Optional[MontgomeryContext] = None

    def _mont_ctx(self) -> MontgomeryContext:
        if self._mont is None:
            self._mont = MontgomeryContext(self.n)
        return self._mont

    def raw_public(self, x: BigNum) -> BigNum:
        """``x^e mod n`` (no padding)."""
        if self.n.ucmp(x) <= 0:
            raise RsaError("input not reduced modulo n")
        return mod_exp(x, self.e, self.n, self._mont_ctx())

    def encrypt(self, message: bytes, rng: PseudoRandom) -> bytes:
        """PKCS #1 v1.5 public-key encryption (client's key-exchange op)."""
        with perf.region("rsa_public_encryption"):
            block = pkcs1.pad_encrypt(message, self.size, rng)
            _charge_data_conv(self.size, "BN_bin2bn")
            c = self.raw_public(BigNum.from_bytes(block))
            _charge_data_conv(self.size, "BN_bn2bin")
            return c.to_bytes(self.size)

    def verify(self, signature: bytes, expected_payload: bytes) -> bool:
        """Verify an EMSA-PKCS1-v1_5 signature over ``expected_payload``."""
        if len(signature) != self.size:
            return False
        with perf.region("rsa_public_verify"):
            _charge_data_conv(self.size, "BN_bin2bn")
            m = self.raw_public(BigNum.from_bytes(signature))
            block = m.to_bytes(self.size)
            _charge_data_conv(self.size, "BN_bn2bin")
            try:
                payload = pkcs1.unpad_verify(block, self.size)
            except pkcs1.Pkcs1Error:
                return False
            return payload == expected_payload


class RsaPrivateKey:
    """An RSA private key with CRT components and blinding state."""

    def __init__(self, n: BigNum, e: BigNum, d: BigNum, p: BigNum,
                 q: BigNum, dmp1: BigNum, dmq1: BigNum, iqmp: BigNum,
                 use_crt: bool = True, blinding: bool = True,
                 mont_reduction: str = "interleaved",
                 rng: Optional[PseudoRandom] = None,
                 err_tables: Optional[ErrorTables] = None):
        self.n, self.e, self.d = n, e, d
        self.p, self.q = p, q
        self.dmp1, self.dmq1, self.iqmp = dmp1, dmq1, iqmp
        self.use_crt = use_crt
        self.blinding = blinding
        self._mont_reduction = mont_reduction
        self.size = (n.nbits() + 7) // 8
        self._rng = rng if rng is not None else PseudoRandom(b"rsa-blinding")
        self._mont_n: Optional[MontgomeryContext] = None
        self._mont_p: Optional[MontgomeryContext] = None
        self._mont_q: Optional[MontgomeryContext] = None
        #: Montgomery contexts by (modulus name, reduction style).  The cache
        #: outlives style switches and can be adopted by other keys over the
        #: same modulus (see :meth:`share_montgomery`), so one context per
        #: (modulus, style) exists per key family.
        self._mont_cache: Dict[Tuple[str, str], MontgomeryContext] = {}
        self._blind_pair: Optional[tuple] = None  # (A = r^e mod n, Ai = r^-1)
        #: ``None`` means "this key lives in the main process": the
        #: module-global one-shot flag applies.  Replicas get a private
        #: :class:`ErrorTables` (their own process, their own one-shot).
        self.err_tables = err_tables

    # -- context helpers ------------------------------------------------------
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(self.n, self.e)

    def replica(self) -> "RsaPrivateKey":
        """An independent handle over the same key material, with its own
        blinding state -- pre-fork style: one replica per worker process.

        A farm serving one certificate from N workers is N processes each
        holding its own copy of the OpenSSL key structure: the numbers
        (and the warmed Montgomery contexts, which are immutable after
        construction -- the same sharing :meth:`share_montgomery`
        sanctions) are common, but every process advances a private
        blinding pair and RNG.  The replica snapshots the current
        blinding state, so replicas made from one warmed key all start
        the same deterministic blinding sequence.
        """
        twin = RsaPrivateKey(self.n, self.e, self.d, self.p, self.q,
                             self.dmp1, self.dmq1, self.iqmp,
                             use_crt=self.use_crt, blinding=self.blinding,
                             mont_reduction=self._mont_reduction,
                             rng=copy.deepcopy(self._rng),
                             err_tables=ErrorTables(False))
        twin._mont_n = self._mont_n
        twin._mont_p = self._mont_p
        twin._mont_q = self._mont_q
        twin._mont_cache = dict(self._mont_cache)
        twin._blind_pair = self._blind_pair
        return twin

    @property
    def mont_reduction(self) -> str:
        """Montgomery reduction style; see repro.bignum.montgomery."""
        return self._mont_reduction

    @mont_reduction.setter
    def mont_reduction(self, style: str) -> None:
        if style != self._mont_reduction:
            self._mont_reduction = style
            self._mont_n = self._mont_p = self._mont_q = None
            self._blind_pair = None

    def _shared_ctx(self, name: str, modulus: BigNum) -> MontgomeryContext:
        key = (name, self._mont_reduction)
        ctx = self._mont_cache.get(key)
        if ctx is None:
            ctx = MontgomeryContext(modulus, self._mont_reduction)
            self._mont_cache[key] = ctx
        return ctx

    def share_montgomery(self, other: "RsaPrivateKey") -> None:
        """Adopt ``other``'s Montgomery context cache.

        Keys over the same ``(n, p, q)`` (batch RSA families, synthesized
        batch keys) then reuse one context per modulus and reduction style
        instead of each rebuilding its own.
        """
        if self.n != other.n or self.p != other.p or self.q != other.q:
            raise RsaError("Montgomery sharing requires identical moduli")
        self._mont_cache = other._mont_cache
        self._mont_n = self._mont_p = self._mont_q = None

    def _ctx_n(self) -> MontgomeryContext:
        if self._mont_n is None:
            self._mont_n = self._shared_ctx("n", self.n)
        return self._mont_n

    def _ctx_p(self) -> MontgomeryContext:
        if self._mont_p is None:
            self._mont_p = self._shared_ctx("p", self.p)
        return self._mont_p

    def _ctx_q(self) -> MontgomeryContext:
        if self._mont_q is None:
            self._mont_q = self._shared_ctx("q", self.q)
        return self._mont_q

    # -- blinding --------------------------------------------------------------
    def _mod_mul_n(self, a: BigNum, b: BigNum) -> BigNum:
        return a.mul(b).mod(self.n)

    def _blinding_pair(self) -> tuple:
        if self._blind_pair is None:
            while True:
                r = BigNum.from_bytes(self._rng.bytes(self.size)).mod(self.n)
                if not r.is_zero():
                    try:
                        ri = mod_inverse(r, self.n)
                        break
                    except ValueError:
                        continue  # not coprime; essentially impossible
            a = mod_exp(r, self.e, self.n, self._ctx_n())
            self._blind_pair = (a, ri)
        return self._blind_pair

    def _blinding_update(self) -> None:
        a, ri = self._blind_pair
        self._blind_pair = (a.sqr().mod(self.n), ri.sqr().mod(self.n))

    # -- core private operation ---------------------------------------------------
    def _private_computation(self, c: BigNum) -> BigNum:
        if not self.use_crt:
            return mod_exp(c, self.d, self.n, self._ctx_n())
        # CRT with Garner recombination.
        m1 = mod_exp(c.mod(self.p), self.dmp1, self.p, self._ctx_p())
        m2 = mod_exp(c.mod(self.q), self.dmq1, self.q, self._ctx_q())
        m2p = m2.mod(self.p)
        if m1.ucmp(m2p) >= 0:
            diff = m1.usub(m2p)
        else:
            diff = m1.uadd(self.p).usub(m2p)
        h = self.iqmp.mul(diff).mod(self.p)
        return m2.uadd(self.q.mul(h))

    def raw_private(self, c: BigNum, step_regions: bool = False) -> BigNum:
        """``c^d mod n`` with blinding; the measured core of Table 7.

        With ``step_regions`` the blinding/computation phases open the named
        profiler regions used by the Table 7 benchmark.
        """
        if self.n.ucmp(c) <= 0:
            raise RsaError("input not reduced modulo n")

        def maybe_region(name: str):
            return perf.region(name) if step_regions else _null_context()

        blinded = c
        if self.blinding:
            with maybe_region("blinding"):
                a, _ = self._blinding_pair()
                blinded = self._mod_mul_n(c, a)
        with maybe_region("computation"):
            m = self._private_computation(blinded)
        if self.blinding:
            with maybe_region("blinding"):
                _, ri = self._blind_pair
                m = self._mod_mul_n(m, ri)
                self._blinding_update()
        return m

    # -- PKCS #1 operations ----------------------------------------------------------
    def charge_error_load(self) -> None:
        """Pay the one-shot ERR_load_BN_strings charge now, if still owed.

        Normally consumed inside :meth:`decrypt`'s ``init`` region; the
        engine-offload path calls this explicitly so the charge lands on
        the real profiler *before* the decrypt runs under a scratch one.
        Idempotent per process (per worker replica).
        """
        global _err_tables_loaded
        tables = self.err_tables
        if tables is None:
            if not _err_tables_loaded:
                charge(ERR_LOAD, function="ERR_load_BN_strings")
                _err_tables_loaded = True
        elif not tables.loaded:
            charge(ERR_LOAD, function="ERR_load_BN_strings")
            tables.loaded = True

    def decrypt(self, ciphertext: bytes) -> bytes:
        """PKCS #1 v1.5 decryption with the full six-step anatomy of Table 7."""
        with perf.region("rsa_private_decryption"):
            with perf.region("init"):
                charge(RSA_INIT, function="BN_CTX_start")
                self.charge_error_load()
            with perf.region("data_to_bn"):
                if len(ciphertext) != self.size:
                    raise RsaError("ciphertext length mismatch")
                _charge_data_conv(self.size, "BN_bin2bn")
                c = BigNum.from_bytes(ciphertext)
            m = self.raw_private(c, step_regions=True)
            with perf.region("bn_to_data"):
                block = m.to_bytes(self.size)
                _charge_data_conv(self.size, "BN_bn2bin")
            with perf.region("block_parsing"):
                try:
                    message = pkcs1.unpad_decrypt(block, self.size)
                finally:
                    # Scratch pool zeroization (OPENSSL_cleanse in Table 8).
                    m.copy().cleanse()
            return message

    def sign(self, hash_name: str, digest: bytes,
             raw_payload: bool = False) -> bytes:
        """EMSA-PKCS1-v1_5 signature (the server certificate's signature op).

        With ``raw_payload`` the digest bytes are padded without a
        DigestInfo wrapper -- SSLv3's certificate-verify style.
        """
        with perf.region("rsa_private_encryption"):
            payload = digest if raw_payload else pkcs1.digest_info(
                hash_name, digest)
            block = pkcs1.pad_sign(payload, self.size)
            _charge_data_conv(self.size, "BN_bin2bn")
            m = self.raw_private(BigNum.from_bytes(block))
            _charge_data_conv(self.size, "BN_bn2bin")
            return m.to_bytes(self.size)


class _null_context:
    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


def generate_key(bits: int, e: int = 65537,
                 rng: Optional[PseudoRandom] = None,
                 use_crt: bool = True) -> RsaPrivateKey:
    """Generate an RSA key pair.

    Runs on native integers (key generation is outside the paper's measured
    path; see :mod:`repro.crypto.primes`) and returns a fully instrumented
    :class:`RsaPrivateKey`.
    """
    if bits < 64 or bits % 2:
        raise RsaError("key size must be an even number of bits >= 64")
    if rng is None:
        rng = PseudoRandom(b"rsa-keygen")
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        if p < q:
            p, q = q, p  # convention: p > q so Garner's formula works mod p
        phi = (p - 1) * (q - 1)
        if phi % e == 0:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        d = pow(e, -1, phi)
        return RsaPrivateKey(
            n=BigNum.from_int(n), e=BigNum.from_int(e), d=BigNum.from_int(d),
            p=BigNum.from_int(p), q=BigNum.from_int(q),
            dmp1=BigNum.from_int(d % (p - 1)), dmq1=BigNum.from_int(d % (q - 1)),
            iqmp=BigNum.from_int(pow(q, -1, p)), use_crt=use_crt, rng=rng)
