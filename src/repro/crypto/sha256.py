"""SHA-256 (FIPS 180-2), instrumented.

The paper cites FIPS 180-2 for SHA-1; the same standard introduced the
SHA-2 family that eventually displaced both MD5 and SHA-1 in TLS.  SHA-256
is included as a forward-looking comparison point: the characteristics
benchmark can show what the successor hash would have cost on the paper's
Pentium 4 (64 steps of heavier per-step work than SHA-1's 80 light ones,
plus a more expensive message schedule).
"""

from __future__ import annotations

import struct

from ..perf import charge, mix

_MASK = 0xFFFFFFFF

#: Round constants: fractional parts of cube roots of the first 64 primes.
_K = (
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5,
    0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc,
    0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3,
    0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5,
    0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
)

# ---------------------------------------------------------------------------
# Instruction mixes.  Derivation: 64 steps, each with two sigma functions
# (3 rotates + 2-3 xors each), Ch and Maj (3-4 logicals), ~4 additions;
# schedule expansion for 48 words with two more sigma functions each.  On
# 32-bit x86 this lands near 40 instructions/byte -- much heavier than
# SHA-1's 24 (the successor bought security with cycles).
# ---------------------------------------------------------------------------

SHA256_BLOCK = mix(
    movl=16 + 64 * 3.4 + 48 * 2.5 + 18,   # 371.6: loads, W traffic, spills
    bswap=16,
    xorl=64 * 4.5 + 48 * 4,               # 480: sigmas, Ch via xor trick
    rorl=64 * 6 + 48 * 4,                 # 576: six rotates/step + schedule
    shrl=48 * 2 + 64 * 0.5,               # 128: sigma shift terms
    addl=64 * 4.5 + 48 * 2,               # 384
    leal=64 * 0.8,                        # 51.2
    andl=64 * 1.6,                        # 102.4: Ch/Maj masking
    orl=64 * 0.4,
    movb=30,
    pushl=6, popl=6, call=1, ret=1, cmpl=2, jnz=2,
)

SHA256_INIT = mix(movl=18, xorl=2, pushl=1, popl=1, call=1, ret=1)
SHA256_UPDATE_CALL = mix(movl=14, addl=4, adcl=1, cmpl=3, jnz=3, shrl=2,
                         andl=2, pushl=3, popl=3, call=1, ret=1)
SHA256_FINAL = mix(movl=26, movb=10, bswap=8, addl=4, shrl=4, andl=3,
                   cmpl=3, jnz=3, pushl=3, popl=3, call=2, ret=2)

#: Like SHA-1, the schedule provides parallel work; the longer per-step
#: dependency chain (two sigmas feed the adds) leaves a bit more stall.
SHA256_STALL = 1.18


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK


def _compress(state: tuple, block: bytes) -> tuple:
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK)
    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ ((~e & _MASK) & g)
        t1 = (h + s1 + ch + _K[i] + w[i]) & _MASK
        s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        t2 = (s0 + maj) & _MASK
        h, g, f, e, d, c, b, a = (g, f, e, (d + t1) & _MASK, c, b, a,
                                  (t1 + t2) & _MASK)
    return tuple((s + v) & _MASK for s, v in zip(
        state, (a, b, c, d, e, f, g, h)))


class SHA256:
    """Incremental SHA-256 with the standard init/update/final API."""

    digest_size = 32
    block_size = 64
    name = "sha256"

    _IV = (0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
           0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19)

    def __init__(self, data: bytes = b""):
        self._state = self._IV
        self._buffer = b""
        self._length = 0
        charge(SHA256_INIT, function="SHA256_Init")
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("SHA256.update requires bytes-like data")
        data = bytes(data)
        charge(SHA256_UPDATE_CALL, function="SHA256_Update")
        self._length += len(data)
        buf = self._buffer + data
        nblocks = len(buf) // 64
        if nblocks:
            state = self._state
            for i in range(nblocks):
                state = _compress(state, buf[i * 64:(i + 1) * 64])
            self._state = state
            charge(SHA256_BLOCK, times=nblocks, function="SHA256_Update",
                   stall=SHA256_STALL)
        self._buffer = buf[nblocks * 64:]

    def copy(self) -> "SHA256":
        clone = SHA256.__new__(SHA256)
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        charge(SHA256_INIT, function="SHA256_Init")
        return clone

    def digest(self) -> bytes:
        charge(SHA256_FINAL, function="SHA256_Final")
        bitlen = self._length * 8
        pad = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + pad + struct.pack(">Q", bitlen & (2**64 - 1))
        state = self._state
        for i in range(len(tail) // 64):
            state = _compress(state, tail[i * 64:(i + 1) * 64])
        charge(SHA256_BLOCK, times=len(tail) // 64,
               function="SHA256_Final", stall=SHA256_STALL)
        return struct.pack(">8I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()
