"""MD5 message digest (RFC 1321), instrumented.

MD5 processes 64-byte blocks through 64 steps of ``a += F(b,c,d) + X[k] +
T[i]; a <<<= s; a += b``.  The paper's Table 10 splits hashing into
init / update / final phases (update is ~91% on 1 KB inputs) and Table 11/12
report a path length of ~12 instructions per byte dominated by
``movl/addl/xorl`` with a comparatively high CPI of 0.72 -- every step of
MD5 consumes the previous step's output, so the dependency chain defeats the
superscalar core.  The instruction-mix constants below are derived from that
structure; the derivation is spelled out inline.
"""

from __future__ import annotations

import math
import struct

from ..perf import charge, mix
from ..runtime import fastpath_enabled

#: Per-step shift amounts, by round.
_SHIFTS = (
    (7, 12, 17, 22), (5, 9, 14, 20), (4, 11, 16, 23), (6, 10, 15, 21),
)

#: T[i] = floor(abs(sin(i+1)) * 2^32) (RFC 1321).
_T = tuple(int(abs(math.sin(i + 1)) * (1 << 32)) & 0xFFFFFFFF
           for i in range(64))

#: Message-word index per step.
_X_INDEX = tuple(
    [i for i in range(16)]
    + [(1 + 5 * i) % 16 for i in range(16)]
    + [(5 + 3 * i) % 16 for i in range(16)]
    + [(7 * i) % 16 for i in range(16)]
)

_MASK = 0xFFFFFFFF

# ---------------------------------------------------------------------------
# Instruction mixes
# ---------------------------------------------------------------------------

#: One 64-byte block through md5_block_data_order.  Derivation:
#:   * 64 steps.  Boolean function via the xor trick (F = ((c^d)&b)^d):
#:     rounds 1-2 use 2 xorl + 1 andl, round 3 uses 2 xorl, round 4 uses
#:     notl + orl + xorl -> averages 2.19 xorl, 0.5 andl, 0.27 orl,
#:     0.25 notl per step.
#:   * additions: +X[k] (from memory), +T[i] (immediate) and the final +b;
#:     one is typically folded into a leal -> 2.3 addl + 1.1 leal per step.
#:   * one roll per step; ~2.6 movl per step (X[k] load, register traffic
#:     forced by the 8-register ISA -- the paper's point about x86 register
#:     pressure).
#:   * block overhead: 16 message-word loads, state load/store (8 movl),
#:     input byte handling in the copy path (movb/addb), frame setup.
MD5_BLOCK = mix(
    movl=64 * 2.6 + 24,   # 190.4
    addl=64 * 2.3,        # 147.2
    xorl=64 * 2.19,       # 140.2
    leal=64 * 1.1,        # 70.4
    roll=64 * 1.05,       # 67.2
    andl=64 * 0.5,        # 32
    orl=64 * 0.27,        # 17.3
    notl=64 * 0.25,       # 16
    movb=30,              # unaligned-input copy path, amortized
    addb=12,
    xorb=2,
    pushl=5, popl=5, call=1, ret=1, cmpl=2, jnz=2,
)

#: MD5_Init: store 4 state words + length, zero the buffer count.
MD5_INIT = mix(movl=12, xorl=2, pushl=1, popl=1, call=1, ret=1)

#: MD5_Update bookkeeping per call (length arithmetic, buffer management),
#: excluding the block compression charged separately.
MD5_UPDATE_CALL = mix(movl=14, addl=4, adcl=1, cmpl=3, jnz=3, shrl=2,
                      andl=2, pushl=3, popl=3, call=1, ret=1)

#: MD5_Final bookkeeping: append padding + length, emit digest (the extra
#: compressions themselves are charged as blocks).
MD5_FINAL = mix(movl=22, movb=10, addl=4, shrl=4, andl=3, cmpl=3, jnz=3,
                pushl=3, popl=3, call=2, ret=2)

#: Dependency-stall factor.  Every MD5 step is a serial chain (the rotate
#: input is the sum just computed; the next step needs the rotated value),
#: so the 3-wide core cannot fill its issue slots: measured CPI 0.72 versus
#: a throughput-limited ~0.45 for this mix.
MD5_STALL = 1.52


def _compress(state: tuple, block: bytes) -> tuple:
    """One application of the MD5 compression function (uncharged)."""
    a, b, c, d = state
    x = struct.unpack("<16I", block)
    for i in range(64):
        if i < 16:
            f = ((c ^ d) & b) ^ d
        elif i < 32:
            f = ((b ^ c) & d) ^ c
        elif i < 48:
            f = b ^ c ^ d
        else:
            f = c ^ (b | (~d & _MASK))
        t = (a + f + x[_X_INDEX[i]] + _T[i]) & _MASK
        s = _SHIFTS[i >> 4][i & 3]
        t = ((t << s) | (t >> (32 - s))) & _MASK
        a, d, c, b = d, c, b, (b + t) & _MASK
    return ((state[0] + a) & _MASK, (state[1] + b) & _MASK,
            (state[2] + c) & _MASK, (state[3] + d) & _MASK)


def _build_compress_fast():
    """Generate a fully unrolled compression function (the fast backend).

    The 64 steps are emitted as straight-line code over four locals with the
    round constants, shifts and message indices inlined -- the Python
    analogue of the flattened assembly the paper profiles.  Bit-identical to
    :func:`_compress` by construction (same formulas, constants folded).
    """
    lines = [
        "def _compress_fast(state, block):",
        "    x = _unpack(block)",
        "    a, b, c, d = state",
    ]
    names = ["a", "b", "c", "d"]
    for i in range(64):
        A, B, C, D = names
        if i < 16:
            f = f"((({C} ^ {D}) & {B}) ^ {D})"
        elif i < 32:
            f = f"((({B} ^ {C}) & {D}) ^ {C})"
        elif i < 48:
            f = f"({B} ^ {C} ^ {D})"
        else:
            f = f"({C} ^ ({B} | ({D} ^ 0xFFFFFFFF)))"
        s = _SHIFTS[i >> 4][i & 3]
        t = f"(({A} + {f} + x[{_X_INDEX[i]}] + {_T[i]}) & 0xFFFFFFFF)"
        lines.append(f"    t = {t}")
        lines.append(f"    {A} = (((t << {s}) | (t >> {32 - s}))"
                     f" + {B}) & 0xFFFFFFFF")
        names = [D, A, B, C]
    A, B, C, D = names
    lines.append(f"    return ((state[0] + {A}) & 0xFFFFFFFF,"
                 f" (state[1] + {B}) & 0xFFFFFFFF,"
                 f" (state[2] + {C}) & 0xFFFFFFFF,"
                 f" (state[3] + {D}) & 0xFFFFFFFF)")
    namespace = {"_unpack": struct.Struct("<16I").unpack}
    exec(compile("\n".join(lines), "<md5-fastpath>", "exec"), namespace)
    return namespace["_compress_fast"]


_compress_fast = _build_compress_fast()


def compress(state: tuple, block: bytes) -> tuple:
    """Backend-dispatching MD5 compression (uncharged compute)."""
    if fastpath_enabled():
        return _compress_fast(state, block)
    return _compress(state, block)


class MD5:
    """Incremental MD5 with the standard init/update/final API."""

    digest_size = 16
    block_size = 64
    name = "md5"

    def __init__(self, data: bytes = b""):
        self._state = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)
        self._buffer = b""
        self._length = 0
        charge(MD5_INIT, function="MD5_Init")
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError("MD5.update requires bytes-like data")
        data = bytes(data)
        charge(MD5_UPDATE_CALL, function="MD5_Update")
        self._length += len(data)
        buf = self._buffer + data
        nblocks = len(buf) // 64
        if nblocks:
            fn = _compress_fast if fastpath_enabled() else _compress
            state = self._state
            for i in range(nblocks):
                state = fn(state, buf[i * 64:(i + 1) * 64])
            self._state = state
            charge(MD5_BLOCK, times=nblocks, function="MD5_Update",
                   stall=MD5_STALL)
        self._buffer = buf[nblocks * 64:]

    def copy(self) -> "MD5":
        """Snapshot the running context (used for SSLv3 finished hashes)."""
        clone = MD5.__new__(MD5)
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        charge(MD5_INIT, function="MD5_Init")
        return clone

    def digest(self) -> bytes:
        charge(MD5_FINAL, function="MD5_Final")
        bitlen = self._length * 8
        pad = b"\x80" + b"\x00" * ((55 - self._length) % 64)
        tail = self._buffer + pad + struct.pack("<Q", bitlen & (2**64 - 1))
        fn = _compress_fast if fastpath_enabled() else _compress
        state = self._state
        nblocks = len(tail) // 64
        for i in range(nblocks):
            state = fn(state, tail[i * 64:(i + 1) * 64])
        charge(MD5_BLOCK, times=nblocks, function="MD5_Final",
               stall=MD5_STALL)
        return struct.pack("<4I", *state)

    def hexdigest(self) -> str:
        return self.digest().hex()


def md5(data: bytes = b"") -> MD5:
    """Convenience constructor mirroring ``hashlib.md5``."""
    return MD5(data)
