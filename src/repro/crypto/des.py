"""DES and Triple-DES (FIPS 46-3), instrumented.

The paper decomposes a DES block operation into initial permutation,
16 substitution rounds, and final permutation, measuring the substitution
part at 74.7% (DES) and 89.1% (3DES, which runs 3x16 rounds between a single
IP/FP pair) -- Table 6.  Each round XORs the right half with a subkey and
performs eight 6-bit-indexed table lookups (Table 4), which is how this
implementation executes it: the S-boxes are precomputed fused with the P
permutation (OpenSSL's ``DES_SPtrans`` idea), and the wide bit permutations
(IP, FP, E, PC-1, PC-2) are applied via byte-indexed mask tables built once
from the FIPS tables.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..perf import charge, mix
from ..runtime import fastpath_enabled

# ---------------------------------------------------------------------------
# FIPS 46-3 tables (1-based bit positions, MSB = bit 1)
# ---------------------------------------------------------------------------

_IP = (
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4,
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8,
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3,
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
)

_FP = (
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31,
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29,
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27,
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
)

_E = (
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9,
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17,
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25,
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
)

_P = (
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10,
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
)

_PC1 = (
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18,
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36,
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22,
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
)

_PC2 = (
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10,
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2,
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48,
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
)

_KEY_SHIFTS = (1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1)

_SBOXES = (
    # S1
    ((14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7),
     (0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8),
     (4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0),
     (15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13)),
    # S2
    ((15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10),
     (3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5),
     (0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15),
     (13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9)),
    # S3
    ((10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8),
     (13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1),
     (13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7),
     (1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12)),
    # S4
    ((7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15),
     (13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9),
     (10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4),
     (3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14)),
    # S5
    ((2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9),
     (14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6),
     (4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14),
     (11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3)),
    # S6
    ((12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11),
     (10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8),
     (9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6),
     (4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13)),
    # S7
    ((4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1),
     (13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6),
     (1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2),
     (6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12)),
    # S8
    ((13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7),
     (1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2),
     (7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8),
     (2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11)),
)


# ---------------------------------------------------------------------------
# Permutation machinery: byte-indexed mask tables
# ---------------------------------------------------------------------------

def _build_perm_tables(perm: Sequence[int], in_bits: int) -> List[List[int]]:
    """Precompute, per input byte, the output mask contributed by that byte.

    ``perm[k]`` (1-based) is the input bit that lands in output bit ``k``
    (output MSB first).  Applying the permutation is then one table lookup
    and OR per input byte.
    """
    nout = len(perm)
    nbytes = in_bits // 8
    tables: List[List[int]] = [[0] * 256 for _ in range(nbytes)]
    for out_pos, src in enumerate(perm):
        src0 = src - 1
        byte_i, bit_i = divmod(src0, 8)
        in_byte_mask = 0x80 >> bit_i
        out_mask = 1 << (nout - 1 - out_pos)
        tbl = tables[byte_i]
        for b in range(256):
            if b & in_byte_mask:
                tbl[b] |= out_mask
    return tables


def _apply_perm(tables: List[List[int]], value: int, in_bits: int) -> int:
    out = 0
    shift = in_bits - 8
    for tbl in tables:
        out |= tbl[(value >> shift) & 0xFF]
        shift -= 8
    return out


_IP_T = _build_perm_tables(_IP, 64)
_FP_T = _build_perm_tables(_FP, 64)
_E_T = _build_perm_tables(_E, 32)
_PC1_T = _build_perm_tables(_PC1, 64)
_PC2_T = _build_perm_tables(_PC2, 56)


def _build_sp_tables() -> List[List[int]]:
    """Fuse each S-box with the P permutation (DES_SPtrans equivalent).

    ``SP[i][v]`` is ``P(S_i(v) << (28 - 4*i))`` so a round's eight lookups
    OR/XOR together into the already-permuted 32-bit result.
    """
    p_tables = _build_perm_tables(_P, 32)
    sp: List[List[int]] = []
    for i, sbox in enumerate(_SBOXES):
        table = []
        for v in range(64):
            row = ((v >> 4) & 0x2) | (v & 0x1)
            col = (v >> 1) & 0xF
            placed = sbox[row][col] << (28 - 4 * i)
            table.append(_apply_perm(p_tables, placed, 32))
        sp.append(table)
    return sp


_SP = _build_sp_tables()

_M32 = 0xFFFFFFFF
_M28 = 0x0FFFFFFF

#: The four weak and twelve semi-weak DES keys (FIPS 74 / Menezes et al.,
#: the handbook the paper cites).  With a weak key, encryption equals
#: decryption; semi-weak keys come in pairs that invert each other.
#: OpenSSL's DES_set_key_checked rejects them, as does our optional check.
WEAK_KEYS = tuple(bytes.fromhex(h) for h in (
    "0101010101010101", "FEFEFEFEFEFEFEFE",
    "E0E0E0E0F1F1F1F1", "1F1F1F1F0E0E0E0E",
))
SEMI_WEAK_KEYS = tuple(bytes.fromhex(h) for h in (
    "01FE01FE01FE01FE", "FE01FE01FE01FE01",
    "1FE01FE00EF10EF1", "E01FE01FF10EF10E",
    "01E001E001F101F1", "E001E001F101F101",
    "1FFE1FFE0EFE0EFE", "FE1FFE1FFE0EFE0E",
    "011F011F010E010E", "1F011F010E010E01",
    "E0FEE0FEF1FEF1FE", "FEE0FEE0FEF1FEF1",
))


def _strip_parity(key: bytes) -> bytes:
    """Zero each byte's parity bit so weak-key comparison ignores parity."""
    return bytes(b & 0xFE for b in key)


def is_weak_key(key: bytes) -> bool:
    """True for the 4 weak and 12 semi-weak keys (parity-insensitive)."""
    if len(key) != 8:
        raise ValueError("DES key must be 8 bytes")
    stripped = _strip_parity(key)
    return any(stripped == _strip_parity(k)
               for k in WEAK_KEYS + SEMI_WEAK_KEYS)

# ---------------------------------------------------------------------------
# Instruction mixes
# ---------------------------------------------------------------------------
# Target structure (Tables 6, 11, 12): 552 instructions per 8-byte block
# (69 per byte), split ~13% IP / 75% substitution / 12% FP for single DES.

#: The initial permutation: the classic x86 IP is ~18 swap steps of
#: shift/XOR/AND/rotate on the two halves plus loads/stores.
DES_IP = mix(movl=14, xorl=24, andl=10, shrl=8, shll=4, roll=3, rorl=3,
             movb=6, pushl=2, popl=2)

#: One substitution round: expand+key XOR then eight 6-bit table lookups
#: XORed into the left half.  Per Table 4 each lookup is a shift, a mask,
#: a byte extract and the load itself; the XOR tree joins them.
DES_ROUND = mix(xorl=11.5, movb=4.5, movl=3.2, andl=3.6, shrl=1.5,
                rorl=0.8, roll=0.4, addl=0.02, pushl=0.02, popl=0.02)

#: The final permutation (inverse structure of IP).
DES_FP = mix(movl=14, xorl=24, andl=10, shrl=8, shll=4, roll=3, rorl=3,
             movb=6, pushl=2, popl=2, ret=1, call=1)

#: One round of key-schedule generation: rotate C/D, apply PC-2 via table
#: lookups, store two subkey words.
DES_KS_ROUND = mix(movl=16, andl=8, shrl=6, shll=4, orl=6, xorl=2, movb=8,
                   addl=2, cmpl=1, jnz=1)

#: PC-1 and per-call overhead of DES_set_key.
DES_KS_SETUP = mix(movl=20, andl=8, shrl=8, orl=8, movb=8, pushl=4, popl=4,
                   call=1, ret=1)

#: Per-call overhead of DES_encrypt/decrypt.
DES_CALL = mix(pushl=4, movl=10, popl=4, call=1, ret=1, cmpl=1, jnz=1)

#: The eight lookups within a round are independent, but each round's
#: E-expansion depends on the previous round's output and every lookup pays
#: load-use latency: measured CPI 0.67 versus ~0.48 at the throughput limit.
DES_STALL = 1.39


# ---------------------------------------------------------------------------
# Key schedule and block operation
# ---------------------------------------------------------------------------

def _rotl28(v: int, n: int) -> int:
    return ((v << n) | (v >> (28 - n))) & _M28


def _key_schedule(key: bytes) -> List[int]:
    """16 48-bit subkeys from an 8-byte key (parity bits ignored)."""
    k = int.from_bytes(key, "big")
    cd = _apply_perm(_PC1_T, k, 64)
    c, d = (cd >> 28) & _M28, cd & _M28
    subkeys: List[int] = []
    for shift in _KEY_SHIFTS:
        c = _rotl28(c, shift)
        d = _rotl28(d, shift)
        subkeys.append(_apply_perm(_PC2_T, (c << 28) | d, 56))
    return subkeys


def _feistel(r: int, subkey: int) -> int:
    x = _apply_perm(_E_T, r, 32) ^ subkey
    sp = _SP
    return (sp[0][(x >> 42) & 0x3F] ^ sp[1][(x >> 36) & 0x3F]
            ^ sp[2][(x >> 30) & 0x3F] ^ sp[3][(x >> 24) & 0x3F]
            ^ sp[4][(x >> 18) & 0x3F] ^ sp[5][(x >> 12) & 0x3F]
            ^ sp[6][(x >> 6) & 0x3F] ^ sp[7][x & 0x3F])


def _build_rounds_fast():
    """Generate a fully unrolled 16-round Feistel pass (the fast backend).

    The E and SP tables are bound into the function's globals, the 16
    subkeys unpack into locals, and each round XORs the inlined round
    function into the opposite half (role names alternate instead of
    swapping values).  Bit-identical to :func:`_rounds` by construction.
    """
    lines = [
        "def _rounds_unrolled(l, r, subkeys):",
        "    " + ", ".join(f"k{i}" for i in range(16)) + " = subkeys",
    ]
    names = ["l", "r"]
    for i in range(16):
        L, R = names
        lines.append(f"    x = (e0[({R} >> 24) & 0xFF]"
                     f" | e1[({R} >> 16) & 0xFF]"
                     f" | e2[({R} >> 8) & 0xFF]"
                     f" | e3[{R} & 0xFF]) ^ k{i}")
        lines.append(f"    {L} ^= (sp0[(x >> 42) & 0x3F]"
                     f" ^ sp1[(x >> 36) & 0x3F]"
                     f" ^ sp2[(x >> 30) & 0x3F]"
                     f" ^ sp3[(x >> 24) & 0x3F]"
                     f" ^ sp4[(x >> 18) & 0x3F]"
                     f" ^ sp5[(x >> 12) & 0x3F]"
                     f" ^ sp6[(x >> 6) & 0x3F]"
                     f" ^ sp7[x & 0x3F])")
        names.reverse()
    lines.append(f"    return {names[0]}, {names[1]}")
    namespace = {
        "e0": _E_T[0], "e1": _E_T[1], "e2": _E_T[2], "e3": _E_T[3],
        **{f"sp{i}": _SP[i] for i in range(8)},
    }
    exec(compile("\n".join(lines), "<des-fastpath>", "exec"), namespace)
    return namespace["_rounds_unrolled"]


_rounds_fast = _build_rounds_fast()


def _build_perm_fast(tables: List[List[int]], in_bits: int):
    """Generate an unrolled wide-permutation lookup (one OR chain)."""
    shifts = list(range(in_bits - 8, -1, -8))
    expr = " | ".join(
        f"t{i}[(v >> {s}) & 0xFF]" if s else f"t{i}[v & 0xFF]"
        for i, s in enumerate(shifts))
    lines = [f"def _perm(v):", f"    return {expr}"]
    namespace = {f"t{i}": tables[i] for i in range(len(tables))}
    exec(compile("\n".join(lines), "<des-perm-fastpath>", "exec"), namespace)
    return namespace["_perm"]


_ip_fast = _build_perm_fast(_IP_T, 64)
_fp_fast = _build_perm_fast(_FP_T, 64)


def _rounds(l: int, r: int, subkeys: Sequence[int]) -> Tuple[int, int]:
    if fastpath_enabled():
        return _rounds_fast(l, r, subkeys)
    for k in subkeys:
        l, r = r, l ^ _feistel(r, k)
    return l, r


class DES:
    """Single DES on 8-byte blocks."""

    name = "des"
    block_size = 8
    key_size = 8
    rounds = 16

    def __init__(self, key: bytes, check_weak: bool = False):
        if len(key) != 8:
            raise ValueError("DES key must be 8 bytes")
        if check_weak and is_weak_key(key):
            raise ValueError("weak or semi-weak DES key rejected")
        self._enc_keys = _key_schedule(key)
        self._dec_keys = list(reversed(self._enc_keys))
        charge(DES_KS_SETUP, function="DES_set_key")
        charge(DES_KS_ROUND, times=16, function="DES_set_key")

    def _crypt_block(self, block: bytes, subkeys: Sequence[int]) -> bytes:
        if len(block) != 8:
            raise ValueError("DES block must be 8 bytes")
        fast = fastpath_enabled()
        if fast:
            v = _ip_fast(int.from_bytes(block, "big"))
        else:
            v = _apply_perm(_IP_T, int.from_bytes(block, "big"), 64)
        charge(DES_IP, function="DES_encrypt", stall=DES_STALL)
        l, r = (v >> 32) & _M32, v & _M32
        l, r = _rounds(l, r, subkeys)
        charge(DES_ROUND, times=16, function="DES_encrypt", stall=DES_STALL)
        preoutput = (r << 32) | l  # final swap
        if fast:
            out = _fp_fast(preoutput)
        else:
            out = _apply_perm(_FP_T, preoutput, 64)
        charge(DES_FP, function="DES_encrypt", stall=DES_STALL)
        charge(DES_CALL, function="DES_encrypt")
        return out.to_bytes(8, "big")

    def encrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._enc_keys)

    def decrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._dec_keys)


class TripleDES:
    """3DES in EDE mode (encrypt-decrypt-encrypt with three subkeys).

    Mirrors OpenSSL's ``DES_encrypt3``: one IP, 3x16 rounds, one FP --
    which is why the substitution share rises to ~89% (Table 6).
    """

    name = "3des"
    block_size = 8
    key_size = 24
    rounds = 48

    def __init__(self, key: bytes):
        if len(key) != 24:
            raise ValueError("3DES key must be 24 bytes (three DES keys)")
        k1 = _key_schedule(key[0:8])
        k2 = _key_schedule(key[8:16])
        k3 = _key_schedule(key[16:24])
        # EDE: encrypt with k1, decrypt with k2, encrypt with k3.
        self._enc = (k1, list(reversed(k2)), k3)
        self._dec = (list(reversed(k3)), k2, list(reversed(k1)))
        charge(DES_KS_SETUP, times=3, function="DES_set_key")
        charge(DES_KS_ROUND, times=48, function="DES_set_key")

    def _crypt_block(self, block: bytes,
                     schedule: Tuple[Sequence[int], ...]) -> bytes:
        if len(block) != 8:
            raise ValueError("3DES block must be 8 bytes")
        fast = fastpath_enabled()
        if fast:
            v = _ip_fast(int.from_bytes(block, "big"))
        else:
            v = _apply_perm(_IP_T, int.from_bytes(block, "big"), 64)
        charge(DES_IP, function="DES_encrypt3", stall=DES_STALL)
        l, r = (v >> 32) & _M32, v & _M32
        # Between stages the halves swap roles (no IP/FP in the middle).
        l, r = _rounds(l, r, schedule[0])
        r, l = _rounds(r, l, schedule[1])
        l, r = _rounds(l, r, schedule[2])
        charge(DES_ROUND, times=48, function="DES_encrypt3",
               stall=DES_STALL)
        preoutput = (r << 32) | l
        if fast:
            out = _fp_fast(preoutput)
        else:
            out = _apply_perm(_FP_T, preoutput, 64)
        charge(DES_FP, function="DES_encrypt3", stall=DES_STALL)
        charge(DES_CALL, function="DES_encrypt3")
        return out.to_bytes(8, "big")

    def encrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._enc)

    def decrypt_block(self, block: bytes) -> bytes:
        return self._crypt_block(block, self._dec)
