"""Deterministic pseudo-random byte generator (``rand_pseudo_bytes``).

OpenSSL 0.9.7's ``md_rand`` mixes entropy through MD5 over a 1 KB state
pool; every extraction stirs pool state through the hash, which is why the
paper's hello steps spend tens of thousands of cycles in
``rand_pseudo_bytes`` for a few dozen output bytes (Table 2), and why
random-number generation shows up in the "other" crypto category of
Table 3 / Figure 2.

This reproduction keeps that shape -- a hash-feedback generator whose cost
is real MD5 compression work over the pool -- but is deliberately
deterministic and seedable, because experiments must be reproducible.  No
security claim is attached; do not use outside the simulation.

The MD5 work is performed via the raw compression function and charged
under the ``rand_pseudo_bytes`` name (module ``libcrypto``) so that the
crypto-category accounting of Figure 2 classifies it as "other", exactly
as the paper does.
"""

from __future__ import annotations

import struct

from ..perf import charge, mix
from .md5 import MD5, MD5_BLOCK, MD5_STALL, compress

#: Bookkeeping per rand_pseudo_bytes call (pool index arithmetic, locking).
RAND_CALL = mix(movl=16, addl=4, andl=2, cmpl=4, jnz=4, pushl=3, popl=3,
                call=2, ret=2)

_POOL_SIZE = 1024
_IV = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476)


class PseudoRandom:
    """MD5-feedback PRNG over a 1 KB state pool (md_rand equivalent)."""

    def __init__(self, seed: bytes = b"repro-ssl-anatomy"):
        self._pool = bytearray(_POOL_SIZE)
        self._counter = 0
        self.seed(seed)

    def seed(self, material: bytes) -> None:
        """Mix seed material through the pool."""
        digest = MD5(material).digest()
        for i in range(_POOL_SIZE):
            self._pool[i] = digest[i % 16] ^ (i & 0xFF)
        self._counter = 0

    def _stir(self) -> bytes:
        """Hash the whole pool twice (in and out passes, like md_rand's
        per-extraction state walk); xor the digest back into the head."""
        state = _IV
        pool = bytes(self._pool)
        nblocks = _POOL_SIZE // 64
        for _ in range(2):
            for i in range(nblocks):
                state = compress(state, pool[i * 64:(i + 1) * 64])
        charge(MD5_BLOCK, times=2 * nblocks, function="rand_pseudo_bytes",
               stall=MD5_STALL)
        digest = struct.pack("<4I", *state)
        for i, b in enumerate(digest):
            self._pool[i] ^= b
        return digest

    def bytes(self, n: int) -> bytes:
        """Produce ``n`` pseudo-random bytes (rand_pseudo_bytes)."""
        if n < 0:
            raise ValueError("cannot generate a negative number of bytes")
        charge(RAND_CALL, function="rand_pseudo_bytes")
        self._stir()
        out = bytearray()
        while len(out) < n:
            self._counter += 1
            block = (struct.pack(">Q", self._counter)
                     + bytes(self._pool[:48])
                     + b"\x80" + bytes(6) + struct.pack("<H", 448))
            state = compress(_IV, block[:64])
            charge(MD5_BLOCK, function="rand_pseudo_bytes", stall=MD5_STALL)
            digest = struct.pack("<4I", *state)
            # Feed the digest back into the pool (state update).
            base = (self._counter * 16) % (_POOL_SIZE - 16)
            for i, b in enumerate(digest):
                self._pool[base + i] ^= b
            out += digest
        return bytes(out[:n])

    def int_below(self, bound: int) -> int:
        """A pseudo-random integer in ``[0, bound)``."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        nbytes = (bits + 7) // 8
        excess = nbytes * 8 - bits
        while True:  # rejection sampling: accepts with probability >= 1/2
            v = int.from_bytes(self.bytes(nbytes), "big") >> excess
            if v < bound:
                return v

    def odd_int(self, bits: int) -> int:
        """A pseudo-random odd integer with exactly ``bits`` bits."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        v = int.from_bytes(self.bytes((bits + 7) // 8), "big")
        v |= 1 | (1 << (bits - 1)) | (1 << (bits - 2))
        v &= (1 << bits) - 1
        return v


#: Process-wide default generator, reseedable by tests/benchmarks.
_DEFAULT = PseudoRandom()


def rand_pseudo_bytes(n: int) -> bytes:
    """Module-level convenience mirroring OpenSSL's call."""
    return _DEFAULT.bytes(n)


def reseed(material: bytes) -> None:
    """Reseed the default generator (used to make experiments reproducible)."""
    _DEFAULT.seed(material)
