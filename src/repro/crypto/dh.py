"""Diffie-Hellman key agreement (the paper's other asymmetric primitive).

Section 2: "Asymmetric encryption algorithms like RSA and Diffie-Hellman
are used in the handshake phase to exchange secret keys."  The paper's
measured cipher suite uses RSA key transport, which is why its Table 2
skips the ServerKeyExchange step; this module supplies the DH substrate so
the DHE-RSA suites can exercise that step and the ablation benchmarks can
price it.

The arithmetic runs on the instrumented bignum stack, so DH operations
appear in profiles as the same ``bn_mul_add_words``-dominated modular
exponentiations as RSA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import perf
from ..bignum import BigNum, MontgomeryContext, mod_exp
from .rand import PseudoRandom

#: RFC 2409 (IKE) Oakley Group 2: the classic 1024-bit MODP group with
#: generator 2 -- a safe prime widely shipped in the paper's era.
OAKLEY_GROUP2_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E088A67CC74"
    "020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B302B0A6DF25F1437"
    "4FE1356D6D51C245E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381FFFFFFFFFFFFFFFF",
    16)
OAKLEY_GROUP2_G = 2


class DhError(ValueError):
    """Invalid Diffie-Hellman parameters or public values."""


@dataclass(frozen=True)
class DhParams:
    """A (p, g) group."""

    p: BigNum
    g: BigNum

    def __post_init__(self) -> None:
        if self.p.nbits() < 256:
            raise DhError("modulus too small to be meaningful")
        if not self.p.is_odd():
            raise DhError("modulus must be odd")
        g = self.g.to_int()
        if not 2 <= g < self.p.to_int() - 1:
            raise DhError("generator out of range")

    @classmethod
    def oakley_group2(cls) -> "DhParams":
        return cls(p=BigNum.from_int(OAKLEY_GROUP2_P),
                   g=BigNum.from_int(OAKLEY_GROUP2_G))

    def validate_public(self, y: BigNum) -> None:
        """Reject degenerate peer values (1, 0, p-1, out of range)."""
        yi = y.to_int()
        if not 2 <= yi <= self.p.to_int() - 2:
            raise DhError("peer public value out of range")


class DhKeyPair:
    """An ephemeral DH key pair over ``params``.

    ``exponent_bits`` bounds the private exponent; 256 bits is standard
    practice for a 1024-bit safe-prime group (and keeps the two server
    exponentiations comparable to one CRT RSA operation -- quantified by
    the DHE ablation benchmark).
    """

    def __init__(self, params: DhParams, rng: Optional[PseudoRandom] = None,
                 exponent_bits: int = 256,
                 mont: Optional[MontgomeryContext] = None):
        if exponent_bits < 128:
            raise DhError("private exponent too short")
        if rng is None:
            rng = PseudoRandom(b"dh-ephemeral")
        self.params = params
        self._mont = mont if mont is not None else MontgomeryContext(
            params.p)
        with perf.region("dh_generate_key"):
            self._x = BigNum.from_int(rng.odd_int(exponent_bits))
            self.public = mod_exp(params.g, self._x, params.p, self._mont)
        if self.public.to_int() < 2:
            raise DhError("degenerate public value; retry with fresh rng")

    def compute_shared(self, peer_public: BigNum) -> bytes:
        """The shared secret ``Z = peer^x mod p``, big-endian, no leading
        zeros (the SSL pre-master convention for DH)."""
        self.params.validate_public(peer_public)
        with perf.region("dh_compute_key"):
            z = mod_exp(peer_public, self._x, self.params.p, self._mont)
        if z.to_int() < 2:
            raise DhError("degenerate shared secret")
        return z.to_bytes()
