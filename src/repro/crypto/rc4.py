"""RC4 stream cipher, instrumented.

RC4 is the paper's stream-cipher representative: a 256-byte state table, a
key setup that initializes and then key-mixes the whole table, and a
per-byte generation kernel that reads the table three times and updates it
twice (Section 5.1.3).  Two characteristics the paper highlights:

* the key setup is a *large* fraction of small-message encryption -- 28.5%
  at 1 KB (Figure 3) -- because the kernel is so cheap that initializing the
  256-entry table rivals the data pass;
* the kernel's path length is only ~14 instructions/byte with CPI 0.57,
  giving the highest throughput of all studied ciphers (Table 11).
"""

from __future__ import annotations

from ..perf import charge, mix
from ..runtime import fastpath_enabled

# ---------------------------------------------------------------------------
# Instruction mixes
# ---------------------------------------------------------------------------

#: One byte of keystream generation + XOR with the input.  Derivation from
#: the kernel ``i++; j += S[i]; swap(S[i], S[j]); out = S[(S[i]+S[j]) & 255]
#: ^ in``: three table loads and two stores plus the index arithmetic.  The
#: unrolled x86 loop pads with ``nop`` for alignment (visible at 5.96% in
#: Table 12); byte values travel via ``movb``/``movzbl`` pairs counted here
#: as movl/movb, matching the paper's accounting.
RC4_BYTE = mix(
    movl=5.33, andl=2.54, addl=1.91, movb=0.89, incl=0.87, nop=0.83,
    xorl=0.25, cmpl=0.20, popl=0.16, pushl=0.15, xorb=0.45, jnz=0.42,
)

#: One iteration of the table-initialization loop (S[i] = i).
RC4_INIT_ITER = mix(movb=1.5, movl=2, incl=1, cmpl=0.5, jnz=0.5, addl=0.5)

#: One iteration of the key-mixing loop
#: (j = (j + S[i] + key[i % klen]) & 255; swap(S[i], S[j])).  The x86 loop
#: also carries the key-index modulo arithmetic (compare/reset against the
#: key length) and byte<->word conversions around the swap, which is why
#: Figure 3 shows the 256-entry setup costing 28.5% of a 1 KB encryption.
RC4_MIX_ITER = mix(movl=7, movb=3.5, addl=3.5, andl=2.5, incl=1.5, cmpl=2,
                   jnz=1.5)

#: Per-call overhead of RC4_set_key / RC4.
RC4_CALL = mix(pushl=4, movl=8, popl=4, call=1, ret=1, cmpl=2, jnz=1)

#: RC4's kernel carries a serial chain through ``j`` and the swapped table
#: entries, partially hidden by the store-to-load forwarding of the small
#: hot table: measured CPI 0.57 versus ~0.49 at the throughput limit.
RC4_STALL = 1.17


class RC4:
    """RC4 with incremental :meth:`process` (encryption == decryption)."""

    name = "rc4"
    key_size = 16  # SSL's RC4-128 default; any 1..256-byte key is accepted

    def __init__(self, key: bytes):
        if not 1 <= len(key) <= 256:
            raise ValueError("RC4 key must be 1..256 bytes")
        s = list(range(256))
        j = 0
        klen = len(key)
        for i in range(256):
            j = (j + s[i] + key[i % klen]) & 0xFF
            s[i], s[j] = s[j], s[i]
        self._s = s
        self._i = 0
        self._j = 0
        charge(RC4_INIT_ITER, times=256, function="RC4_set_key")
        charge(RC4_MIX_ITER, times=256, function="RC4_set_key",
               stall=RC4_STALL)
        charge(RC4_CALL, function="RC4_set_key")

    def process(self, data: bytes) -> bytes:
        """Encrypt/decrypt ``data``, advancing the keystream."""
        if fastpath_enabled():
            n = len(data)
            s = self._s
            i, j = self._i, self._j
            ks = bytearray(n)
            for pos in range(n):
                i = (i + 1) & 0xFF
                si = s[i]
                j = (j + si) & 0xFF
                sj = s[j]
                s[i] = sj
                s[j] = si
                ks[pos] = s[(si + sj) & 0xFF]
            self._i, self._j = i, j
            if data:
                charge(RC4_BYTE, times=n, function="RC4", stall=RC4_STALL)
            charge(RC4_CALL, function="RC4")
            if not n:
                return b""
            return (int.from_bytes(data, "big")
                    ^ int.from_bytes(bytes(ks), "big")).to_bytes(n, "big")
        s = self._s
        i, j = self._i, self._j
        out = bytearray(len(data))
        for pos, byte in enumerate(data):
            i = (i + 1) & 0xFF
            j = (j + s[i]) & 0xFF
            s[i], s[j] = s[j], s[i]
            out[pos] = byte ^ s[(s[i] + s[j]) & 0xFF]
        self._i, self._j = i, j
        if data:
            charge(RC4_BYTE, times=len(data), function="RC4",
                   stall=RC4_STALL)
        charge(RC4_CALL, function="RC4")
        return bytes(out)
