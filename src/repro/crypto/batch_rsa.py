"""Batch RSA decryption (Fiat's batch RSA as applied to SSL by
Shacham-Boneh and Pateriya et al., arXiv:0907.4994).

The paper's Tables 2-3 show the RSA private-key decryption of the
ClientKeyExchange dominating handshake cost.  Batch RSA amortizes that
cost: a server holding ``b`` private keys that share one modulus ``n`` but
use distinct, pairwise coprime small public exponents (e.g. e=3 and e=5)
can decrypt ``b`` concurrent ciphertexts with *one* full-width private
exponentiation plus cheap small-exponent work:

1. **Upward percolation** over a binary product tree: each inner node with
   children carrying exponent products ``E_L, E_R`` and values ``V_L, V_R``
   computes ``V = V_L^{E_R} * V_R^{E_L} mod n``; the root then holds
   ``V = (prod m_i)^E`` with ``E = prod e_i``.
2. **Batched private op**: ``I = V^{E^{-1} mod phi(n)} = prod m_i mod n`` --
   the one expensive exponentiation, executed through the ordinary
   :class:`~repro.crypto.rsa.RsaPrivateKey` machinery so CRT and
   Brumley-Boneh blinding are reused unchanged.
3. **Downward percolation**: at each inner node the plaintext product ``I``
   splits via the CRT exponent ``X`` (``X = 0 mod E_L``, ``X = 1 mod E_R``):
   ``I_R = I^X / (V_L^{X/E_L} * V_R^{(X-1)/E_R})`` and ``I_L = I / I_R``.
   The leaves then hold the individual plaintext blocks ``m_i``.

Sharing a modulus between exponents is safe here because one party -- the
server -- knows all the private keys (the usual common-modulus attack needs
mutually distrusting key holders).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..bignum import (
    BigNum, ExponentNode, ExponentTree, MontgomeryContext,
    crt_split_exponent, mod_exp_int, mod_inverse,
)
from . import pkcs1
from .primes import generate_prime
from .rand import PseudoRandom
from .rsa import RsaError, RsaPrivateKey

#: The default public-exponent schedule: the first odd primes.  Distinct
#: primes are automatically pairwise coprime, and all stay tiny (a batch of
#: eight multiplies out to a 27-bit batch exponent).
DEFAULT_EXPONENTS = (3, 5, 7, 11, 13, 17, 19, 23)


class BatchRsaError(RsaError):
    """Structural misuse of the batch decryptor (not a padding failure)."""


class BatchRsaKeySet:
    """A family of RSA private keys sharing one modulus.

    Member ``i`` is an ordinary :class:`RsaPrivateKey` with public exponent
    ``e_i``; the set validates that all members share ``(n, p, q)`` and
    that the exponents are distinct, odd and pairwise coprime (checked by
    the :class:`~repro.bignum.product_tree.ExponentTree` it builds).
    """

    def __init__(self, members: Sequence[RsaPrivateKey]):
        if not members:
            raise BatchRsaError("key set needs at least one member")
        first = members[0]
        for key in members[1:]:
            if key.n != first.n or key.p != first.p or key.q != first.q:
                raise BatchRsaError("members must share the modulus")
        exponents = [key.e.to_int() for key in members]
        if len(set(exponents)) != len(exponents):
            raise BatchRsaError("member public exponents must be distinct")
        ExponentTree(exponents)  # validates odd + pairwise coprime
        # One Montgomery context per (modulus, reduction style) for the whole
        # family: every member adopts the first member's context cache.
        for key in members[1:]:
            key.share_montgomery(first)
        self.members = tuple(members)
        self.exponents = tuple(exponents)
        self.n = first.n
        self.size = first.size

    def __len__(self) -> int:
        return len(self.members)

    def member(self, index: int) -> RsaPrivateKey:
        return self.members[index]

    def index_for(self, key: RsaPrivateKey) -> int:
        """Batch slot of ``key`` (matched by identity, then by exponent)."""
        for i, member in enumerate(self.members):
            if member is key:
                return i
        e = key.e.to_int()
        for i, member in enumerate(self.members):
            if self.exponents[i] == e and member.n == key.n:
                return i
        raise BatchRsaError("key is not a member of this batch key set")

    def partition(self, shards: int) -> List["BatchRsaKeySet"]:
        """Split the family into ``shards`` disjoint sub-keysets.

        Members are dealt round-robin, so each shard keeps a valid (still
        pairwise coprime) exponent subset over the shared modulus.  A
        server farm gives each worker one shard: the worker's batch queue
        then only ever holds ciphertexts for its own member keys, and its
        handshake continuations stay worker-local by construction.  With
        one shard the result is equivalent to the full set.
        """
        if shards < 1:
            raise BatchRsaError("need at least one shard")
        if shards > len(self.members):
            raise BatchRsaError(
                f"cannot split {len(self.members)} member keys into "
                f"{shards} non-empty shards")
        groups: List[List[RsaPrivateKey]] = [[] for _ in range(shards)]
        for i, member in enumerate(self.members):
            groups[i % shards].append(member)
        return [BatchRsaKeySet(group) for group in groups]


def generate_batch_keys(bits: int, count: int,
                        exponents: Optional[Sequence[int]] = None,
                        rng: Optional[PseudoRandom] = None,
                        use_crt: bool = True) -> BatchRsaKeySet:
    """Generate ``count`` same-modulus keys with small distinct exponents.

    One prime pair serves every member; ``phi`` must be coprime to the
    *product* of the exponent schedule so each member's private exponent
    exists.
    """
    if exponents is None:
        exponents = DEFAULT_EXPONENTS[:count]
    if len(exponents) < count:
        raise BatchRsaError("not enough exponents for the requested count")
    exponents = tuple(exponents[:count])
    ExponentTree(exponents)  # validate before the expensive prime search
    if bits < 64 or bits % 2:
        raise BatchRsaError("key size must be an even number of bits >= 64")
    if rng is None:
        rng = PseudoRandom(b"batch-rsa-keygen")
    e_all = 1
    for e in exponents:
        e_all *= e
    half = bits // 2
    while True:
        p = generate_prime(half, rng)
        q = generate_prime(half, rng)
        if p == q:
            continue
        if p < q:
            p, q = q, p
        phi = (p - 1) * (q - 1)
        # gcd, not divisibility: a composite exponent (e.g. 9) can share
        # a factor with phi without dividing it, and then d would not
        # exist.
        if math.gcd(e_all, phi) != 1:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        members = []
        for e in exponents:
            d = pow(e, -1, phi)
            members.append(RsaPrivateKey(
                n=BigNum.from_int(n), e=BigNum.from_int(e),
                d=BigNum.from_int(d), p=BigNum.from_int(p),
                q=BigNum.from_int(q),
                dmp1=BigNum.from_int(d % (p - 1)),
                dmq1=BigNum.from_int(d % (q - 1)),
                iqmp=BigNum.from_int(pow(q, -1, p)),
                use_crt=use_crt, rng=rng))
        return BatchRsaKeySet(members)


class BatchRsaDecryptor:
    """Shacham-Boneh batch decryption over a :class:`BatchRsaKeySet`.

    ``blinding`` applies the standard Brumley-Boneh countermeasure to the
    batched exponentiation (inherited from the synthesized batch
    :class:`RsaPrivateKey`, so the blinding-pair squaring schedule matches
    the unbatched path).
    """

    def __init__(self, keyset: BatchRsaKeySet, blinding: bool = True):
        self.keyset = keyset
        self.blinding = blinding
        #: One synthesized private key per distinct sub-batch exponent
        #: product (partial batches use a subset of the exponents).
        self._batch_keys: Dict[Tuple[int, bool, str], RsaPrivateKey] = {}

    # -- helpers --------------------------------------------------------------
    def _ctx_n(self) -> MontgomeryContext:
        # The percolation shares the key family's full-width context (same
        # modulus, same reduction style) instead of building its own.
        return self.keyset.members[0]._ctx_n()

    def _mod_mul(self, a: BigNum, b: BigNum) -> BigNum:
        return a.mul(b).mod(self.keyset.n)

    def _batch_key(self, e_product: int) -> RsaPrivateKey:
        """The synthesized key for exponent ``E = prod e_i`` of a batch.

        ``d = E^{-1} mod phi(n)`` with the usual CRT halves; ``use_crt``
        follows the member keys (the simulator toggles it there).
        """
        proto = self.keyset.members[0]
        use_crt = proto.use_crt
        cache_key = (e_product, use_crt, proto.mont_reduction)
        key = self._batch_keys.get(cache_key)
        if key is None:
            p, q = proto.p.to_int(), proto.q.to_int()
            phi = (p - 1) * (q - 1)
            d = pow(e_product, -1, phi)
            key = RsaPrivateKey(
                n=proto.n, e=BigNum.from_int(e_product),
                d=BigNum.from_int(d), p=proto.p, q=proto.q,
                dmp1=BigNum.from_int(d % (p - 1)),
                dmq1=BigNum.from_int(d % (q - 1)),
                iqmp=proto.iqmp, use_crt=use_crt,
                blinding=self.blinding,
                mont_reduction=proto.mont_reduction)
            key.share_montgomery(proto)
            self._batch_keys[cache_key] = key
        return key

    # -- percolation phases --------------------------------------------------
    def _percolate_up(self, node: ExponentNode,
                      ciphertexts: Dict[int, BigNum],
                      values: Dict[int, BigNum]) -> BigNum:
        """Fill ``values[id(node)] = V_node``; returns the node's value."""
        if node.is_leaf:
            v = ciphertexts[node.index]
        else:
            mont = self._ctx_n()
            vl = self._percolate_up(node.left, ciphertexts, values)
            vr = self._percolate_up(node.right, ciphertexts, values)
            v = self._mod_mul(
                mod_exp_int(vl, node.right.product, self.keyset.n, mont),
                mod_exp_int(vr, node.left.product, self.keyset.n, mont))
        values[id(node)] = v
        return v

    def _percolate_down(self, node: ExponentNode, product: BigNum,
                        values: Dict[int, BigNum],
                        out: Dict[int, BigNum]) -> None:
        """Split ``product = prod m_i`` over ``node``'s leaves into ``out``."""
        if node.is_leaf:
            out[node.index] = product
            return
        n = self.keyset.n
        mont = self._ctx_n()
        el, er = node.left.product, node.right.product
        x = crt_split_exponent(el, er)
        denom = self._mod_mul(
            mod_exp_int(values[id(node.left)], x // el, n, mont),
            mod_exp_int(values[id(node.right)], (x - 1) // er, n, mont))
        i_right = self._mod_mul(mod_exp_int(product, x, n, mont),
                                mod_inverse(denom, n))
        i_left = self._mod_mul(product, mod_inverse(i_right, n))
        self._percolate_down(node.left, i_left, values, out)
        self._percolate_down(node.right, i_right, values, out)

    # -- public API ------------------------------------------------------------
    def raw_batch(self, items: Sequence[Tuple[int, BigNum]]) -> List[BigNum]:
        """Batched ``c_i^{d_i} mod n`` for ``(member_index, ciphertext)``
        pairs with distinct member indices; results follow input order.

        Equivalent to ``[keyset.member(i).raw_private(c) for i, c in
        items]`` at the cost of roughly one private exponentiation total.
        """
        if not items:
            return []
        indices = [i for i, _ in items]
        if len(set(indices)) != len(indices):
            raise BatchRsaError("batch members must have distinct indices")
        n = self.keyset.n
        for i, c in items:
            if not 0 <= i < len(self.keyset):
                raise BatchRsaError(f"no batch member with index {i}")
            if n.ucmp(c) <= 0:
                raise RsaError("input not reduced modulo n")

        if len(items) == 1:
            # A batch of one is the ordinary private operation.
            index, c = items[0]
            return [self.keyset.member(index).raw_private(c)]

        with perf.region("rsa_batch_decryption"):
            tree = ExponentTree([self.keyset.exponents[i] for i in indices])
            ciphertexts = {pos: c for pos, (_, c) in enumerate(items)}
            values: Dict[int, BigNum] = {}
            with perf.region("percolate_up"):
                root_v = self._percolate_up(tree.root, ciphertexts, values)
            # The single full-width exponentiation, with CRT + blinding
            # exactly as rsa.py performs them.
            with perf.region("computation"):
                root_m = self._batch_key(tree.root.product).raw_private(
                    root_v)
            out: Dict[int, BigNum] = {}
            with perf.region("percolate_down"):
                self._percolate_down(tree.root, root_m, values, out)
            return [out[pos] for pos in range(len(items))]

    def decrypt_batch(self, items: Sequence[Tuple[int, bytes]],
                      ) -> List[Optional[bytes]]:
        """Batched PKCS #1 v1.5 decryption.

        Returns one entry per input: the recovered message, or ``None``
        when that member's block fails PKCS #1 validation.  Per-item
        failures deliberately do not raise -- batch callers (the handshake
        queue) must treat them uniformly to avoid a Bleichenbacher oracle.
        """
        size = self.keyset.size
        converted: List[Tuple[int, BigNum]] = []
        for index, ciphertext in items:
            if len(ciphertext) != size:
                raise RsaError("ciphertext length mismatch")
            converted.append((index, BigNum.from_bytes(ciphertext)))
        blocks = self.raw_batch(converted)
        out: List[Optional[bytes]] = []
        for m in blocks:
            block = m.to_bytes(size)
            try:
                out.append(pkcs1.unpad_decrypt(block, size))
            except pkcs1.Pkcs1Error:
                out.append(None)
        return out
