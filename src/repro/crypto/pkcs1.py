"""PKCS #1 v1.5 block formatting (RFC 2313 / the PKCS #1 the paper cites).

Table 7's step 6 ("block parsing") is the recovery of the plaintext from the
decrypted block: the client padded the 48-byte pre-master secret into
``00 || 02 || nonzero-random PS || 00 || M`` before encrypting with the
server's public key, and the server must validate and strip that format.
Signatures use the type-1 block ``00 || 01 || FF..FF || 00 || DigestInfo``.
"""

from __future__ import annotations

from ..perf import charge, mix
from .rand import PseudoRandom

#: Fixed per-call cost of RSA_padding_check/add: buffer allocation, length
#: checks, the memcpy of the recovered payload, error-queue bookkeeping.
PADDING_CALL = mix(movl=60, movb=30, addl=12, cmpl=16, jnz=16, pushl=6,
                   popl=6, call=4, ret=4, xorl=4)

#: Scanning/producing one padding byte.
PADDING_BYTE = mix(movb=1, cmpl=1, jnz=0.5, incl=1)


class Pkcs1Error(ValueError):
    """Malformed PKCS #1 block."""


def pad_encrypt(message: bytes, k: int, rng: PseudoRandom) -> bytes:
    """EME-PKCS1-v1_5 encoding (block type 2) to ``k`` bytes."""
    if len(message) > k - 11:
        raise Pkcs1Error(f"message too long for {k}-byte modulus")
    ps_len = k - 3 - len(message)
    ps = bytearray()
    while len(ps) < ps_len:
        ps += bytes(b for b in rng.bytes(ps_len - len(ps)) if b != 0)
    charge(PADDING_CALL, function="block_parsing")
    charge(PADDING_BYTE, times=k, function="block_parsing")
    return b"\x00\x02" + bytes(ps) + b"\x00" + message


def unpad_decrypt(block: bytes, k: int) -> bytes:
    """EME-PKCS1-v1_5 decoding; raises :class:`Pkcs1Error` on bad format."""
    charge(PADDING_CALL, function="block_parsing")
    charge(PADDING_BYTE, times=k, function="block_parsing")
    if len(block) != k:
        raise Pkcs1Error("block length mismatch")
    if block[0] != 0x00 or block[1] != 0x02:
        raise Pkcs1Error("bad block type")
    try:
        sep = block.index(0x00, 2)
    except ValueError:
        raise Pkcs1Error("no padding separator") from None
    if sep < 10:  # at least 8 bytes of PS
        raise Pkcs1Error("padding string too short")
    return block[sep + 1:]


def pad_sign(payload: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 encoding (block type 1)."""
    if len(payload) > k - 11:
        raise Pkcs1Error(f"payload too long for {k}-byte modulus")
    ps = b"\xff" * (k - 3 - len(payload))
    charge(PADDING_CALL, function="block_parsing")
    charge(PADDING_BYTE, times=k, function="block_parsing")
    return b"\x00\x01" + ps + b"\x00" + payload


def unpad_verify(block: bytes, k: int) -> bytes:
    """EMSA-PKCS1-v1_5 decoding; raises :class:`Pkcs1Error` on bad format."""
    charge(PADDING_CALL, function="block_parsing")
    charge(PADDING_BYTE, times=k, function="block_parsing")
    if len(block) != k:
        raise Pkcs1Error("block length mismatch")
    if block[0] != 0x00 or block[1] != 0x01:
        raise Pkcs1Error("bad block type")
    i = 2
    while i < len(block) and block[i] == 0xFF:
        i += 1
    if i < 10 or i >= len(block) or block[i] != 0x00:
        raise Pkcs1Error("bad signature padding")
    return block[i + 1:]


#: DER DigestInfo prefixes (hash OID + encoding) for signature payloads.
DIGEST_INFO_PREFIX = {
    "md5": bytes.fromhex("3020300c06082a864886f70d020505000410"),
    "sha1": bytes.fromhex("3021300906052b0e03021a05000414"),
}


def digest_info(hash_name: str, digest: bytes) -> bytes:
    """Wrap a raw digest in its DER DigestInfo structure."""
    try:
        prefix = DIGEST_INFO_PREFIX[hash_name]
    except KeyError:
        raise Pkcs1Error(f"unsupported hash for signing: {hash_name}") from None
    return prefix + digest
