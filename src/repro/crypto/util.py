"""Small shared crypto utilities."""

from __future__ import annotations

from ..perf import charge, mix

#: Constant-time comparison: one pass over both buffers regardless of
#: where they differ (the discipline the Brumley-Boneh attack the paper
#: cites taught implementations to adopt for MAC/padding checks).
CT_COMPARE_BYTE = mix(movb=2, xorl=1, orl=1, incl=1, cmpl=0.5, jnz=0.5)


def ct_equal(a: bytes, b: bytes) -> bool:
    """Compare byte strings in constant time (length leaks, content not)."""
    charge(CT_COMPARE_BYTE, times=max(len(a), len(b), 1),
           function="CRYPTO_memcmp")
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
