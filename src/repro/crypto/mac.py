"""Message authentication codes: the SSLv3 keyed MAC and HMAC.

Every SSLv3 record carries a MAC computed as a nested keyed hash
(``hash(secret || pad2 || hash(secret || pad1 || seq || type || len ||
data))``, with 0x36/0x5c pads sized 48 bytes for MD5 and 40 for SHA-1).
This is the "mac" entry the paper's Table 2 shows during the finished
exchange and the hashing share that grows with file size in Figure 2.

HMAC (RFC 2104) is also provided: TLS 1.0 uses it, and the crypto engine
models in :mod:`repro.engines` treat MAC units generically.
"""

from __future__ import annotations

from typing import Callable, List, Tuple, Union

from .. import perf
from ..perf import charge, mix
from .md5 import MD5
from .sha1 import SHA1

HashFactory = Callable[[], Union[MD5, SHA1]]

#: Bookkeeping per MAC computation (sequence-number serialization, length
#: fields, buffer handling) beyond the hashing itself.
MAC_CALL = mix(movl=3_200, movb=500, addl=420, shrl=60, cmpl=500, jnz=500,
               pushl=160, popl=160, call=90, ret=90)

_PAD1 = 0x36
_PAD2 = 0x5C


def _pad_len(digest_size: int) -> int:
    # SSLv3: 48 pad bytes for MD5 (16-byte digest), 40 for SHA-1 (20-byte).
    return 48 if digest_size == 16 else 40


def ssl3_mac(hash_factory: HashFactory, secret: bytes, seq_num: int,
             content_type: int, data: bytes) -> bytes:
    """The SSLv3 record MAC."""
    if seq_num < 0 or seq_num >= 1 << 64:
        raise ValueError("sequence number must fit in 64 bits")
    probe = hash_factory()
    npad = _pad_len(probe.digest_size)
    charge(MAC_CALL, function="mac")

    inner = probe
    inner.update(secret)
    inner.update(bytes([_PAD1]) * npad)
    inner.update(seq_num.to_bytes(8, "big"))
    inner.update(bytes([content_type]))
    inner.update(len(data).to_bytes(2, "big"))
    inner.update(data)

    outer = hash_factory()
    outer.update(secret)
    outer.update(bytes([_PAD2]) * npad)
    outer.update(inner.digest())
    return outer.digest()


def tls_mac(hash_factory: HashFactory, secret: bytes, seq_num: int,
            content_type: int, version: int, data: bytes) -> bytes:
    """The TLS 1.0 record MAC: HMAC over seq || type || version || len ||
    fragment (RFC 2246 section 6.2.3.1)."""
    if seq_num < 0 or seq_num >= 1 << 64:
        raise ValueError("sequence number must fit in 64 bits")
    charge(MAC_CALL, function="mac")
    header = (seq_num.to_bytes(8, "big") + bytes([content_type])
              + version.to_bytes(2, "big") + len(data).to_bytes(2, "big"))
    return hmac(hash_factory, secret, header + data)


def hmac(hash_factory: HashFactory, key: bytes, message: bytes) -> bytes:
    """HMAC (RFC 2104) over the given hash."""
    probe = hash_factory()
    block_size = probe.block_size
    charge(MAC_CALL, function="HMAC")
    if len(key) > block_size:
        key = _digest(hash_factory, key)
    key = key.ljust(block_size, b"\x00")
    ipad = bytes(k ^ 0x36 for k in key)
    opad = bytes(k ^ 0x5C for k in key)
    inner = hash_factory()
    inner.update(ipad)
    inner.update(message)
    outer = hash_factory()
    outer.update(opad)
    outer.update(inner.digest())
    return outer.digest()


def _digest(hash_factory: HashFactory, data: bytes) -> bytes:
    h = hash_factory()
    h.update(data)
    return h.digest()


# ---------------------------------------------------------------------------
# Precomputed per-connection MAC contexts (fast path)
# ---------------------------------------------------------------------------
# The secret-dependent prefix of every record MAC (secret || pad for SSLv3,
# key XOR ipad/opad for HMAC) is constant for a connection, so its hash
# blocks can be compressed once and snapshotted.  Cloning a snapshot charges
# the same INIT as constructing a fresh context; the prefix updates' charges
# are captured once at construction (under a scratch profiler, so setup adds
# nothing to the live profile) and replayed verbatim per record.  Output
# bytes and the modeled charge sequence are therefore bit-identical to the
# plain ssl3_mac / tls_mac functions.

_ChargeLog = List[Tuple[object, float, str, str, float]]


class _RecordingProfiler(perf.Profiler):
    """Scratch profiler that logs every charge's arguments for replay."""

    def __init__(self):
        super().__init__()
        self.log: _ChargeLog = []

    def charge(self, m, times: float = 1.0, *, function: str = "<anon>",
               module: str = "libcrypto", stall: float = 1.0) -> float:
        self.log.append((m, times, function, module, stall))
        return super().charge(m, times, function=function, module=module,
                              stall=stall)


def _replay(log: _ChargeLog) -> None:
    for m, times, function, module, stall in log:
        charge(m, times, function=function, module=module, stall=stall)


class Ssl3MacContext:
    """Per-connection SSLv3 MAC with precomputed secret||pad prefixes."""

    def __init__(self, hash_factory: HashFactory, secret: bytes):
        self.hash_factory = hash_factory
        self.secret = secret
        rec = _RecordingProfiler()
        with perf.activate(rec):
            inner = hash_factory()
            npad = _pad_len(inner.digest_size)
            mark = len(rec.log)          # INIT replayed by copy(), not here
            inner.update(secret)
            inner.update(bytes([_PAD1]) * npad)
            self._inner_log = rec.log[mark:]
            outer = hash_factory()
            mark = len(rec.log)
            outer.update(secret)
            outer.update(bytes([_PAD2]) * npad)
            self._outer_log = rec.log[mark:]
        self._inner_proto = inner
        self._outer_proto = outer

    def mac(self, seq_num: int, content_type: int, data: bytes) -> bytes:
        if seq_num < 0 or seq_num >= 1 << 64:
            raise ValueError("sequence number must fit in 64 bits")
        inner = self._inner_proto.copy()       # charges INIT, like factory()
        charge(MAC_CALL, function="mac")
        _replay(self._inner_log)
        inner.update(seq_num.to_bytes(8, "big"))
        inner.update(bytes([content_type]))
        inner.update(len(data).to_bytes(2, "big"))
        inner.update(data)
        outer = self._outer_proto.copy()
        _replay(self._outer_log)
        outer.update(inner.digest())
        return outer.digest()


class TlsMacContext:
    """Per-connection TLS 1.0 HMAC with precomputed ipad/opad states."""

    def __init__(self, hash_factory: HashFactory, secret: bytes):
        self.hash_factory = hash_factory
        self.secret = secret
        rec = _RecordingProfiler()
        with perf.activate(rec):
            # Mirror hmac()'s faithful body so the recorded charges line up
            # call for call (probe INIT, HMAC bookkeeping, long-key digest).
            probe = hash_factory()
            block_size = probe.block_size
            charge(MAC_CALL, function="HMAC")
            key = secret
            if len(key) > block_size:
                key = _digest(hash_factory, key)
            key = key.ljust(block_size, b"\x00")
            self._pre_log = list(rec.log)
            inner = hash_factory()
            mark = len(rec.log)
            inner.update(bytes(k ^ 0x36 for k in key))
            self._inner_log = rec.log[mark:]
            outer = hash_factory()
            mark = len(rec.log)
            outer.update(bytes(k ^ 0x5C for k in key))
            self._outer_log = rec.log[mark:]
        self._inner_proto = inner
        self._outer_proto = outer

    def mac(self, seq_num: int, content_type: int, version: int,
            data: bytes) -> bytes:
        if seq_num < 0 or seq_num >= 1 << 64:
            raise ValueError("sequence number must fit in 64 bits")
        charge(MAC_CALL, function="mac")
        _replay(self._pre_log)
        header = (seq_num.to_bytes(8, "big") + bytes([content_type])
                  + version.to_bytes(2, "big") + len(data).to_bytes(2, "big"))
        inner = self._inner_proto.copy()
        _replay(self._inner_log)
        inner.update(header + data)
        outer = self._outer_proto.copy()
        _replay(self._outer_log)
        outer.update(inner.digest())
        return outer.digest()
