"""The standalone crypto benchmark (paper setup 3.3).

"The crypto operations are the main components in the SSL protocol
processing.  To study these operations, we developed a crypto benchmark,
which essentially makes various function calls into the crypto library."

This module is that benchmark: it drives each instrumented primitive under
a fresh profiler and extracts the quantities the paper reports --

* per-algorithm CPI, path length (instructions/byte) and throughput
  (Table 11),
* the top-ten instruction mix (Table 12),
* key-setup share versus data size (Figure 3),
* the per-phase block anatomies of AES / DES / 3DES (Tables 5-6),
* the MD5 / SHA-1 init/update/final split (Table 10),
* the six-step RSA decryption breakdown and flat function profile
  (Tables 7-8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import perf
from ..perf import CpuModel, PENTIUM4, Profiler
from . import aes as aes_mod
from . import des as des_mod
from .aes import AES
from .des import DES, TripleDES
from .md5 import MD5
from .modes import CBC
from .rand import PseudoRandom
from .rc4 import RC4
from .rsa import RsaPrivateKey, generate_key
from .sha1 import SHA1
from .sha256 import SHA256

#: The seven kernels of Table 11, in the paper's column order.
ALGORITHMS = ("aes", "des", "3des", "rc4", "rsa", "md5", "sha1")


# ---------------------------------------------------------------------------
# Generic driver
# ---------------------------------------------------------------------------

@dataclass
class Measurement:
    """One profiled run of a primitive over ``nbytes`` of data."""

    name: str
    nbytes: int
    cycles: float
    instructions: float
    key_setup_cycles: float = 0.0
    profiler: Optional[Profiler] = None

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def path_length(self) -> float:
        """Instructions per byte (Table 11)."""
        return self.instructions / self.nbytes if self.nbytes else 0.0

    def throughput_mbps(self, cpu: CpuModel = PENTIUM4) -> float:
        return cpu.throughput_mbps(self.nbytes, self.cycles)

    @property
    def key_setup_share(self) -> float:
        """Fraction of total time spent in key setup (Figure 3)."""
        return self.key_setup_cycles / self.cycles if self.cycles else 0.0


_CIPHER_SPECS = {
    "aes": (AES, 16, 16), "aes256": (AES, 32, 16),
    "des": (DES, 8, 8), "3des": (TripleDES, 24, 8),
    "rc4": (RC4, 16, 0),
}


def _fresh_cipher(name: str, seed: bytes = b"bench-key"):
    """Instantiate a cipher from pre-generated key material.

    Key/IV bytes are drawn *before* any profiling so that the PRNG's hash
    work never pollutes a cipher measurement; only the cipher's own key
    setup is charged to the caller's profiler.
    """
    try:
        cls, key_len, iv_len = _CIPHER_SPECS[name]
    except KeyError:
        raise KeyError(f"unknown cipher {name!r}") from None
    rng = PseudoRandom(seed)
    key = rng.bytes(key_len)
    iv = rng.bytes(iv_len)
    if cls is RC4:
        return lambda: RC4(key)
    return lambda: CBC(cls(key), iv)


_KEY_SETUP_FUNCS = ("AES_set_encrypt_key", "DES_set_key", "RC4_set_key")


def measure_cipher(name: str, nbytes: int = 1024,
                   cpu: CpuModel = PENTIUM4) -> Measurement:
    """Key setup + encryption of ``nbytes`` (one call, like openssl speed)."""
    if nbytes <= 0 or nbytes % 16:
        raise ValueError("data size must be a positive multiple of 16")
    data = bytes(range(256)) * (nbytes // 256 + 1)
    data = data[:nbytes]
    make_cipher = _fresh_cipher(name)
    p = Profiler(cpu)
    with perf.activate(p):
        cipher = make_cipher()
        if isinstance(cipher, RC4):
            out = cipher.process(data)
        else:
            out = cipher.encrypt(data)
    assert len(out) == nbytes
    key_setup = sum(p.functions[f].cycles for f in _KEY_SETUP_FUNCS
                    if f in p.functions)
    return Measurement(name=name, nbytes=nbytes, cycles=p.total_cycles(),
                       instructions=p.total_instructions(),
                       key_setup_cycles=key_setup, profiler=p)


def measure_hash(name: str, nbytes: int = 1024,
                 cpu: CpuModel = PENTIUM4) -> Measurement:
    """One digest over ``nbytes`` (init + update + final)."""
    factory = {"md5": MD5, "sha1": SHA1, "sha256": SHA256}[name]
    data = bytes(nbytes)
    p = Profiler(cpu)
    with perf.activate(p):
        h = factory()
        h.update(data)
        h.digest()
    return Measurement(name=name, nbytes=nbytes, cycles=p.total_cycles(),
                       instructions=p.total_instructions(), profiler=p)


def hash_phase_breakdown(name: str, nbytes: int = 1024,
                         ) -> List[Tuple[str, float]]:
    """Table 10: (phase, cycles) for Init / Update / Final."""
    m = measure_hash(name, nbytes)
    prefix = {"md5": "MD5", "sha1": "SHA1", "sha256": "SHA256"}[name]
    rows = []
    for phase in ("Init", "Update", "Final"):
        fn = f"{prefix}_{phase}"
        cycles = m.profiler.functions[fn].cycles if fn in \
            m.profiler.functions else 0.0
        rows.append((phase, cycles))
    return rows


def measure_rsa(bits: int = 1024, use_crt: bool = True,
                key: Optional[RsaPrivateKey] = None,
                warm: bool = True,
                mont_reduction: str = "interleaved",
                cpu: CpuModel = PENTIUM4) -> Measurement:
    """One RSA private decryption of a PKCS#1 block (Tables 7, 8).

    ``warm`` performs one unprofiled decryption first so that one-time
    costs (Montgomery contexts, blinding setup) do not distort the
    breakdown, mirroring the paper's steady-state measurement.
    """
    if key is None:
        key = generate_key(bits, rng=PseudoRandom(b"bench-rsa-%d"
                                                  % bits))
    key.use_crt = use_crt
    key.mont_reduction = mont_reduction
    rng = PseudoRandom(b"bench-rsa-msg")
    ciphertext = key.public().encrypt(b"\x03\x00" + rng.bytes(46), rng)
    if warm:
        key.decrypt(ciphertext)
    p = Profiler(cpu)
    with perf.activate(p):
        key.decrypt(ciphertext)
    return Measurement(name="rsa", nbytes=key.size,
                       cycles=p.region_cycles("rsa_private_decryption"),
                       instructions=p.total_instructions(), profiler=p)


RSA_STEPS = ("init", "data_to_bn", "blinding", "computation", "bn_to_data",
             "block_parsing")


def rsa_step_breakdown(measurement: Measurement) -> List[Tuple[str, float]]:
    """Table 7 rows from a :func:`measure_rsa` result."""
    p = measurement.profiler
    return [(step, p.region_cycles(f"rsa_private_decryption/{step}"))
            for step in RSA_STEPS]


# ---------------------------------------------------------------------------
# Block-operation anatomies (Tables 5, 6) -- from the phase constants,
# cross-checked against executed blocks by the test suite.
# ---------------------------------------------------------------------------

def aes_block_breakdown(key_bits: int = 128,
                        cpu: CpuModel = PENTIUM4) -> List[Tuple[str, float]]:
    """Table 5: (phase, cycles) for one AES block operation."""
    rounds = {128: 10, 192: 12, 256: 14}[key_bits]
    return [
        ("map/initial add round key",
         cpu.cycles(aes_mod.AES_INIT, aes_mod.AES_STALL)),
        ("main rounds",
         cpu.cycles(aes_mod.AES_ROUND, aes_mod.AES_STALL) * (rounds - 1)),
        ("last round/map to bytes",
         cpu.cycles(aes_mod.AES_FINAL, aes_mod.AES_STALL)),
    ]


def des_block_breakdown(variant: str = "des",
                        cpu: CpuModel = PENTIUM4) -> List[Tuple[str, float]]:
    """Table 6: (phase, cycles) for one DES or 3DES block operation."""
    nrounds = {"des": 16, "3des": 48}[variant]
    return [
        ("IP", cpu.cycles(des_mod.DES_IP, des_mod.DES_STALL)),
        ("substitution",
         cpu.cycles(des_mod.DES_ROUND, des_mod.DES_STALL) * nrounds),
        ("FP", cpu.cycles(des_mod.DES_FP, des_mod.DES_STALL)),
    ]


# ---------------------------------------------------------------------------
# Tables 11 and 12
# ---------------------------------------------------------------------------

@dataclass
class Characteristics:
    """One column of Table 11."""

    name: str
    cpi: float
    path_length: float
    throughput_mbps: float


def characteristics(nbytes: int = 8192, rsa_bits: int = 1024,
                    cpu: CpuModel = PENTIUM4) -> Dict[str, Characteristics]:
    """Table 11 for all seven kernels.

    Bulk kernels are measured over ``nbytes``; RSA over one private
    operation (its throughput is bytes-of-modulus per operation, which is
    how the paper's 0.036 MB/s arises).
    """
    out: Dict[str, Characteristics] = {}
    for name in ("aes", "des", "3des", "rc4"):
        m = measure_cipher(name, nbytes, cpu=cpu)
        out[name] = Characteristics(name, m.cpi, m.path_length,
                                    m.throughput_mbps(cpu))
    m = measure_rsa(rsa_bits, cpu=cpu)
    out["rsa"] = Characteristics("rsa", m.cpi, m.instructions / m.nbytes,
                                 m.throughput_mbps(cpu))
    for name in ("md5", "sha1"):
        m = measure_hash(name, nbytes, cpu=cpu)
        out[name] = Characteristics(name, m.cpi, m.path_length,
                                    m.throughput_mbps(cpu))
    return out


def instruction_mix(name: str, nbytes: int = 4096,
                    top: int = 10) -> List[Tuple[str, float]]:
    """Table 12: the top instructions of one kernel, as share of total."""
    if name in ("aes", "des", "3des", "rc4"):
        m = measure_cipher(name, nbytes)
    elif name in ("md5", "sha1", "sha256"):
        m = measure_hash(name, nbytes)
    elif name == "rsa":
        m = measure_rsa(512)
    else:
        raise KeyError(f"unknown kernel {name!r}")
    return m.profiler.global_mix.snapshot().top(top)


def key_setup_shares(sizes: Tuple[int, ...] = (1024, 2048, 4096, 8192,
                                               16384, 32768),
                     ) -> Dict[str, List[Tuple[int, float]]]:
    """Figure 3: key-setup share of encryption time versus data size."""
    out: Dict[str, List[Tuple[int, float]]] = {}
    for name in ("aes", "des", "3des", "rc4"):
        out[name] = [(size, measure_cipher(name, size).key_setup_share)
                     for size in sizes]
    return out
