"""Server-side SSLv3 state machine, instrumented per the paper's anatomy.

Section 4.2 partitions the server's handshake into ten steps; this class
executes them inside profiler regions named after Table 2's rows::

    init                 step 0  (constructor: states, finished-MAC init)
    get_client_hello     step 1  (version/session checks, cipher choice)
    send_server_hello    step 2  (server random, hello message)
    send_server_cert     step 3  (certificate chain)
    send_server_done     step 4  (+ server_flush / BIO control)
    get_client_kx        step 5  (RSA private decryption of the pre-master,
                                  master-secret generation, cert-verify MAC)
    get_finished         step 6  (key block, finished hashes, reading the
                                  first encrypted record)
    send_cipher_spec     step 7
    send_finished        step 8  (SRVR finished hashes, first encryption)
    server_flush         step 9  (flush, free, zeroize)

RSA's own six-step anatomy (Table 7) nests inside ``get_client_kx`` via
:meth:`repro.crypto.rsa.RsaPrivateKey.decrypt`.

Responses are queued as deferred actions and executed *after* the record
that triggered them has been fully dispatched, so that each step lands in
its own top-level region exactly as the paper's rdtsc instrumentation
delimited them.
"""

from __future__ import annotations

import enum
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import perf
from ..crypto.batch_rsa import BatchRsaDecryptor, BatchRsaKeySet
from ..crypto.rand import PseudoRandom
from ..crypto.rsa import RsaError, RsaPrivateKey
from . import kdf
from .ciphersuites import ALL_SUITES, BY_ID, CipherSuite
from .connection import SSL_CLEANUP, SslConnection
from .errors import HandshakeFailure, SslError, UnexpectedMessage
from ..bignum import BigNum
from ..crypto.dh import DhKeyPair, DhParams
from ..crypto.md5 import MD5
from ..crypto.sha1 import SHA1
from .codec import ByteReader
from .handshake import (
    ClientHello, ClientKeyExchange, Finished, HandshakeType, HelloRequest,
    NewSessionTicket, ServerHello, ServerHelloDone, ServerKeyExchange,
    CertificateMsg,
)
from ..perf import charge, mix
from .record import ContentType
from .session import SessionCache, SslSession
from .ticket import SESSION_TICKET_EXT, TicketKeyRing, TicketState
from .x509 import Certificate

PRE_MASTER_LENGTH = 48

# ---------------------------------------------------------------------------
# Modelled libssl bookkeeping (the non-crypto share of each Table 2 step).
# The paper's steps carry substantial non-crypto time -- e.g. step 0 is 348k
# cycles of which only 29k is crypto -- coming from SSL structure allocation,
# session-cache handling and the handshake state machine.  Our compact Python
# state machine does not naturally incur those costs, so they are charged as
# explicit mixes calibrated against Table 2's (total - crypto) residues.
# ---------------------------------------------------------------------------

#: SSL_new/SSL_accept setup: allocating and zeroing the SSL, SSL3_STATE,
#: buffer and BIO structures (step 0 residue: ~320k cycles).
SSL_NEW = mix(movl=380_000, movb=100_000, xorl=80_000, addl=30_000,
              cmpl=25_000, jnz=25_000, pushl=8_000, popl=8_000,
              call=5_000, ret=5_000)

#: Per-handshake-message state-machine and buffer work
#: (ssl3_get_message / ssl3_send handshake framing).
HS_PROC = mix(movl=14_000, movb=3_000, addl=2_000, cmpl=2_500, jnz=2_500,
              pushl=400, popl=400, call=250, ret=250)

#: ClientHello processing residue: session-id lookup, cipher-list
#: intersection, compression negotiation (step 1 residue: ~125k cycles).
CLIENT_HELLO_PROC = mix(movl=150_000, movb=30_000, cmpl=30_000, jnz=25_000,
                        addl=12_000, pushl=2_500, popl=2_500, call=1_500,
                        ret=1_500)

#: ClientKeyExchange processing residue: EVP/RSA wrapper dispatch and
#: temporary buffer management (step 5 residue: ~165k cycles).
CLIENT_KX_PROC = mix(movl=200_000, movb=40_000, cmpl=35_000, jnz=30_000,
                     addl=15_000, pushl=3_500, popl=3_500, call=2_000,
                     ret=2_000)

#: ChangeCipherSpec processing residue: EVP cipher-context setup for both
#: directions (step 6a residue: ~65k cycles).
CCS_PROC = mix(movl=80_000, movb=15_000, cmpl=13_000, jnz=12_000,
               addl=6_000, pushl=1_500, popl=1_500, call=900, ret=900)


def _charge_split(m, function: str) -> None:
    """Charge a modelled mix 30% to libssl, 70% to libc ('other').

    Oprofile attributes the allocation/zeroing under SSL setup mostly to
    libc (Table 1 shows libssl itself at only 0.82%); the split keeps the
    module breakdown faithful while the step regions still see the full
    cost."""
    charge(m.scaled(0.22), function=function, module="libssl")
    charge(m.scaled(0.78), function=function + "@libc", module="other")


class HandshakeBatcher:
    """Batches concurrent ClientKeyExchange decryptions across servers.

    Servers sharing a :class:`~repro.crypto.batch_rsa.BatchRsaKeySet`
    submit their RSA pre-master ciphertexts here instead of decrypting
    inline; once one ciphertext per distinct member key is queued (or a
    virtual-time timeout fires) the queue is drained through one
    Shacham-Boneh batched private operation and every suspended handshake
    is resumed from its continuation.  Time is virtual: the driving loop
    (the web-server simulator's transaction interleaver) calls
    :meth:`tick` once per scheduling round.
    """

    def __init__(self, keyset: BatchRsaKeySet,
                 batch_size: Optional[int] = None,
                 timeout_ticks: int = 8,
                 blinding: bool = True):
        self.keyset = keyset
        self.decryptor = BatchRsaDecryptor(keyset, blinding=blinding)
        self.batch_size = min(batch_size or len(keyset), len(keyset))
        if self.batch_size < 1:
            raise ValueError("batch size must be >= 1")
        self.timeout_ticks = timeout_ticks
        self._queue: List[Tuple[int, bytes, Callable[[Optional[bytes]],
                                                     None]]] = []
        self._now = 0
        self._deadline: Optional[int] = None
        #: Batch-size histogram: {size: count of flushed sub-batches}.
        self.batches: Dict[int, int] = {}
        self.ops_submitted = 0
        #: Flushes that drained a non-empty queue, i.e. resumed at least
        #: one suspended handshake.  The event scheduler
        #: (:mod:`repro.webserver.events`) watches this counter to learn
        #: when parked transactions may have become runnable; a deadline
        #: tick on an empty queue resumes nothing and does not count.
        self.flushes = 0

    # -- queue state ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    def _ready(self) -> bool:
        """A full batch is formable: ``batch_size`` distinct member keys."""
        return len({i for i, _, _ in self._queue}) >= self.batch_size

    # -- submission / clocking ------------------------------------------------
    def submit(self, key: RsaPrivateKey, ciphertext: bytes,
               resume: Callable[[Optional[bytes]], None]) -> None:
        """Queue one decryption; ``resume`` is called with the recovered
        pre-master block (or ``None`` on padding failure) at flush time."""
        index = self.keyset.index_for(key)
        if len(ciphertext) != self.keyset.size:
            # Structurally unbatchable; resolve immediately and uniformly
            # (the caller substitutes a random pre-master, so the failure
            # still surfaces only at Finished).
            resume(None)
            return
        self._queue.append((index, ciphertext, resume))
        self.ops_submitted += 1
        if self._deadline is None:
            self._deadline = self._now + self.timeout_ticks

    @property
    def ready(self) -> bool:
        """A full batch is waiting.  Submission never flushes inline --
        the submitting server is still inside its ClientKeyExchange step
        region, and a flush resumes *other* connections whose work must
        not be attributed there.  Drivers (``SslServer._after_receive``,
        the simulator loop) flush once dispatch has unwound."""
        return self._ready()

    def tick(self, ticks: int = 1) -> None:
        """Advance virtual time; flush any batch past its deadline."""
        self._now += ticks
        if self._deadline is not None and self._now >= self._deadline:
            self.flush()

    # -- the batched private operation ---------------------------------------
    def flush(self) -> None:
        """Drain the queue through batched private ops and resume everyone.

        Entries sharing a member key cannot share a batch (the algorithm
        needs pairwise coprime exponents), so the queue is drained in
        greedy rounds of distinct members.
        """
        self._deadline = None
        if self._queue:
            self.flushes += 1
        while self._queue:
            sub: List[Tuple[int, bytes, Callable]] = []
            taken = set()
            rest = []
            for entry in self._queue:
                if entry[0] in taken or len(sub) >= self.batch_size:
                    rest.append(entry)
                else:
                    taken.add(entry[0])
                    sub.append(entry)
            self._queue = rest
            self.batches[len(sub)] = self.batches.get(len(sub), 0) + 1
            # The decrypt itself lands in the Table 2 step region the
            # paper charges it to; each resumed handshake then opens its
            # own get_client_kx region for the non-RSA remainder.
            with perf.region("get_client_kx"):
                results = self.decryptor.decrypt_batch(
                    [(i, c) for i, c, _ in sub])
            for (_, _, resume), pre_master in zip(sub, results):
                try:
                    resume(pre_master)
                except SslError:
                    # One handshake failing (e.g. at Finished, which is
                    # exactly where the Bleichenbacher countermeasure
                    # steers bad ciphertexts) must not strand the rest
                    # of the batch: the failed connection has already
                    # sent its alert and torn down inside its own
                    # _alert_guard.
                    pass


class ServerHandshakeState(enum.Enum):
    WAIT_CLIENT_HELLO = enum.auto()
    WAIT_CLIENT_KX = enum.auto()
    WAIT_FINISHED = enum.auto()          # full handshake: client finished
    WAIT_FINISHED_RESUMED = enum.auto()  # abbreviated handshake
    CONNECTED = enum.auto()


class SslServer(SslConnection):
    """One server-side connection endpoint."""

    is_server = True

    def __init__(self, private_key: RsaPrivateKey, certificate: Certificate,
                 suites: Sequence[CipherSuite] = (),
                 session_cache: Optional[SessionCache] = None,
                 rng: Optional[PseudoRandom] = None,
                 max_version: int = 0x0301,
                 cert_chain: Sequence[Certificate] = (),
                 allow_renegotiation: bool = True,
                 batcher: Optional[HandshakeBatcher] = None,
                 clock: Optional[Callable[[], float]] = None,
                 session_lifetime: Optional[float] = None,
                 offload=None,
                 ticket_keys: Optional[TicketKeyRing] = None,
                 suite_policy: Optional[Callable[
                     [Sequence[int]], Optional[Sequence[CipherSuite]]]]
                 = None):
        """``cert_chain``: intermediate/root certificates sent after the
        leaf (the paper's server used a single self-signed certificate).
        ``batcher``: a shared :class:`HandshakeBatcher`; when set, the RSA
        ClientKeyExchange decrypt is deferred into its queue and the
        handshake suspends until the batch flushes.  ``clock``: virtual
        wall-clock in seconds (e.g. ``profiler.seconds``); when set, cache
        lookups enforce session expiry and minted sessions are stamped
        with their creation time.  ``session_lifetime`` overrides the
        OpenSSL-default 300 s lifetime of minted sessions.  ``offload``:
        an :class:`repro.engines.offload.OffloadPool` serving this
        server's record crypto and RSA private-key ops (worker-local in
        a farm); ``None`` keeps everything in software.  ``ticket_keys``:
        a :class:`~repro.ssl.ticket.TicketKeyRing`; when set, the server
        mints RFC-5077-style stateless session tickets for clients that
        advertise support and accepts offered tickets for resumption
        without consulting (or populating) the id cache.
        ``suite_policy``: selection hook called with the client's offered
        suite ids at ServerHello time; returning a suite sequence
        replaces the server's preference order for this handshake
        (returning ``None`` keeps it), which is how an overload
        downgrade engine steers selection without reconfiguring the
        server.  Pure policy -- the hook must not charge cycles."""
        with perf.region("init"):
            super().__init__()
            self._key = private_key
            self._cert = certificate
            self._chain = tuple(cert_chain)
            self._suites = tuple(suites) if suites else tuple(
                s for s in ALL_SUITES if s.cipher != "null")
            self._suite_policy = suite_policy
            self._cache = session_cache
            self._rng = rng if rng is not None else PseudoRandom(b"server")
            self._state = ServerHandshakeState.WAIT_CLIENT_HELLO
            self._max_version = max_version
            self._client_version = 0x0300
            self._pending: List[Callable[[], None]] = []
            self._session_id = b""
            self._pre_master: Optional[bytes] = None
            self._dh_keypair: Optional[DhKeyPair] = None
            self._allow_renegotiation = allow_renegotiation
            self._batcher = batcher
            self._offload_pool = offload
            self._clock = clock
            self._session_lifetime = session_lifetime
            self._kx_waiting = False
            self._held_records: List[tuple] = []
            self.renegotiations = 0
            self._client_states = None
            self._server_states = None
            self.resumed = False
            self._ticket_keys = ticket_keys
            self._client_wants_ticket = False
            self._ticket_state: Optional[TicketState] = None
            self._minted_ticket = False
            self.resumed_via_ticket = False
            self.tickets_minted = 0
            self.tickets_accepted = 0
            self.tickets_rejected = 0
            self.tickets_renewed = 0
            _charge_split(SSL_NEW, "SSL_new")
            self._init_handshake_hashes()

    # -- record routing ---------------------------------------------------
    def _region_for_record(self, content_type: int) -> str:
        if content_type == ContentType.CHANGE_CIPHER_SPEC:
            return "get_finished"
        if content_type == ContentType.HANDSHAKE:
            return {
                ServerHandshakeState.WAIT_CLIENT_HELLO: "get_client_hello",
                ServerHandshakeState.WAIT_CLIENT_KX: "get_client_kx",
                ServerHandshakeState.WAIT_FINISHED: "get_finished",
                ServerHandshakeState.WAIT_FINISHED_RESUMED: "get_finished",
                ServerHandshakeState.CONNECTED: "renegotiation",
            }.get(self._state, "post_handshake")
        if content_type == ContentType.APPLICATION_DATA:
            return "bulk_transfer"
        if content_type == ContentType.V2_CLIENT_HELLO:
            return "get_client_hello"
        return "alert"

    def receive(self, data: bytes) -> None:
        super().receive(data)
        while self._pending:
            action = self._pending.pop(0)
            action()

    # -- handshake dispatch ---------------------------------------------------
    def _handle_handshake(self, msg_type: int, body: bytes,
                          raw: bytes) -> None:
        _charge_split(HS_PROC, "ssl3_get_message")
        if msg_type == HandshakeType.CLIENT_HELLO:
            if self._state is ServerHandshakeState.CONNECTED:
                # Client-initiated renegotiation: a fresh handshake runs
                # over the still-encrypted connection.
                if not self._allow_renegotiation:
                    # Decline politely with the warning-level alert and
                    # keep the connection up (RFC 2246 erratum practice).
                    from .errors import AlertDescription, AlertLevel
                    self._send_alert(AlertLevel.WARNING,
                                     AlertDescription.NO_RENEGOTIATION)
                    return
                self._begin_renegotiation()
            elif self._state is not ServerHandshakeState.WAIT_CLIENT_HELLO:
                raise UnexpectedMessage("client_hello out of order")
            self._update_handshake_hashes(raw)
            self._process_client_hello(ClientHello.parse(body))
        elif msg_type == HandshakeType.CLIENT_KEY_EXCHANGE:
            if self._state is not ServerHandshakeState.WAIT_CLIENT_KX:
                raise UnexpectedMessage("client_key_exchange out of order")
            self._update_handshake_hashes(raw)
            self._process_client_kx(body)
        elif msg_type == HandshakeType.FINISHED:
            if self._state not in (
                    ServerHandshakeState.WAIT_FINISHED,
                    ServerHandshakeState.WAIT_FINISHED_RESUMED):
                raise UnexpectedMessage("finished out of order")
            self._process_client_finished(Finished.parse(body), raw)
        else:
            raise UnexpectedMessage(
                f"server cannot handle {HandshakeType.name(msg_type)}")

    def _handle_v2_hello(self, payload: bytes) -> None:
        """Accept an SSLv2-compatibility CLIENT-HELLO (first message only).

        The v2 message bytes (not the record header) enter the handshake
        hashes, per the SSLv3 specification's compatibility appendix.
        """
        from .handshake import parse_v2_client_hello
        if self._state is not ServerHandshakeState.WAIT_CLIENT_HELLO or \
                self.renegotiations:
            raise UnexpectedMessage("v2 hello only as the first message")
        _charge_split(HS_PROC, "ssl23_get_client_hello")
        hello = parse_v2_client_hello(payload)
        self._update_handshake_hashes(payload)
        self._process_client_hello(hello)

    # -- step 1: client hello ------------------------------------------------------
    def _process_client_hello(self, hello: ClientHello) -> None:
        if hello.version < 0x0300:
            raise HandshakeFailure("client does not support SSLv3")
        if 0 not in hello.compression_methods:
            raise HandshakeFailure("no common compression method")
        self._client_version = hello.version
        self._set_version(min(hello.version, self._max_version))
        _charge_split(CLIENT_HELLO_PROC, "ssl3_get_client_hello")
        suite = self._choose_suite(hello.cipher_suites)
        self.cipher_suite = suite
        self.client_random = hello.client_random

        offered_ticket = hello.extension(SESSION_TICKET_EXT)
        self._client_wants_ticket = (self._ticket_keys is not None
                                     and offered_ticket is not None)

        ticket_state = None
        renew = False
        if (self._ticket_keys is not None and offered_ticket
                and hello.session_id):
            # A non-empty SessionTicket extension carries the sealed
            # resumption state; the (random) session id alongside it is
            # the RFC 5077 acceptance handle -- echoing it back signals
            # the ticket was taken.  Any open failure silently falls back
            # to a full handshake; tickets are never fatal.
            now = self._clock() if self._clock is not None else 0.0
            with perf.region("session_ticket"):
                ticket_state, renew = self._ticket_keys.open(
                    offered_ticket, now)
            if ticket_state is not None and \
                    ticket_state.cipher_suite_id not in hello.cipher_suites:
                ticket_state = None
            if ticket_state is None:
                self.tickets_rejected += 1

        session = None
        if self._cache is not None and hello.session_id \
                and not offered_ticket:
            # The virtual clock (when modelled) rides into the lookup so
            # expired sessions miss instead of resuming forever.  A hello
            # that offered a ticket skips the cache entirely: its session
            # id is the client's random acceptance handle, not a cached
            # id, and probing the cache with it would pollute the miss
            # counters.
            now = self._clock() if self._clock is not None else None
            session = self._cache.get(hello.session_id, now)
            if session is not None and session.cipher_suite_id not in \
                    hello.cipher_suites:
                session = None

        if ticket_state is not None:
            # Stateless abbreviated handshake: everything the server
            # needs came out of the ticket -- no lookup, no cache entry.
            self.resumed = True
            self.resumed_via_ticket = True
            self.tickets_accepted += 1
            self._session_id = hello.session_id
            self.cipher_suite = BY_ID[ticket_state.cipher_suite_id]
            self.master_secret = ticket_state.master_secret
            self._ticket_state = ticket_state
            self._pending.append(self._send_server_hello)
            if renew:
                # Opened under a previous (still-accepted) epoch's key:
                # re-mint under the current key, RFC 5077 rollover style.
                self._pending.append(self._send_new_session_ticket)
            self._pending.append(self._send_ccs_and_finished_resumed)
            self._state = ServerHandshakeState.WAIT_FINISHED_RESUMED
        elif session is not None:
            # Abbreviated handshake: reuse master secret, skip the RSA op.
            self.resumed = True
            self._session_id = session.session_id
            self.cipher_suite = BY_ID[session.cipher_suite_id]
            self.master_secret = session.master_secret
            self._pending.append(self._send_server_hello)
            self._pending.append(self._send_ccs_and_finished_resumed)
            self._state = ServerHandshakeState.WAIT_FINISHED_RESUMED
        else:
            with perf.region("rand_pseudo_bytes"):
                self._session_id = self._rng.bytes(32)
                # Never echo an id we just declined to resume (expired or
                # unknown): the client reads an echoed offer as acceptance
                # and would wait for Finished instead of a Certificate.
                while self._session_id == hello.session_id:
                    self._session_id = self._rng.bytes(32)
            self._pending.append(self._send_server_hello)
            self._pending.append(self._send_server_cert)
            if self.cipher_suite.key_exchange == "DHE_RSA":
                self._pending.append(self._send_server_kx)
            self._pending.append(self._send_server_done)
            self._state = ServerHandshakeState.WAIT_CLIENT_KX

    def _choose_suite(self, offered: Sequence[int]) -> CipherSuite:
        order = self._suites
        if self._suite_policy is not None:
            override = self._suite_policy(offered)
            if override:
                order = tuple(override)
        for suite in order:
            if suite.suite_id in offered:
                return suite
        raise HandshakeFailure("no common cipher suite")

    # -- step 2: server hello ----------------------------------------------------
    def _send_server_hello(self) -> None:
        with perf.region("send_server_hello"):
            with perf.region("rand_pseudo_bytes"):
                self.server_random = self._rng.bytes(32)
            self._send_handshake(ServerHello(
                server_random=self.server_random,
                session_id=self._session_id,
                cipher_suite=self.cipher_suite.suite_id,
                version=self.version))

    # -- step 3: certificate ----------------------------------------------------
    def _send_server_cert(self) -> None:
        with perf.region("send_server_cert"):
            ders = [self._cert.to_bytes()]
            ders.extend(c.to_bytes() for c in self._chain)
            self._send_handshake(CertificateMsg(certificates=ders))

    # -- step 3.5: server key exchange (DHE suites only) ---------------------------
    def _send_server_kx(self) -> None:
        """Send signed ephemeral DH parameters.

        This is the handshake step the paper's Table 2 marks "skip
        server_kx" for RSA key exchange; with a DHE suite the server pays
        an extra modular exponentiation (the ephemeral public value) plus
        an RSA *signature* here -- the ablation benchmark prices it.
        """
        with perf.region("send_server_kx"):
            params = DhParams.oakley_group2()
            self._dh_keypair = DhKeyPair(params, rng=self._rng)
            msg = ServerKeyExchange(
                dh_p=params.p.to_bytes(),
                dh_g=params.g.to_bytes(),
                dh_ys=self._dh_keypair.public.to_bytes())
            digest = (MD5(self.client_random + self.server_random
                          + msg.params_bytes()).digest()
                      + SHA1(self.client_random + self.server_random
                             + msg.params_bytes()).digest())
            msg.signature = self._key.sign("sha1", digest,
                                           raw_payload=True)
            self._send_handshake(msg)

    # -- step 4: server hello done -------------------------------------------------
    def _send_server_done(self) -> None:
        with perf.region("send_server_done"):
            self._send_handshake(ServerHelloDone())
        with perf.region("server_flush"):
            self._flush()

    # -- step 5: client key exchange ---------------------------------------------
    def _process_client_kx(self, raw_body: bytes) -> None:
        _charge_split(CLIENT_KX_PROC, "ssl3_get_client_key_exchange")
        if self.cipher_suite.key_exchange == "DHE_RSA":
            pre_master = self._process_client_kx_dhe(raw_body)
        elif self._batcher is not None:
            # Defer the RSA decrypt into the shared batch queue.  The
            # handshake suspends here: records already in flight (the
            # client's CCS + Finished travel in the same flight) are held
            # raw until the batch flushes and _resume_client_kx runs.
            kx = ClientKeyExchange.parse_versioned(raw_body, self.is_tls)
            self._kx_waiting = True
            self._batcher.submit(self._key, kx.encrypted_pre_master,
                                 self._resume_client_kx)
            return
        else:
            pre_master = self._process_client_kx_rsa(raw_body)
        self._finish_client_kx(pre_master)

    def _finish_client_kx(self, pre_master: bytes) -> None:
        with perf.region("gen_master_secret"):
            self.master_secret = self._derive_master_secret(pre_master)
        # OpenSSL digests the cached handshake records here in case a
        # CertificateVerify arrives (Table 2's cert_verify_mac, present
        # even though no client certificate was requested).
        self._run_cert_verify_mac()
        self._state = ServerHandshakeState.WAIT_FINISHED

    def _process_client_kx_rsa(self, raw_body: bytes) -> bytes:
        # SSLv3 sends the RSA ciphertext raw; TLS added a length prefix.
        kx = ClientKeyExchange.parse_versioned(raw_body, self.is_tls)
        try:
            if self._offload_pool is not None:
                pre_master = self._offload_pool.rsa_decrypt(
                    self._key, kx.encrypted_pre_master)
            else:
                pre_master = self._key.decrypt(kx.encrypted_pre_master)
        except (RsaError, ValueError):
            pre_master = None
        return self._vet_pre_master(pre_master)

    def _vet_pre_master(self, pre_master: Optional[bytes]) -> bytes:
        """Bleichenbacher countermeasure (RFC 2246 section 7.4.7.1 style).

        Any failure -- undecryptable ciphertext, bad PKCS #1 padding, wrong
        pre-master length, or a client-version rollback mismatch -- is
        absorbed by substituting a random 48-byte pre-master.  The
        handshake then proceeds and fails uniformly at the Finished
        exchange, so an attacker probing with chosen ciphertexts sees one
        indistinguishable outcome instead of a million-message oracle.
        """
        # The substitute is drawn unconditionally, before any check, so
        # success and failure execute identical code (RFC 5246 7.4.7.1:
        # generate the random pre-master first, then select).
        with perf.region("rand_pseudo_bytes"):
            substitute = self._rng.bytes(PRE_MASTER_LENGTH)
        ok = (pre_master is not None
              and len(pre_master) == PRE_MASTER_LENGTH
              # The pre-master's first two bytes carry the client's
              # *offered* version (a rollback-attack defence).
              and pre_master[:2] == self._client_version.to_bytes(2, "big"))
        return pre_master if ok else substitute

    # -- batched-kx suspension/resumption -----------------------------------
    def _defer_record(self, content_type: int, body: bytes) -> bool:
        if self._kx_waiting:
            self._held_records.append((content_type, body))
            return True
        return False

    def _after_receive(self) -> None:
        # Flush a full batch outside any record-dispatch region: the flush
        # resumes every suspended handshake in the batch (including other
        # servers'), and that work belongs to their own step regions.
        if self._batcher is not None and self._batcher.ready:
            self._batcher.flush()

    def _resume_client_kx(self, pre_master: Optional[bytes]) -> None:
        """Continuation invoked by the batcher with the decrypted block."""
        if self.closed or not self._kx_waiting:
            # Stale continuation: the connection was closed or its
            # handshake reset (renegotiation) while parked in the batch
            # queue; the queued entry still fires at the next flush but
            # must not touch the new state.
            return
        self._kx_waiting = False
        with perf.region("get_client_kx"):
            self._finish_client_kx(self._vet_pre_master(pre_master))
        held, self._held_records = self._held_records, []
        with self._alert_guard():
            for content_type, body in held:
                self._process_record(content_type, body)
        while self._pending:
            self._pending.pop(0)()

    def _process_client_kx_dhe(self, raw_body: bytes) -> bytes:
        from ..crypto.dh import DhError
        from .errors import DecodeError
        if self._dh_keypair is None:
            raise UnexpectedMessage("DHE key exchange without server_kx")
        try:
            # ClientDiffieHellmanPublic (explicit): opaque DH_Yc<1..2^16-1>
            # in both SSLv3 and TLS 1.0.
            r = ByteReader(raw_body)
            yc = r.vec16()
            r.expect_end()
        except DecodeError as exc:
            raise HandshakeFailure(f"malformed DH client public: {exc}")
        try:
            return self._dh_keypair.compute_shared(BigNum.from_bytes(yc))
        except DhError as exc:
            raise HandshakeFailure(f"DH key exchange failed: {exc}")

    def _run_cert_verify_mac(self) -> None:
        with perf.region("cert_verify_mac"):
            kdf.cert_verify_hashes(self._hs_md5.copy(),
                                   self._hs_sha1.copy(), self.master_secret)

    # -- step 6: change cipher spec + client finished -----------------------------
    def _handle_ccs(self) -> None:
        if self._state not in (ServerHandshakeState.WAIT_FINISHED,
                               ServerHandshakeState.WAIT_FINISHED_RESUMED):
            raise UnexpectedMessage("change_cipher_spec out of order")
        _charge_split(CCS_PROC, "ssl3_setup_key_block")
        if self._client_states is None:
            # Full handshake: the client's CCS triggers key-block generation
            # and the expected-finished computation (step 6a).
            with perf.region("gen_key_block"):
                client_state, server_state = self._build_states()
                self._client_states = client_state
                self._server_states = server_state
            with perf.region("final_finish_mac"):
                self._expected_client_finished = \
                    self._compute_verify_data(for_client=True)
        # Abbreviated handshake: states and expected hashes were prepared
        # when the server sent its own CCS+Finished.
        self._records.set_read_state(self._client_states)

    def _process_client_finished(self, finished: Finished,
                                 raw: bytes) -> None:
        if self._client_states is None:
            raise UnexpectedMessage("finished before change_cipher_spec")
        from ..crypto.util import ct_equal
        if not ct_equal(finished.verify_data,
                        self._expected_client_finished):
            raise HandshakeFailure("client finished hash mismatch")
        self._update_handshake_hashes(raw)
        if self._state is ServerHandshakeState.WAIT_FINISHED:
            # Full handshake: now send our CCS + finished.  A fresh
            # NewSessionTicket precedes the CCS (RFC 5077 section 3.3)
            # when the client advertised ticket support.
            if self._ticket_keys is not None and self._client_wants_ticket:
                self._pending.append(self._send_new_session_ticket)
            self._pending.append(self._send_cipher_spec)
            self._pending.append(self._send_finished)
        self._pending.append(self._complete)

    # -- steps 7-8: server change cipher spec + finished -----------------------------
    def _send_cipher_spec(self) -> None:
        with perf.region("send_cipher_spec"):
            self._send_ccs()
            self._records.set_write_state(self._server_states)

    def _send_finished(self) -> None:
        with perf.region("send_finished"):
            with perf.region("final_finish_mac"):
                verify = self._compute_verify_data(for_client=False)
            self._send_handshake(Finished(verify_data=verify))

    def _send_new_session_ticket(self) -> None:
        """Seal the handshake's resumption state into a fresh ticket.

        On a full handshake this mints a brand-new ticket for the session
        just negotiated; on a stale-epoch ticket resumption it *renews*
        the accepted ticket -- same created_at/lifetime, re-sealed under
        the current epoch's key -- so the client's clock on the session
        does not reset at each rollover.
        """
        with perf.region("send_session_ticket"):
            now = self._clock() if self._clock is not None else 0.0
            if self._ticket_state is not None:
                created_at = self._ticket_state.created_at
                lifetime = self._ticket_state.lifetime
                self.tickets_renewed += 1
            else:
                created_at = now
                lifetime = (self._session_lifetime
                            if self._session_lifetime is not None else 300.0)
            with perf.region("session_ticket"):
                ticket = self._ticket_keys.mint(
                    cipher_suite_id=self.cipher_suite.suite_id,
                    master_secret=self.master_secret,
                    created_at=created_at, lifetime=lifetime,
                    rng=self._rng, now=now)
            self.tickets_minted += 1
            self._minted_ticket = True
            self._send_handshake(NewSessionTicket(
                lifetime_hint=int(lifetime), ticket=ticket))

    def _send_ccs_and_finished_resumed(self) -> None:
        """Abbreviated handshake: server's CCS+Finished go first."""
        with perf.region("gen_key_block"):
            client_state, server_state = self._build_states()
            self._client_states = client_state
            self._server_states = server_state
        self._send_cipher_spec()
        self._send_finished()
        # The read side switches only when the *client's* CCS arrives.
        with perf.region("final_finish_mac"):
            self._expected_client_finished = \
                self._compute_verify_data(for_client=True)

    # -- step 9: wrap-up --------------------------------------------------------------
    def _complete(self) -> None:
        with perf.region("server_flush"):
            self._flush()
            _charge_split(SSL_CLEANUP, "ssl3_cleanup_key_block")
            self._pre_master = None
        # A handshake that minted a ticket stays stateless: the client
        # carries the session, so nothing enters the id cache.
        if self._cache is not None and self._session_id \
                and not self.resumed and not self._minted_ticket:
            extra = {}
            if self._clock is not None:
                extra["created_at"] = self._clock()
            if self._session_lifetime is not None:
                extra["lifetime"] = self._session_lifetime
            self._cache.put(SslSession(
                session_id=self._session_id,
                cipher_suite_id=self.cipher_suite.suite_id,
                master_secret=self.master_secret, **extra))
        self._state = ServerHandshakeState.CONNECTED
        self.handshake_complete = True

    # -- renegotiation --------------------------------------------------------------
    def request_renegotiation(self) -> None:
        """Send a HelloRequest asking the client to start a new handshake.

        The paper's Section 4.1 point: renegotiation with a cached session
        id repeats the handshake *without* the RSA operation.  Application
        data continues under the old keys until the new ChangeCipherSpec.
        """
        if self._state is not ServerHandshakeState.CONNECTED:
            raise UnexpectedMessage("cannot renegotiate before the first "
                                    "handshake completes")
        if not self._allow_renegotiation:
            raise UnexpectedMessage("renegotiation disabled")
        # HelloRequest is excluded from the handshake hashes by spec; send
        # it directly rather than through _send_handshake.
        self._out += self._emit(ContentType.HANDSHAKE,
                                HelloRequest().to_bytes())

    def _begin_renegotiation(self) -> None:
        """Reset per-handshake state for a new handshake on this
        connection (keys in use stay active until the next CCS)."""
        self.renegotiations += 1
        self.handshake_complete = False
        self.resumed = False
        self._kx_waiting = False
        self._held_records = []
        self._dh_keypair = None
        self._client_states = None
        self._server_states = None
        self._session_id = b""
        self._client_wants_ticket = False
        self._ticket_state = None
        self._minted_ticket = False
        self.resumed_via_ticket = False
        self._init_handshake_hashes()
        self._state = ServerHandshakeState.WAIT_CLIENT_HELLO
