"""SSL error hierarchy and SSLv3 alert codes."""

from __future__ import annotations


class AlertLevel:
    WARNING = 1
    FATAL = 2


class AlertDescription:
    CLOSE_NOTIFY = 0
    UNEXPECTED_MESSAGE = 10
    BAD_RECORD_MAC = 20
    DECOMPRESSION_FAILURE = 30
    HANDSHAKE_FAILURE = 40
    NO_CERTIFICATE = 41
    BAD_CERTIFICATE = 42
    UNSUPPORTED_CERTIFICATE = 43
    CERTIFICATE_REVOKED = 44
    CERTIFICATE_EXPIRED = 45
    CERTIFICATE_UNKNOWN = 46
    ILLEGAL_PARAMETER = 47
    NO_RENEGOTIATION = 100  # warning-level (TLS; widely used with SSLv3)

    _NAMES = {
        0: "close_notify", 10: "unexpected_message", 20: "bad_record_mac",
        30: "decompression_failure", 40: "handshake_failure",
        41: "no_certificate", 42: "bad_certificate",
        43: "unsupported_certificate", 44: "certificate_revoked",
        45: "certificate_expired", 46: "certificate_unknown",
        47: "illegal_parameter", 100: "no_renegotiation",
    }

    @classmethod
    def name(cls, code: int) -> str:
        return cls._NAMES.get(code, f"alert_{code}")


class SslError(Exception):
    """Base class for all SSL-layer failures."""


class DecodeError(SslError):
    """Malformed wire bytes (truncated or inconsistent lengths)."""


class SequenceOverflow(SslError):
    """A record-layer sequence number reached its 2^64 wrap point.

    The SSLv3/TLS MAC input encodes the per-direction sequence number in
    64 bits; letting it wrap would silently reuse MAC sequence numbers and
    void the anti-replay guarantee.  The connection must be torn down (or
    renegotiated) instead -- this is fatal and deliberately *not* an
    :class:`AlertError`: by the time the write side trips it, no further
    record (alerts included) can be sealed on that direction.
    """


class AlertError(SslError):
    """A condition that maps to an SSLv3 alert."""

    def __init__(self, description: int, message: str = "",
                 level: int = AlertLevel.FATAL):
        self.description = description
        self.level = level
        name = AlertDescription.name(description)
        super().__init__(f"{name}: {message}" if message else name)


class BadRecordMac(AlertError):
    def __init__(self, message: str = "record MAC verification failed"):
        super().__init__(AlertDescription.BAD_RECORD_MAC, message)


class UnexpectedMessage(AlertError):
    def __init__(self, message: str = ""):
        super().__init__(AlertDescription.UNEXPECTED_MESSAGE, message)


class HandshakeFailure(AlertError):
    def __init__(self, message: str = ""):
        super().__init__(AlertDescription.HANDSHAKE_FAILURE, message)


class BadCertificate(AlertError):
    def __init__(self, message: str = ""):
        super().__init__(AlertDescription.BAD_CERTIFICATE, message)


class PeerAlert(SslError):
    """The peer sent a fatal alert."""

    def __init__(self, level: int, description: int):
        self.level = level
        self.description = description
        super().__init__(
            f"peer alert: {AlertDescription.name(description)} "
            f"(level {level})")
