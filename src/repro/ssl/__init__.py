"""From-scratch SSLv3 protocol stack (OpenSSL ``libssl`` equivalent)."""

from .ciphersuites import (
    AES128_SHA, AES256_SHA, ALL_SUITES, DEFAULT_SUITE, DES_CBC3_SHA,
    DES_CBC_SHA, DHE_RSA_AES128_SHA, DHE_RSA_AES256_SHA,
    EDH_RSA_DES_CBC3_SHA, NULL_MD5, NULL_SHA, RC4_MD5, RC4_SHA, CipherSuite,
    lookup,
)
from .client import SslClient
from .errors import (
    AlertDescription, AlertError, AlertLevel, BadCertificate, BadRecordMac,
    DecodeError, HandshakeFailure, PeerAlert, SslError, UnexpectedMessage,
)
from .loopback import (
    LoopbackResult, make_server_identity, profiled_handshake, pump,
    run_session,
)
from .record import (
    ConnectionState, ContentType, KeyMaterial, RecordLayer, SSL3_VERSION,
    TLS1_VERSION,
)
from .server import SslServer
from .session import CacheReplayDivergence, SessionCache, SslSession
from .ticket import SESSION_TICKET_EXT, TicketKeyRing, TicketState
from .trace import TraceEvent, WireTracer, format_trace
from .x509 import (
    Certificate, make_ca_signed_pair, make_self_signed, verify_chain,
)

__all__ = [
    "AES128_SHA", "AES256_SHA", "ALL_SUITES", "DEFAULT_SUITE",
    "DES_CBC3_SHA", "DES_CBC_SHA", "DHE_RSA_AES128_SHA",
    "DHE_RSA_AES256_SHA", "EDH_RSA_DES_CBC3_SHA", "NULL_MD5", "NULL_SHA",
    "RC4_MD5",
    "RC4_SHA", "CipherSuite", "lookup",
    "SslClient", "SslServer",
    "AlertDescription", "AlertError", "AlertLevel", "BadCertificate",
    "BadRecordMac", "DecodeError", "HandshakeFailure", "PeerAlert",
    "SslError", "UnexpectedMessage",
    "LoopbackResult", "make_server_identity", "profiled_handshake",
    "pump", "run_session",
    "ConnectionState", "ContentType", "KeyMaterial", "RecordLayer",
    "SSL3_VERSION", "TLS1_VERSION",
    "CacheReplayDivergence", "SessionCache", "SslSession",
    "SESSION_TICKET_EXT", "TicketKeyRing", "TicketState",
    "TraceEvent", "WireTracer", "format_trace",
    "Certificate", "make_ca_signed_pair", "make_self_signed",
    "verify_chain",
]
