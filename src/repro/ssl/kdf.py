"""SSLv3 key derivation (master secret, key block, finished hashes).

These are the "series of hash functions (both MD5 and SHA-1 are used)" the
paper describes in handshake steps 5, 6 and 8 (Table 2's
``gen_master_secret``, ``gen_key_block`` and ``final_finish_mac`` /
``cert_verify_mac`` entries).  The constructions are the SSLv3 originals:

* master secret / key block::

      block_i = MD5(secret || SHA1(salt_i || secret || rand1 || rand2))

  with salts ``'A'``, ``'BB'``, ``'CCC'``, ... (client random first when
  deriving the master secret; server random first for the key block);

* finished hash (per digest)::

      inner = H(handshake_messages || sender || master || pad1)
      out   = H(master || pad2 || inner)

  with the 0x36/0x5c pads (48 bytes for MD5, 40 for SHA-1) and sender
  labels ``'CLNT'`` / ``'SRVR'`` -- the paper's "finish hash values with
  'CLNT'/'SRVR' padding".
"""

from __future__ import annotations

from typing import Tuple

from ..crypto.md5 import MD5
from ..crypto.sha1 import SHA1
from ..perf import charge, mix

#: EVP-layer overhead per derivation block or finished-hash computation:
#: digest-context allocation, method dispatch, parameter copies.  The
#: paper's gen_master_secret / gen_key_block / final_finish_mac entries
#: (Table 2) are several times the raw hashing cost of their tiny inputs;
#: this modelled dispatch cost accounts for the difference.
PRF_BLOCK_OVERHEAD = mix(movl=11_000, movb=2_000, addl=1_500, cmpl=1_900,
                         jnz=1_900, pushl=550, popl=550, call=340, ret=340)

#: Additional one-shot master-secret machinery: buffer allocation for the
#: pre-master, its zeroization path setup, EVP context churn (Table 2's
#: gen_master_secret measures 148k cycles for three derivation blocks).
MASTER_SECRET_OVERHEAD = mix(movl=115_000, movb=25_000, addl=12_000,
                             cmpl=18_000, jnz=18_000, xorl=8_000,
                             pushl=2_600, popl=2_600, call=1_600, ret=1_600)

#: Finalizing the finished/cert-verify digests (context duplication,
#: double finalization, constant-time compare staging): Table 2's
#: final_finish_mac / cert_verify_mac run ~60k cycles each.
FINISHED_OVERHEAD = mix(movl=32_000, movb=7_000, addl=4_000, cmpl=5_200,
                        jnz=5_200, xorl=2_400, pushl=800, popl=800,
                        call=500, ret=500)

MASTER_SECRET_LENGTH = 48
SENDER_CLIENT = b"CLNT"
SENDER_SERVER = b"SRVR"

_PAD1_MD5 = b"\x36" * 48
_PAD2_MD5 = b"\x5c" * 48
_PAD1_SHA = b"\x36" * 40
_PAD2_SHA = b"\x5c" * 40


def _derivation_block(secret: bytes, rand1: bytes, rand2: bytes,
                      index: int) -> bytes:
    """One 16-byte output block of the SSLv3 derivation."""
    charge(PRF_BLOCK_OVERHEAD, function="ssl3_PRF")
    salt = bytes([ord("A") + index]) * (index + 1)
    inner = SHA1()
    inner.update(salt)
    inner.update(secret)
    inner.update(rand1)
    inner.update(rand2)
    outer = MD5()
    outer.update(secret)
    outer.update(inner.digest())
    return outer.digest()


def derive(secret: bytes, rand1: bytes, rand2: bytes, length: int) -> bytes:
    """Generate ``length`` bytes of SSLv3 derivation output."""
    if length < 0:
        raise ValueError("length must be non-negative")
    nblocks = (length + 15) // 16
    if nblocks > 26:
        raise ValueError("SSLv3 derivation limited to 26 blocks (A..Z salts)")
    out = b"".join(_derivation_block(secret, rand1, rand2, i)
                   for i in range(nblocks))
    return out[:length]


def master_secret(pre_master: bytes, client_random: bytes,
                  server_random: bytes) -> bytes:
    """48-byte master secret from the pre-master (step 5).

    RSA key transport uses a 48-byte pre-master; Diffie-Hellman suites feed
    the variable-length shared secret Z.
    """
    if not pre_master:
        raise ValueError("pre-master secret must be non-empty")
    charge(MASTER_SECRET_OVERHEAD, function="gen_master_secret")
    return derive(pre_master, client_random, server_random,
                  MASTER_SECRET_LENGTH)


def key_block(master: bytes, client_random: bytes, server_random: bytes,
              length: int) -> bytes:
    """Key material for both connection directions (step 6a).

    Note the reversed random order relative to the master-secret derivation
    (server random first), per the SSLv3 specification.
    """
    return derive(master, server_random, client_random, length)


def cert_verify_hashes(md5_ctx: MD5, sha1_ctx: SHA1,
                       master: bytes) -> Tuple[bytes, bytes]:
    """CertificateVerify digests: like the finished hashes but unlabelled.

    The server computes these in step 5 of Table 2 (``cert_verify_mac``)
    even when no client certificate was requested, because OpenSSL digests
    the cached handshake records at that point.
    """
    return finished_hashes(md5_ctx, sha1_ctx, master, b"")


def finished_hashes(md5_ctx: MD5, sha1_ctx: SHA1, master: bytes,
                    sender: bytes) -> Tuple[bytes, bytes]:
    charge(FINISHED_OVERHEAD, function="ssl3_final_finish_mac")
    charge(PRF_BLOCK_OVERHEAD, times=2, function="ssl3_final_finish_mac")
    return _finished_hashes(md5_ctx, sha1_ctx, master, sender)


def _finished_hashes(md5_ctx: MD5, sha1_ctx: SHA1, master: bytes,
                     sender: bytes) -> Tuple[bytes, bytes]:
    """The two finished-message hashes over the handshake transcript.

    ``md5_ctx`` / ``sha1_ctx`` are *copies are not taken here*: pass clones
    of the running handshake-hash contexts, positioned after all handshake
    messages so far.
    """
    md5_ctx.update(sender)
    md5_ctx.update(master)
    md5_ctx.update(_PAD1_MD5)
    md5_inner = md5_ctx.digest()
    md5_outer = MD5()
    md5_outer.update(master)
    md5_outer.update(_PAD2_MD5)
    md5_outer.update(md5_inner)

    sha1_ctx.update(sender)
    sha1_ctx.update(master)
    sha1_ctx.update(_PAD1_SHA)
    sha_inner = sha1_ctx.digest()
    sha_outer = SHA1()
    sha_outer.update(master)
    sha_outer.update(_PAD2_SHA)
    sha_outer.update(sha_inner)

    return md5_outer.digest(), sha_outer.digest()


# ---------------------------------------------------------------------------
# TLS 1.0 key derivation (RFC 2246 section 5)
# ---------------------------------------------------------------------------
# The paper's OpenSSL "supports SSL v2/v3 and TLS v1 protocols"; TLS 1.0
# replaces the SSLv3 constructions above with an HMAC-based PRF:
#
#     PRF(secret, label, seed) = P_MD5(S1, label+seed)
#                                XOR P_SHA1(S2, label+seed)
#
# where S1/S2 are the two halves of the secret and P_hash is the HMAC
# expansion chain.  Finished messages shrink to 12 bytes of verify_data.

from ..crypto.mac import hmac as _hmac  # noqa: E402  (section grouping)

TLS_VERIFY_DATA_LENGTH = 12
LABEL_MASTER = b"master secret"
LABEL_KEY_EXPANSION = b"key expansion"
LABEL_CLIENT_FINISHED = b"client finished"
LABEL_SERVER_FINISHED = b"server finished"


def _p_hash(hash_factory, secret: bytes, seed: bytes, length: int) -> bytes:
    """The P_hash expansion: A(i) chaining with HMAC."""
    out = bytearray()
    a = seed
    while len(out) < length:
        a = _hmac(hash_factory, secret, a)
        out += _hmac(hash_factory, secret, a + seed)
    return bytes(out[:length])


def tls_prf(secret: bytes, label: bytes, seed: bytes, length: int) -> bytes:
    """The TLS 1.0 pseudo-random function (MD5/SHA-1 halves XORed)."""
    if length < 0:
        raise ValueError("length must be non-negative")
    half = (len(secret) + 1) // 2
    s1, s2 = secret[:half], secret[len(secret) - half:]
    md5_part = _p_hash(MD5, s1, label + seed, length)
    sha_part = _p_hash(SHA1, s2, label + seed, length)
    charge(PRF_BLOCK_OVERHEAD, times=max(1, length // 16),
           function="tls1_PRF")
    return bytes(a ^ b for a, b in zip(md5_part, sha_part))


def tls_master_secret(pre_master: bytes, client_random: bytes,
                      server_random: bytes) -> bytes:
    """48-byte TLS 1.0 master secret (pre-master is 48 bytes for RSA key
    transport, variable for Diffie-Hellman)."""
    if not pre_master:
        raise ValueError("pre-master secret must be non-empty")
    charge(MASTER_SECRET_OVERHEAD, function="gen_master_secret")
    return tls_prf(pre_master, LABEL_MASTER, client_random + server_random,
                   MASTER_SECRET_LENGTH)


def tls_key_block(master: bytes, client_random: bytes,
                  server_random: bytes, length: int) -> bytes:
    """TLS 1.0 key material (note the server-random-first seed order)."""
    return tls_prf(master, LABEL_KEY_EXPANSION,
                   server_random + client_random, length)


def tls_finished(md5_ctx: MD5, sha1_ctx: SHA1, master: bytes,
                 is_client: bool) -> bytes:
    """12-byte TLS 1.0 verify_data over the handshake transcript."""
    charge(PRF_BLOCK_OVERHEAD, function="tls1_final_finish_mac")
    label = LABEL_CLIENT_FINISHED if is_client else LABEL_SERVER_FINISHED
    digests = md5_ctx.digest() + sha1_ctx.digest()
    return tls_prf(master, label, digests, TLS_VERIFY_DATA_LENGTH)
