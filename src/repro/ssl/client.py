"""Client-side SSLv3 state machine.

The client drives the handshake of the paper's Figure 1: it sends the
ClientHello, validates the server certificate, generates the 48-byte
pre-master secret and encrypts it with the server's RSA public key (the
public-key operation whose *decryption* dominates the server's Table 2),
then exchanges ChangeCipherSpec/Finished.  Presenting a cached
:class:`~repro.ssl.session.SslSession` triggers the abbreviated resumption
handshake.
"""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from .. import perf
from ..crypto.rand import PseudoRandom
from .ciphersuites import ALL_SUITES, BY_ID, CipherSuite
from .connection import SslConnection
from .errors import BadCertificate, HandshakeFailure, UnexpectedMessage
from ..bignum import BigNum
from ..crypto.dh import DhError, DhKeyPair, DhParams
from ..crypto.md5 import MD5
from ..crypto.sha1 import SHA1
from .codec import ByteWriter
from .handshake import (
    CertificateMsg, ClientHello, ClientKeyExchange, Finished, HandshakeType,
    NewSessionTicket, ServerHello, ServerHelloDone, ServerKeyExchange,
)
from .record import ContentType
from .session import SslSession
from .ticket import SESSION_TICKET_EXT
from .x509 import Certificate

PRE_MASTER_LENGTH = 48


class ClientHandshakeState(enum.Enum):
    START = enum.auto()
    WAIT_SERVER_HELLO = enum.auto()
    WAIT_CERTIFICATE = enum.auto()
    WAIT_SERVER_DONE = enum.auto()
    WAIT_FINISHED = enum.auto()          # full handshake
    WAIT_FINISHED_RESUMED = enum.auto()  # abbreviated handshake
    CONNECTED = enum.auto()


class SslClient(SslConnection):
    """One client-side connection endpoint."""

    is_server = False

    def __init__(self, suites: Sequence[CipherSuite] = (),
                 session: Optional[SslSession] = None,
                 rng: Optional[PseudoRandom] = None,
                 verify_certificate: bool = True,
                 trusted_issuer: Optional[Certificate] = None,
                 version: int = 0x0300,
                 use_v2_hello: bool = False,
                 session_tickets: bool = False):
        """``version`` is the offered protocol version: 0x0300 (SSLv3, the
        paper's configuration and the default) or 0x0301 (TLS 1.0).
        ``use_v2_hello`` opens with an SSLv2-format compatibility hello,
        as era browsers did.  ``session_tickets`` advertises RFC-5077
        stateless-ticket support (an empty SessionTicket extension); a
        stored ticket on the offered session is presented regardless."""
        super().__init__()
        self._suites = tuple(suites) if suites else tuple(
            s for s in ALL_SUITES if s.cipher != "null")
        self._rng = rng if rng is not None else PseudoRandom(b"client")
        self._offered_session = session
        self._offered_version = version
        self._use_v2_hello = use_v2_hello
        self._session_tickets = session_tickets
        self._offered_sid = b""
        self._pending_ticket: Optional[bytes] = None
        self._verify_certificate = verify_certificate
        self._trusted_issuer = trusted_issuer
        self._state = ClientHandshakeState.START
        self._server_cert: Optional[Certificate] = None
        self._server_dh: Optional[ServerKeyExchange] = None
        self.session: Optional[SslSession] = None
        self.resumed = False
        self.renegotiations = 0
        self._init_handshake_hashes()

    # -- record routing ---------------------------------------------------
    def _region_for_record(self, content_type: int) -> str:
        if content_type == ContentType.CHANGE_CIPHER_SPEC:
            return "get_server_finished"
        if content_type == ContentType.HANDSHAKE:
            return {
                ClientHandshakeState.WAIT_SERVER_HELLO: "get_server_hello",
                ClientHandshakeState.WAIT_CERTIFICATE: "get_server_cert",
                ClientHandshakeState.WAIT_SERVER_DONE: "get_server_done",
                ClientHandshakeState.WAIT_FINISHED: "get_server_finished",
                ClientHandshakeState.WAIT_FINISHED_RESUMED:
                    "get_server_finished",
            }.get(self._state, "post_handshake")
        if content_type == ContentType.APPLICATION_DATA:
            return "bulk_transfer"
        return "alert"

    # -- kick-off ------------------------------------------------------------
    def start_handshake(self) -> None:
        """Send the ClientHello (optionally offering a session to resume)."""
        if self._state is not ClientHandshakeState.START:
            raise HandshakeFailure("handshake already started")
        with perf.region("send_client_hello"):
            if self._use_v2_hello and self.renegotiations == 0:
                self._send_v2_hello()
            else:
                with perf.region("rand_pseudo_bytes"):
                    self.client_random = self._rng.bytes(32)
                offered = self._offered_session
                extensions = ()
                if offered is not None and offered.ticket:
                    # Ticket resumption: present the opaque ticket and a
                    # *random* session id as the acceptance handle (RFC
                    # 5077 section 3.4 -- the server echoes it to signal
                    # the ticket was taken).
                    with perf.region("rand_pseudo_bytes"):
                        session_id = self._rng.bytes(32)
                    extensions = ((SESSION_TICKET_EXT, offered.ticket),)
                else:
                    session_id = offered.session_id if offered else b""
                    if self._session_tickets:
                        extensions = ((SESSION_TICKET_EXT, b""),)
                self._offered_sid = session_id
                self._send_handshake(ClientHello(
                    client_random=self.client_random,
                    session_id=session_id,
                    cipher_suites=tuple(s.suite_id for s in self._suites),
                    version=self._offered_version,
                    extensions=extensions))
        self._state = ClientHandshakeState.WAIT_SERVER_HELLO

    def _send_v2_hello(self) -> None:
        from .handshake import build_v2_client_hello, v2_record
        with perf.region("rand_pseudo_bytes"):
            challenge = self._rng.bytes(32)
        self.client_random = challenge.rjust(32, b"\x00")
        self._offered_sid = b""
        message = build_v2_client_hello(
            self._offered_version,
            tuple(s.suite_id for s in self._suites), challenge)
        self._update_handshake_hashes(message)
        self._out += v2_record(message)

    # -- handshake dispatch ------------------------------------------------------
    def _handle_handshake(self, msg_type: int, body: bytes,
                          raw: bytes) -> None:
        if msg_type == HandshakeType.SERVER_HELLO:
            if self._state is not ClientHandshakeState.WAIT_SERVER_HELLO:
                raise UnexpectedMessage("server_hello out of order")
            self._update_handshake_hashes(raw)
            self._process_server_hello(ServerHello.parse(body))
        elif msg_type == HandshakeType.CERTIFICATE:
            if self._state is not ClientHandshakeState.WAIT_CERTIFICATE:
                raise UnexpectedMessage("certificate out of order")
            self._update_handshake_hashes(raw)
            self._process_certificate(CertificateMsg.parse(body))
        elif msg_type == HandshakeType.SERVER_KEY_EXCHANGE:
            if self._state is not ClientHandshakeState.WAIT_SERVER_DONE or \
                    self.cipher_suite.key_exchange != "DHE_RSA":
                raise UnexpectedMessage("server_key_exchange out of order")
            self._update_handshake_hashes(raw)
            self._process_server_kx(ServerKeyExchange.parse(body))
        elif msg_type == HandshakeType.SERVER_HELLO_DONE:
            if self._state is not ClientHandshakeState.WAIT_SERVER_DONE:
                raise UnexpectedMessage("server_hello_done out of order")
            ServerHelloDone.parse(body)
            self._update_handshake_hashes(raw)
            self._send_second_flight()
        elif msg_type == HandshakeType.NEW_SESSION_TICKET:
            # Arrives before the server's CCS on both flows (RFC 5077
            # section 3.3); held until Finished verifies, then attached
            # to the negotiated session.
            if self._state not in (
                    ClientHandshakeState.WAIT_FINISHED,
                    ClientHandshakeState.WAIT_FINISHED_RESUMED):
                raise UnexpectedMessage("new_session_ticket out of order")
            self._update_handshake_hashes(raw)
            self._pending_ticket = NewSessionTicket.parse(body).ticket
        elif msg_type == HandshakeType.FINISHED:
            if self._state not in (
                    ClientHandshakeState.WAIT_FINISHED,
                    ClientHandshakeState.WAIT_FINISHED_RESUMED):
                raise UnexpectedMessage("finished out of order")
            self._process_server_finished(Finished.parse(body), raw)
        elif msg_type == HandshakeType.HELLO_REQUEST:
            # Server-initiated renegotiation: start a fresh handshake over
            # the established connection (offering our session for an
            # abbreviated re-handshake when we have one).
            if self._state is ClientHandshakeState.CONNECTED:
                self.renegotiate(session=self.session)
        else:
            raise UnexpectedMessage(
                f"client cannot handle {HandshakeType.name(msg_type)}")

    def _process_server_hello(self, hello: ServerHello) -> None:
        if hello.version not in (0x0300, 0x0301) or \
                hello.version > self._offered_version:
            raise HandshakeFailure(
                f"server chose unsupported version 0x{hello.version:04x}")
        self._set_version(hello.version)
        if hello.cipher_suite not in BY_ID:
            raise HandshakeFailure("server chose an unknown cipher suite")
        suite = BY_ID[hello.cipher_suite]
        if suite.suite_id not in (s.suite_id for s in self._suites):
            raise HandshakeFailure("server chose a suite we did not offer")
        self.cipher_suite = suite
        self.server_random = hello.server_random
        offered = self._offered_session
        if (offered is not None and hello.session_id
                and hello.session_id == self._offered_sid):
            # Abbreviated handshake accepted (for ticket offers the
            # echoed id is our random acceptance handle, not a cached id).
            self.resumed = True
            self.master_secret = offered.master_secret
            self.session = offered
            self._state = ClientHandshakeState.WAIT_FINISHED_RESUMED
        else:
            self._new_session_id = hello.session_id
            self._state = ClientHandshakeState.WAIT_CERTIFICATE

    def _process_certificate(self, msg: CertificateMsg) -> None:
        if not msg.certificates:
            raise BadCertificate("empty certificate chain")
        chain = [Certificate.from_bytes(der) for der in msg.certificates]
        cert = chain[0]
        if self._verify_certificate:
            from .x509 import verify_chain
            trusted = ([self._trusted_issuer] if self._trusted_issuer
                       else None)
            if not verify_chain(chain, trusted=trusted):
                raise BadCertificate("certificate chain invalid")
        self._server_cert = cert
        self._server_chain = chain
        self._state = ClientHandshakeState.WAIT_SERVER_DONE

    def _process_server_kx(self, skx: ServerKeyExchange) -> None:
        """Verify and store the server's signed ephemeral DH parameters."""
        with perf.region("get_server_kx"):
            signed = (self.client_random + self.server_random
                      + skx.params_bytes())
            digest = MD5(signed).digest() + SHA1(signed).digest()
            if not self._server_cert.public_key.verify(skx.signature,
                                                       digest):
                raise HandshakeFailure("server key exchange signature "
                                       "invalid")
            self._server_dh = skx

    # -- second flight: KX + CCS + Finished --------------------------------------
    def _send_client_kx_rsa(self) -> None:
        with perf.region("send_client_kx"):
            with perf.region("rand_pseudo_bytes"):
                pre_master = (self._offered_version.to_bytes(2, "big")
                              + self._rng.bytes(PRE_MASTER_LENGTH - 2))
            encrypted = self._server_cert.public_key.encrypt(
                pre_master, self._rng)
            self._send_handshake(ClientKeyExchange(
                encrypted_pre_master=encrypted, tls_format=self.is_tls))
            with perf.region("gen_master_secret"):
                self.master_secret = self._derive_master_secret(pre_master)

    def _send_client_kx_dhe(self) -> None:
        if self._server_dh is None:
            raise HandshakeFailure("DHE suite chosen but no "
                                   "server_key_exchange received")
        with perf.region("send_client_kx"):
            try:
                params = DhParams(p=BigNum.from_bytes(self._server_dh.dh_p),
                                  g=BigNum.from_bytes(self._server_dh.dh_g))
                keypair = DhKeyPair(params, rng=self._rng)
                pre_master = keypair.compute_shared(
                    BigNum.from_bytes(self._server_dh.dh_ys))
            except DhError as exc:
                raise HandshakeFailure(f"DH key agreement failed: {exc}")
            body = ByteWriter().vec16(keypair.public.to_bytes()).bytes()
            self._send_handshake(
                ClientKeyExchange(encrypted_pre_master=body))
            with perf.region("gen_master_secret"):
                self.master_secret = self._derive_master_secret(pre_master)

    def _send_second_flight(self) -> None:
        if self.cipher_suite.key_exchange == "DHE_RSA":
            self._send_client_kx_dhe()
        else:
            self._send_client_kx_rsa()
        with perf.region("send_cipher_spec"):
            self._send_ccs()
            with perf.region("gen_key_block"):
                client_state, server_state = self._build_states()
                self._server_read_state = server_state
            self._records.set_write_state(client_state)
        with perf.region("send_finished"):
            with perf.region("final_finish_mac"):
                verify = self._compute_verify_data(for_client=True)
            self._send_handshake(Finished(verify_data=verify))
        self._state = ClientHandshakeState.WAIT_FINISHED

    # -- server CCS + finished ------------------------------------------------------
    def _handle_ccs(self) -> None:
        if self._state is ClientHandshakeState.WAIT_FINISHED:
            self._records.set_read_state(self._server_read_state)
        elif self._state is ClientHandshakeState.WAIT_FINISHED_RESUMED:
            with perf.region("gen_key_block"):
                client_state, server_state = self._build_states()
                self._resumed_client_state = client_state
            self._records.set_read_state(server_state)
        else:
            raise UnexpectedMessage("change_cipher_spec out of order")

    def _process_server_finished(self, finished: Finished,
                                 raw: bytes) -> None:
        with perf.region("final_finish_mac"):
            expected = self._compute_verify_data(for_client=False)
        from ..crypto.util import ct_equal
        if not ct_equal(finished.verify_data, expected):
            raise HandshakeFailure("server finished hash mismatch")
        self._update_handshake_hashes(raw)
        if self._state is ClientHandshakeState.WAIT_FINISHED_RESUMED:
            # Abbreviated handshake: now send our CCS + Finished.
            with perf.region("send_cipher_spec"):
                self._send_ccs()
                self._records.set_write_state(self._resumed_client_state)
            with perf.region("send_finished"):
                with perf.region("final_finish_mac"):
                    verify = self._compute_verify_data(for_client=True)
                self._send_handshake(Finished(verify_data=verify))
        else:
            self.session = SslSession(
                session_id=self._new_session_id,
                cipher_suite_id=self.cipher_suite.suite_id,
                master_secret=self.master_secret,
            ) if self._new_session_id else None
        if self._pending_ticket is not None and self.session is not None:
            # Fresh mint or rollover renewal: the ticket travels with the
            # session so the next offer presents it.
            self.session.ticket = self._pending_ticket
        self._pending_ticket = None
        self._state = ClientHandshakeState.CONNECTED
        self.handshake_complete = True

    def _handle_alert(self, payload: bytes) -> None:
        from .errors import AlertDescription, AlertLevel
        if (len(payload) == 2 and payload[0] == AlertLevel.WARNING
                and payload[1] == AlertDescription.NO_RENEGOTIATION
                and self.renegotiations):
            # The server declined our renegotiation: abandon it and return
            # to the established session (keys never changed).
            self.renegotiations -= 1
            self.handshake_complete = True
            self._state = ClientHandshakeState.CONNECTED
            return
        super()._handle_alert(payload)

    def renegotiate(self, session: Optional[SslSession] = None) -> None:
        """Start a new handshake on the established connection."""
        if self._state is not ClientHandshakeState.CONNECTED:
            raise HandshakeFailure("cannot renegotiate before the first "
                                   "handshake completes")
        self.renegotiations += 1
        self.handshake_complete = False
        self.resumed = False
        self._server_dh = None
        self._pending_ticket = None
        self._offered_session = session
        self._init_handshake_hashes()
        self._state = ClientHandshakeState.START
        self.start_handshake()

    @property
    def server_certificate(self) -> Optional[Certificate]:
        return self._server_cert
