"""In-memory client<->server harness (the paper's modified ``ssltest``).

Section 3.2: "we use a standalone program ... [that] creates a server
context as well as a client context, and relays messages between these two
through some memory buffers.  Our measurements are taken on the server
side."  This module is that program: it shuttles pending output between an
:class:`~repro.ssl.client.SslClient` and an
:class:`~repro.ssl.server.SslServer` until the handshake completes, then
optionally transfers bulk data, and exposes the per-side profilers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .. import perf
from ..crypto.rand import PseudoRandom
from ..crypto.rsa import RsaPrivateKey, generate_key
from .ciphersuites import CipherSuite, DEFAULT_SUITE
from .client import SslClient
from .errors import SslError
from .server import SslServer
from .session import SessionCache, SslSession
from .x509 import Certificate, make_self_signed


@dataclass
class LoopbackResult:
    """What a loopback run produced and measured."""

    server_profiler: perf.Profiler
    client_profiler: perf.Profiler
    client: SslClient
    server: SslServer
    echoed: bytes = b""
    handshake_flights: int = 0

    @property
    def session(self) -> Optional[SslSession]:
        return self.client.session


def make_server_identity(bits: int = 1024,
                         seed: bytes = b"loopback-identity",
                         ) -> tuple:
    """A deterministic (key, certificate) pair for experiments."""
    key = generate_key(bits, rng=PseudoRandom(seed))
    cert = make_self_signed("CN=repro-ssl-server", key)
    return key, cert


def pump(client: SslClient, server: SslServer,
         client_profiler: perf.Profiler, server_profiler: perf.Profiler,
         max_rounds: int = 32) -> int:
    """Relay pending bytes both ways until both sides go quiet.

    Returns the number of relay rounds (flights).  Each side's processing
    is charged to its own profiler, like the paper's per-machine setup.
    """
    rounds = 0
    for _ in range(max_rounds):
        with perf.activate(client_profiler):
            c_out = client.pending_output()
        with perf.activate(server_profiler):
            s_out = server.pending_output()
        if not c_out and not s_out:
            return rounds
        rounds += 1
        if c_out:
            with perf.activate(server_profiler):
                server.receive(c_out)
        if s_out:
            with perf.activate(client_profiler):
                client.receive(s_out)
    raise SslError("loopback did not converge (protocol stuck?)")


def profiled_handshake(key: RsaPrivateKey, cert: Certificate, *,
                       suite: CipherSuite = DEFAULT_SUITE,
                       version: int = 0x0300,
                       use_crt: Optional[bool] = None,
                       session_cache: Optional[SessionCache] = None,
                       resume: Optional[SslSession] = None,
                       seed: bytes = b"profiled"):
    """Run one handshake; returns (server_profiler, client_profiler,
    client, server).

    The shared harness behind the Table 2/3 benchmarks and the CLI tools:
    each side's work lands in its own profiler, exactly like the paper's
    two-machine setup.
    """
    if use_crt is not None:
        key.use_crt = use_crt
    server_profiler = perf.Profiler()
    client_profiler = perf.Profiler()
    with perf.activate(server_profiler):
        server = SslServer(key, cert, suites=(suite,),
                           session_cache=session_cache,
                           rng=PseudoRandom(seed + b"-server"))
    with perf.activate(client_profiler):
        client = SslClient(suites=(suite,), session=resume,
                           version=version,
                           rng=PseudoRandom(seed + b"-client"))
        client.start_handshake()
    pump(client, server, client_profiler, server_profiler)
    if not (client.handshake_complete and server.handshake_complete):
        raise SslError("handshake did not complete")
    return server_profiler, client_profiler, client, server


def run_session(data: bytes = b"", *,
                suite: CipherSuite = DEFAULT_SUITE,
                key: Optional[RsaPrivateKey] = None,
                cert: Optional[Certificate] = None,
                session_cache: Optional[SessionCache] = None,
                resume: Optional[SslSession] = None,
                use_crt: Optional[bool] = None,
                version: int = 0x0300,
                seed: bytes = b"loopback",
                ) -> LoopbackResult:
    """Handshake, echo ``data`` through the encrypted channel, close.

    The server encrypts ``data`` back to the client ("the web server tries
    to send ... data to the client", Section 6.2), so the server-side
    profiler sees one bulk encryption pass plus the handshake -- the same
    accounting perspective as the paper's Tables 2/3.
    """
    if key is None or cert is None:
        key, cert = make_server_identity()
    if use_crt is not None:
        key.use_crt = use_crt

    server_profiler = perf.Profiler()
    client_profiler = perf.Profiler()

    with perf.activate(server_profiler):
        server = SslServer(key, cert, suites=(suite,),
                           session_cache=session_cache,
                           rng=PseudoRandom(seed + b"-server"))
    with perf.activate(client_profiler):
        client = SslClient(suites=(suite,), session=resume,
                           version=version,
                           rng=PseudoRandom(seed + b"-client"))
        client.start_handshake()

    flights = pump(client, server, client_profiler, server_profiler)

    if not (client.handshake_complete and server.handshake_complete):
        raise SslError("handshake did not complete")

    echoed = b""
    if data:
        with perf.activate(client_profiler):
            client.write(data)
            wire = client.pending_output()
        with perf.activate(server_profiler):
            server.receive(wire)
            received = server.read()
            server.write(received)  # echo back
            wire = server.pending_output()
        with perf.activate(client_profiler):
            client.receive(wire)
            echoed = client.read()

    with perf.activate(client_profiler):
        client.close()
    with perf.activate(server_profiler):
        server.receive(client.pending_output())
        server.close()

    return LoopbackResult(server_profiler=server_profiler,
                          client_profiler=client_profiler,
                          client=client, server=server, echoed=echoed,
                          handshake_flights=flights)
