"""Wire-format trace decoder (an ``ssldump`` stand-in).

Decodes the byte stream between two SSL endpoints into human-readable
events: record boundaries, handshake message types (while still in the
clear), ChangeCipherSpec transitions, alerts, and opaque post-CCS records.
Used by the handshake-anatomy example and available for debugging any
loopback exchange.

Purely passive: the tracer never decrypts -- exactly like a wire sniffer,
it loses visibility at the ChangeCipherSpec (it labels the one handshake
record that follows as the Finished message, which protocol structure
guarantees).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .errors import AlertDescription
from .handshake import HandshakeType
from .record import ContentType, HEADER_LEN


@dataclass(frozen=True)
class TraceEvent:
    """One decoded record."""

    direction: str          # e.g. "client->server"
    content_type: int
    version: int
    length: int
    description: str

    def __str__(self) -> str:
        return (f"{self.direction:<16s} {self.description} "
                f"({self.length} bytes)")


class WireTracer:
    """Streaming decoder for both directions of one connection."""

    def __init__(self, client_label: str = "client",
                 server_label: str = "server"):
        self._labels = {"client": client_label, "server": server_label}
        self._buffers: Dict[str, bytearray] = {"client": bytearray(),
                                               "server": bytearray()}
        self._encrypted: Dict[str, bool] = {"client": False,
                                            "server": False}
        self._saw_any: Dict[str, bool] = {"client": False, "server": False}
        self.events: List[TraceEvent] = []

    def feed(self, sender: str, data: bytes) -> List[TraceEvent]:
        """Decode bytes sent by ``sender`` ("client" or "server")."""
        if sender not in self._buffers:
            raise ValueError(f"unknown sender {sender!r}")
        buf = self._buffers[sender]
        buf += data
        new: List[TraceEvent] = []
        while True:
            event = self._pop_record(sender, buf)
            if event is None:
                break
            new.append(event)
        self.events.extend(new)
        return new

    # -- internals ----------------------------------------------------------
    def _direction(self, sender: str) -> str:
        other = "server" if sender == "client" else "client"
        return f"{self._labels[sender]}->{self._labels[other]}"

    def _pop_record(self, sender: str, buf: bytearray):
        if not buf:
            return None
        # SSLv2-compatibility hello: MSB-set short header, first record.
        if not self._saw_any[sender] and buf[0] & 0x80:
            if len(buf) < 2:
                return None
            length = int.from_bytes(buf[:2], "big") & 0x7FFF
            if len(buf) < 2 + length:
                return None
            del buf[:2 + length]
            self._saw_any[sender] = True
            return TraceEvent(self._direction(sender), -2, 0x0002, length,
                              "v2 client_hello (compat)")
        if len(buf) < HEADER_LEN:
            return None
        content_type = buf[0]
        version = int.from_bytes(buf[1:3], "big")
        length = int.from_bytes(buf[3:5], "big")
        if len(buf) < HEADER_LEN + length:
            return None
        body = bytes(buf[HEADER_LEN:HEADER_LEN + length])
        del buf[:HEADER_LEN + length]
        self._saw_any[sender] = True
        description = self._describe(sender, content_type, body)
        return TraceEvent(self._direction(sender), content_type, version,
                          length, description)

    def _describe(self, sender: str, content_type: int,
                  body: bytes) -> str:
        if content_type == ContentType.CHANGE_CIPHER_SPEC:
            self._encrypted[sender] = True
            return "change_cipher_spec"
        if self._encrypted[sender]:
            if content_type == ContentType.HANDSHAKE:
                return "finished (encrypted)"
            if content_type == ContentType.ALERT:
                return "alert (encrypted)"
            return "application_data (encrypted)"
        if content_type == ContentType.HANDSHAKE:
            return self._describe_handshake(body)
        if content_type == ContentType.ALERT:
            if len(body) == 2:
                level = "fatal" if body[0] == 2 else "warning"
                return f"alert: {AlertDescription.name(body[1])} ({level})"
            return "alert (malformed)"
        if content_type == ContentType.APPLICATION_DATA:
            return "application_data (plaintext!)"
        return f"unknown record type {content_type}"

    @staticmethod
    def _describe_handshake(body: bytes) -> str:
        names: List[str] = []
        pos = 0
        while pos + 4 <= len(body):
            msg_type = body[pos]
            msg_len = int.from_bytes(body[pos + 1:pos + 4], "big")
            names.append(HandshakeType.name(msg_type))
            pos += 4 + msg_len
        if not names or pos != len(body):
            return "handshake (malformed)"
        return ", ".join(names)


def format_trace(events: List[TraceEvent]) -> str:
    """Render events one per line (the ssldump-style listing)."""
    return "\n".join(str(e) for e in events) + ("\n" if events else "")
