"""Minimal X.509-like certificates with real RSA signatures.

The paper's server sends an RSA certificate in handshake step 3, and Table 2
attributes ~232k cycles of that step to "X509 functions" -- OpenSSL's ASN.1
parsing, chain assembly and validity checking.  This module reproduces the
*behavioural* role of the certificate (it carries the server's public key,
is signed, serialized on the wire, parsed and signature-verified by the
client) with a simple deterministic TLV encoding instead of full DER.

The ASN.1-machinery cost that our compact encoder does not naturally incur
is charged as an explicit modelled mix (``X509_PROCESS``), calibrated so a
certificate parse/encode costs what the paper measured; this substitution is
recorded in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bignum import BigNum
from ..crypto.pkcs1 import digest_info
from ..crypto.rsa import RsaPrivateKey, RsaPublicKey
from ..crypto.sha1 import SHA1
from ..perf import charge, mix
from .codec import ByteReader, ByteWriter
from .errors import BadCertificate, DecodeError

#: Modelled ASN.1 template machinery per certificate parse or encode
#: (d2i_X509/i2d_X509, name comparison, validity checks).  Calibrated
#: against Table 2's "X509 functions" entry (~232k cycles per handshake).
X509_PROCESS = mix(movl=160_000, movb=90_000, cmpl=60_000, jnz=50_000,
                   addl=30_000, pushl=6_000, popl=6_000, call=4_000,
                   ret=4_000)

_MAGIC = b"RXC1"  # "repro x509-like certificate, v1"


@dataclass
class Certificate:
    """A parsed certificate."""

    subject: str
    issuer: str
    serial: int
    not_before: int
    not_after: int
    public_key: RsaPublicKey
    signature: bytes = b""

    # -- encoding ---------------------------------------------------------
    def tbs_bytes(self) -> bytes:
        """The to-be-signed portion."""
        w = ByteWriter()
        w.raw(_MAGIC)
        w.u32(self.serial)
        w.u32(self.not_before)
        w.u32(self.not_after)
        w.vec16(self.subject.encode("utf-8"))
        w.vec16(self.issuer.encode("utf-8"))
        w.vec16(self.public_key.n.to_bytes())
        w.vec16(self.public_key.e.to_bytes())
        return w.bytes()

    def to_bytes(self) -> bytes:
        if not self.signature:
            raise BadCertificate("certificate is unsigned")
        charge(X509_PROCESS, function="X509_functions")
        w = ByteWriter()
        tbs = self.tbs_bytes()
        w.vec24(tbs)
        w.vec16(self.signature)
        return w.bytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "Certificate":
        charge(X509_PROCESS, function="X509_functions")
        try:
            r = ByteReader(data)
            tbs = r.vec24()
            signature = r.vec16()
            r.expect_end()
            t = ByteReader(tbs)
            if t.raw(4) != _MAGIC:
                raise DecodeError("bad certificate magic")
            serial = t.u32()
            not_before = t.u32()
            not_after = t.u32()
            subject = t.vec16().decode("utf-8")
            issuer = t.vec16().decode("utf-8")
            n = BigNum.from_bytes(t.vec16())
            e = BigNum.from_bytes(t.vec16())
            t.expect_end()
        except DecodeError as exc:
            raise BadCertificate(str(exc)) from exc
        return cls(subject=subject, issuer=issuer, serial=serial,
                   not_before=not_before, not_after=not_after,
                   public_key=RsaPublicKey(n, e), signature=signature)

    # -- signing / verification ---------------------------------------------
    def sign_with(self, issuer_key: RsaPrivateKey) -> None:
        """Attach an RSA-SHA1 signature over the TBS bytes."""
        digest = SHA1(self.tbs_bytes()).digest()
        self.signature = issuer_key.sign("sha1", digest)

    def verify(self, issuer_public: RsaPublicKey) -> bool:
        """Check the signature against the issuer's public key."""
        if not self.signature:
            return False
        digest = SHA1(self.tbs_bytes()).digest()
        return issuer_public.verify(self.signature,
                                    digest_info("sha1", digest))

    def is_valid_at(self, timestamp: int) -> bool:
        return self.not_before <= timestamp <= self.not_after


def make_self_signed(subject: str, key: RsaPrivateKey, serial: int = 1,
                     not_before: int = 0,
                     not_after: int = 2 ** 32 - 1) -> Certificate:
    """Build and sign a self-signed certificate for ``key``."""
    cert = Certificate(subject=subject, issuer=subject, serial=serial,
                       not_before=not_before, not_after=not_after,
                       public_key=key.public())
    cert.sign_with(key)
    return cert


def verify_chain(chain, trusted=None, at_time: int | None = None) -> bool:
    """Verify a leaf-first certificate chain.

    Each certificate must be signed by the next one's key; the final
    certificate must either be self-signed or be issued by one of the
    ``trusted`` certificates.  ``at_time`` additionally checks validity
    windows.  Returns True iff the whole chain verifies -- the per-link
    RSA verifications are real public-key operations and are charged to
    the active profiler like any other.
    """
    if not chain:
        return False
    for cert in chain:
        if at_time is not None and not cert.is_valid_at(at_time):
            return False
    for child, issuer in zip(chain, chain[1:]):
        if child.issuer != issuer.subject:
            return False
        if not child.verify(issuer.public_key):
            return False
    root = chain[-1]
    if trusted:
        for anchor in trusted:
            if root.issuer == anchor.subject and \
                    root.verify(anchor.public_key):
                return True
        # The root itself may be one of the anchors.
        for anchor in trusted:
            if root.subject == anchor.subject and \
                    root.public_key.n == anchor.public_key.n:
                return root.verify(root.public_key) or \
                    root.verify(anchor.public_key)
        return False
    # No explicit anchors: accept a self-signed root.
    return root.subject == root.issuer and root.verify(root.public_key)


def make_ca_signed_pair(ca_subject: str, leaf_subject: str, ca_key,
                        leaf_key, serial_base: int = 100):
    """Convenience: build (leaf_cert, ca_cert) with a real signature link."""
    ca_cert = make_self_signed(ca_subject, ca_key, serial=serial_base)
    leaf = Certificate(subject=leaf_subject, issuer=ca_subject,
                       serial=serial_base + 1, not_before=0,
                       not_after=2 ** 32 - 1, public_key=leaf_key.public())
    leaf.sign_with(ca_key)
    return leaf, ca_cert
