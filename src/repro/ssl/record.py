"""SSLv3 record layer: fragmentation, MAC, padding, encryption.

Every byte on an SSL connection travels in a record::

    type(1) || version(2 = 0x0300) || length(2) || fragment

After the ChangeCipherSpec, the fragment is ``data || MAC || padding`` --
MAC-then-encrypt with the SSLv3 keyed MAC of :mod:`repro.crypto.mac`, CBC
padding whose final byte gives the padding length, and a per-direction
64-bit sequence number.  This layer is what the bulk-data-transfer phase of
the paper exercises: its cost is the private-key encryption plus the MAC
hashing whose shares grow with file size in Figure 2.

The paper notes (Section 6.2) that the server encrypts "a fragment that
consists of the data, the MAC value and some padding" -- precisely
:meth:`ConnectionState.seal`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from .. import perf
from ..crypto.mac import Ssl3MacContext, TlsMacContext, ssl3_mac, tls_mac
from ..crypto.util import ct_equal
from ..crypto.modes import CBC
from ..crypto.rc4 import RC4
from ..perf import charge, mix
from ..runtime import fastpath_enabled
from .ciphersuites import CipherSuite
from .errors import BadRecordMac, DecodeError, SequenceOverflow

SSL3_VERSION = 0x0300
TLS1_VERSION = 0x0301
SUPPORTED_VERSIONS = (SSL3_VERSION, TLS1_VERSION)
MAX_FRAGMENT = 16384

HEADER_LEN = 5


class ContentType:
    CHANGE_CIPHER_SPEC = 20
    ALERT = 21
    HANDSHAKE = 22
    APPLICATION_DATA = 23
    #: Pseudo-type for an SSLv2-format compatibility CLIENT-HELLO (not a
    #: real v3 content type; never appears on the wire in v3 records).
    V2_CLIENT_HELLO = -2

    _VALID = frozenset((20, 21, 22, 23))


#: Record assembly/parsing bookkeeping per record (header fields, length
#: checks, buffer copies) -- ``libssl`` work in the Table 1 accounting.
RECORD_CALL = mix(movl=40, movb=10, addl=8, cmpl=10, jnz=10, shll=2,
                  shrl=2, pushl=4, popl=4, call=2, ret=2)


@dataclass(slots=True)
class KeyMaterial:
    """Per-direction secrets cut from the key block (step 6a)."""

    mac_secret: bytes
    key: bytes
    iv: bytes


class ConnectionState:
    """One direction of an active (post-CCS) connection.

    ``version`` selects the record MAC and padding style: SSLv3 uses the
    nested keyed hash and zero padding; TLS 1.0 uses HMAC (with the record
    version in the MAC input) and padding bytes that all carry the padding
    length.
    """

    #: Sequence numbers are 64-bit on the wire; reaching the cap is fatal.
    SEQ_NUM_CAP = 1 << 64

    def __init__(self, suite: CipherSuite, material: KeyMaterial,
                 version: int = SSL3_VERSION,
                 seq_cap: int = SEQ_NUM_CAP,
                 offload=None):
        """``seq_cap`` lowers the 2^64 sequence-number wrap point so tests
        can exercise the overflow path without sealing 2^64 records.

        ``offload`` (an :class:`repro.engines.offload.OffloadPool`) routes
        bulk cipher+MAC work through modeled crypto engines when one is
        capable and unsaturated; the real crypto still runs -- under a
        scratch profiler -- so the wire bytes are identical either way."""
        if version not in SUPPORTED_VERSIONS:
            raise ValueError(f"unsupported protocol version 0x{version:04x}")
        if not 1 <= seq_cap <= self.SEQ_NUM_CAP:
            raise ValueError("seq_cap must be in [1, 2^64]")
        self.suite = suite
        self.version = version
        self.cipher: Optional[Union[CBC, RC4]] = suite.new_cipher(
            material.key, material.iv)
        self.mac_secret = material.mac_secret
        self.hash_factory = suite.hash_factory()
        self.seq_num = 0
        self.seq_cap = seq_cap
        #: Lazily built precomputed MAC state (fast path): the connection's
        #: secret||pad / ipad-opad prefix is hashed once and cloned per
        #: record, with the prefix charges replayed so modeled cycles match
        #: the plain functions bit for bit.
        self._mac_ctx: Optional[Union[Ssl3MacContext, TlsMacContext]] = None
        self.offload = offload

    def _mac(self, content_type: int, fragment: bytes) -> bytes:
        if self.version == SSL3_VERSION:
            if fastpath_enabled():
                if not isinstance(self._mac_ctx, Ssl3MacContext):
                    self._mac_ctx = Ssl3MacContext(self.hash_factory,
                                                   self.mac_secret)
                return self._mac_ctx.mac(self.seq_num, content_type,
                                         fragment)
            return ssl3_mac(self.hash_factory, self.mac_secret,
                            self.seq_num, content_type, fragment)
        if fastpath_enabled():
            if not isinstance(self._mac_ctx, TlsMacContext):
                self._mac_ctx = TlsMacContext(self.hash_factory,
                                              self.mac_secret)
            return self._mac_ctx.mac(self.seq_num, content_type,
                                     self.version, fragment)
        return tls_mac(self.hash_factory, self.mac_secret, self.seq_num,
                       content_type, self.version, fragment)

    # -- outgoing ---------------------------------------------------------
    def seal(self, content_type: int, fragment: bytes) -> bytes:
        """MAC, pad, encrypt one fragment; returns the ciphertext body."""
        if len(fragment) > MAX_FRAGMENT:
            raise ValueError("fragment exceeds SSLv3 maximum")
        if self.seq_num >= self.seq_cap:
            raise SequenceOverflow(
                "outgoing record sequence number exhausted")
        pool = self.offload
        if pool is not None and self.cipher is not None:
            suite = self.suite
            if suite.is_block:
                bs = self.cipher.block_size
                pad_len = bs - (len(fragment) + suite.mac_size + 1) % bs
                if pad_len == bs:
                    pad_len = 0
                tail = suite.mac_size + 1 + pad_len
            else:
                tail = suite.mac_size
            if pool.submit_record("seal", suite.cipher, suite.mac,
                                  len(fragment), tail):
                # Engine path: the pool charged dispatch + engine latency;
                # run the genuine crypto under a scratch profiler so the
                # ciphertext (and seq/MAC state) is bit-identical to the
                # software path without double-charging CPU cycles.
                with perf.activate(perf.Profiler()):
                    return self._seal_software(content_type, fragment)
        return self._seal_software(content_type, fragment)

    def _seal_software(self, content_type: int, fragment: bytes) -> bytes:
        with perf.region("mac"):
            mac = self._mac(content_type, fragment)
        self.seq_num += 1
        body = fragment + mac
        cipher = self.cipher
        if cipher is None:
            return body
        with perf.region("pri_encryption"):
            if isinstance(cipher, RC4):
                return cipher.process(body)
            bs = cipher.block_size
            pad_len = bs - (len(body) + 1) % bs
            if pad_len == bs:
                pad_len = 0
            if self.version == SSL3_VERSION:
                body += bytes(pad_len) + bytes([pad_len])
            else:  # TLS: every padding byte carries the padding length
                body += bytes([pad_len]) * (pad_len + 1)
            return cipher.encrypt(body)

    # -- incoming ------------------------------------------------------------
    def open(self, content_type: int, body: bytes) -> bytes:
        """Decrypt, strip padding, verify MAC; returns the plaintext.

        All post-decryption failures (bad padding, short record, MAC
        mismatch) are deliberately uniform: the MAC is computed over a
        best-effort fragment even when the padding is malformed, and every
        path raises the same :class:`BadRecordMac`.  Failing fast on bad
        padding -- before the MAC -- would hand a MAC-then-encrypt padding
        oracle (Vaudenay) to an attacker timing the two error paths.  The
        sequence number likewise advances exactly once per record, success
        or failure, so a rejected record cannot desynchronize the state.

        Reaching the 64-bit sequence-number cap is the one pre-crypto
        failure: the record cannot be authenticated without reusing a MAC
        sequence number, so :class:`SequenceOverflow` is raised before any
        processing (and before the counter advances -- the state is dead).
        """
        if self.seq_num >= self.seq_cap:
            raise SequenceOverflow(
                "incoming record sequence number exhausted")
        try:
            return self._open_checked(content_type, body)
        finally:
            self.seq_num += 1

    def _open_checked(self, content_type: int, body: bytes) -> bytes:
        pool = self.offload
        if pool is not None and self.cipher is not None:
            # Plaintext length is unknown pre-decrypt; the engine streams
            # the whole body through the cipher while the hash pipeline
            # consumes everything but the trailing MAC.
            data_est = max(0, len(body) - self.suite.mac_size)
            if pool.submit_record("open", self.suite.cipher, self.suite.mac,
                                  data_est, len(body) - data_est):
                # BadRecordMac still propagates from the scratch-profiled
                # run -- engine or not, failures stay uniform (the engine's
                # service time depends only on the record length).
                with perf.activate(perf.Profiler()):
                    return self._open_software(content_type, body)
        return self._open_software(content_type, body)

    def _open_software(self, content_type: int, body: bytes) -> bytes:
        cipher = self.cipher
        padding_ok = True
        if cipher is None:
            plain = body
        else:
            with perf.region("pri_decryption"):
                if isinstance(cipher, RC4):
                    plain = cipher.process(body)
                else:
                    bs = cipher.block_size
                    if not body or len(body) % bs:
                        # Structural: visible from the wire length alone,
                        # so rejecting before any crypto reveals nothing.
                        raise BadRecordMac(
                            "ciphertext not a whole number of blocks")
                    plain = cipher.decrypt(body)
                    pad_len = plain[-1]
                    if pad_len + 1 > len(plain) or (
                            self.version == SSL3_VERSION and pad_len >= bs):
                        padding_ok = False
                        pad_len = 0
                    elif self.version != SSL3_VERSION and any(
                            b != pad_len for b in plain[-(pad_len + 1):]):
                        # TLS: all padding bytes must equal pad_len.
                        padding_ok = False
                        pad_len = 0
                    plain = plain[:-(pad_len + 1)]
        mac_size = self.suite.mac_size
        if len(plain) < mac_size:
            padding_ok = False
            fragment, mac = plain, b""
        else:
            fragment, mac = plain[:-mac_size], plain[-mac_size:]
        with perf.region("mac"):
            expected = self._mac(content_type, fragment)
        if not ct_equal(mac, expected) or not padding_ok:
            raise BadRecordMac()
        return fragment


class RecordLayer:
    """Full-duplex record processing with pluggable pending states.

    Both directions start in the NULL state (no cipher, no MAC); the
    ChangeCipherSpec handshake messages switch each direction to the states
    prepared from the key block.
    """

    def __init__(self) -> None:
        self._read_state: Optional[ConnectionState] = None
        self._write_state: Optional[ConnectionState] = None
        self._inbuf = bytearray()
        self._saw_v3_record = False
        #: Version stamped on outgoing record headers; updated when the
        #: handshake negotiates TLS 1.0.
        self.version = SSL3_VERSION

    # -- state transitions ----------------------------------------------------
    def set_write_state(self, state: ConnectionState) -> None:
        self._write_state = state

    def set_read_state(self, state: ConnectionState) -> None:
        self._read_state = state

    @property
    def write_active(self) -> bool:
        return self._write_state is not None

    @property
    def read_active(self) -> bool:
        return self._read_state is not None

    # -- sending ------------------------------------------------------------
    def emit(self, content_type: int, payload: bytes) -> bytes:
        """Wrap ``payload`` into one or more records; returns wire bytes."""
        if content_type not in ContentType._VALID:
            raise ValueError(f"bad content type {content_type}")
        out = bytearray()
        offset = 0
        while True:
            fragment = payload[offset:offset + MAX_FRAGMENT]
            charge(RECORD_CALL, function="ssl3_write_bytes", module="libssl")
            if self._write_state is not None:
                body = self._write_state.seal(content_type, fragment)
            else:
                body = fragment
            out += bytes([content_type])
            out += self.version.to_bytes(2, "big")
            out += len(body).to_bytes(2, "big")
            out += body
            offset += len(fragment)
            if offset >= len(payload):
                break
        return bytes(out)

    # -- receiving ------------------------------------------------------------
    def feed_raw(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Buffer wire bytes; return completed ``(type, raw_body)`` records.

        Bodies are *not* decrypted here: the connection opens each record
        inside the profiler region of the handshake step it belongs to, so
        that e.g. the client-finished decryption lands in ``get_finished``
        as in Table 2.
        """
        self._inbuf += data
        records: List[Tuple[int, bytes]] = []
        # SSLv2-compatibility hello: an MSB-set 2-byte header, only legal
        # as the very first record on a connection.
        if (not self._saw_v3_record and len(self._inbuf) >= 2
                and self._inbuf[0] & 0x80):
            length = int.from_bytes(self._inbuf[:2], "big") & 0x7FFF
            if length > MAX_FRAGMENT:
                raise DecodeError("v2 record overflow")
            if len(self._inbuf) < 2 + length:
                return records  # incomplete v2 record; wait for more bytes
            body = bytes(self._inbuf[2:2 + length])
            del self._inbuf[:2 + length]
            self._saw_v3_record = True
            records.append((ContentType.V2_CLIENT_HELLO, body))
        while len(self._inbuf) >= HEADER_LEN:
            content_type = self._inbuf[0]
            version = int.from_bytes(self._inbuf[1:3], "big")
            length = int.from_bytes(self._inbuf[3:5], "big")
            if content_type not in ContentType._VALID:
                raise DecodeError(f"bad record type {content_type}")
            if version not in SUPPORTED_VERSIONS:
                raise DecodeError(f"bad record version 0x{version:04x}")
            if length > MAX_FRAGMENT + 2048:
                raise DecodeError("record overflow")
            if len(self._inbuf) < HEADER_LEN + length:
                break
            body = bytes(self._inbuf[HEADER_LEN:HEADER_LEN + length])
            del self._inbuf[:HEADER_LEN + length]
            self._saw_v3_record = True
            records.append((content_type, body))
        return records

    def open_record(self, content_type: int, body: bytes) -> bytes:
        """Decrypt/verify one raw record body from :meth:`feed_raw`."""
        charge(RECORD_CALL, function="ssl3_read_bytes", module="libssl")
        if content_type == ContentType.V2_CLIENT_HELLO:
            return body  # always plaintext, pre-encryption by definition
        if self._read_state is not None:
            return self._read_state.open(content_type, body)
        return body

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Convenience: parse and open in one step (tests, simple callers)."""
        return [(t, self.open_record(t, b)) for t, b in self.feed_raw(data)]
