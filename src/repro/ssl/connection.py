"""Shared machinery for the SSLv3 client and server state machines.

A connection owns a :class:`~repro.ssl.record.RecordLayer`, the running
handshake hashes (one MD5 + one SHA-1 context over every handshake message,
updated as messages are sent/received -- the paper explains this is why
"the hashing functions are called in most of the steps" of Table 2), an
outgoing byte buffer, and the plumbing to cut connection states from the
key block.

Subclasses implement ``_handle_handshake`` / ``_handle_ccs`` and drive the
handshake; this class routes records, enforces content-type legality and
manages application data once the handshake completes.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .. import perf
from ..crypto.md5 import MD5
from ..crypto.sha1 import SHA1
from ..perf import charge, mix
from . import kdf
from .ciphersuites import CipherSuite
from .errors import AlertDescription, AlertError, AlertLevel, DecodeError, \
    PeerAlert, SslError, UnexpectedMessage
from .handshake import HandshakeMessage, iter_messages
from .record import (
    ConnectionState, ContentType, KeyMaterial, RecordLayer, SSL3_VERSION,
    TLS1_VERSION,
)

#: BIO buffer control (flushing the handshake flight) -- Table 2's
#: ``BIO_ctrl, BIO_flush`` entries.
BIO_FLUSH = mix(movl=900, addl=150, cmpl=220, jnz=220, pushl=60, popl=60,
                call=40, ret=40)

#: End-of-handshake cleanup: freeing handshake buffers and zeroizing
#: secrets (step 9 of Table 2, which the paper measures at ~287k cycles).
SSL_CLEANUP = mix(movl=240_000, movb=85_000, addl=42_000, cmpl=52_000,
                  jnz=52_000, xorl=32_000, pushl=8_000, popl=8_000,
                  call=5_000, ret=5_000)


class ConnectionStats:
    """Byte/record counters for one connection endpoint."""

    __slots__ = ("records_sent", "records_received", "bytes_sent",
                 "bytes_received", "app_bytes_sent", "app_bytes_received")

    def __init__(self) -> None:
        self.records_sent = 0
        self.records_received = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.app_bytes_sent = 0
        self.app_bytes_received = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"ConnectionStats({inner})"


class SslConnection:
    """Common state for one endpoint of an SSLv3 connection."""

    is_server = False

    def __init__(self) -> None:
        self._records = RecordLayer()
        self._out = bytearray()
        self._app_in = bytearray()
        self._hs_buffer = bytearray()
        self._hs_md5: Optional[MD5] = None
        self._hs_sha1: Optional[SHA1] = None
        self.handshake_complete = False
        self.closed = False
        #: Wire statistics (records/bytes each way, app payload totals).
        self.stats = ConnectionStats()
        self.cipher_suite: Optional[CipherSuite] = None
        self.master_secret: Optional[bytes] = None
        self.client_random = b""
        self.server_random = b""
        #: Negotiated protocol version (SSLv3 until the hellos settle it).
        self.version = SSL3_VERSION
        #: Optional crypto-engine pool; servers set it so their record
        #: states (both directions run on the server's CPU) can offload.
        self._offload_pool = None

    def _set_version(self, version: int) -> None:
        self.version = version
        self._records.version = version

    @property
    def is_tls(self) -> bool:
        return self.version >= TLS1_VERSION

    # -- handshake hash management -----------------------------------------
    def _init_handshake_hashes(self) -> None:
        with perf.region("init_finished_mac"):
            self._hs_md5 = MD5()
            self._hs_sha1 = SHA1()

    def _update_handshake_hashes(self, raw: bytes) -> None:
        with perf.region("finish_mac"):
            self._hs_md5.update(raw)
            self._hs_sha1.update(raw)

    def _finished_hashes(self, sender: bytes) -> tuple:
        """SSLv3 finished hashes over the transcript (uses context copies)."""
        return kdf.finished_hashes(self._hs_md5.copy(), self._hs_sha1.copy(),
                                   self.master_secret, sender)

    def _compute_verify_data(self, for_client: bool) -> bytes:
        """Version-appropriate Finished payload over the transcript so far.

        SSLv3: the 16+20-byte MD5/SHA-1 finished hashes with the
        'CLNT'/'SRVR' sender labels; TLS 1.0: 12 bytes of PRF output over
        the transcript digests.
        """
        if self.is_tls:
            return kdf.tls_finished(self._hs_md5.copy(),
                                    self._hs_sha1.copy(),
                                    self.master_secret, for_client)
        sender = kdf.SENDER_CLIENT if for_client else kdf.SENDER_SERVER
        md5_h, sha1_h = self._finished_hashes(sender)
        return md5_h + sha1_h

    def _derive_master_secret(self, pre_master: bytes) -> bytes:
        if self.is_tls:
            return kdf.tls_master_secret(pre_master, self.client_random,
                                         self.server_random)
        return kdf.master_secret(pre_master, self.client_random,
                                 self.server_random)

    # -- outgoing ---------------------------------------------------------------
    def _emit(self, content_type: int, payload: bytes) -> bytes:
        wire = self._records.emit(content_type, payload)
        # One record per MAX_FRAGMENT-sized chunk (at least one).
        self.stats.records_sent += max(
            1, -(-len(payload) // 16384))
        return wire

    def _send_handshake(self, msg: HandshakeMessage) -> None:
        raw = msg.to_bytes()
        self._update_handshake_hashes(raw)
        self._out += self._emit(ContentType.HANDSHAKE, raw)

    def _send_ccs(self) -> None:
        self._out += self._emit(ContentType.CHANGE_CIPHER_SPEC, b"\x01")

    def _send_alert(self, level: int, description: int) -> None:
        body = bytes([level, description])
        self._out += self._emit(ContentType.ALERT, body)

    def _flush(self) -> None:
        """Model the BIO flush of a handshake flight."""
        charge(BIO_FLUSH, function="BIO_ctrl", module="libssl")

    def pending_output(self) -> bytes:
        """Drain bytes destined for the peer."""
        out = bytes(self._out)
        self._out.clear()
        self.stats.bytes_sent += len(out)
        return out

    # -- incoming -------------------------------------------------------------
    @contextmanager
    def _alert_guard(self) -> Iterator[None]:
        """Map record-processing failures to alerts + teardown."""
        try:
            yield
        except AlertError as exc:
            self._send_alert(exc.level, exc.description)
            self.closed = True
            raise
        except DecodeError:
            # Malformed wire data: alert the peer and tear down, exactly
            # like any alert-mapped failure.
            self._send_alert(AlertLevel.FATAL,
                             AlertDescription.ILLEGAL_PARAMETER)
            self.closed = True
            raise

    def receive(self, data: bytes) -> None:
        """Feed wire bytes from the peer through the state machine."""
        if self.closed:
            raise SslError("connection is closed")
        self.stats.bytes_received += len(data)
        with self._alert_guard():
            for content_type, body in self._records.feed_raw(data):
                self.stats.records_received += 1
                if self._defer_record(content_type, body):
                    continue
                self._process_record(content_type, body)
        self._after_receive()

    def _process_record(self, content_type: int, body: bytes) -> None:
        """Open and dispatch one raw record inside its step region."""
        with perf.region(self._region_for_record(content_type)):
            payload = self._records.open_record(content_type, body)
            self._dispatch(content_type, payload)

    def _defer_record(self, content_type: int, body: bytes) -> bool:
        """Hook: hold a raw record for later processing (server batching).

        Returning True makes :meth:`receive` skip the record; the subclass
        owns replaying it (still undecrypted -- the read state may change
        before it is opened).
        """
        return False

    def _after_receive(self) -> None:
        """Hook: work deferred until after record dispatch.

        Runs outside every record's step region so that cross-connection
        work (the server's batch flush resumes *other* handshakes) is not
        mis-attributed to the step that happened to trigger it.
        """

    def _dispatch(self, content_type: int, payload: bytes) -> None:
        if content_type == ContentType.V2_CLIENT_HELLO:
            self._handle_v2_hello(payload)
            return
        if content_type == ContentType.HANDSHAKE:
            self._hs_buffer += payload
            for msg_type, body, raw in iter_messages(self._hs_buffer):
                self._handle_handshake(msg_type, body, raw)
        elif content_type == ContentType.CHANGE_CIPHER_SPEC:
            if payload != b"\x01":
                raise UnexpectedMessage("malformed change_cipher_spec")
            if self._hs_buffer:
                raise UnexpectedMessage(
                    "change_cipher_spec inside a handshake message")
            self._handle_ccs()
        elif content_type == ContentType.ALERT:
            self._handle_alert(payload)
        elif content_type == ContentType.APPLICATION_DATA:
            if not self.handshake_complete:
                raise UnexpectedMessage(
                    "application data before handshake completion")
            self.stats.app_bytes_received += len(payload)
            self._app_in += payload

    def _handle_alert(self, payload: bytes) -> None:
        if len(payload) != 2:
            raise UnexpectedMessage("malformed alert")
        level, description = payload
        if description == 0:  # close_notify
            self.closed = True
            return
        if level == AlertLevel.FATAL:
            self.closed = True
            raise PeerAlert(level, description)

    # -- application data ---------------------------------------------------------
    def write(self, data: bytes) -> None:
        """Encrypt and queue application data."""
        if not self.handshake_complete:
            raise SslError("handshake not complete")
        if self.closed:
            raise SslError("connection is closed")
        self.stats.app_bytes_sent += len(data)
        with perf.region("bulk_transfer"):
            self._out += self._emit(ContentType.APPLICATION_DATA, data)

    def read(self) -> bytes:
        """Drain decrypted application data received so far."""
        data = bytes(self._app_in)
        self._app_in.clear()
        return data

    def close(self) -> None:
        """Send close_notify and mark the connection closed."""
        if not self.closed:
            self._send_alert(AlertLevel.WARNING, 0)
            self.closed = True

    # -- key material ---------------------------------------------------------------
    def _build_states(self) -> tuple:
        """Cut the key block into (client_state, server_state)."""
        suite = self.cipher_suite
        if self.is_tls:
            block = kdf.tls_key_block(self.master_secret,
                                      self.client_random,
                                      self.server_random,
                                      suite.key_material_length())
        else:
            block = kdf.key_block(self.master_secret, self.client_random,
                                  self.server_random,
                                  suite.key_material_length())
        mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
        pos = 0

        def cut(n: int) -> bytes:
            nonlocal pos
            piece = block[pos:pos + n]
            pos += n
            return piece

        client_mac, server_mac = cut(mk), cut(mk)
        if suite.export:
            client_secret = cut(suite.secret_key_len)
            server_secret = cut(suite.secret_key_len)
            (client_key, server_key, client_iv,
             server_iv) = self._expand_export_keys(
                suite, client_secret, server_secret)
        else:
            client_key, server_key = cut(kk), cut(kk)
            client_iv, server_iv = cut(ik), cut(ik)
        client_state = ConnectionState(
            suite, KeyMaterial(client_mac, client_key, client_iv),
            version=self.version, offload=self._offload_pool)
        server_state = ConnectionState(
            suite, KeyMaterial(server_mac, server_key, server_iv),
            version=self.version, offload=self._offload_pool)
        return client_state, server_state

    def _expand_export_keys(self, suite: CipherSuite,
                            client_secret: bytes,
                            server_secret: bytes) -> tuple:
        """Expand export-grade short secrets into full write keys + IVs.

        SSLv3: ``final_key = MD5(secret || randoms)``, IVs from
        ``MD5(randoms)``.  TLS 1.0: PRF with the "client write key" /
        "server write key" / "IV block" labels over the randoms.
        """
        cr, sr = self.client_random, self.server_random
        kk, ik = suite.key_len, suite.iv_len
        if self.is_tls:
            client_key = kdf.tls_prf(client_secret, b"client write key",
                                     cr + sr, kk)
            server_key = kdf.tls_prf(server_secret, b"server write key",
                                     cr + sr, kk)
            iv_block = kdf.tls_prf(b"", b"IV block", cr + sr, 2 * ik)
            return client_key, server_key, iv_block[:ik], iv_block[ik:]
        client_key = MD5(client_secret + cr + sr).digest()[:kk]
        server_key = MD5(server_secret + sr + cr).digest()[:kk]
        client_iv = MD5(cr + sr).digest()[:ik]
        server_iv = MD5(sr + cr).digest()[:ik]
        return client_key, server_key, client_iv, server_iv

    # -- hooks ----------------------------------------------------------------------
    def _handle_handshake(self, msg_type: int, body: bytes,
                          raw: bytes) -> None:
        raise NotImplementedError

    def _handle_v2_hello(self, payload: bytes) -> None:
        raise UnexpectedMessage(
            "v2 compatibility hello not acceptable here")

    def _handle_ccs(self) -> None:
        raise NotImplementedError

    def _region_for_record(self, content_type: int) -> str:
        raise NotImplementedError
