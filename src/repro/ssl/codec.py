"""Byte-level encoding helpers for SSLv3 wire structures.

SSLv3 uses big-endian fixed-width integers and length-prefixed vectors with
1-, 2- or 3-byte length fields.  These two small classes keep the message
serializers in :mod:`repro.ssl.handshake` declarative and give uniform
bounds checking (:class:`~repro.ssl.errors.DecodeError` on any truncation).
"""

from __future__ import annotations

from .errors import DecodeError


class ByteWriter:
    """Append-only builder for wire structures."""

    def __init__(self) -> None:
        self._buf = bytearray()

    def u8(self, v: int) -> "ByteWriter":
        if not 0 <= v < (1 << 8):
            raise ValueError(f"u8 out of range: {v}")
        self._buf.append(v)
        return self

    def u16(self, v: int) -> "ByteWriter":
        if not 0 <= v < (1 << 16):
            raise ValueError(f"u16 out of range: {v}")
        self._buf += v.to_bytes(2, "big")
        return self

    def u24(self, v: int) -> "ByteWriter":
        if not 0 <= v < (1 << 24):
            raise ValueError(f"u24 out of range: {v}")
        self._buf += v.to_bytes(3, "big")
        return self

    def u32(self, v: int) -> "ByteWriter":
        if not 0 <= v < (1 << 32):
            raise ValueError(f"u32 out of range: {v}")
        self._buf += v.to_bytes(4, "big")
        return self

    def raw(self, data: bytes) -> "ByteWriter":
        self._buf += data
        return self

    def vec8(self, data: bytes) -> "ByteWriter":
        """1-byte-length-prefixed opaque vector."""
        return self.u8(len(data)).raw(data)

    def vec16(self, data: bytes) -> "ByteWriter":
        """2-byte-length-prefixed opaque vector."""
        return self.u16(len(data)).raw(data)

    def vec24(self, data: bytes) -> "ByteWriter":
        """3-byte-length-prefixed opaque vector."""
        return self.u24(len(data)).raw(data)

    def __len__(self) -> int:
        return len(self._buf)

    def bytes(self) -> bytes:
        return bytes(self._buf)


class ByteReader:
    """Sequential reader with strict bounds checking."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    def _take(self, n: int) -> bytes:
        if n < 0 or self._pos + n > len(self._data):
            raise DecodeError(
                f"truncated structure: need {n} bytes at offset {self._pos}, "
                f"have {len(self._data) - self._pos}")
        out = self._data[self._pos:self._pos + n]
        self._pos += n
        return out

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return int.from_bytes(self._take(2), "big")

    def u24(self) -> int:
        return int.from_bytes(self._take(3), "big")

    def u32(self) -> int:
        return int.from_bytes(self._take(4), "big")

    def raw(self, n: int) -> bytes:
        return self._take(n)

    def vec8(self) -> bytes:
        return self._take(self.u8())

    def vec16(self) -> bytes:
        return self._take(self.u16())

    def vec24(self) -> bytes:
        return self._take(self.u24())

    def remaining(self) -> int:
        return len(self._data) - self._pos

    def rest(self) -> bytes:
        return self._take(self.remaining())

    def expect_end(self) -> None:
        if self.remaining():
            raise DecodeError(
                f"{self.remaining()} unparsed trailing bytes")
