"""Stateless session tickets (RFC 5077 shape) for the SSL stack.

The paper's Section 4.1 shows resumption is the single biggest handshake
lever -- it skips the RSA private operation entirely -- but the id-based
:class:`~repro.ssl.session.SessionCache` pays for that with O(clients)
server memory, which is exactly the scaling bottleneck the farm's
shared/partitioned cache topologies dance around.  Encrypted session
tickets move the state to the *client*: the server seals the session's
resumption state (cipher suite, master secret, creation time, lifetime)
under a symmetric ticket key and hands the opaque blob back in a
NewSessionTicket message; a returning client presents the blob and the
server recovers everything it needs with two symmetric operations and no
lookup -- O(0) server memory per client.

Ticket wire format (all lengths fixed except the ciphertext)::

    key_name(16) || iv(16) || ciphertext(16n) || hmac_sha1(20)

mirroring the RFC 5077 recommended construction (AES-CBC + HMAC over
name||iv||ciphertext).  The sealed state is::

    suite_id(2) || master_secret(48) || created_at(8, f64) ||
    lifetime(8, f64) || pkcs7 padding

:class:`TicketKeyRing` provides deterministic virtual-clock key rotation:
keys are *derived*, not stored -- ``(seed, epoch)`` hashes to the AES and
MAC keys, where ``epoch = floor(now / rotation_interval)`` on the
caller's virtual clock.  That makes the ring pure configuration: it
pickles trivially into farm worker processes, every worker derives
identical keys, and rotation needs no mutable shared state.  A
configurable ``accept_window`` keeps the last N epochs' keys decryptable
(mint always uses the current epoch); a ticket sealed under an
acceptable-but-stale key is accepted *and renewed* -- the server re-mints
it under the current key, the RFC 5077 rollover flow.

Every byte of crypto here runs through the :mod:`repro.crypto`
primitives, so ticket seal/open costs land in the profiler exactly like
the rest of the handshake and the anatomy tables stay honest.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from .. import perf
from ..crypto.aes import AES
from ..crypto.mac import hmac
from ..crypto.md5 import MD5
from ..crypto.modes import CBC
from ..crypto.rand import PseudoRandom
from ..crypto.sha1 import SHA1
from ..crypto.util import ct_equal
from ..perf import charge, mix

#: The SessionTicket ClientHello extension number (RFC 5077 section 3.2).
SESSION_TICKET_EXT = 35

KEY_NAME_LENGTH = 16
IV_LENGTH = 16
MAC_LENGTH = 20
_BLOCK = 16
#: suite_id(2) + master_secret(48) + created_at(8) + lifetime(8)
_STATE_LENGTH = 66
_MIN_TICKET = KEY_NAME_LENGTH + IV_LENGTH + _BLOCK + MAC_LENGTH

#: Modelled libssl bookkeeping per ticket seal/open beyond the crypto
#: itself: extension parsing, key-name matching, state (de)serialization
#: (the tlsext_ticket_key callback plumbing in OpenSSL terms).
TICKET_PROC = mix(movl=2_000, movb=400, cmpl=350, jnz=300, addl=150,
                  pushl=60, popl=60, call=40, ret=40)


@dataclass(slots=True)
class TicketState:
    """The resumption state recovered from a decrypted ticket."""

    cipher_suite_id: int
    master_secret: bytes
    created_at: float
    lifetime: float

    def expired_at(self, now: float) -> bool:
        return now - self.created_at > self.lifetime


class TicketKeyRing:
    """Derived, epoch-rotated ticket keys with a bounded accept window.

    ``rotation_interval`` is in the caller's virtual seconds (the server
    passes its profiler clock); ``accept_window`` is how many *previous*
    epochs' keys still open tickets (0 = only the current key).  The ring
    holds no mutable state -- keys are re-derived per call from
    ``(seed, epoch)`` -- so one ring can be shared by every worker of a
    farm, serial or process-parallel, and stays deterministic.
    """

    def __init__(self, seed: bytes = b"ticket-keys",
                 rotation_interval: float = 3600.0,
                 accept_window: int = 1):
        if rotation_interval <= 0:
            raise ValueError("rotation interval must be positive")
        if accept_window < 0:
            raise ValueError("accept window must be non-negative")
        self.seed = bytes(seed)
        self.rotation_interval = float(rotation_interval)
        self.accept_window = int(accept_window)
        # The public key-name label is configuration, not modeled work:
        # derive it under a scratch profiler so ring construction charges
        # nothing to whatever profiler happens to be active.
        with perf.activate(perf.Profiler()):
            self._label = MD5(b"ticket-ring:" + self.seed).digest()[:8]

    # -- epochs ------------------------------------------------------------
    def epoch_of(self, now: float) -> int:
        """The key epoch in force at virtual time ``now``."""
        return max(0, int(now // self.rotation_interval))

    def key_name(self, epoch: int) -> bytes:
        """16-byte public key name: ring label + epoch counter."""
        return self._label + epoch.to_bytes(8, "big")

    def _derive_keys(self, epoch: int) -> Tuple[bytes, bytes]:
        """(aes_key, mac_key) for ``epoch`` -- real, charged hash work
        (the model of fetching/scheduling the rotated ticket key)."""
        material = self.seed + epoch.to_bytes(8, "big")
        aes_key = MD5(b"ticket-aes:" + material).digest()
        mac_key = SHA1(b"ticket-mac:" + material).digest()
        return aes_key, mac_key

    # -- seal --------------------------------------------------------------
    def mint(self, *, cipher_suite_id: int, master_secret: bytes,
             created_at: float, lifetime: float,
             rng: PseudoRandom, now: float) -> bytes:
        """Seal resumption state into an opaque ticket under the current
        epoch's key.  ``rng`` supplies the IV (charged as
        ``rand_pseudo_bytes``, like every other handshake random)."""
        if len(master_secret) != 48:
            raise ValueError("master secret must be 48 bytes")
        charge(TICKET_PROC, function="ssl3_session_ticket", module="libssl")
        epoch = self.epoch_of(now)
        name = self.key_name(epoch)
        aes_key, mac_key = self._derive_keys(epoch)
        state = (cipher_suite_id.to_bytes(2, "big") + master_secret
                 + struct.pack(">d", created_at)
                 + struct.pack(">d", lifetime))
        pad = _BLOCK - len(state) % _BLOCK
        state += bytes([pad]) * pad
        with perf.region("rand_pseudo_bytes"):
            iv = rng.bytes(IV_LENGTH)
        ciphertext = CBC(AES(aes_key), iv).encrypt(state)
        mac = hmac(SHA1, mac_key, name + iv + ciphertext)
        return name + iv + ciphertext + mac

    # -- open --------------------------------------------------------------
    def open(self, ticket: bytes,
             now: float) -> Tuple[Optional[TicketState], bool]:
        """Authenticate and decrypt a ticket at virtual time ``now``.

        Returns ``(state, renew)``.  ``state`` is ``None`` for *any*
        failure -- truncated blob, unknown or out-of-window key name, MAC
        mismatch, malformed plaintext, expired session -- and the caller
        falls back to a full handshake; tickets never produce a fatal
        alert.  ``renew`` is True when the ticket opened under a
        previous (still accepted) epoch's key and should be re-minted
        under the current one.
        """
        charge(TICKET_PROC, function="ssl3_session_ticket", module="libssl")
        if len(ticket) < _MIN_TICKET:
            return None, False
        name = ticket[:KEY_NAME_LENGTH]
        iv = ticket[KEY_NAME_LENGTH:KEY_NAME_LENGTH + IV_LENGTH]
        ciphertext = ticket[KEY_NAME_LENGTH + IV_LENGTH:-MAC_LENGTH]
        mac = ticket[-MAC_LENGTH:]
        if name[:8] != self._label:
            return None, False
        epoch = int.from_bytes(name[8:], "big")
        current = self.epoch_of(now)
        if epoch > current or current - epoch > self.accept_window:
            # Future-dated or rotated out of the accept window: the key
            # no longer exists server-side.
            return None, False
        if len(ciphertext) % _BLOCK:
            return None, False
        aes_key, mac_key = self._derive_keys(epoch)
        expected = hmac(SHA1, mac_key, name + iv + ciphertext)
        if not ct_equal(mac, expected):
            return None, False
        plaintext = CBC(AES(aes_key), iv).decrypt(ciphertext)
        pad = plaintext[-1]
        if not 1 <= pad <= _BLOCK or \
                plaintext[-pad:] != bytes([pad]) * pad:
            return None, False
        state = plaintext[:-pad]
        if len(state) != _STATE_LENGTH:
            return None, False
        ticket_state = TicketState(
            cipher_suite_id=int.from_bytes(state[:2], "big"),
            master_secret=state[2:50],
            created_at=struct.unpack(">d", state[50:58])[0],
            lifetime=struct.unpack(">d", state[58:66])[0])
        if ticket_state.lifetime <= 0 or ticket_state.expired_at(now):
            return None, False
        return ticket_state, epoch < current
