"""SSLv3 cipher suites built on the from-scratch crypto substrate.

The paper's experiments run ``DES-CBC3-SHA`` (SSL_RSA_WITH_3DES_EDE_CBC_SHA):
RSA key exchange, 3DES-CBC bulk encryption, SHA-1 record MAC, with MD5 also
used in the handshake's key derivation and finished hashes.  The registry
additionally carries the other suites whose kernels the paper profiles so
the benchmarks can sweep ciphers (AES-128/256-CBC, single DES, RC4 with MD5
or SHA-1), plus a NULL cipher used to isolate non-crypto costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, Union

from ..crypto.aes import AES
from ..crypto.des import DES, TripleDES
from ..crypto.md5 import MD5
from ..crypto.modes import CBC
from ..crypto.rc4 import RC4
from ..crypto.sha1 import SHA1

HashFactory = Callable[[], Union[MD5, SHA1]]


@dataclass(frozen=True)
class CipherSuite:
    """Static description of one cipher suite."""

    suite_id: int
    name: str            # OpenSSL-style short name, as the paper prints it
    key_exchange: str    # only "RSA" in SSLv3 scope here
    cipher: str          # "3des" | "des" | "aes" | "rc4" | "null"
    is_block: bool
    key_len: int         # bulk cipher key bytes
    iv_len: int          # CBC IV bytes (0 for stream/null)
    block_size: int      # cipher block bytes (1 for stream/null)
    mac: str             # "sha1" | "md5"
    #: Export-grade suite: only ``secret_key_len`` bytes of keying material
    #: come from the key block; the final write keys are expanded from them
    #: (40-bit security inside a full-width cipher key).
    export: bool = False
    secret_key_len: int = 0

    @property
    def mac_size(self) -> int:
        return 20 if self.mac == "sha1" else 16

    @property
    def mac_key_len(self) -> int:
        return self.mac_size

    def hash_factory(self) -> HashFactory:
        return SHA1 if self.mac == "sha1" else MD5

    def key_material_length(self) -> int:
        """Bytes of key block needed for both directions.

        Export suites draw only the short secret keys from the key block;
        their full-width write keys and IVs are derived separately.
        """
        if self.export:
            return 2 * (self.mac_key_len + self.secret_key_len)
        return 2 * (self.mac_key_len + self.key_len + self.iv_len)

    def new_cipher(self, key: bytes, iv: bytes,
                   ) -> Optional[Union[CBC, RC4]]:
        """Instantiate the bulk cipher (``None`` for the NULL cipher)."""
        if len(key) != self.key_len:
            raise ValueError(f"{self.name}: key must be {self.key_len} bytes")
        if len(iv) != self.iv_len:
            raise ValueError(f"{self.name}: IV must be {self.iv_len} bytes")
        if self.cipher == "null":
            return None
        if self.cipher == "rc4":
            return RC4(key)
        if self.cipher == "3des":
            return CBC(TripleDES(key), iv)
        if self.cipher == "des":
            return CBC(DES(key), iv)
        if self.cipher == "aes":
            return CBC(AES(key), iv)
        raise ValueError(f"unknown cipher {self.cipher!r}")


#: The paper's suite and the companions its Section 5 kernels imply.
DES_CBC3_SHA = CipherSuite(0x000A, "DES-CBC3-SHA", "RSA", "3des", True,
                           24, 8, 8, "sha1")
DES_CBC_SHA = CipherSuite(0x0009, "DES-CBC-SHA", "RSA", "des", True,
                          8, 8, 8, "sha1")
RC4_MD5 = CipherSuite(0x0004, "RC4-MD5", "RSA", "rc4", False,
                      16, 0, 1, "md5")
RC4_SHA = CipherSuite(0x0005, "RC4-SHA", "RSA", "rc4", False,
                      16, 0, 1, "sha1")
AES128_SHA = CipherSuite(0x002F, "AES128-SHA", "RSA", "aes", True,
                         16, 16, 16, "sha1")
AES256_SHA = CipherSuite(0x0035, "AES256-SHA", "RSA", "aes", True,
                         32, 16, 16, "sha1")
NULL_MD5 = CipherSuite(0x0001, "NULL-MD5", "RSA", "null", False,
                       0, 0, 1, "md5")
NULL_SHA = CipherSuite(0x0002, "NULL-SHA", "RSA", "null", False,
                       0, 0, 1, "sha1")

# Export-grade suites (40-bit effective keys): era-appropriate for the
# paper's OpenSSL.  The bulk kernels run at full width -- export weakness
# is key entropy, not speed -- so their bulk cost matches the full suites.
EXP_RC4_MD5 = CipherSuite(0x0003, "EXP-RC4-MD5", "RSA", "rc4", False,
                          16, 0, 1, "md5", export=True, secret_key_len=5)
EXP_DES_CBC_SHA = CipherSuite(0x0008, "EXP-DES-CBC-SHA", "RSA", "des", True,
                              8, 8, 8, "sha1", export=True,
                              secret_key_len=5)

# Ephemeral Diffie-Hellman suites: the server sends a signed
# ServerKeyExchange (the step the paper's RSA configuration skips) and
# both sides perform DH operations instead of RSA key transport.
EDH_RSA_DES_CBC3_SHA = CipherSuite(0x0016, "EDH-RSA-DES-CBC3-SHA",
                                   "DHE_RSA", "3des", True, 24, 8, 8,
                                   "sha1")
DHE_RSA_AES128_SHA = CipherSuite(0x0033, "DHE-RSA-AES128-SHA", "DHE_RSA",
                                 "aes", True, 16, 16, 16, "sha1")
DHE_RSA_AES256_SHA = CipherSuite(0x0039, "DHE-RSA-AES256-SHA", "DHE_RSA",
                                 "aes", True, 32, 16, 16, "sha1")

ALL_SUITES: Tuple[CipherSuite, ...] = (
    DES_CBC3_SHA, DES_CBC_SHA, RC4_MD5, RC4_SHA, AES128_SHA, AES256_SHA,
    EDH_RSA_DES_CBC3_SHA, DHE_RSA_AES128_SHA, DHE_RSA_AES256_SHA,
    EXP_RC4_MD5, EXP_DES_CBC_SHA,
    NULL_MD5, NULL_SHA,
)

BY_ID: Dict[int, CipherSuite] = {s.suite_id: s for s in ALL_SUITES}
BY_NAME: Dict[str, CipherSuite] = {s.name: s for s in ALL_SUITES}

#: The configuration of the paper's experiments (Section 3.1).
DEFAULT_SUITE = DES_CBC3_SHA


def lookup(suite: Union[int, str, CipherSuite]) -> CipherSuite:
    """Resolve a suite by id, name or identity."""
    if isinstance(suite, CipherSuite):
        return suite
    if isinstance(suite, int):
        if suite not in BY_ID:
            raise KeyError(f"unknown cipher suite id 0x{suite:04x}")
        return BY_ID[suite]
    if suite not in BY_NAME:
        raise KeyError(f"unknown cipher suite {suite!r}")
    return BY_NAME[suite]
