"""SSL session objects and the server-side session cache.

The paper observes that "session re-negotiation using the previously setup
keys can avoid the public key encryption, therefore greatly reduces the
handshake overhead" (Section 4.1).  The session cache enables exactly that:
a client presenting a cached session id resumes with an abbreviated
handshake -- no certificate, no ClientKeyExchange, no RSA private operation.
The resumption ablation benchmark quantifies the saving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


@dataclass(slots=True)
class SslSession:
    """Negotiated parameters kept for resumption.

    ``created_at`` / ``lifetime`` support cache expiry (SSL_CTX_set_timeout
    semantics; OpenSSL's default was 300 s for SSLv3).  Timestamps are
    caller-supplied virtual time so experiments stay deterministic.
    """

    session_id: bytes
    cipher_suite_id: int
    master_secret: bytes
    created_at: float = 0.0
    lifetime: float = 300.0
    #: Opaque RFC-5077-style session ticket (see :mod:`repro.ssl.ticket`);
    #: ``None`` for id-only sessions.  A client holding one offers the
    #: ticket instead of relying on server-side cache state.
    ticket: Optional[bytes] = None

    def __post_init__(self) -> None:
        if not 1 <= len(self.session_id) <= 32:
            raise ValueError("session id must be 1..32 bytes")
        if len(self.master_secret) != 48:
            raise ValueError("master secret must be 48 bytes")
        if self.lifetime <= 0:
            raise ValueError("lifetime must be positive")

    def expired_at(self, now: float) -> bool:
        return now - self.created_at > self.lifetime


#: One recorded cache mutation, replayable through :meth:`SessionCache.replay`:
#: ``("get", session_id, now, hit)``, ``("put", session)`` or
#: ``("remove", session_id)``.  Plain tuples so logs cross pickle/pipe
#: boundaries without custom reducers.
CacheOp = Tuple


class CacheReplayDivergence(RuntimeError):
    """A replayed lookup disagreed with the outcome its recorder observed.

    Raised by :meth:`SessionCache.replay` when a worker's round-local view
    of the shared cache let a handshake hit (or miss) where the
    serial-order fold says the opposite.  This can only happen when two
    workers race on the *same* entry within one scheduling round -- an
    expiry-boundary duplicate offer or a capacity eviction landing on the
    very session another worker resumes -- which lockstep fan-out cannot
    replicate.  The run's modeled results would no longer be bit-identical
    to the serial loop, so the parallel backend fails loudly instead of
    merging a silently divergent result; re-run with ``parallel=0``.
    """


class SessionCache:
    """LRU cache of resumable sessions, keyed by session id.

    Every way an entry can leave the cache early is counted in one
    ``evictions`` counter: capacity-driven LRU drops in :meth:`put`,
    expired entries dropped on lookup in :meth:`get`, sweeps by
    :meth:`purge_expired`, and explicit :meth:`remove` calls.
    ``hits``/``misses`` count lookups only, so a farm shard's resumption
    hit-rate and its churn can be read separately.

    Storing a session under an id that is already live is *replacement*:
    the new session takes the entry's place (and its LRU slot moves to
    most-recent, exactly as a fresh insert's would), and the displaced
    session is counted in ``replacements`` -- it left the cache early but
    not through any eviction path, so folding it into ``evictions`` would
    double-book churn.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, SslSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.replacements = 0

    def put(self, session: SslSession) -> None:
        sid = session.session_id
        if sid in self._entries:
            # A live entry is being overwritten in place; count the
            # displaced session so churn accounting stays complete.
            self._entries.move_to_end(sid)
            self.replacements += 1
        self._entries[sid] = session
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, session_id: bytes,
            now: Optional[float] = None) -> Optional[SslSession]:
        """Look up a session; expired entries are dropped and miss.

        ``now`` is virtual time; omit it to skip expiry checking (the
        default keeps experiment determinism unless a clock is modelled).
        """
        session = self._entries.get(session_id)
        if session is None:
            self.misses += 1
            return None
        if now is not None and session.expired_at(now):
            del self._entries[session_id]
            self.misses += 1
            self.evictions += 1
            return None
        self._entries.move_to_end(session_id)
        self.hits += 1
        return session

    def purge_expired(self, now: float) -> int:
        """Drop every expired session; returns how many were removed."""
        dead = [sid for sid, s in self._entries.items()
                if s.expired_at(now)]
        for sid in dead:
            del self._entries[sid]
        self.evictions += len(dead)
        return len(dead)

    def remove(self, session_id: bytes) -> Optional[SslSession]:
        """Drop an entry explicitly; counted as an eviction when present.

        Removing an id that is not cached is a no-op (and not churn).
        Returns the removed session, if any.
        """
        session = self._entries.pop(session_id, None)
        if session is not None:
            self.evictions += 1
        return session

    def peek(self, session_id: bytes) -> Optional[SslSession]:
        """Non-mutating lookup: no counters, no LRU reordering, no expiry
        drop.  The process-parallel farm backend uses this to resolve the
        round-boundary cache view it ships to worker processes."""
        return self._entries.get(session_id)

    def replay(self, ops: Iterable[CacheOp]) -> int:
        """Fold a recorded mutation log into this cache, in order.

        The process-parallel farm backend records every cache touch a
        worker process makes (against its round-local mirror) and replays
        the per-worker logs here, in worker-index order -- the order the
        serial loop interleaves workers.  Each ``get`` is re-executed for
        real, so hit/miss/eviction counters and LRU order end up exactly
        as the serial loop would have left them.

        A replayed ``get`` whose hit/miss outcome differs from what the
        recording worker observed raises :class:`CacheReplayDivergence`:
        the worker's handshake already acted on the stale outcome, so the
        merged result would not be bit-identical to serial.  (The benign
        disagreement -- recorder saw its entry expire, fold finds the
        entry already dropped by an earlier worker -- is *not* a
        divergence: both sides missed, and the fold's counters are the
        serial ones by construction.)

        Returns the number of operations replayed.
        """
        count = 0
        for op in ops:
            kind = op[0]
            if kind == "get":
                _, session_id, now, saw_hit = op
                hit = self.get(session_id, now) is not None
                if hit != saw_hit:
                    raise CacheReplayDivergence(
                        f"shared-cache fold diverged for session id "
                        f"{session_id.hex()}: the worker's round-local "
                        f"view {'resumed' if saw_hit else 'missed'} but "
                        f"the serial-order replay "
                        f"{'hits' if hit else 'misses'}; a same-round "
                        f"cross-worker race on this entry cannot be "
                        f"fanned out -- run with parallel=0")
            elif kind == "put":
                self.put(op[1])
            elif kind == "remove":
                self.remove(op[1])
            else:
                raise ValueError(f"unknown cache op {kind!r}")
            count += 1
        return count

    def stats(self) -> dict:
        """Lookup/churn counters plus current occupancy, for farm metrics."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "replacements": self.replacements,
                "size": len(self._entries), "capacity": self.capacity}

    def __len__(self) -> int:
        return len(self._entries)
