"""SSL session objects and the server-side session cache.

The paper observes that "session re-negotiation using the previously setup
keys can avoid the public key encryption, therefore greatly reduces the
handshake overhead" (Section 4.1).  The session cache enables exactly that:
a client presenting a cached session id resumes with an abbreviated
handshake -- no certificate, no ClientKeyExchange, no RSA private operation.
The resumption ablation benchmark quantifies the saving.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional


@dataclass
class SslSession:
    """Negotiated parameters kept for resumption.

    ``created_at`` / ``lifetime`` support cache expiry (SSL_CTX_set_timeout
    semantics; OpenSSL's default was 300 s for SSLv3).  Timestamps are
    caller-supplied virtual time so experiments stay deterministic.
    """

    session_id: bytes
    cipher_suite_id: int
    master_secret: bytes
    created_at: float = 0.0
    lifetime: float = 300.0

    def __post_init__(self) -> None:
        if not 1 <= len(self.session_id) <= 32:
            raise ValueError("session id must be 1..32 bytes")
        if len(self.master_secret) != 48:
            raise ValueError("master secret must be 48 bytes")
        if self.lifetime <= 0:
            raise ValueError("lifetime must be positive")

    def expired_at(self, now: float) -> bool:
        return now - self.created_at > self.lifetime


class SessionCache:
    """LRU cache of resumable sessions, keyed by session id.

    Every way an entry can leave the cache early is counted in one
    ``evictions`` counter: capacity-driven LRU drops in :meth:`put`,
    expired entries dropped on lookup in :meth:`get`, and sweeps by
    :meth:`purge_expired`.  ``hits``/``misses`` count lookups only, so a
    farm shard's resumption hit-rate and its churn can be read separately.
    """

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[bytes, SslSession]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def put(self, session: SslSession) -> None:
        sid = session.session_id
        if sid in self._entries:
            self._entries.move_to_end(sid)
        self._entries[sid] = session
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def get(self, session_id: bytes,
            now: Optional[float] = None) -> Optional[SslSession]:
        """Look up a session; expired entries are dropped and miss.

        ``now`` is virtual time; omit it to skip expiry checking (the
        default keeps experiment determinism unless a clock is modelled).
        """
        session = self._entries.get(session_id)
        if session is None:
            self.misses += 1
            return None
        if now is not None and session.expired_at(now):
            del self._entries[session_id]
            self.misses += 1
            self.evictions += 1
            return None
        self._entries.move_to_end(session_id)
        self.hits += 1
        return session

    def purge_expired(self, now: float) -> int:
        """Drop every expired session; returns how many were removed."""
        dead = [sid for sid, s in self._entries.items()
                if s.expired_at(now)]
        for sid in dead:
            del self._entries[sid]
        self.evictions += len(dead)
        return len(dead)

    def remove(self, session_id: bytes) -> None:
        self._entries.pop(session_id, None)

    def stats(self) -> dict:
        """Lookup/churn counters plus current occupancy, for farm metrics."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions, "size": len(self._entries),
                "capacity": self.capacity}

    def __len__(self) -> int:
        return len(self._entries)
