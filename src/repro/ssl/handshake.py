"""SSLv3 handshake message types and their wire encodings.

These are the messages of the paper's Figure 1: ClientHello, ServerHello,
Certificate, ServerHelloDone, ClientKeyExchange, Finished (plus the
HelloRequest/CertificateRequest types for completeness).  Each message
serializes to ``msg_type(1) || length(3) || body`` inside a handshake
record.

Note the SSLv3 quirk the paper's flow depends on: the ClientKeyExchange
body is the raw RSA-encrypted pre-master secret with *no* length prefix
(TLS 1.0 added one).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Type

from .codec import ByteReader, ByteWriter
from .errors import DecodeError

RANDOM_LENGTH = 32


class HandshakeType:
    HELLO_REQUEST = 0
    CLIENT_HELLO = 1
    SERVER_HELLO = 2
    NEW_SESSION_TICKET = 4
    CERTIFICATE = 11
    SERVER_KEY_EXCHANGE = 12
    CERTIFICATE_REQUEST = 13
    SERVER_HELLO_DONE = 14
    CERTIFICATE_VERIFY = 15
    CLIENT_KEY_EXCHANGE = 16
    FINISHED = 20

    _NAMES = {
        0: "hello_request", 1: "client_hello", 2: "server_hello",
        4: "new_session_ticket",
        11: "certificate", 12: "server_key_exchange",
        13: "certificate_request", 14: "server_hello_done",
        15: "certificate_verify", 16: "client_key_exchange", 20: "finished",
    }

    @classmethod
    def name(cls, t: int) -> str:
        return cls._NAMES.get(t, f"handshake_{t}")


class HandshakeMessage:
    """Base class: subclasses define ``msg_type``, ``body`` and ``parse``."""

    msg_type: int = -1

    def body(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def parse(cls, body: bytes) -> "HandshakeMessage":
        raise NotImplementedError

    def to_bytes(self) -> bytes:
        body = self.body()
        return (bytes([self.msg_type]) + len(body).to_bytes(3, "big")
                + body)


def parse_extensions(r: ByteReader) -> Tuple[Tuple[int, bytes], ...]:
    """Parse the optional trailing hello-extensions block.

    Consumes the rest of ``r``: either nothing remains (no extensions --
    the classic SSLv3 encoding) or exactly one ``vec16`` of
    ``type(2) || vec16(data)`` entries remains (RFC 3546 framing, which
    RFC 5077 tickets ride in).
    """
    if not r.remaining():
        return ()
    er = ByteReader(r.vec16())
    r.expect_end()
    exts = []
    while er.remaining():
        etype = er.u16()
        exts.append((etype, er.vec16()))
    return tuple(exts)


@dataclass
class ClientHello(HandshakeMessage):
    client_random: bytes
    session_id: bytes = b""
    cipher_suites: Tuple[int, ...] = ()
    compression_methods: Tuple[int, ...] = (0,)
    version: int = 0x0300
    #: TLS hello extensions as ``(type, data)`` pairs.  The extensions
    #: block is omitted from the wire entirely when empty, so a
    #: no-extensions hello is byte-identical to the pre-extension
    #: encoding (and to what the paper's SSLv3 client sent).
    extensions: Tuple[Tuple[int, bytes], ...] = ()

    msg_type = HandshakeType.CLIENT_HELLO

    def body(self) -> bytes:
        if len(self.client_random) != RANDOM_LENGTH:
            raise ValueError("client random must be 32 bytes")
        w = ByteWriter()
        w.u16(self.version)
        w.raw(self.client_random)
        w.vec8(self.session_id)
        suites = ByteWriter()
        for s in self.cipher_suites:
            suites.u16(s)
        w.vec16(suites.bytes())
        w.vec8(bytes(self.compression_methods))
        if self.extensions:
            ext = ByteWriter()
            for etype, data in self.extensions:
                ext.u16(etype)
                ext.vec16(data)
            w.vec16(ext.bytes())
        return w.bytes()

    def extension(self, ext_type: int) -> "bytes | None":
        """The data of extension ``ext_type``, or ``None`` if absent."""
        for etype, data in self.extensions:
            if etype == ext_type:
                return data
        return None

    @classmethod
    def parse(cls, body: bytes) -> "ClientHello":
        r = ByteReader(body)
        version = r.u16()
        random = r.raw(RANDOM_LENGTH)
        session_id = r.vec8()
        suite_bytes = r.vec16()
        if len(suite_bytes) % 2:
            raise DecodeError("odd cipher-suite vector length")
        suites = tuple(int.from_bytes(suite_bytes[i:i + 2], "big")
                       for i in range(0, len(suite_bytes), 2))
        compression = tuple(r.vec8())
        extensions = parse_extensions(r)
        if not suites:
            raise DecodeError("empty cipher-suite list")
        return cls(client_random=random, session_id=session_id,
                   cipher_suites=suites, compression_methods=compression,
                   version=version, extensions=extensions)


@dataclass
class ServerHello(HandshakeMessage):
    server_random: bytes
    session_id: bytes
    cipher_suite: int
    compression_method: int = 0
    version: int = 0x0300

    msg_type = HandshakeType.SERVER_HELLO

    def body(self) -> bytes:
        if len(self.server_random) != RANDOM_LENGTH:
            raise ValueError("server random must be 32 bytes")
        w = ByteWriter()
        w.u16(self.version)
        w.raw(self.server_random)
        w.vec8(self.session_id)
        w.u16(self.cipher_suite)
        w.u8(self.compression_method)
        return w.bytes()

    @classmethod
    def parse(cls, body: bytes) -> "ServerHello":
        r = ByteReader(body)
        version = r.u16()
        random = r.raw(RANDOM_LENGTH)
        session_id = r.vec8()
        suite = r.u16()
        compression = r.u8()
        r.expect_end()
        return cls(server_random=random, session_id=session_id,
                   cipher_suite=suite, compression_method=compression,
                   version=version)


@dataclass
class CertificateMsg(HandshakeMessage):
    """A chain of encoded certificates, leaf first."""

    certificates: List[bytes] = field(default_factory=list)

    msg_type = HandshakeType.CERTIFICATE

    def body(self) -> bytes:
        inner = ByteWriter()
        for cert in self.certificates:
            inner.vec24(cert)
        return ByteWriter().vec24(inner.bytes()).bytes()

    @classmethod
    def parse(cls, body: bytes) -> "CertificateMsg":
        r = ByteReader(body)
        chain_bytes = r.vec24()
        r.expect_end()
        certs: List[bytes] = []
        cr = ByteReader(chain_bytes)
        while cr.remaining():
            certs.append(cr.vec24())
        return cls(certificates=certs)


@dataclass
class ServerHelloDone(HandshakeMessage):
    msg_type = HandshakeType.SERVER_HELLO_DONE

    def body(self) -> bytes:
        return b""

    @classmethod
    def parse(cls, body: bytes) -> "ServerHelloDone":
        if body:
            raise DecodeError("server_hello_done must be empty")
        return cls()


@dataclass
class ClientKeyExchange(HandshakeMessage):
    """RSA-encrypted pre-master secret.

    SSLv3 sends the ciphertext raw; TLS 1.0 added a 2-byte length prefix.
    ``tls_format`` selects the encoding, and :meth:`parse_versioned`
    decodes by negotiated version.
    """

    encrypted_pre_master: bytes = b""
    tls_format: bool = False

    msg_type = HandshakeType.CLIENT_KEY_EXCHANGE

    def body(self) -> bytes:
        if self.tls_format:
            return ByteWriter().vec16(self.encrypted_pre_master).bytes()
        return self.encrypted_pre_master

    @classmethod
    def parse(cls, body: bytes) -> "ClientKeyExchange":
        if not body:
            raise DecodeError("empty client_key_exchange")
        return cls(encrypted_pre_master=body)

    @classmethod
    def parse_versioned(cls, body: bytes,
                        is_tls: bool) -> "ClientKeyExchange":
        if not is_tls:
            return cls.parse(body)
        r = ByteReader(body)
        encrypted = r.vec16()
        r.expect_end()
        if not encrypted:
            raise DecodeError("empty client_key_exchange")
        return cls(encrypted_pre_master=encrypted, tls_format=True)


@dataclass
class ServerKeyExchange(HandshakeMessage):
    """Signed ephemeral Diffie-Hellman parameters (DHE_RSA suites).

    ``signature`` is an RSA signature over MD5(randoms || params) ||
    SHA1(randoms || params) -- the SSLv3/TLS1.0 "md5+sha1, no DigestInfo"
    convention for RSA-signed key exchanges.
    """

    dh_p: bytes = b""
    dh_g: bytes = b""
    dh_ys: bytes = b""
    signature: bytes = b""

    msg_type = HandshakeType.SERVER_KEY_EXCHANGE

    def params_bytes(self) -> bytes:
        """The signed portion (p, g, Ys as 2-byte-length vectors)."""
        return (ByteWriter().vec16(self.dh_p).vec16(self.dh_g)
                .vec16(self.dh_ys).bytes())

    def body(self) -> bytes:
        return ByteWriter().raw(self.params_bytes()) \
            .vec16(self.signature).bytes()

    @classmethod
    def parse(cls, body: bytes) -> "ServerKeyExchange":
        r = ByteReader(body)
        dh_p = r.vec16()
        dh_g = r.vec16()
        dh_ys = r.vec16()
        signature = r.vec16()
        r.expect_end()
        if not dh_p or not dh_g or not dh_ys:
            raise DecodeError("empty DH parameter")
        return cls(dh_p=dh_p, dh_g=dh_g, dh_ys=dh_ys, signature=signature)


@dataclass
class Finished(HandshakeMessage):
    """Verify data: 36 bytes (SSLv3: MD5 || SHA-1 finished hashes) or
    12 bytes (TLS 1.0 PRF output)."""

    verify_data: bytes = b""

    msg_type = HandshakeType.FINISHED

    def body(self) -> bytes:
        if len(self.verify_data) not in (12, 36):
            raise ValueError("finished verify_data must be 12 or 36 bytes")
        return self.verify_data

    @classmethod
    def parse(cls, body: bytes) -> "Finished":
        if len(body) not in (12, 36):
            raise DecodeError("finished message must be 12 or 36 bytes")
        return cls(verify_data=body)

    @property
    def md5_hash(self) -> bytes:
        """SSLv3 view: the MD5 half of a 36-byte verify_data."""
        return self.verify_data[:16]

    @property
    def sha1_hash(self) -> bytes:
        """SSLv3 view: the SHA-1 half of a 36-byte verify_data."""
        return self.verify_data[16:]


@dataclass
class NewSessionTicket(HandshakeMessage):
    """RFC 5077 NewSessionTicket: an opaque encrypted-state blob the
    client stores and offers back through the SessionTicket extension.

    ``lifetime_hint`` is advisory (seconds); the authoritative lifetime
    is sealed inside the ticket itself.
    """

    lifetime_hint: int = 0
    ticket: bytes = b""

    msg_type = HandshakeType.NEW_SESSION_TICKET

    def body(self) -> bytes:
        if not self.ticket:
            raise ValueError("empty session ticket")
        return (ByteWriter().u32(self.lifetime_hint)
                .vec16(self.ticket).bytes())

    @classmethod
    def parse(cls, body: bytes) -> "NewSessionTicket":
        r = ByteReader(body)
        lifetime_hint = r.u32()
        ticket = r.vec16()
        r.expect_end()
        if not ticket:
            raise DecodeError("empty session ticket")
        return cls(lifetime_hint=lifetime_hint, ticket=ticket)


@dataclass
class HelloRequest(HandshakeMessage):
    msg_type = HandshakeType.HELLO_REQUEST

    def body(self) -> bytes:
        return b""

    @classmethod
    def parse(cls, body: bytes) -> "HelloRequest":
        if body:
            raise DecodeError("hello_request must be empty")
        return cls()


_PARSERS: Dict[int, Type[HandshakeMessage]] = {
    HandshakeType.CLIENT_HELLO: ClientHello,
    HandshakeType.SERVER_KEY_EXCHANGE: ServerKeyExchange,
    HandshakeType.SERVER_HELLO: ServerHello,
    HandshakeType.CERTIFICATE: CertificateMsg,
    HandshakeType.SERVER_HELLO_DONE: ServerHelloDone,
    HandshakeType.CLIENT_KEY_EXCHANGE: ClientKeyExchange,
    HandshakeType.FINISHED: Finished,
    HandshakeType.HELLO_REQUEST: HelloRequest,
    HandshakeType.NEW_SESSION_TICKET: NewSessionTicket,
}


def iter_messages(buffer: bytearray) -> List[Tuple[int, bytes, bytes]]:
    """Pop complete handshake messages from ``buffer``.

    Returns ``(msg_type, body, raw)`` triples, where ``raw`` is the full
    header+body encoding (needed for the running handshake hashes).
    Incomplete trailing bytes remain in the buffer.
    """
    out: List[Tuple[int, bytes, bytes]] = []
    while len(buffer) >= 4:
        msg_type = buffer[0]
        length = int.from_bytes(buffer[1:4], "big")
        if len(buffer) < 4 + length:
            break
        raw = bytes(buffer[:4 + length])
        body = raw[4:]
        del buffer[:4 + length]
        out.append((msg_type, body, raw))
    return out


def parse_message(msg_type: int, body: bytes) -> HandshakeMessage:
    """Parse a handshake body by type."""
    parser = _PARSERS.get(msg_type)
    if parser is None:
        raise DecodeError(
            f"unsupported handshake type {HandshakeType.name(msg_type)}")
    return parser.parse(body)


# ---------------------------------------------------------------------------
# SSLv2-compatibility ClientHello
# ---------------------------------------------------------------------------
# Browsers of the paper's era opened connections with an SSL *2.0* format
# CLIENT-HELLO offering SSLv3/TLS versions and suites; servers (OpenSSL
# included) accepted it and answered in v3.  The v2 message is:
#
#   msg_type(1)=1 || version(2) || cipher_specs_len(2) || session_id_len(2)
#   || challenge_len(2) || cipher_specs (3 bytes each) || session_id
#   || challenge(16..32)
#
# carried in a 2-byte v2 record header (MSB set, 15-bit length).

V2_CLIENT_HELLO_TYPE = 1


def build_v2_client_hello(version: int, cipher_suites: Tuple[int, ...],
                          challenge: bytes) -> bytes:
    """The v2 CLIENT-HELLO message body (no record header)."""
    if not 16 <= len(challenge) <= 32:
        raise ValueError("v2 challenge must be 16..32 bytes")
    if not cipher_suites:
        raise ValueError("empty cipher-suite list")
    w = ByteWriter()
    w.u8(V2_CLIENT_HELLO_TYPE)
    w.u16(version)
    w.u16(3 * len(cipher_suites))
    w.u16(0)  # no session id in v2-compat hellos
    w.u16(len(challenge))
    for suite in cipher_suites:
        w.u24(suite)  # v3 suites ride as 0x00XXYY triples
    w.raw(challenge)
    return w.bytes()


def parse_v2_client_hello(body: bytes) -> ClientHello:
    """Convert a v2 CLIENT-HELLO into the equivalent v3 ClientHello.

    The challenge becomes the right-aligned client random (zero-padded to
    32 bytes), per the SSLv3 appendix on v2 compatibility.
    """
    r = ByteReader(body)
    if r.u8() != V2_CLIENT_HELLO_TYPE:
        raise DecodeError("not a v2 CLIENT-HELLO")
    version = r.u16()
    specs_len = r.u16()
    session_len = r.u16()
    challenge_len = r.u16()
    if specs_len % 3:
        raise DecodeError("v2 cipher-spec length not a multiple of 3")
    if not 16 <= challenge_len <= 32:
        raise DecodeError("v2 challenge length out of range")
    specs = r.raw(specs_len)
    session_id = r.raw(session_len)
    challenge = r.raw(challenge_len)
    r.expect_end()
    suites = tuple(int.from_bytes(specs[i:i + 3], "big")
                   for i in range(0, specs_len, 3))
    v3_suites = tuple(s for s in suites if s <= 0xFFFF)
    if not v3_suites:
        raise DecodeError("v2 hello offers no v3-compatible suites")
    random = challenge.rjust(RANDOM_LENGTH, b"\x00")
    return ClientHello(client_random=random, session_id=session_id,
                       cipher_suites=v3_suites, version=version)


def v2_record(message: bytes) -> bytes:
    """Wrap a v2 message in the 2-byte MSB-set record header."""
    if len(message) > 0x7FFF:
        raise ValueError("v2 record too long")
    return (0x8000 | len(message)).to_bytes(2, "big") + message
