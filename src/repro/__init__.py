"""repro -- reproduction of "Anatomy and Performance of SSL Processing"
(Zhao, Iyer, Makineni, Bhuyan; ISPASS 2005).

The package implements, from scratch and in pure Python, every system the
paper measures: a multi-precision/RSA stack (:mod:`repro.bignum`,
:mod:`repro.crypto`), an SSLv3 protocol implementation (:mod:`repro.ssl`),
a simulated web-server environment (:mod:`repro.webserver`), hardware
acceleration models (:mod:`repro.engines`), and an analytic performance
model standing in for the paper's Pentium 4 + Oprofile/VTune/SoftSDV
toolchain (:mod:`repro.perf`).

Quick start::

    from repro import perf
    from repro.ssl import loopback

    result = loopback.run_session(b"hello over SSLv3" * 64)
    print(result.server_profiler.module_breakdown())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

__version__ = "1.0.0"

from . import bignum, crypto, engines, ipsec, perf, ssl, webserver

__all__ = ["bignum", "crypto", "engines", "ipsec", "perf", "ssl", "webserver",
           "__version__"]
