"""Workload generation: the request stream the curl-based client issues.

The paper's client "makes HTTP requests as fast as the server can handle
them" for fixed file sizes (1 KB in Table 1, swept 1-32 KB in Figure 2).
Beyond fixed sizes, :class:`RequestWorkload` supports mixes so the example
applications can model more realistic distributions (e.g. a banking-style
small-transfer workload versus a B2B bulk-transfer workload, the two
regimes the paper contrasts in its conclusions).

With ``clients`` set, each request also carries a client identity drawn
uniformly from ``range(clients)``, so resumption models a *population* --
each client resumes its own session via the simulator's
:class:`~repro.webserver.clientpool.ClientPool` -- instead of one
infinitely-fast client hammering the server.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple

from ..crypto.rand import PseudoRandom

#: Resolution of the size/resumption draws: one draw in [0, 10^6).
_DRAW_SPAN = 1_000_000


@dataclass(frozen=True, slots=True)
class Request:
    """One HTTP request in the stream.

    The three trailing fields are the adversarial-traffic annotations the
    overload workloads (:mod:`repro.webserver.overload`) stamp on their
    streams; plain workloads leave them at their defaults, which keeps
    every pre-overload request stream -- and therefore every committed
    baseline signature -- byte-identical.  Slotted: at streaming scale
    the requests in flight (lookahead + queued groups) are the bulk of
    the admission layer's footprint.
    """

    path: str
    size_bytes: int
    resumable: bool = False  # client will offer its cached session
    client_id: Optional[int] = None  # population identity; None = anonymous
    #: Scheduling round this connection arrives in (farm accept-queue
    #: pacing; 0 = offered immediately, the classic as-fast-as-possible
    #: client).  Only the first request of a connection group is read.
    arrival_round: int = 0
    #: Handshake-flood behaviour: ``None`` completes normally,
    #: ``"hello"`` abandons after the ClientHello, ``"mid_kx"`` abandons
    #: after delivering the ClientKeyExchange (the server burns the RSA
    #: decrypt; the client never finishes).
    abandon: Optional[str] = None
    #: Renegotiation storm: full handshakes the client forces on the
    #: established connection after its requests complete.
    renegotiations: int = 0


def document_bytes(path: str, size: int) -> bytes:
    """Deterministic pseudo-content for a served document."""
    unit = (f"<!-- {path} -->" + "0123456789abcdef" * 4).encode()
    reps = size // len(unit) + 1
    return (unit * reps)[:size]


class RequestWorkload:
    """A reproducible stream of requests."""

    def __init__(self, size_mix: Sequence[Tuple[int, float]],
                 resumption_rate: float = 0.0,
                 seed: bytes = b"workload",
                 clients: Optional[int] = None):
        """``size_mix``: (size_bytes, weight) pairs; weights need not sum
        to 1.  ``resumption_rate``: fraction of requests that reuse an SSL
        session (0 reproduces the paper's full-handshake-per-request
        setup).  ``clients``: population size; when set, every request is
        stamped with a uniformly drawn client id in ``range(clients)``."""
        if not size_mix:
            raise ValueError("size mix must not be empty")
        if not 0.0 <= resumption_rate <= 1.0:
            raise ValueError("resumption rate must be in [0, 1]")
        total = float(sum(w for _, w in size_mix))
        if total <= 0:
            raise ValueError("size mix weights must be positive")
        if clients is not None and clients < 1:
            raise ValueError("clients must be positive")
        # Integer cumulative thresholds over the int_below draw: floating
        # cumulative shares drift for weight mixes that don't sum cleanly
        # (e.g. three 1/3 shares accumulate to 0.9999...), misassigning
        # boundary draws.  Rounding each *cumulative* share once -- and
        # pinning the final threshold to the full span -- keeps every
        # bucket within half a draw-unit of its exact share.
        self._thresholds: List[Tuple[int, int]] = []
        acc = 0.0
        for size, weight in size_mix:
            acc += weight
            self._thresholds.append((round(acc / total * _DRAW_SPAN), size))
        self._thresholds[-1] = (_DRAW_SPAN, self._thresholds[-1][1])
        self._resumption_rate = resumption_rate
        self._clients = clients
        self._rng = PseudoRandom(seed)

    @classmethod
    def fixed(cls, size_bytes: int, resumption_rate: float = 0.0,
              seed: bytes = b"workload",
              clients: Optional[int] = None) -> "RequestWorkload":
        """The paper's workload: every request fetches the same file."""
        return cls([(size_bytes, 1.0)], resumption_rate, seed,
                   clients=clients)

    @property
    def adversarial(self) -> bool:
        """True when the stream can carry adversarial annotations
        (abandons, renegotiation storms) that only the concurrent
        transaction state machine handles.  Declared up front -- a
        property of the generator's configuration -- so the simulator
        can pick its path without materializing (and consuming) the
        stream; plain workloads never produce them."""
        return False

    def _pick_size(self) -> int:
        x = self._rng.int_below(_DRAW_SPAN)
        for bound, size in self._thresholds:
            if x < bound:
                return size
        return self._thresholds[-1][1]

    def requests(self, count: int) -> Iterator[Request]:
        """Yield ``count`` requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for i in range(count):
            size = self._pick_size()
            resume = (self._resumption_rate > 0.0
                      and self._rng.int_below(_DRAW_SPAN) / _DRAW_SPAN
                      < self._resumption_rate)
            client_id = (self._rng.int_below(self._clients)
                         if self._clients is not None else None)
            yield Request(path=f"/doc-{size}-{i}.html", size_bytes=size,
                          resumable=resume, client_id=client_id)

    def as_list(self, count: int) -> List[Request]:
        return list(self.requests(count))


def connection_groups(requests: Iterator[Request],
                      per_connection: int) -> Iterator[List[Request]]:
    """Chunk a request stream into connection groups of
    ``per_connection`` requests (the last group may be short), lazily.

    This is the streaming replacement for the eager ``groups`` lists the
    simulator and farm used to materialize before scheduling: consumed
    through it, a run holds one group of lookahead instead of the whole
    workload, so admission-layer memory is O(concurrency + lookahead +
    queued groups) no matter the request count.
    """
    group: List[Request] = []
    for request in requests:
        group.append(request)
        if len(group) == per_connection:
            yield group
            group = []
    if group:
        yield group
