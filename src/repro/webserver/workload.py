"""Workload generation: the request stream the curl-based client issues.

The paper's client "makes HTTP requests as fast as the server can handle
them" for fixed file sizes (1 KB in Table 1, swept 1-32 KB in Figure 2).
Beyond fixed sizes, :class:`RequestWorkload` supports mixes so the example
applications can model more realistic distributions (e.g. a banking-style
small-transfer workload versus a B2B bulk-transfer workload, the two
regimes the paper contrasts in its conclusions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..crypto.rand import PseudoRandom


@dataclass(frozen=True)
class Request:
    """One HTTP request in the stream."""

    path: str
    size_bytes: int
    resumable: bool = False  # client will offer its cached session


def document_bytes(path: str, size: int) -> bytes:
    """Deterministic pseudo-content for a served document."""
    unit = (f"<!-- {path} -->" + "0123456789abcdef" * 4).encode()
    reps = size // len(unit) + 1
    return (unit * reps)[:size]


class RequestWorkload:
    """A reproducible stream of requests."""

    def __init__(self, size_mix: Sequence[Tuple[int, float]],
                 resumption_rate: float = 0.0,
                 seed: bytes = b"workload"):
        """``size_mix``: (size_bytes, weight) pairs; weights need not sum
        to 1.  ``resumption_rate``: fraction of requests that reuse an SSL
        session (0 reproduces the paper's full-handshake-per-request
        setup)."""
        if not size_mix:
            raise ValueError("size mix must not be empty")
        if not 0.0 <= resumption_rate <= 1.0:
            raise ValueError("resumption rate must be in [0, 1]")
        total = float(sum(w for _, w in size_mix))
        if total <= 0:
            raise ValueError("size mix weights must be positive")
        self._sizes = [(s, w / total) for s, w in size_mix]
        self._resumption_rate = resumption_rate
        self._rng = PseudoRandom(seed)

    @classmethod
    def fixed(cls, size_bytes: int, resumption_rate: float = 0.0,
              seed: bytes = b"workload") -> "RequestWorkload":
        """The paper's workload: every request fetches the same file."""
        return cls([(size_bytes, 1.0)], resumption_rate, seed)

    def _pick_size(self) -> int:
        x = self._rng.int_below(1_000_000) / 1_000_000.0
        acc = 0.0
        for size, share in self._sizes:
            acc += share
            if x < acc:
                return size
        return self._sizes[-1][0]

    def requests(self, count: int) -> Iterator[Request]:
        """Yield ``count`` requests."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for i in range(count):
            size = self._pick_size()
            resume = (self._resumption_rate > 0.0
                      and self._rng.int_below(1_000_000) / 1_000_000.0
                      < self._resumption_rate)
            yield Request(path=f"/doc-{size}-{i}.html", size_bytes=size,
                          resumable=resume)

    def as_list(self, count: int) -> List[Request]:
        return list(self.requests(count))
