"""Server capacity: analytic model + discrete-event load simulation.

The paper's methodology keeps "the server load ... always maintained at
more than 90%" with a client issuing requests "as fast as the server can
handle them".  This module closes the loop on that setup:

* :func:`requests_per_second` -- the analytic ceiling: the modelled CPU's
  frequency divided by the measured cycles per transaction;
* :class:`LoadSimulator` -- a discrete-event simulation of N concurrent
  closed-loop clients against the server (one CPU by default; SMP via
  ``nservers``), in *virtual time* derived from the instrumented cycle
  costs: it reports achieved throughput, CPU utilization and latency
  percentiles, and shows the saturation knee the paper's ">90% load"
  sits beyond;
* :class:`MixedLoadSimulator` -- the same with heterogeneous per-request
  costs (e.g. full versus resumed handshakes).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..perf import CpuModel, PENTIUM4


def requests_per_second(cycles_per_request: float,
                        cpu: CpuModel = PENTIUM4) -> float:
    """The analytic capacity ceiling of a fully loaded single CPU."""
    if cycles_per_request <= 0:
        raise ValueError("cycles per request must be positive")
    return cpu.frequency_hz / cycles_per_request


def farm_requests_per_second(worker_cycles: Sequence[float],
                             worker_requests: Sequence[int],
                             cpu: CpuModel = PENTIUM4) -> float:
    """Aggregate analytic ceiling of a worker farm.

    Each worker replica runs on its own CPU, so the farm's ceiling is the
    sum of per-worker ceilings computed from that worker's *own* measured
    cycles-per-request (shards see different request mixes -- e.g. a
    session-affinity balancer concentrates cheap resumed handshakes).
    Workers that served nothing contribute nothing.
    """
    if len(worker_cycles) != len(worker_requests):
        raise ValueError("need one cycle total per worker request count")
    if not worker_cycles:
        raise ValueError("need at least one worker")
    total = 0.0
    for cycles, requests in zip(worker_cycles, worker_requests):
        if requests < 0 or cycles < 0:
            raise ValueError("worker totals cannot be negative")
        if requests:
            total += requests_per_second(cycles / requests, cpu)
    return total


@dataclass
class LoadResult:
    """What the load simulation measured."""

    offered_clients: int
    completed: int
    sim_seconds: float
    utilization: float
    latencies: List[float] = field(repr=False, default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.sim_seconds if self.sim_seconds else 0.0

    def latency_percentile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        if not 0.0 <= q <= 1.0:
            raise ValueError("percentile must be in [0, 1]")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]


class LoadSimulator:
    """N closed-loop clients against the server, in virtual time.

    Each client repeats: think for ``think_seconds``, then submit a
    transaction costing ``cycles_per_request`` of server CPU.  Requests
    are served FIFO by the first free CPU (one by default -- the paper's
    single P4).  Virtual time advances from the cycle costs -- no
    wall-clock measurement is involved, so results are deterministic.
    """

    def __init__(self, cycles_per_request: float,
                 think_seconds: float = 0.0,
                 cpu: CpuModel = PENTIUM4,
                 nservers: int = 1):
        """``nservers`` models an SMP box: requests are served by the
        first free CPU (the paper's client machine was a dual-processor
        Xeon; its server a single P4)."""
        if cycles_per_request <= 0:
            raise ValueError("cycles per request must be positive")
        if think_seconds < 0:
            raise ValueError("think time cannot be negative")
        if nservers < 1:
            raise ValueError("need at least one server CPU")
        self.service_s = cycles_per_request / cpu.frequency_hz
        self.think_s = think_seconds
        self.cpu = cpu
        self.nservers = nservers

    def run(self, nclients: int, duration_seconds: float = 10.0,
            ) -> LoadResult:
        if nclients < 1:
            raise ValueError("need at least one client")
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        # Event heap: (time, seq, kind, client). Kinds: "arrive" only --
        # service completion is computed inline via the server-free clock.
        events: List[Tuple[float, int, int]] = []
        for client in range(nclients):
            heapq.heappush(events, (0.0, client, client))
        cpus: List[float] = [0.0] * self.nservers  # free-at heap
        heapq.heapify(cpus)
        busy = 0.0
        completed = 0
        latencies: List[float] = []
        seq = nclients
        last_done = 0.0
        while events:
            arrival, _, client = heapq.heappop(events)
            if arrival >= duration_seconds:
                continue
            free_at = heapq.heappop(cpus)
            start = max(arrival, free_at)
            done = start + self.service_s
            heapq.heappush(cpus, done)
            last_done = max(last_done, done)
            busy += self.service_s
            completed += 1
            latencies.append(done - arrival)
            next_arrival = done + self.think_s
            seq += 1
            heapq.heappush(events, (next_arrival, seq, client))
        sim_end = max(duration_seconds, last_done)
        return LoadResult(offered_clients=nclients, completed=completed,
                          sim_seconds=sim_end,
                          utilization=min(1.0, busy / (
                              sim_end * self.nservers)),
                          latencies=latencies)

    def saturation_sweep(self, client_counts: Tuple[int, ...],
                         duration_seconds: float = 10.0,
                         ) -> List[LoadResult]:
        """Run the simulation across offered-load levels."""
        return [self.run(n, duration_seconds) for n in client_counts]


class MixedLoadSimulator(LoadSimulator):
    """Closed-loop load with heterogeneous per-request costs.

    Real request streams mix full handshakes with cheap resumed ones;
    pass the measured cycle costs (e.g. ``[full, resumed, resumed,
    resumed]`` for 75% resumption) and each served request cycles through
    them deterministically.
    """

    def __init__(self, cycles_per_request_mix: Sequence[float],
                 think_seconds: float = 0.0,
                 cpu: CpuModel = PENTIUM4,
                 nservers: int = 1):
        if not cycles_per_request_mix:
            raise ValueError("need at least one request cost")
        if any(c <= 0 for c in cycles_per_request_mix):
            raise ValueError("request costs must be positive")
        mean = sum(cycles_per_request_mix) / len(cycles_per_request_mix)
        super().__init__(mean, think_seconds, cpu, nservers)
        self._services = [c / cpu.frequency_hz
                          for c in cycles_per_request_mix]
        self._next = 0

    def _next_service(self) -> float:
        service = self._services[self._next % len(self._services)]
        self._next += 1
        return service

    def run(self, nclients: int, duration_seconds: float = 10.0,
            ) -> LoadResult:
        if nclients < 1:
            raise ValueError("need at least one client")
        if duration_seconds <= 0:
            raise ValueError("duration must be positive")
        self._next = 0
        events: List[Tuple[float, int, int]] = []
        for client in range(nclients):
            heapq.heappush(events, (0.0, client, client))
        cpus: List[float] = [0.0] * self.nservers
        heapq.heapify(cpus)
        busy = 0.0
        completed = 0
        latencies: List[float] = []
        seq = nclients
        last_done = 0.0
        while events:
            arrival, _, client = heapq.heappop(events)
            if arrival >= duration_seconds:
                continue
            service = self._next_service()
            free_at = heapq.heappop(cpus)
            start = max(arrival, free_at)
            done = start + service
            heapq.heappush(cpus, done)
            last_done = max(last_done, done)
            busy += service
            completed += 1
            latencies.append(done - arrival)
            seq += 1
            heapq.heappush(events, (done + self.think_s, seq, client))
        sim_end = max(duration_seconds, last_done)
        return LoadResult(offered_clients=nclients, completed=completed,
                          sim_seconds=sim_end,
                          utilization=min(1.0, busy / (
                              sim_end * self.nservers)),
                          latencies=latencies)
