"""Discrete-event scheduler core for the simulator and farm round loops.

The legacy round loops (``WebServerSimulator._run_concurrent`` and the
farm's ``_run_worker_round``) scan *every* in-flight transaction every
scheduling round -- including transactions parked in the batch queue
(whose steps are charge-free no-ops) and rounds in which nothing at all
is runnable (the idle arrival gaps an
:class:`~repro.webserver.overload.AdversarialWorkload` produces by
construction).  :class:`TxnScheduler` replaces the scan with an event
heap keyed ``(wake_round, admission_order)`` so one round costs
O(runnable + log heap) instead of O(active), and tells its driver the
round of the *next* event so empty rounds can be skipped outright
(the virtual round clock jumps; see ``next_event_round``).

**The bit-identity contract.**  Every committed golden baseline was
recorded under the scan loop, and stays authoritative: the event core
must reproduce the legacy schedule *exactly* -- same step order, same
round numbering, same batcher tick/flush placement, same
stalled-straggler accounting.  The contract rests on three facts about
the legacy loop:

* **no-op steps are free.**  A transaction whose ``step()`` returned
  ``False`` is waiting on a batch flush; until one happens, re-stepping
  it relays empty buffers -- no modeled charges, no state change
  (``SslConnection.pending_output`` on an empty buffer is
  side-effect-free).  Parking it instead of re-scanning is therefore
  invisible in every modeled number.
* **only a flush wakes a parked transaction.**  Within one round, a
  flush triggered mid-step (``SslServer._after_receive`` on a full
  batch) un-parks transactions *after* the current one in admission
  order this round and the rest next round -- exactly the order the
  scan loop would have reached them.  The scheduler watches
  :attr:`~repro.ssl.server.HandshakeBatcher.flushes` to reproduce this.
* **heap order is scan order.**  Runnable transactions pop in
  ``(wake_round, admission_order)`` order; every wake pushed during
  round ``r`` is ``(r, .)`` or ``(r + 1, .)``, so within a round the
  pops are exactly the admission-order sweep of the runnable subset.

**The round-skip rule.**  A round may be skipped only when executing it
would provably be a no-op for every party: no heap entry wakes in it,
the batch queue is empty (a non-empty queue flushes next round -- by
deadline tick or by the loop's not-progressed flush -- so the next
event is always ``round + 1``), and the driver guarantees no admission
can happen in it (free slots + pending work, or an
:class:`~repro.webserver.overload.AcceptQueue` arrival release, each
cap the jump).  Skipped rounds still advance the batch clock
(``tick(ticks)``) and the straggler counter (``stalled += ticks``),
because that is what the legacy loop's no-op rounds did.  When in doubt
the driver executes the round: running a round the legacy loop would
have executed is always bit-identical, only *skipping* is the
optimization.

``REPRO_EVENTS=0`` (:func:`repro.runtime.events_enabled`) selects scan
mode: the same object steps every live transaction every round -- the
legacy reference semantics, kept runnable as the comparison arm of
``make bench-events`` and as an escape hatch.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from .. import perf

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ssl.server import HandshakeBatcher
    from .simulator import _Transaction

#: Consecutive no-progress rounds the legacy loop tolerates before
#: failing the stragglers (the loop's ``stalled > 4``).
STALL_LIMIT = 4


class TxnScheduler:
    """Event-heap transaction scheduler for one worker's round loop.

    Each live transaction is either *runnable* -- it has exactly one
    entry ``(wake_round, admission_order)`` in the heap -- or *parked*
    (waiting on a batch flush) with no heap entry at all.  ``run_round``
    pops and steps this round's runnable transactions in admission
    order, reproduces the legacy batcher tick/flush placement, and
    maintains the stalled-straggler counter; ``next_event_round`` tells
    the driver the earliest future round that can differ from a no-op.

    Transactions are keyed by a per-scheduler admission counter (their
    append position in the legacy ``active`` list); the key doubles as
    the O(1) completion-removal handle the old ``active.remove(txn)``
    scan lacked.
    """

    def __init__(self, batcher: Optional["HandshakeBatcher"] = None, *,
                 events: bool = True):
        self.batcher = batcher
        self.events = events
        self._txns: Dict[int, "_Transaction"] = {}  # admission order -> txn
        self._heap: List[Tuple[int, int]] = []      # (wake_round, order)
        self._parked: Set[int] = set()
        self._next_order = 0
        self.stalled = 0
        # -- scheduler-work counters (bench only; never in signatures) --
        #: Transactions actually stepped.
        self.touched = 0
        #: Transactions a scan of every live entry would have stepped
        #: (live count summed over every *virtual* round, skipped ones
        #: included) -- what the legacy loop's work would have been.
        self.scan_touched = 0
        #: Rounds this scheduler executed.
        self.rounds_executed = 0
        #: Rounds the virtual clock covered (executed + skipped).
        self.rounds_virtual = 0

    # -- membership -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._txns)

    def __bool__(self) -> bool:
        return bool(self._txns)

    def transactions(self) -> List["_Transaction"]:
        """Live transactions in admission order (the legacy ``active``
        list; dicts preserve insertion order)."""
        return list(self._txns.values())

    def add(self, txn: "_Transaction", round_no: int) -> None:
        """Admit a transaction, runnable in ``round_no`` (its admission
        round -- the legacy loop steps new admissions the same round)."""
        order = self._next_order
        self._next_order += 1
        self._txns[order] = txn
        heapq.heappush(self._heap, (round_no, order))

    def clear(self) -> None:
        self._txns.clear()
        self._parked.clear()
        self._heap.clear()

    def stats(self) -> Dict[str, int]:
        """Scheduler-work snapshot for benchmarks and diagnostics."""
        return {"touched": self.touched,
                "scan_touched": self.scan_touched,
                "rounds_executed": self.rounds_executed,
                "rounds_virtual": self.rounds_virtual}

    # -- wake bookkeeping -----------------------------------------------------
    def _wake_parked(self, round_no: int, after_order: int = -1) -> None:
        """Un-park everything after a flush.  Orders past ``after_order``
        (the transaction being stepped when a mid-step flush fired) wake
        *this* round -- the scan loop would still reach them -- and the
        rest wake next round."""
        for order in self._parked:
            wake = round_no if order > after_order else round_no + 1
            heapq.heappush(self._heap, (wake, order))
        self._parked.clear()

    # -- one scheduling round -------------------------------------------------
    def run_round(self, round_no: int, ticks: int,
                  profiler: perf.Profiler,
                  on_done: Optional[Callable[["_Transaction"], None]] = None,
                  ) -> bool:
        """Execute round ``round_no``; ``ticks`` is how far the virtual
        clock advanced since the last executed round (1 = consecutive;
        more = skipped no-op rounds, all provably progress-free).

        ``on_done`` fires for each transaction retiring through its own
        completion (the farm's cross-resumption accounting) -- not for
        stragglers failed by the stall limit, which the legacy loop never
        accounted either.  Returns the legacy loop's ``progressed`` flag.
        """
        self.rounds_executed += 1
        self.rounds_virtual += ticks
        self.scan_touched += len(self._txns) * ticks
        batcher = self.batcher
        flushes = batcher.flushes if batcher is not None else 0
        progressed = False
        if self.events:
            heap = self._heap
            while heap and heap[0][0] <= round_no:
                _, order = heapq.heappop(heap)
                txn = self._txns.get(order)
                if txn is None:  # defensively tolerate a stale entry
                    continue
                self.touched += 1
                stepped = txn.step()
                if stepped:
                    progressed = True
                if txn.done:
                    del self._txns[order]
                    if on_done is not None:
                        on_done(txn)
                elif stepped:
                    heapq.heappush(heap, (round_no + 1, order))
                else:
                    # Waiting on a batch flush; off the scan until one.
                    self._parked.add(order)
                if batcher is not None and batcher.flushes != flushes:
                    # A mid-step flush (a full batch formed inside this
                    # step's receive) resumed suspended handshakes.
                    flushes = batcher.flushes
                    self._wake_parked(round_no, after_order=order)
        else:
            # Scan mode: the legacy loop verbatim -- step every live
            # transaction in admission order, no-ops included.
            for order, txn in list(self._txns.items()):
                self.touched += 1
                if txn.step():
                    progressed = True
                if txn.done:
                    del self._txns[order]
                    if on_done is not None:
                        on_done(txn)
        if batcher is not None:
            with perf.activate(profiler):
                batcher.tick(ticks)
                if not progressed and len(batcher):
                    batcher.flush()
                    progressed = True
            if self.events and batcher.flushes != flushes:
                # Deadline-tick or not-progressed flush: every still-
                # parked transaction steps productively next round.
                self._wake_parked(round_no + 1)
        if progressed:
            self.stalled = 0
            return True
        self.stalled += ticks
        if self.stalled > STALL_LIMIT:
            # Nothing is moving and nothing is queued: give up on the
            # stragglers instead of spinning forever.
            for txn in self._txns.values():
                txn._fail()
            self.clear()
        return False

    # -- the driver's skip decision -------------------------------------------
    def next_event_round(self, round_no: int) -> Optional[int]:
        """Earliest future round in which this scheduler can do real
        work, or ``None`` with no live transactions.  ``round_no`` is
        the round just executed.

        Every heap entry pushed during round ``r`` wakes by ``r + 1``,
        and a non-empty batch queue forces a flush in ``r + 1`` (either
        its deadline tick fires, or the not-progressed flush does), so
        the only multi-round jump a live scheduler offers is the
        straggler countdown: all transactions parked, batch queue empty,
        nothing left but ``stalled`` ticking up to the fail round.
        """
        if self.batcher is not None and len(self.batcher):
            # A queued continuation can outlive its transaction (a
            # mid-handshake abandon retires the transaction, not its
            # submitted decrypt), and the legacy loop's not-progressed
            # flush fires next round even with nothing else live.
            return round_no + 1
        if not self._txns:
            return None
        if not self.events:
            return round_no + 1
        if self._heap:
            return self._heap[0][0]
        return round_no + max(1, STALL_LIMIT + 1 - self.stalled)
