"""Minimal HTTP/1.1 semantics for the simulated Apache worker.

Only what the experiment needs: parse a GET, build a 200/404 response, and
charge the modelled httpd cycles.  The SSL work underneath is the real
instrumented stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .. import perf
from .costs import SystemCostModel
from .workload import document_bytes


@dataclass(slots=True)
class HttpRequest:
    method: str
    path: str
    headers: dict


class HttpError(ValueError):
    """Malformed HTTP request."""


def build_request(path: str, host: str = "repro-server") -> bytes:
    return (f"GET {path} HTTP/1.1\r\nHost: {host}\r\n"
            f"User-Agent: repro-curl/1.0\r\nConnection: close\r\n\r\n"
            ).encode()


def parse_request(raw: bytes) -> HttpRequest:
    try:
        head = raw.split(b"\r\n\r\n", 1)[0].decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(f"non-ascii request head: {exc}") from exc
    lines = head.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or parts[2] not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(f"bad request line: {lines[0]!r}")
    headers = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(f"bad header line: {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()
    return HttpRequest(method=parts[0], path=parts[1], headers=headers)


def build_response(body: bytes, status: str = "200 OK") -> bytes:
    return (f"HTTP/1.1 {status}\r\nServer: repro-apache/2.0\r\n"
            f"Content-Type: text/html\r\nContent-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n").encode() + body


def parse_response(raw: bytes) -> Tuple[str, bytes]:
    """Return (status-line, body)."""
    if b"\r\n\r\n" not in raw:
        raise HttpError("truncated response")
    head, body = raw.split(b"\r\n\r\n", 1)
    status = head.split(b"\r\n", 1)[0].decode("ascii", "replace")
    return status, body


class ApacheWorker:
    """The request-handling part of the simulated web server.

    Given decrypted request bytes, charges the modelled httpd cost, parses
    the request, and produces the response body for the SSL layer to
    encrypt.  Document sizes are encoded in the synthetic path
    (``/doc-<size>-<i>.html``), mirroring the fixed-file workloads of the
    paper's client.
    """

    def __init__(self, costs: SystemCostModel,
                 expected_size: Optional[int] = None):
        self._costs = costs
        self._expected_size = expected_size

    def handle(self, request_bytes: bytes) -> bytes:
        try:
            request = parse_request(request_bytes)
        except HttpError:
            return build_response(b"<html>bad request</html>",
                                  "400 Bad Request")
        if request.method != "GET":
            return build_response(b"<html>method not allowed</html>",
                                  "405 Method Not Allowed")
        size = self._expected_size
        if size is None:
            size = _size_from_path(request.path)
        if size is None:
            return build_response(b"<html>not found</html>", "404 Not Found")
        body = document_bytes(request.path, size)
        perf.charge_cycles(self._costs.httpd_cycles(size / 1024.0),
                           function="apache_worker", module=perf.HTTPD)
        return build_response(body)


def _size_from_path(path: str) -> Optional[int]:
    # Synthetic documents are named /doc-<size>-<i>.html
    if not path.startswith("/doc-"):
        return None
    try:
        return int(path.split("-")[1])
    except (IndexError, ValueError):
        return None
