"""Calibrated cost models for the non-SSL parts of an HTTPS transaction.

The paper's Table 1 measures a complete web-server stack: Apache (httpd),
the Linux kernel's TCP path (vmlinux), libc/pthread ("other") and the SSL
libraries.  Our SSL stack computes its own cycles from instrumented
execution; the surrounding system software is replaced by the explicit cost
models below, calibrated against Table 1's non-SSL residues at the paper's
operating point (1 KB requests, full handshake per request, DES-CBC3-SHA,
~28.7 M cycles per transaction).

This substitution is what DESIGN.md's substitution table calls out: Table 1
and Figure 2 are *ratio* results about where time goes; the subject of the
paper (the SSL side) is fully computed, and only the non-SSL residue is
parameterized.  The constants scale with connection count and bytes moved,
so sweeping the request size (Figure 2) exercises the model sensibly.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SystemCostModel:
    """Per-connection and per-KB cycle costs of the non-SSL components."""

    # Linux kernel (vmlinux): TCP handshake + teardown, socket syscalls,
    # interrupts, scheduling.  Table 1 residue: ~5.0 M cycles/request at
    # 1 KB -- dominated by connection setup at small sizes.
    kernel_per_connection: float = 4_450_000.0
    kernel_per_kb: float = 95_000.0

    # Apache (httpd): accept loop, request parsing, response assembly.
    # Table 1 residue: ~0.53 M cycles/request.
    httpd_per_request: float = 450_000.0
    httpd_per_kb: float = 14_000.0

    # libc / pthread / loader ("other"): allocation, string handling,
    # locking under the whole stack.  Table 1 residue: ~2.6 M cycles.
    other_per_request: float = 1_530_000.0
    other_per_kb: float = 55_000.0

    def kernel_cycles(self, kilobytes: float) -> float:
        return self.kernel_per_connection + self.kernel_per_kb * kilobytes

    def httpd_cycles(self, kilobytes: float) -> float:
        return self.httpd_per_request + self.httpd_per_kb * kilobytes

    def other_cycles(self, kilobytes: float) -> float:
        return self.other_per_request + self.other_per_kb * kilobytes


#: The paper's environment: Apache 2.0 + mod_ssl on Linux 2.6.6, P4 2.26 GHz.
DEFAULT_COSTS = SystemCostModel()
