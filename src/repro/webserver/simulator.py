"""The HTTPS web-server experiment (setup 3.1 of the paper).

Runs a stream of HTTPS transactions against a simulated Apache+Linux stack:
the SSL processing is the real instrumented protocol implementation; the
kernel/httpd/libc components are the calibrated cost models of
:mod:`repro.webserver.costs`.  Measurements are taken on the *server* side
(its profiler), exactly as in the paper; the client runs under a separate,
discarded profiler.

Regenerates the data behind Table 1 (module breakdown) and Figure 2
(crypto-category split versus request size).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import perf, runtime
from ..crypto.batch_rsa import BatchRsaKeySet
from ..crypto.rand import PseudoRandom
from ..crypto.rsa import RsaPrivateKey
from ..engines.offload import OffloadConfig, OffloadPool
from ..perf.categories import crypto_breakdown
from ..ssl.ciphersuites import CipherSuite, DEFAULT_SUITE
from ..ssl.client import SslClient
from ..ssl.errors import SslError
from ..ssl.loopback import make_server_identity, pump
from ..ssl.server import HandshakeBatcher, SslServer
from ..ssl.session import SessionCache
from ..ssl.ticket import TicketKeyRing
from ..ssl.x509 import Certificate, make_self_signed
from .clientpool import ClientPool
from .costs import DEFAULT_COSTS, SystemCostModel
from .events import TxnScheduler
from .httpd import ApacheWorker, build_request, parse_response
from .workload import Request, RequestWorkload, connection_groups


@dataclass
class SimulationResult:
    """Aggregate measurements of one simulation run."""

    profiler: perf.Profiler
    requests_completed: int = 0
    bytes_served: int = 0
    resumed_handshakes: int = 0
    failures: int = 0
    #: Transcript volume: wire bytes into + out of the server endpoint,
    #: totalled over every connection at teardown.  The farm's N=1
    #: bit-exactness check compares this alongside the cycle totals.
    wire_bytes: int = 0
    #: Batch-size histogram from the handshake batcher ({size: flushes});
    #: empty when batching is off.
    batches: Dict[int, int] = field(default_factory=dict)
    #: RSA key-exchange decrypts that went through the batch queue.
    batched_ops: int = 0
    #: Crypto-engine offload snapshot (:meth:`OffloadPool.snapshot`);
    #: ``None`` when the run had no engine pool.
    offload: Optional[Dict[str, object]] = None
    #: Stateless session-ticket counters, folded from every server
    #: endpoint at teardown; all zero when tickets are off.
    tickets_minted: int = 0
    tickets_accepted: int = 0
    tickets_rejected: int = 0
    tickets_renewed: int = 0
    #: Overload anatomy: handshake-flood connections that abandoned
    #: after the ClientHello or mid-key-exchange (their server-side work
    #: -- including the RSA decrypt in the mid-kx case -- stays charged
    #: to the profile), and the requests they took with them.  Abandons
    #: are deliberate client behaviour, not :attr:`failures`.
    handshakes_abandoned: int = 0
    requests_abandoned: int = 0
    #: Full renegotiation handshakes served on established connections
    #: (renegotiation storms), folded from every server endpoint.
    renegotiations_served: int = 0
    #: Modeled latency of every *completed* handshake (including resumed
    #: and renegotiation handshakes), in virtual seconds on the server's
    #: clock, in completion order: the time from transaction admission
    #: (or renegotiation start) to Finished, including modeled-CPU
    #: queueing behind concurrent transactions.  Deterministic; the p50
    #: and p99 of the overload scenarios are computed from it.
    handshake_latencies: List[float] = field(default_factory=list)
    #: Scheduler-work snapshot (:meth:`~repro.webserver.events.
    #: TxnScheduler.stats`: transactions touched vs the scan-loop
    #: equivalent, rounds executed vs virtual); ``None`` on the
    #: sequential path.  Host-execution accounting -- never part of
    #: baseline signatures.
    scheduler: Optional[Dict[str, int]] = None

    def module_shares(self) -> Dict[str, float]:
        """Module -> share of total cycles (Table 1)."""
        return {name: share
                for name, _, share in self.profiler.module_breakdown()}

    def crypto_category_shares(self) -> Dict[str, float]:
        """Crypto category -> share of libcrypto cycles (Figure 2)."""
        breakdown = crypto_breakdown(self.profiler)
        total = sum(breakdown.values()) or 1.0
        return {k: v / total for k, v in breakdown.items()}

    def cycles_per_request(self) -> float:
        if not self.requests_completed:
            return 0.0
        return self.profiler.total_cycles() / self.requests_completed

    HANDSHAKE_REGIONS = (
        "init", "get_client_hello", "send_server_hello",
        "send_server_cert", "send_server_kx", "send_server_done",
        "get_client_kx", "get_finished", "send_cipher_spec",
        "send_finished", "send_session_ticket", "server_flush",
    )

    def phase_breakdown(self) -> Dict[str, float]:
        """Cycles split into handshake / bulk transfer / everything else.

        The handshake share is the sum of the Table 2 step regions; bulk
        is the record-layer data path; "system" is the modelled kernel,
        httpd and libc work plus whatever falls outside both.
        """
        handshake = sum(self.profiler.region_cycles(r)
                        for r in self.HANDSHAKE_REGIONS)
        bulk = self.profiler.region_cycles("bulk_transfer")
        total = self.profiler.total_cycles()
        return {"handshake": handshake, "bulk": bulk,
                "system": max(0.0, total - handshake - bulk)}


def _first_record(data: bytes) -> bytes:
    """The first SSL record of a flight, cut at the record boundary.

    A mid-key-exchange abandon must deliver the ClientKeyExchange (so
    the server burns the RSA decrypt) but *not* the CCS/Finished records
    the client emits in the same flight; the 5-byte record header
    (type, version, 16-bit length) gives the cut point.
    """
    if len(data) < 5:
        return data
    return data[:5 + int.from_bytes(data[3:5], "big")]


def _fold_ticket_counters(result: SimulationResult, server: SslServer) -> None:
    result.tickets_minted += server.tickets_minted
    result.tickets_accepted += server.tickets_accepted
    result.tickets_rejected += server.tickets_rejected
    result.tickets_renewed += server.tickets_renewed


def _admit_transaction(sim: "WebServerSimulator", txn_id: int,
                       requests: List[Request],
                       server_prof: perf.Profiler,
                       result: SimulationResult,
                       server_suites: Optional[Tuple[CipherSuite, ...]]
                       = None) -> Optional["_Transaction"]:
    """Construct a transaction, folding setup failures into the result.

    ``_Transaction.__init__`` runs real handshake openings (server setup,
    the client's first flight); an :class:`SslError` escaping it would
    crash the scheduling loop while :meth:`_Transaction.step` failures are
    counted.  Admission failures are accounted the same way -- every
    request of the would-be connection becomes a failure -- and ``None``
    is returned so the caller simply does not schedule it.
    """
    try:
        return _Transaction(sim, txn_id, requests, server_prof, result,
                            server_suites=server_suites)
    except SslError:
        result.failures += len(requests)
        return None


class _Transaction:
    """One interleavable HTTPS transaction (connection + its requests).

    The sequential :meth:`WebServerSimulator._run_connection` drives a
    connection to completion before starting the next, so no two handshakes
    are ever in flight together and a batch queue could never fill.  This
    class splits the same work into :meth:`step` increments -- one
    client/server byte exchange or one HTTP request per call -- letting the
    simulator hold many transactions open at once, exactly the concurrency
    batch RSA needs.
    """

    HANDSHAKE, REQUESTS, CLOSING, DONE = range(4)

    # Slotted: at high concurrency the per-transaction bookkeeping is
    # allocated once per connection; slots also pin the attribute set
    # (e.g. a typo'd farm annotation would now raise instead of silently
    # growing a dict).  ``_farm_offered_owner`` is the farm's
    # cross-resumption annotation, defaulted here so simulator-only
    # transactions stay readable.
    __slots__ = ("_sim", "_requests", "_nrequests", "_server_prof",
                 "_result", "_client_prof", "phase", "_hs_start",
                 "_abandon", "_abandon_step", "_renegs_left",
                 "_client_key", "server", "client", "_farm_offered_owner")

    def __init__(self, sim: "WebServerSimulator", txn_id: int,
                 requests: List[Request], server_prof: perf.Profiler,
                 result: SimulationResult,
                 server_suites: Optional[Tuple[CipherSuite, ...]] = None):
        self._sim = sim
        self._requests = deque(requests)
        self._nrequests = len(requests)
        self._server_prof = server_prof
        self._result = result
        self._client_prof = perf.Profiler()  # client machine: discarded
        self.phase = _Transaction.HANDSHAKE
        # Handshake latency starts at admission, before the kernel's
        # connection-setup charges: time already on this worker's clock
        # is queueing the new connection experiences.
        self._hs_start = server_prof.seconds()
        # Adversarial behaviour is a connection-level property, read off
        # the group's first request.
        self._abandon = requests[0].abandon
        self._abandon_step = 0
        self._renegs_left = requests[0].renegotiations
        self._farm_offered_owner: Optional[int] = None
        tag = str(txn_id).encode()

        total_kb = sum(r.size_bytes for r in requests) / 1024.0
        with perf.activate(server_prof):
            perf.charge_cycles(sim._costs.kernel_cycles(total_kb),
                               function="tcp_stack", module=perf.VMLINUX)
            perf.charge_cycles(sim._costs.other_cycles(total_kb),
                               function="libc_misc", module=perf.OTHER)

        resume = sim._client_sessions.offer(requests[0])
        self._client_key = requests[0].client_id

        key, cert = sim._next_server_identity()
        with perf.activate(server_prof):
            self.server = SslServer(
                key, cert,
                suites=(server_suites if server_suites is not None
                        else (sim._suite,)),
                session_cache=sim._session_cache,
                rng=PseudoRandom(sim._seed + b"-s" + tag),
                batcher=sim._batcher,
                clock=server_prof.seconds,
                session_lifetime=sim._session_lifetime,
                offload=sim._engines,
                ticket_keys=sim._tickets)
        with perf.activate(self._client_prof):
            self.client = SslClient(suites=sim._client_suites,
                                    session=resume,
                                    version=sim._version,
                                    rng=PseudoRandom(sim._seed + b"-c" + tag),
                                    session_tickets=sim._tickets is not None)
            self.client.start_handshake()

    @property
    def done(self) -> bool:
        return self.phase == _Transaction.DONE

    def _fail(self) -> None:
        # Only requests not yet individually accounted for become
        # failures; requests stay queued until their response is parsed,
        # and a transaction dying in CLOSING has already counted every
        # request as completed or failed.
        self._result.failures += len(self._requests)
        self._account_wire()
        self.phase = _Transaction.DONE

    def _account_wire(self) -> None:
        """Fold the server endpoint's transcript bytes (and its ticket
        counters) into the result; runs exactly once per transaction."""
        server = getattr(self, "server", None)
        if server is not None:
            self._result.wire_bytes += (server.stats.bytes_sent
                                        + server.stats.bytes_received)
            _fold_ticket_counters(self._result, server)
            self._result.renegotiations_served += server.renegotiations

    def step(self) -> bool:
        """Advance one increment; returns True if any progress was made."""
        try:
            if self.phase == _Transaction.HANDSHAKE:
                return self._step_handshake()
            if self.phase == _Transaction.REQUESTS:
                return self._step_request()
            if self.phase == _Transaction.CLOSING:
                return self._step_close()
        except SslError:
            self._fail()
            return True
        return False

    def _exchange(self) -> bool:
        """Relay pending bytes both ways once (one flight each)."""
        with perf.activate(self._client_prof):
            c_out = self.client.pending_output()
        with perf.activate(self._server_prof):
            s_out = self.server.pending_output()
            if c_out:
                self.server.receive(c_out)
        with perf.activate(self._client_prof):
            if s_out:
                self.client.receive(s_out)
        return bool(c_out or s_out)

    def _step_handshake(self) -> bool:
        if self._abandon is not None:
            return self._step_abandon()
        progressed = self._exchange()
        if self.server.handshake_complete and self.client.handshake_complete:
            self.phase = _Transaction.REQUESTS
            self._result.handshake_latencies.append(
                self._server_prof.seconds() - self._hs_start)
            if self.server.resumed:
                self._result.resumed_handshakes += 1
            return True
        return progressed

    def _step_abandon(self) -> bool:
        """Handshake flood: the client walks away mid-handshake.

        ``"hello"`` delivers the ClientHello and lets the server build
        (and queue on the wire) its full response flight -- certificate
        serialization and all -- before the socket dies.  ``"mid_kx"``
        additionally feeds that flight to the client and delivers *only
        the first record* of the client's second flight -- the
        ClientKeyExchange, cut at the record boundary -- so the server
        pays the Table 2 RSA decrypt but never sees CCS/Finished.  The
        burned work stays charged to the server profile; nothing is
        stored in the session cache or the client pool.
        """
        self._abandon_step += 1
        if self._abandon_step == 1:
            with perf.activate(self._client_prof):
                c_out = self.client.pending_output()
            with perf.activate(self._server_prof):
                self.server.receive(c_out)
                if self._abandon == "hello":
                    # The response flight hits the wire before the
                    # server notices the peer is gone.
                    self.server.pending_output()
            if self._abandon == "hello":
                return self._abandon_now()
            return True
        with perf.activate(self._server_prof):
            s_out = self.server.pending_output()
        with perf.activate(self._client_prof):
            self.client.receive(s_out)
            c_out = self.client.pending_output()
        with perf.activate(self._server_prof):
            self.server.receive(_first_record(c_out))
        return self._abandon_now()

    def _abandon_now(self) -> bool:
        self._result.handshakes_abandoned += 1
        self._result.requests_abandoned += len(self._requests)
        self._requests.clear()
        self._account_wire()
        self.phase = _Transaction.DONE
        return True

    def _step_request(self) -> bool:
        if not self._requests:
            if self._renegs_left > 0:
                # Renegotiation storm: force another full handshake on
                # the established connection (no session offered, so the
                # server burns a fresh RSA decrypt each time).
                self._renegs_left -= 1
                self._hs_start = self._server_prof.seconds()
                with perf.activate(self._client_prof):
                    self.client.renegotiate()
                self.phase = _Transaction.HANDSHAKE
                return True
            self.phase = _Transaction.CLOSING
            return True
        request = self._requests[0]
        with perf.activate(self._client_prof):
            self.client.write(build_request(request.path))
            wire = self.client.pending_output()
        with perf.activate(self._server_prof):
            self.server.receive(wire)
            worker = ApacheWorker(self._sim._costs, request.size_bytes)
            response = worker.handle(self.server.read())
            self.server.write(response)
            wire = self.server.pending_output()
        with perf.activate(self._client_prof):
            self.client.receive(wire)
            status, body = parse_response(self.client.read())
        self._requests.popleft()
        if status.startswith("HTTP/1.1 200"):
            self._result.requests_completed += 1
            self._result.bytes_served += len(body)
        else:
            self._result.failures += 1
        return True

    def _step_close(self) -> bool:
        with perf.activate(self._client_prof):
            self.client.close()
            wire = self.client.pending_output()
        with perf.activate(self._server_prof):
            self.server.receive(wire)
            self.server.close()
        self._sim._client_sessions.store(self._client_key,
                                         self.client.session)
        self._account_wire()
        self.phase = _Transaction.DONE
        return True


class WebServerSimulator:
    """Drives HTTPS transactions through the full stack."""

    def __init__(self, *, suite: CipherSuite = DEFAULT_SUITE,
                 key: Optional[RsaPrivateKey] = None,
                 cert: Optional[Certificate] = None,
                 costs: SystemCostModel = DEFAULT_COSTS,
                 use_crt: bool = False,
                 version: int = 0x0300,
                 seed: bytes = b"webserver",
                 key_set: Optional[BatchRsaKeySet] = None,
                 batch_size: Optional[int] = None,
                 batch_timeout: int = 8,
                 session_cache: Optional[SessionCache] = None,
                 session_lifetime: float = 300.0,
                 engines: Optional[OffloadConfig] = None,
                 tickets: Optional[TicketKeyRing] = None,
                 client_pool_capacity: int = 64,
                 client_suites: Optional[Sequence[CipherSuite]] = None):
        """``use_crt`` defaults to False: the paper's handshake
        measurements (Tables 1-3) are consistent with a non-CRT private
        operation; see DESIGN.md.  ``version`` is the protocol the
        simulated curl client offers (SSLv3, the paper's setup, or TLS
        1.0).  ``key_set`` switches the server to batch RSA: connections
        are assigned member keys round-robin and their ClientKeyExchange
        decrypts amortize through one shared
        :class:`~repro.ssl.server.HandshakeBatcher`.  ``session_cache``
        injects an externally owned cache (the farm's shared topology
        hands one cache to every worker); by default each simulator owns a
        private one.  ``session_lifetime`` bounds minted sessions in
        virtual seconds -- lookups check it against the server profiler's
        :meth:`~repro.perf.Profiler.seconds` clock.  ``engines`` attaches
        a crypto-engine pool (:class:`repro.engines.OffloadConfig`): every
        server connection offloads record crypto and RSA decrypts to it,
        falling back to software when the pool is saturated.  ``tickets``
        attaches a :class:`~repro.ssl.ticket.TicketKeyRing`: servers mint
        stateless session tickets, clients advertise support and offer
        stored tickets, and the id cache stays empty.
        ``client_pool_capacity`` bounds the LRU
        :class:`~repro.webserver.clientpool.ClientPool` of per-client
        resumable sessions -- total retained client state is O(capacity)
        no matter how many distinct clients the workload draws.
        ``client_suites`` is the ClientHello offer list (default: just
        ``suite``); offering more than one suite is what gives a
        server-side :class:`~repro.webserver.overload.SuitePolicy` a
        cheaper suite to downgrade to."""
        if key is None or cert is None:
            key, cert = make_server_identity(1024, seed=seed + b"-identity")
        key.use_crt = use_crt
        self._key = key
        self._cert = cert
        self._suite = suite
        self._client_suites = (tuple(client_suites) if client_suites
                               else (suite,))
        self._costs = costs
        self._version = version
        self._seed = seed
        self._session_cache = (session_cache if session_cache is not None
                               else SessionCache())
        self._session_lifetime = session_lifetime
        self._tickets = tickets
        self._client_sessions = ClientPool(client_pool_capacity)
        self._batcher: Optional[HandshakeBatcher] = None
        self._identities: List[tuple] = [(key, cert)]
        if key_set is not None:
            for member in key_set.members:
                member.use_crt = use_crt
            self._batcher = HandshakeBatcher(key_set, batch_size=batch_size,
                                             timeout_ticks=batch_timeout)
            self._identities = [
                (member, make_self_signed(f"CN=repro-batch-{i}", member))
                for i, member in enumerate(key_set.members)]
        self._next_identity = 0
        self._engines = OffloadPool(engines) if engines is not None else None

    # -- one connection (one or more requests) ----------------------------------
    def _run_connection(self, requests: List[Request],
                        server_prof: perf.Profiler,
                        result: SimulationResult,
                        tag: bytes = b"") -> None:
        client_prof = perf.Profiler()  # client machine: separate, discarded
        hs_start = server_prof.seconds()
        total_kb = sum(r.size_bytes for r in requests) / 1024.0

        # Kernel TCP connection setup + per-byte processing (vmlinux).
        with perf.activate(server_prof):
            perf.charge_cycles(self._costs.kernel_cycles(total_kb),
                               function="tcp_stack", module=perf.VMLINUX)
            perf.charge_cycles(self._costs.other_cycles(total_kb),
                               function="libc_misc", module=perf.OTHER)

        resume = self._client_sessions.offer(requests[0])

        with perf.activate(server_prof):
            server = SslServer(self._key, self._cert, suites=(self._suite,),
                               session_cache=self._session_cache,
                               rng=PseudoRandom(self._seed + b"-s" + tag),
                               clock=server_prof.seconds,
                               session_lifetime=self._session_lifetime,
                               offload=self._engines,
                               ticket_keys=self._tickets)
        with perf.activate(client_prof):
            client = SslClient(suites=self._client_suites, session=resume,
                               version=self._version,
                               rng=PseudoRandom(self._seed + b"-c" + tag),
                               session_tickets=self._tickets is not None)
            client.start_handshake()
        pump(client, server, client_prof, server_prof)
        if not server.handshake_complete:
            result.failures += len(requests)
            result.wire_bytes += (server.stats.bytes_sent
                                  + server.stats.bytes_received)
            _fold_ticket_counters(result, server)
            result.renegotiations_served += server.renegotiations
            return
        result.handshake_latencies.append(server_prof.seconds() - hs_start)
        if server.resumed:
            result.resumed_handshakes += 1

        # One or more HTTP requests over the same encrypted channel
        # (keep-alive: the handshake amortizes across them).
        for request in requests:
            with perf.activate(client_prof):
                client.write(build_request(request.path))
                wire = client.pending_output()
            with perf.activate(server_prof):
                server.receive(wire)
                worker = ApacheWorker(self._costs, request.size_bytes)
                response = worker.handle(server.read())
                server.write(response)
                wire = server.pending_output()
            with perf.activate(client_prof):
                client.receive(wire)
                status, body = parse_response(client.read())
                if not status.startswith("HTTP/1.1 200"):
                    result.failures += 1
                    continue
            result.requests_completed += 1
            result.bytes_served += len(body)

        with perf.activate(client_prof):
            client.close()
            wire = client.pending_output()
        with perf.activate(server_prof):
            server.receive(wire)
            server.close()
        result.wire_bytes += (server.stats.bytes_sent
                              + server.stats.bytes_received)
        _fold_ticket_counters(result, server)
        result.renegotiations_served += server.renegotiations

        self._client_sessions.store(requests[0].client_id, client.session)

    def _next_server_identity(self) -> tuple:
        """Round-robin (key, cert) assignment across batch members."""
        identity = self._identities[self._next_identity
                                    % len(self._identities)]
        self._next_identity += 1
        return identity

    # -- the experiment ------------------------------------------------------------
    def run(self, workload: RequestWorkload, nrequests: int,
            requests_per_connection: int = 1,
            concurrency: int = 1) -> SimulationResult:
        """Process ``nrequests`` transactions; returns server-side results.

        ``requests_per_connection > 1`` enables HTTP keep-alive: the
        paper's per-request full handshake (Table 1) corresponds to 1;
        long B2B-style sessions amortize the handshake across many
        requests.  ``concurrency > 1`` keeps that many transactions in
        flight simultaneously (required for batch RSA: handshakes must
        overlap for the batch queue to fill).
        """
        if requests_per_connection < 1:
            raise ValueError("requests_per_connection must be >= 1")
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        server_prof = perf.Profiler()
        result = SimulationResult(profiler=server_prof)
        # The request stream is consumed lazily through the connection
        # grouper: nothing is materialized, so a 10^7-request run holds
        # O(concurrency + lookahead) admission state.
        groups = connection_groups(workload.requests(nrequests),
                                   requests_per_connection)
        # Adversarial behaviours (abandons, renegotiation storms) live
        # in the _Transaction state machine, so such workloads take the
        # concurrent path even at concurrency 1.  The workload declares
        # the possibility up front (a property of its configuration) --
        # scanning the stream would both materialize it and consume the
        # generator's rng.
        if (concurrency > 1 or self._batcher is not None
                or workload.adversarial):
            self._run_concurrent(groups, server_prof, result, concurrency)
        else:
            # Per-connection rng tags, exactly like the concurrent path's
            # transaction ids: reusing one seed across connections lets a
            # fresh server re-mint the very session id it just declined.
            for i, group in enumerate(groups):
                self._run_connection(group, server_prof, result,
                                     tag=str(i).encode())
        if self._batcher is not None:
            result.batches = dict(self._batcher.batches)
            result.batched_ops = self._batcher.ops_submitted
        if self._engines is not None:
            result.offload = self._engines.snapshot(server_prof.now())
        return result

    def _run_concurrent(self, groups: Iterable[List[Request]],
                        server_prof: perf.Profiler,
                        result: SimulationResult,
                        concurrency: int) -> None:
        """Interleave up to ``concurrency`` transactions round-robin.

        Each scheduling round admits from the (lazily consumed) group
        stream while slots are free, advances this round's *runnable*
        transactions in admission order, and then ticks the batcher's
        virtual clock; a round in which nothing progressed means every
        active handshake is parked in the batch queue, so the queue is
        flushed (partial batch) rather than deadlocking.  The
        :class:`~repro.webserver.events.TxnScheduler` reproduces the
        legacy scan loop's schedule exactly -- under ``REPRO_EVENTS=0``
        it *is* the scan loop -- while skipping rounds in which nothing
        can happen and keeping batch-parked transactions off the scan.
        """
        sched = TxnScheduler(self._batcher,
                             events=runtime.events_enabled())
        pending = iter(groups)
        head: Optional[List[Request]] = next(pending, None)
        txn_id = 0
        round_no = 0
        last_run = -1
        while head is not None or sched:
            while head is not None and len(sched) < concurrency:
                txn = _admit_transaction(self, txn_id, head,
                                         server_prof, result)
                txn_id += 1
                head = next(pending, None)
                if txn is not None:
                    sched.add(txn, round_no)
            sched.run_round(round_no, round_no - last_run, server_prof)
            last_run = round_no
            nxt = sched.next_event_round(round_no)
            if head is not None and len(sched) < concurrency:
                # A free slot and a pending group: next round admits.
                nxt = round_no + 1 if nxt is None else min(nxt,
                                                           round_no + 1)
            round_no = nxt if nxt is not None else round_no + 1
        result.scheduler = sched.stats()


def run_experiment(file_size_bytes: int, nrequests: int = 3, *,
                   suite: CipherSuite = DEFAULT_SUITE,
                   use_crt: bool = False,
                   resumption_rate: float = 0.0,
                   key: Optional[RsaPrivateKey] = None,
                   cert: Optional[Certificate] = None,
                   ) -> SimulationResult:
    """Convenience wrapper: fixed-size workload, fresh simulator."""
    sim = WebServerSimulator(suite=suite, use_crt=use_crt, key=key,
                             cert=cert)
    workload = RequestWorkload.fixed(file_size_bytes,
                                     resumption_rate=resumption_rate)
    return sim.run(workload, nrequests)
