"""The HTTPS web-server experiment (setup 3.1 of the paper).

Runs a stream of HTTPS transactions against a simulated Apache+Linux stack:
the SSL processing is the real instrumented protocol implementation; the
kernel/httpd/libc components are the calibrated cost models of
:mod:`repro.webserver.costs`.  Measurements are taken on the *server* side
(its profiler), exactly as in the paper; the client runs under a separate,
discarded profiler.

Regenerates the data behind Table 1 (module breakdown) and Figure 2
(crypto-category split versus request size).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .. import perf
from ..crypto.rand import PseudoRandom
from ..crypto.rsa import RsaPrivateKey
from ..perf.categories import crypto_breakdown
from ..ssl.ciphersuites import CipherSuite, DEFAULT_SUITE
from ..ssl.client import SslClient
from ..ssl.loopback import make_server_identity, pump
from ..ssl.server import SslServer
from ..ssl.session import SessionCache, SslSession
from ..ssl.x509 import Certificate
from .costs import DEFAULT_COSTS, SystemCostModel
from .httpd import ApacheWorker, build_request, parse_response
from .workload import Request, RequestWorkload


@dataclass
class SimulationResult:
    """Aggregate measurements of one simulation run."""

    profiler: perf.Profiler
    requests_completed: int = 0
    bytes_served: int = 0
    resumed_handshakes: int = 0
    failures: int = 0

    def module_shares(self) -> Dict[str, float]:
        """Module -> share of total cycles (Table 1)."""
        return {name: share
                for name, _, share in self.profiler.module_breakdown()}

    def crypto_category_shares(self) -> Dict[str, float]:
        """Crypto category -> share of libcrypto cycles (Figure 2)."""
        breakdown = crypto_breakdown(self.profiler)
        total = sum(breakdown.values()) or 1.0
        return {k: v / total for k, v in breakdown.items()}

    def cycles_per_request(self) -> float:
        if not self.requests_completed:
            return 0.0
        return self.profiler.total_cycles() / self.requests_completed

    HANDSHAKE_REGIONS = (
        "init", "get_client_hello", "send_server_hello",
        "send_server_cert", "send_server_kx", "send_server_done",
        "get_client_kx", "get_finished", "send_cipher_spec",
        "send_finished", "server_flush",
    )

    def phase_breakdown(self) -> Dict[str, float]:
        """Cycles split into handshake / bulk transfer / everything else.

        The handshake share is the sum of the Table 2 step regions; bulk
        is the record-layer data path; "system" is the modelled kernel,
        httpd and libc work plus whatever falls outside both.
        """
        handshake = sum(self.profiler.region_cycles(r)
                        for r in self.HANDSHAKE_REGIONS)
        bulk = self.profiler.region_cycles("bulk_transfer")
        total = self.profiler.total_cycles()
        return {"handshake": handshake, "bulk": bulk,
                "system": max(0.0, total - handshake - bulk)}


class WebServerSimulator:
    """Drives HTTPS transactions through the full stack."""

    def __init__(self, *, suite: CipherSuite = DEFAULT_SUITE,
                 key: Optional[RsaPrivateKey] = None,
                 cert: Optional[Certificate] = None,
                 costs: SystemCostModel = DEFAULT_COSTS,
                 use_crt: bool = False,
                 version: int = 0x0300,
                 seed: bytes = b"webserver"):
        """``use_crt`` defaults to False: the paper's handshake
        measurements (Tables 1-3) are consistent with a non-CRT private
        operation; see DESIGN.md.  ``version`` is the protocol the
        simulated curl client offers (SSLv3, the paper's setup, or TLS
        1.0)."""
        if key is None or cert is None:
            key, cert = make_server_identity(1024, seed=seed + b"-identity")
        key.use_crt = use_crt
        self._key = key
        self._cert = cert
        self._suite = suite
        self._costs = costs
        self._version = version
        self._seed = seed
        self._session_cache = SessionCache()
        self._client_sessions: List[SslSession] = []

    # -- one connection (one or more requests) ----------------------------------
    def _run_connection(self, requests: List[Request],
                        server_prof: perf.Profiler,
                        result: SimulationResult) -> None:
        client_prof = perf.Profiler()  # client machine: separate, discarded
        total_kb = sum(r.size_bytes for r in requests) / 1024.0

        # Kernel TCP connection setup + per-byte processing (vmlinux).
        with perf.activate(server_prof):
            perf.charge_cycles(self._costs.kernel_cycles(total_kb),
                               function="tcp_stack", module=perf.VMLINUX)
            perf.charge_cycles(self._costs.other_cycles(total_kb),
                               function="libc_misc", module=perf.OTHER)

        resume = None
        if requests[0].resumable and self._client_sessions:
            resume = self._client_sessions[-1]

        with perf.activate(server_prof):
            server = SslServer(self._key, self._cert, suites=(self._suite,),
                               session_cache=self._session_cache,
                               rng=PseudoRandom(self._seed + b"-s"))
        with perf.activate(client_prof):
            client = SslClient(suites=(self._suite,), session=resume,
                               version=self._version,
                               rng=PseudoRandom(self._seed + b"-c"))
            client.start_handshake()
        pump(client, server, client_prof, server_prof)
        if not server.handshake_complete:
            result.failures += len(requests)
            return
        if server.resumed:
            result.resumed_handshakes += 1

        # One or more HTTP requests over the same encrypted channel
        # (keep-alive: the handshake amortizes across them).
        for request in requests:
            with perf.activate(client_prof):
                client.write(build_request(request.path))
                wire = client.pending_output()
            with perf.activate(server_prof):
                server.receive(wire)
                worker = ApacheWorker(self._costs, request.size_bytes)
                response = worker.handle(server.read())
                server.write(response)
                wire = server.pending_output()
            with perf.activate(client_prof):
                client.receive(wire)
                status, body = parse_response(client.read())
                if not status.startswith("HTTP/1.1 200"):
                    result.failures += 1
                    continue
            result.requests_completed += 1
            result.bytes_served += len(body)

        with perf.activate(client_prof):
            client.close()
            wire = client.pending_output()
        with perf.activate(server_prof):
            server.receive(wire)
            server.close()

        if client.session is not None:
            self._client_sessions.append(client.session)

    # -- the experiment ------------------------------------------------------------
    def run(self, workload: RequestWorkload, nrequests: int,
            requests_per_connection: int = 1) -> SimulationResult:
        """Process ``nrequests`` transactions; returns server-side results.

        ``requests_per_connection > 1`` enables HTTP keep-alive: the
        paper's per-request full handshake (Table 1) corresponds to 1;
        long B2B-style sessions amortize the handshake across many
        requests.
        """
        if requests_per_connection < 1:
            raise ValueError("requests_per_connection must be >= 1")
        server_prof = perf.Profiler()
        result = SimulationResult(profiler=server_prof)
        batch: List[Request] = []
        for request in workload.requests(nrequests):
            batch.append(request)
            if len(batch) == requests_per_connection:
                self._run_connection(batch, server_prof, result)
                batch = []
        if batch:
            self._run_connection(batch, server_prof, result)
        return result


def run_experiment(file_size_bytes: int, nrequests: int = 3, *,
                   suite: CipherSuite = DEFAULT_SUITE,
                   use_crt: bool = False,
                   resumption_rate: float = 0.0,
                   key: Optional[RsaPrivateKey] = None,
                   cert: Optional[Certificate] = None,
                   ) -> SimulationResult:
    """Convenience wrapper: fixed-size workload, fresh simulator."""
    sim = WebServerSimulator(suite=suite, use_crt=use_crt, key=key,
                             cert=cert)
    workload = RequestWorkload.fixed(file_size_bytes,
                                     resumption_rate=resumption_rate)
    return sim.run(workload, nrequests)
