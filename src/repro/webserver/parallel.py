"""Process-parallel execution backend for :class:`~repro.webserver.farm.
ServerFarm` -- deterministic, cycle-exact.

The farm's workload is embarrassingly parallel *almost* everywhere: each
worker replica owns its connection pool, its virtual clock, its batch
queue and (under the partitioned topology) its session-cache shard.  The
pieces that are *not* worker-local are exactly the pieces the serial
scheduling loop touches between worker rounds:

* the **balancing policy** and global accept queue (admission order);
* the farm-global **client session pool** (clients resume against
  whichever worker they land on next, so worker A's minted session must
  be offerable to worker B one round later);
* the one **shared server-side session cache** under the ``shared``
  topology (mod_ssl's shared-memory cache): every worker's lookups,
  stores, expiry drops and LRU evictions mutate one structure whose
  counters the run reports;
* one **process-global one-shot charge**: OpenSSL loads its error
  strings the first time any RSA private decryption runs
  (``ERR_load_BN_strings``, see :mod:`repro.crypto.rsa`), and the paper's
  cost model charges it exactly once per process lifetime.

This module keeps all four in the parent and runs the per-worker inner
loops -- the *same* ``_run_worker_round`` the serial path executes -- in
child processes, synchronised once per scheduling round ("lockstep").
Because the serial loop already quantises all cross-worker interaction
to round boundaries (the pool is read only at admission, written only at
connection close; the policy runs only at admission; a shared-cache
lookup can only target a session that finished -- and was therefore
stored -- in a strictly earlier round), replaying the round structure
reproduces the serial interleaving *exactly*: modeled cycles,
transcripts, cache counters and batch histograms are bit-identical to
``ServerFarm.run`` with ``parallel=0``, enforced against the committed
baselines by ``tests/test_parallel_farm.py`` /
``tests/test_parallel_shared.py`` and the CI parallel-farm smoke job.

Protocol (one duplex pipe per child process)::

    parent -> child   ("init",   {fastpath, err_tables, states})
    parent -> child   ("round",  {worker: [(txn_id, group, offered,
                                            owner, cache_entry,
                                            server_suites), ...]},
                                 ticks)
    child  -> parent  ("report", {worker: (minted, cross, active,
                                           cache_ops, next_event)})
    parent -> child   ("finish",)
    child  -> parent  ("done",   [worker states])
    child  -> parent  ("error",  traceback text)   -- any time

``ticks`` is the virtual-round advance since the previous round message
(> 1 when the event core skipped no-op rounds); each child adds it to
its private round clock, so parent and children agree on the round
number without ever shipping it.  ``next_event`` is the worker's
:meth:`~repro.webserver.events.TxnScheduler.next_event_round` -- computed
child-side by the same scheduler code the serial loop runs, then folded
through the same :func:`~repro.webserver.farm._next_round_target`, which
is what makes the two backends' skip decisions identical by
construction.

Determinism notes:

* **Admission** is planned entirely in the parent: the policy object
  (and its internal state, e.g. round-robin position) never leaves the
  parent, per-worker in-flight counts are mirrored from the round
  reports (:attr:`ServerFarm._parallel_active`), and the offered session
  is resolved against the parent's pool and shipped with the admission
  -- so worker selection, transaction ids and resumption offers are the
  serial ones by construction.
* **Minted sessions** travel back in the round report as
  ``(client_id, session)`` pairs and are stored into the parent pool in
  worker-index order -- the order the serial loop stores them -- before
  the next round's admissions read the pool.
* **The shared session cache** stays authoritative in the parent and is
  synchronised at round boundaries.  The only lookups a round can issue
  are for the sessions its own admissions offered (a ClientHello is
  processed on a transaction's first step, in its admission round), so
  the parent ships, with each admission, the authoritative cache entry
  for the offered id -- a view of the one cache *sufficient for that
  round's lookups*.  Inside the child a
  :class:`~repro.webserver.parallel._SharedCacheMirror` serves those
  entries (applying the worker's own clock for expiry, exactly like
  :meth:`~repro.ssl.session.SessionCache.get`) and records every touch
  -- hits, misses, expiry drops, stores -- as a mutation log.  The
  round report carries the per-worker logs back and the parent replays
  them in worker-index order through
  :meth:`~repro.ssl.session.SessionCache.replay`, so the real cache's
  contents, LRU order and ``stats()`` counters are the serial ones by
  construction.  A replayed lookup that disagrees with what the worker
  observed (possible only when two workers race on the same entry
  within one round: an expiry-boundary duplicate offer, or a capacity
  eviction landing on the session another worker is resuming) raises
  :class:`~repro.ssl.session.CacheReplayDivergence` rather than merging
  a result that is no longer bit-identical.
* **The ERR_LOAD one-shot** travels *with each worker's key*: a farm at
  ``N >= 2`` hands every worker a key replica carrying its own
  :class:`~repro.crypto.rsa.ErrorTables`, so each worker pays the
  error-string load exactly once, on its own clock, at its first
  private-key operation -- in the serial loop and in a child process
  alike.  Workers therefore fan out at round 0; no serial prefix, no
  special case.  (The module-global flag still exists for keys owned by
  the main process and is mirrored to children in ``init`` so a child
  is a faithful process clone.)
* **Pickle boundary**: worker states cross the pipe via pickle.
  :class:`~repro.perf.cpu.CpuModel` interns on unpickle (identity-based
  merge checks survive), :class:`~repro.perf.isa.MixAccumulator` folds
  before serializing, and each child's states ship in one message so
  within-process object sharing (key, cert, suite) is preserved by the
  pickle memo.

Start method: ``fork`` where the platform offers it (cheap -- the child
inherits the imported modules), ``spawn`` otherwise; both are supported
and the choice is not observable in the results.  Override with
``REPRO_PARALLEL_START=fork|spawn|forkserver``.  Spawn safety is why
:func:`_worker_main` is a module-level function fed exclusively through
its pipe.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from typing import Dict, List, Optional, TYPE_CHECKING

from .. import runtime
from ..crypto import rsa
from ..ssl.session import CacheOp, SslSession
from .overload import AcceptQueue
from .simulator import _admit_transaction
from .workload import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .farm import FarmResult, ServerFarm, _WorkerState


class _ClientPoolMirror:
    """Child-side stand-in for the farm-global client session pool.

    The real :class:`~repro.webserver.clientpool.ClientPool` lives in the
    parent.  Inside a worker process the simulator touches the pool at
    exactly two points, and the mirror covers both:

    * ``_Transaction.__init__`` calls ``pool.offer(request)`` to pick the
      session a resuming client offers.  The parent resolves that against
      its authoritative pool and ships the session with the admission;
      the mirror replays it via :attr:`offered`.
    * ``_step_close`` calls ``pool.store(client_id, session)`` with the
      connection's (possibly freshly minted or ticket-renewed) session.
      The mirror collects the ``(client_id, session)`` pairs in
      :attr:`minted`, which the round report carries back for the parent
      to fold into the real pool in worker-index order.
    """

    def __init__(self, index: int) -> None:
        self.current_worker = index
        self.offered: Optional[SslSession] = None
        self.minted: List[tuple] = []

    def offer(self, request: Request) -> Optional[SslSession]:
        return self.offered

    def store(self, client_id, session: Optional[SslSession]) -> None:
        if session is not None:
            self.minted.append((client_id, session))


class _SharedCacheMirror:
    """Child-side stand-in for the farm's one shared ``SessionCache``.

    The authoritative cache lives in the parent.  Per scheduling round
    the mirror is loaded with the cache entries the round's admissions
    can look up (:attr:`entries`, keyed by session id -- the
    round-boundary "view sufficient for this round's lookups"), serves
    :meth:`get` against them with the same expiry semantics as the real
    cache, and records every touch in :attr:`ops` as a replayable
    mutation log (see :meth:`~repro.ssl.session.SessionCache.replay`).

    The mirror holds no LRU order and no counters: eviction decisions
    and ``stats()`` accounting belong to the parent's replay, which
    re-executes each logged ``get``/``put``/``remove`` on the real cache
    in serial worker order.  An expiry drop *is* applied locally (the
    entry leaves :attr:`entries`) so a second lookup of the same id
    later in the same round -- the serial loop's same-worker
    read-after-drop -- misses here too.

    One mirror per child process, shared by all its worker states
    (exactly as the real cache is shared by all workers); per-worker op
    logs are separated by draining :meth:`take_ops` after each worker's
    round.
    """

    def __init__(self) -> None:
        self.entries: Dict[bytes, SslSession] = {}
        self.ops: List[CacheOp] = []

    def begin_round(self) -> None:
        self.entries.clear()
        self.ops.clear()

    def take_ops(self) -> List[CacheOp]:
        """Drain the mutation log recorded since the last drain."""
        ops, self.ops = self.ops, []
        return ops

    # -- the SessionCache surface the server touches ------------------------
    def get(self, session_id: bytes,
            now: Optional[float] = None) -> Optional[SslSession]:
        session = self.entries.get(session_id)
        if session is None:
            self.ops.append(("get", session_id, now, False))
            return None
        if now is not None and session.expired_at(now):
            del self.entries[session_id]
            self.ops.append(("get", session_id, now, False))
            return None
        self.ops.append(("get", session_id, now, True))
        return session

    def put(self, session: SslSession) -> None:
        self.ops.append(("put", session))

    def remove(self, session_id: bytes) -> None:
        self.entries.pop(session_id, None)
        self.ops.append(("remove", session_id))


def _start_method() -> str:
    override = os.environ.get("REPRO_PARALLEL_START", "").strip().lower()
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_PARALLEL_START={override!r} not available "
                f"(choices: {available})")
        return override
    return "fork" if "fork" in available else "spawn"


def _worker_main(conn) -> None:
    """Child process entry point: owns a subset of worker states, runs
    their rounds in lockstep with the parent.  Module-level (and fed
    only through ``conn``) so the spawn start method can import it."""
    try:
        kind, payload = conn.recv()
        if kind != "init":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected init message, got {kind!r}")
        runtime.set_fastpath(payload["fastpath"])
        rsa.set_error_tables_loaded(payload["err_tables"])
        # Imported here so a spawn child pays for it once, after init.
        from .farm import _run_worker_round
        states: List["_WorkerState"] = payload["states"]
        # Under the shared topology every shipped state references one
        # _SharedCacheMirror (the pickle memo preserves the sharing, just
        # as the real cache is shared); partitioned states carry their
        # own private shards and no mirror.
        cache = states[0].sim._session_cache
        cache_mirror = cache if isinstance(cache, _SharedCacheMirror) \
            else None
        round_no = -1  # advanced by each round message's ticks
        while True:
            msg = conn.recv()
            if msg[0] == "round":
                admissions: Dict[int, list] = msg[1]
                ticks = msg[2] if len(msg) > 2 else 1
                round_no += ticks
                if cache_mirror is not None:
                    cache_mirror.begin_round()
                # Admission first for every worker, then every worker's
                # round -- the serial phase order.
                for state in states:
                    mirror = state.sim._client_sessions
                    for (txn_id, group, offered, owner, cache_entry,
                         suites) in admissions.get(state.index, ()):
                        if cache_entry is not None:
                            cache_mirror.entries[
                                cache_entry.session_id] = cache_entry
                        mirror.offered = offered
                        txn = _admit_transaction(state.sim, txn_id, group,
                                                 state.profiler,
                                                 state.result,
                                                 server_suites=suites)
                        if txn is not None:
                            txn._farm_offered_owner = owner
                            state.sched.add(txn, round_no)
                        mirror.offered = None
                report = {}
                for state in states:
                    mirror = state.sim._client_sessions
                    cross = _run_worker_round(state, mirror, round_no,
                                              ticks)
                    cache_ops = (cache_mirror.take_ops()
                                 if cache_mirror is not None else [])
                    report[state.index] = (
                        mirror.minted, cross, len(state.sched), cache_ops,
                        state.sched.next_event_round(round_no))
                conn.send(("report", report))
                for state in states:
                    state.sim._client_sessions.minted = []
            elif msg[0] == "finish":
                conn.send(("done", states))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except EOFError:  # parent died; nothing to report to
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _recv(conn, proc, workers: List[int]):
    """Receive one protocol message, turning every way a child can die
    into a diagnostic that names the dead worker process.

    A child that hits an exception sends an ``("error", traceback)``
    message; a child that dies outright (killed, segfaulted interpreter,
    ``os._exit``) just closes its end of the pipe, which surfaces here as
    ``EOFError`` -- wrapped rather than leaked, with the worker indices
    and exit code attached.
    """
    try:
        msg = conn.recv()
    except EOFError:
        proc.join(timeout=5)
        exitcode = proc.exitcode
        raise RuntimeError(
            f"parallel farm worker process for workers {workers} died "
            f"mid-protocol (exit code {exitcode})") from None
    if msg[0] == "error":
        raise RuntimeError(
            f"parallel farm worker process for workers {workers} "
            f"failed:\n{msg[1]}")
    return msg


def _join_worker(proc, workers: List[int], timeout: float = 10.0) -> None:
    """Join a finished child and raise -- rather than silently letting
    the ``finally`` cleanup terminate it -- if it hangs past ``timeout``
    or exited with a nonzero status."""
    proc.join(timeout=timeout)
    if proc.is_alive():
        raise RuntimeError(
            f"parallel farm worker process for workers {workers} did "
            f"not exit within {timeout:g}s of the finish message")
    if proc.exitcode:
        raise RuntimeError(
            f"parallel farm worker process for workers {workers} "
            f"exited with code {proc.exitcode}")


def run_parallel(farm: "ServerFarm", queue, nprocs: int) -> "FarmResult":
    """Drive ``farm``'s scheduling loop with worker states distributed
    over ``nprocs`` child processes.  Called by :meth:`ServerFarm.run`
    (never directly); ``farm._states`` is already initialised and the
    workload already grouped into the :class:`~repro.webserver.overload.
    AcceptQueue` (a plain deque/list of groups is also accepted for
    back-compat and wrapped in a policy-free queue)."""
    from .farm import _next_round_target

    if not isinstance(queue, AcceptQueue):
        queue = AcceptQueue(list(queue), None)
        farm._accept_queue = queue

    states = farm._states
    pool = farm._pool
    events = getattr(farm, "_events_on", runtime.events_enabled())
    txn_id = 0
    cross = 0

    if not queue and not any(s.sched for s in states):
        # Empty workload: don't spawn a pool to do nothing.
        return farm._assemble_result(cross, backend="serial")

    # -- snapshot worker states and fan out ---------------------------------
    workers_of = [[i for i in range(farm.nworkers) if i % nprocs == p]
                  for p in range(nprocs)]
    proc_of = {i: p for p in range(nprocs) for i in workers_of[p]}
    for state in states:
        state.sim._client_sessions = _ClientPoolMirror(state.index)
    shared_cache = farm._shared_cache
    if shared_cache is not None:
        # One mirror replaces the one shared cache on every state that
        # ships (per child, the pickle memo collapses it back to a single
        # object).  Nothing is in flight yet -- fan-out happens at round
        # 0 -- but rebind any active transactions defensively: a server
        # object holds its own cache reference, and a stale one would
        # mutate a pickled copy instead of entering the mutation log.
        cache_stub = _SharedCacheMirror()
        for state in states:
            state.sim._session_cache = cache_stub
            for txn in state.sched.transactions():
                txn.server._cache = cache_stub

    ctx = multiprocessing.get_context(_start_method())
    procs: List = []
    conns: List = []
    try:
        for p in range(nprocs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,),
                               daemon=True)
            proc.start()
            child_conn.close()
            parent_conn.send(("init", {
                "fastpath": runtime.fastpath_enabled(),
                "err_tables": rsa.error_tables_loaded(),
                "states": [states[i] for i in workers_of[p]],
            }))
            procs.append(proc)
            conns.append(parent_conn)

        active = [len(s.sched) for s in states]
        farm._parallel_active = active
        next_events: List[Optional[int]] = [None] * farm.nworkers
        target = 0

        # -- lockstep rounds ------------------------------------------------
        while queue or any(active):
            ticks = target - queue.round
            queue.begin_round(target)
            admissions: List[Dict[int, list]] = [{} for _ in range(nprocs)]
            while True:
                group = queue.head()
                if group is None:
                    break
                plan = farm._admission_plan(group)
                if plan is None:
                    break
                worker, offered, owner = plan
                suites = farm._suites_for_admission(queue)
                # The round-boundary cache view: the only session this
                # admission's handshake can look up is the one it offers,
                # so the authoritative entry (or its absence) rides along.
                cache_entry = (shared_cache.peek(offered.session_id)
                               if shared_cache is not None
                               and offered is not None else None)
                queue.pop()
                admissions[proc_of[worker]].setdefault(worker, []).append(
                    (txn_id, group, offered, owner, cache_entry, suites))
                active[worker] += 1
                txn_id += 1
            for p in range(nprocs):
                conns[p].send(("round", admissions[p], ticks))
            reports = [_recv(conns[p], procs[p], workers_of[p])[1]
                       for p in range(nprocs)]
            # Fold round effects in worker-index order -- the order the
            # serial loop iterates workers, hence the order sessions land
            # in the pool and cache mutations land in the shared cache.
            for i in range(farm.nworkers):
                (minted, delta, count, cache_ops,
                 next_event) = reports[proc_of[i]][i]
                pool.current_worker = i
                for client_id, session in minted:
                    pool.store(client_id, session)
                if cache_ops:
                    shared_cache.replay(cache_ops)
                cross += delta
                active[i] = count
                next_events[i] = next_event
            target = _next_round_target(queue, next_events, events)

        # -- collect final worker states ------------------------------------
        for p in range(nprocs):
            conns[p].send(("finish",))
        for p in range(nprocs):
            for state in _recv(conns[p], procs[p], workers_of[p])[1]:
                state.sim._client_sessions = pool
                if shared_cache is not None:
                    state.sim._session_cache = shared_cache
                farm._states[state.index] = state
                farm._sims[state.index] = state.sim
        for p in range(nprocs):
            _join_worker(procs[p], workers_of[p])
    finally:
        farm._parallel_active = None
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)

    return farm._assemble_result(cross, backend=f"parallel:{nprocs}")
