"""Process-parallel execution backend for :class:`~repro.webserver.farm.
ServerFarm` -- deterministic, cycle-exact.

The farm's workload is embarrassingly parallel *almost* everywhere: each
worker replica owns its connection pool, its virtual clock, its batch
queue and (under the partitioned topology) its session-cache shard.  The
pieces that are *not* worker-local are exactly the pieces the serial
scheduling loop touches between worker rounds:

* the **balancing policy** and global accept queue (admission order);
* the farm-global **client session pool** (clients resume against
  whichever worker they land on next, so worker A's minted session must
  be offerable to worker B one round later);
* one **process-global one-shot charge**: OpenSSL loads its error
  strings the first time any RSA private decryption runs
  (``ERR_load_BN_strings``, see :mod:`repro.crypto.rsa`), and the paper's
  cost model charges it exactly once per process lifetime.

This module keeps all three in the parent and runs the per-worker inner
loops -- the *same* ``_run_worker_round`` the serial path executes -- in
child processes, synchronised once per scheduling round ("lockstep").
Because the serial loop already quantises all cross-worker interaction
to round boundaries (the pool is read only at admission, written only at
connection close; the policy runs only at admission), replaying the
round structure reproduces the serial interleaving *exactly*: modeled
cycles, transcripts, cache counters and batch histograms are
bit-identical to ``ServerFarm.run`` with ``parallel=0``, enforced
against the committed baselines by ``tests/test_parallel_farm.py`` and
the CI parallel-farm smoke job.

Protocol (one duplex pipe per child process)::

    parent -> child   ("init",   {fastpath, err_tables, states})
    parent -> child   ("round",  {worker: [(txn_id, group, offered,
                                            owner), ...]})
    child  -> parent  ("report", {worker: (minted, cross, active)})
    parent -> child   ("finish",)
    child  -> parent  ("done",   [worker states])
    child  -> parent  ("error",  traceback text)   -- any time

Determinism notes:

* **Admission** is planned entirely in the parent: the policy object
  (and its internal state, e.g. round-robin position) never leaves the
  parent, per-worker in-flight counts are mirrored from the round
  reports (:attr:`ServerFarm._parallel_active`), and the offered session
  is resolved against the parent's pool and shipped with the admission
  -- so worker selection, transaction ids and resumption offers are the
  serial ones by construction.
* **Minted sessions** travel back in the round report and are appended
  to the parent pool in worker-index order -- the order the serial loop
  appends them -- before the next round's admissions read the pool.
* **The ERR_LOAD one-shot** cannot be fanned out: each child starts with
  its own unset flag, so naive parallelism would charge it once per
  process (or in the wrong worker's clock).  Instead the run begins with
  a *serial prefix* in the parent -- the ordinary serial loop -- until
  the charge has been consumed (or is provably unreachable: non-RSA key
  exchange, or a handshake batcher that defers every private decryption
  into :meth:`~repro.crypto.batch_rsa.BatchRsaDecryptor.decrypt_batch`).
  Only then are worker states snapshotted and shipped.  A run that
  completes inside the prefix reports ``backend="serial"``.
* **Pickle boundary**: worker states cross the pipe via pickle.
  :class:`~repro.perf.cpu.CpuModel` interns on unpickle (identity-based
  merge checks survive), :class:`~repro.perf.isa.MixAccumulator` folds
  before serializing, and each child's states ship in one message so
  within-process object sharing (key, cert, suite) is preserved by the
  pickle memo.

Start method: ``fork`` where the platform offers it (cheap -- the child
inherits the imported modules), ``spawn`` otherwise; both are supported
and the choice is not observable in the results.  Override with
``REPRO_PARALLEL_START=fork|spawn|forkserver``.  Spawn safety is why
:func:`_worker_main` is a module-level function fed exclusively through
its pipe.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from collections import deque
from typing import Dict, List, Optional, TYPE_CHECKING

from .. import runtime
from ..crypto import rsa
from ..ssl.session import SslSession
from .simulator import _Transaction
from .workload import Request

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .farm import FarmResult, ServerFarm, _WorkerState


class _ClientPoolMirror:
    """Child-side stand-in for the farm-global client session pool.

    The real :class:`~repro.webserver.farm._SessionPool` lives in the
    parent.  Inside a worker process the simulator touches the pool at
    exactly two points, and the mirror covers both:

    * ``_Transaction.__init__`` reads ``pool[-1]`` (guarded by
      ``bool(pool)``) to pick the session a resuming client offers.  The
      parent resolves that against its authoritative pool and ships the
      session with the admission; the mirror replays it via
      :attr:`offered`.
    * ``_step_close`` appends the connection's (possibly freshly minted)
      session.  The mirror collects appends in :attr:`minted`, which the
      round report carries back for the parent to fold into the real
      pool in worker-index order.
    """

    def __init__(self, index: int) -> None:
        self.current_worker = index
        self.offered: Optional[SslSession] = None
        self.minted: List[SslSession] = []

    def append(self, session: SslSession) -> None:
        self.minted.append(session)

    def __bool__(self) -> bool:
        return self.offered is not None

    def __getitem__(self, index: int) -> SslSession:
        if index != -1 or self.offered is None:
            raise IndexError(
                "client pool mirror only serves the most recent session")
        return self.offered


def _start_method() -> str:
    override = os.environ.get("REPRO_PARALLEL_START", "").strip().lower()
    available = multiprocessing.get_all_start_methods()
    if override:
        if override not in available:
            raise ValueError(
                f"REPRO_PARALLEL_START={override!r} not available "
                f"(choices: {available})")
        return override
    return "fork" if "fork" in available else "spawn"


def _err_load_pending(farm: "ServerFarm") -> bool:
    """True while the process-global ERR_LOAD one-shot could still fire
    in this run, i.e. while fan-out would misplace it."""
    if rsa.error_tables_loaded():
        return False
    sim = farm._sims[0]
    if sim._suite.key_exchange != "RSA":
        return False
    if sim._batcher is not None:
        return False
    return True


def _worker_main(conn) -> None:
    """Child process entry point: owns a subset of worker states, runs
    their rounds in lockstep with the parent.  Module-level (and fed
    only through ``conn``) so the spawn start method can import it."""
    try:
        kind, payload = conn.recv()
        if kind != "init":  # pragma: no cover - protocol guard
            raise RuntimeError(f"expected init message, got {kind!r}")
        runtime.set_fastpath(payload["fastpath"])
        rsa.set_error_tables_loaded(payload["err_tables"])
        # Imported here so a spawn child pays for it once, after init.
        from .farm import _run_worker_round
        states: List["_WorkerState"] = payload["states"]
        while True:
            msg = conn.recv()
            if msg[0] == "round":
                admissions: Dict[int, list] = msg[1]
                # Admission first for every worker, then every worker's
                # round -- the serial phase order.
                for state in states:
                    mirror = state.sim._client_sessions
                    for txn_id, group, offered, owner in admissions.get(
                            state.index, ()):
                        mirror.offered = offered
                        txn = _Transaction(state.sim, txn_id, group,
                                           state.profiler, state.result)
                        txn._farm_offered_owner = owner
                        state.active.append(txn)
                        mirror.offered = None
                report = {}
                for state in states:
                    mirror = state.sim._client_sessions
                    cross = _run_worker_round(state, mirror)
                    report[state.index] = (mirror.minted, cross,
                                           len(state.active))
                conn.send(("report", report))
                for state in states:
                    state.sim._client_sessions.minted = []
            elif msg[0] == "finish":
                conn.send(("done", states))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except EOFError:  # parent died; nothing to report to
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass
    finally:
        conn.close()


def _recv(conn):
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(
            "parallel farm worker process failed:\n" + msg[1])
    return msg


def run_parallel(farm: "ServerFarm", pending: "deque[List[Request]]",
                 nprocs: int) -> "FarmResult":
    """Drive ``farm``'s scheduling loop with worker states distributed
    over ``nprocs`` child processes.  Called by :meth:`ServerFarm.run`
    (never directly); ``farm._states`` is already initialised and the
    workload already grouped into ``pending``."""
    from .farm import _run_worker_round

    states = farm._states
    pool = farm._pool
    txn_id = 0
    cross = 0

    # -- serial prefix: consume the process-global one-shot charge ----------
    while _err_load_pending(farm) and (
            pending or any(s.active for s in states)):
        txn_id = farm._admit(pending, txn_id)
        for state in states:
            cross += _run_worker_round(state, pool)
    if not pending and not any(s.active for s in states):
        # The whole run fit inside the prefix; no processes were spawned.
        return farm._assemble_result(cross, backend="serial")

    # -- snapshot worker states and fan out ---------------------------------
    workers_of = [[i for i in range(farm.nworkers) if i % nprocs == p]
                  for p in range(nprocs)]
    proc_of = {i: p for p in range(nprocs) for i in workers_of[p]}
    for state in states:
        state.sim._client_sessions = _ClientPoolMirror(state.index)

    ctx = multiprocessing.get_context(_start_method())
    procs: List = []
    conns: List = []
    try:
        for p in range(nprocs):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child_conn,),
                               daemon=True)
            proc.start()
            child_conn.close()
            parent_conn.send(("init", {
                "fastpath": runtime.fastpath_enabled(),
                "err_tables": rsa.error_tables_loaded(),
                "states": [states[i] for i in workers_of[p]],
            }))
            procs.append(proc)
            conns.append(parent_conn)

        active = [len(s.active) for s in states]
        farm._parallel_active = active

        # -- lockstep rounds ------------------------------------------------
        while pending or any(active):
            admissions: List[Dict[int, list]] = [{} for _ in range(nprocs)]
            while pending:
                plan = farm._admission_plan(pending[0])
                if plan is None:
                    break
                worker, offered, owner = plan
                group = pending.popleft()
                admissions[proc_of[worker]].setdefault(worker, []).append(
                    (txn_id, group, offered, owner))
                active[worker] += 1
                txn_id += 1
            for p in range(nprocs):
                conns[p].send(("round", admissions[p]))
            reports = [_recv(conns[p])[1] for p in range(nprocs)]
            # Fold round effects in worker-index order -- the order the
            # serial loop iterates workers, hence the order sessions
            # land in the pool.
            for i in range(farm.nworkers):
                minted, delta, count = reports[proc_of[i]][i]
                pool.current_worker = i
                for session in minted:
                    pool.append(session)
                cross += delta
                active[i] = count

        # -- collect final worker states ------------------------------------
        for p in range(nprocs):
            conns[p].send(("finish",))
        for p in range(nprocs):
            for state in _recv(conns[p])[1]:
                state.sim._client_sessions = pool
                farm._states[state.index] = state
                farm._sims[state.index] = state.sim
        for proc in procs:
            proc.join(timeout=10)
    finally:
        farm._parallel_active = None
        for conn in conns:
            conn.close()
        for proc in procs:
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5)

    return farm._assemble_result(cross, backend=f"parallel:{nprocs}")
