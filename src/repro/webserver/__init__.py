"""Simulated HTTPS web-server environment (Apache + mod_ssl + Linux stand-in)."""

from .capacity import (
    LoadResult, LoadSimulator, MixedLoadSimulator, farm_requests_per_second,
    requests_per_second,
)
from .clientpool import ClientPool
from .costs import DEFAULT_COSTS, SystemCostModel
from .farm import (
    PARTITIONED, POLICIES, SHARED, TOPOLOGIES,
    FarmResult, LeastConnectionsPolicy, LoadBalancerPolicy,
    RoundRobinPolicy, ServerFarm, SessionAffinityPolicy, WorkerStats,
)
from .httpd import (
    ApacheWorker, HttpError, HttpRequest, build_request, build_response,
    parse_request, parse_response,
)
from .overload import (
    ABANDON_HELLO, ABANDON_MID_KX, ABANDON_MODES, ADMISSION_POLICIES,
    AcceptQueue, AdmissionPolicy, AdversarialWorkload, DeadlineShedPolicy,
    DropTailPolicy, PressureSignal, ResumptionPreferredPolicy, SuitePolicy,
    suite_cost_per_kb,
)
from .parallel import run_parallel
from .simulator import SimulationResult, WebServerSimulator, run_experiment
from .workload import Request, RequestWorkload, document_bytes

__all__ = [
    "LoadResult", "LoadSimulator", "MixedLoadSimulator",
    "farm_requests_per_second", "requests_per_second",
    "ClientPool",
    "DEFAULT_COSTS", "SystemCostModel",
    "PARTITIONED", "POLICIES", "SHARED", "TOPOLOGIES",
    "FarmResult", "LeastConnectionsPolicy", "LoadBalancerPolicy",
    "RoundRobinPolicy", "ServerFarm", "SessionAffinityPolicy",
    "WorkerStats", "run_parallel",
    "ApacheWorker", "HttpError", "HttpRequest", "build_request",
    "build_response", "parse_request", "parse_response",
    "ABANDON_HELLO", "ABANDON_MID_KX", "ABANDON_MODES",
    "ADMISSION_POLICIES", "AcceptQueue", "AdmissionPolicy",
    "AdversarialWorkload", "DeadlineShedPolicy", "DropTailPolicy",
    "PressureSignal", "ResumptionPreferredPolicy", "SuitePolicy",
    "suite_cost_per_kb",
    "SimulationResult", "WebServerSimulator", "run_experiment",
    "Request", "RequestWorkload", "document_bytes",
]
