"""Overload anatomy: adversarial traffic, admission control and
cipher-suite downgrade for the server farm.

The paper characterizes SSL processing cost at steady state; this module
is what a production deployment does with those numbers when offered load
exceeds capacity.  Three pieces:

* :class:`AdversarialWorkload` -- a streaming, seeded traffic generator
  layered on :class:`~repro.webserver.workload.RequestWorkload`:
  heavy-tailed (Pareto-shaped) bursty arrivals, flash-crowd ramps,
  handshake-flood clients that abandon after the ClientHello or
  mid-key-exchange (the server burns the Table 2 RSA decrypt, the
  client never finishes), and renegotiation storms.  Every draw comes
  from the workload's own :class:`~repro.crypto.rand.PseudoRandom`
  stream, so runs are deterministic and perfgate-signable.

* :class:`AdmissionPolicy` and the :class:`AcceptQueue` -- a
  round-structured accept queue in front of the farm's load balancer.
  Connections arrive in their :attr:`~repro.webserver.workload.Request.
  arrival_round`; the policy decides, at arrival and at each round
  boundary, which of them ever reach a worker: :class:`DropTailPolicy`
  (bounded backlog), :class:`DeadlineShedPolicy` (bounded backlog plus
  queue-wait deadline), :class:`ResumptionPreferredPolicy` (a full
  backlog evicts the youngest full-handshake connection in favour of a
  resuming client -- resumption is ~10x cheaper, Table 2 vs the
  abbreviated handshake).  The queue lives in the parent on both farm
  backends, so shed/offered counters fold identically under
  ``parallel=N``.

* :class:`SuitePolicy` -- the cipher-suite downgrade engine.  Under
  measured pressure (accept-queue depth) the ServerHello preference
  order is flipped toward the cheap suite; the decision table is the
  repo's *own* modeled kernel costs (:func:`suite_cost_per_kb`, the
  Table 11/12 record-path kernels), so the downgrade payoff is exactly
  the paper's RC4/MD5-vs-3DES/SHA cost ratio, not a magic constant.

Everything here is pure policy + bookkeeping: no modeled cycles are
charged by this module, which is why a policy-off run remains
bit-identical to the pre-overload farm.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..ssl.ciphersuites import CipherSuite, DEFAULT_SUITE, RC4_MD5
from .workload import Request, RequestWorkload, _DRAW_SPAN

#: ``Request.abandon`` markers for the two handshake-flood behaviours.
ABANDON_HELLO = "hello"
ABANDON_MID_KX = "mid_kx"
ABANDON_MODES = (ABANDON_HELLO, ABANDON_MID_KX)


# ---------------------------------------------------------------------------
# Adversarial workload
# ---------------------------------------------------------------------------

class AdversarialWorkload(RequestWorkload):
    """A hostile request stream: bursty arrivals, floods, reneg storms.

    ``mean_gap_rounds`` sets the mean inter-arrival gap in scheduling
    rounds; gaps are drawn from a Pareto(alpha=2)-shaped distribution
    (many zero gaps -- bursts -- plus a heavy tail of lulls), computed
    via ``sqrt`` only so draws are bit-identical across platforms.
    ``flash=(round, factor)`` multiplies the arrival *rate* by ``factor``
    once the stream reaches ``round`` -- a flash crowd ramp.
    ``flood_rate`` is the fraction of connections that are handshake
    floods; ``flood_mode`` picks their behaviour (``"hello"``,
    ``"mid_kx"`` or ``"mix"`` for a per-flood 50/50 draw).
    ``reneg_rate``/``reneg_storm``: fraction of completing connections
    that force ``reneg_storm`` full renegotiation handshakes before
    closing.

    Per-request draw order is fixed (size, resumption, client, gap,
    flood, reneg) so a given seed + configuration always produces the
    same stream.
    """

    def __init__(self, size_mix: Sequence[Tuple[int, float]],
                 resumption_rate: float = 0.0,
                 seed: bytes = b"overload",
                 clients: Optional[int] = None, *,
                 mean_gap_rounds: float = 1.0,
                 flash: Optional[Tuple[int, float]] = None,
                 flood_rate: float = 0.0,
                 flood_mode: str = "mix",
                 reneg_rate: float = 0.0,
                 reneg_storm: int = 2):
        super().__init__(size_mix, resumption_rate, seed, clients=clients)
        if mean_gap_rounds < 0.0:
            raise ValueError("mean_gap_rounds must be non-negative")
        if not 0.0 <= flood_rate <= 1.0:
            raise ValueError("flood_rate must be in [0, 1]")
        if not 0.0 <= reneg_rate <= 1.0:
            raise ValueError("reneg_rate must be in [0, 1]")
        if flood_mode != "mix" and flood_mode not in ABANDON_MODES:
            raise ValueError(f"unknown flood_mode {flood_mode!r}")
        if reneg_storm < 0:
            raise ValueError("reneg_storm must be non-negative")
        if flash is not None and (flash[0] < 0 or flash[1] <= 0.0):
            raise ValueError("flash must be (round >= 0, factor > 0)")
        self._mean_gap = float(mean_gap_rounds)
        self._flash = flash
        self._flood_rate = flood_rate
        self._flood_mode = flood_mode
        self._reneg_rate = reneg_rate
        self._reneg_storm = reneg_storm

    @classmethod
    def fixed(cls, size_bytes: int, resumption_rate: float = 0.0,
              seed: bytes = b"overload", clients: Optional[int] = None,
              **kwargs) -> "AdversarialWorkload":
        """Fixed file size, adversarial keyword knobs passed through."""
        return cls([(size_bytes, 1.0)], resumption_rate, seed,
                   clients=clients, **kwargs)

    @property
    def adversarial(self) -> bool:
        """Whether this configuration can stamp abandons or
        renegotiation storms on its stream.  Pure bursty arrivals
        (``flood_rate == reneg_rate == 0``) are not adversarial in this
        sense -- every connection still completes normally, exactly the
        distinction the old ``any()`` scan over the materialized groups
        drew per stream."""
        return self._flood_rate > 0.0 or self._reneg_rate > 0.0

    def _next_gap(self, at_round: int) -> int:
        """Pareto(alpha=2)-shaped inter-arrival gap, in whole rounds.

        With scale ``s`` the gap is ``floor(s * (1/sqrt(u) - 1))`` for a
        uniform ``u`` in (0, 1]; its mean is ``s``.  A flash crowd
        divides the scale (rate *= factor) once ``at_round`` passes the
        ramp point.  ``math.sqrt`` is correctly rounded per IEEE-754, so
        the draw is platform-stable (no ``pow`` with fractional
        exponents).
        """
        if self._mean_gap <= 0.0:
            return 0
        scale = self._mean_gap
        if self._flash is not None and at_round >= self._flash[0]:
            scale /= self._flash[1]
        u = (self._rng.int_below(_DRAW_SPAN) + 1) / _DRAW_SPAN
        return int(scale * (math.sqrt(1.0 / u) - 1.0))

    def requests(self, count: int) -> Iterator[Request]:
        if count < 0:
            raise ValueError("count must be non-negative")
        at_round = 0
        for i in range(count):
            size = self._pick_size()
            resume = (self._resumption_rate > 0.0
                      and self._rng.int_below(_DRAW_SPAN) / _DRAW_SPAN
                      < self._resumption_rate)
            client_id = (self._rng.int_below(self._clients)
                         if self._clients is not None else None)
            at_round += self._next_gap(at_round)
            abandon = None
            if (self._flood_rate > 0.0
                    and self._rng.int_below(_DRAW_SPAN) / _DRAW_SPAN
                    < self._flood_rate):
                if self._flood_mode == "mix":
                    abandon = (ABANDON_MID_KX if self._rng.int_below(2)
                               else ABANDON_HELLO)
                else:
                    abandon = self._flood_mode
                # A flood client never completes a handshake, so it has
                # no session to resume (and nothing to store).
                resume = False
            renegotiations = 0
            if (abandon is None and self._reneg_rate > 0.0
                    and self._rng.int_below(_DRAW_SPAN) / _DRAW_SPAN
                    < self._reneg_rate):
                renegotiations = self._reneg_storm
            yield Request(path=f"/doc-{size}-{i}.html", size_bytes=size,
                          resumable=resume, client_id=client_id,
                          arrival_round=at_round, abandon=abandon,
                          renegotiations=renegotiations)


# ---------------------------------------------------------------------------
# Admission: the accept queue and its shedding policies
# ---------------------------------------------------------------------------

class AcceptQueue:
    """Round-structured accept queue shared by both farm backends.

    Connection groups enter at their ``arrival_round`` (normalised to be
    non-decreasing) and wait until the load balancer finds them a free
    worker slot.  An optional :class:`AdmissionPolicy` decides, at
    arrival and at each round boundary, which ever make it that far.
    With no policy and all-zero arrival rounds this degenerates to the
    plain FIFO ``deque`` the farm used before -- the exact admission
    sequence, which is what keeps every pre-overload baseline signature
    unchanged.

    ``groups`` may be any iterable, a *lazy* one included: the queue
    holds a single group of lookahead (the next arrival and its
    normalised release round) and pulls the rest on demand, so a
    streaming workload never materializes.  ``next_arrival_round`` --
    the lookahead's release round -- is what lets the event-core farm
    loop jump the round clock across empty arrival gaps; the companion
    ``begin_round(to_round=...)`` form lands the clock directly on a
    target round.  Skipping is only sound while the backlog is empty:
    policy ``prune`` hooks must be no-ops on an empty queue (true of
    every shipped policy -- they only inspect queued entries), which the
    farm guarantees by never jumping past ``round + 1`` at nonzero
    depth.

    The queue lives in the *parent* on the serial and process-parallel
    backends alike (admission is planned parent-side either way), so its
    offered/shed/wait counters fold identically under ``parallel=N``.
    """

    def __init__(self, groups: Iterable[List[Request]],
                 admission: Optional["AdmissionPolicy"] = None):
        self._pending = iter(groups)
        self._release = 0  # running max: releases are non-decreasing
        self._next: Optional[Tuple[List[Request], int]] = None
        self._advance()
        self._queue: deque = deque()  # (group, round it was queued)
        self.admission = admission
        self.round = -1  # becomes 0 on the first begin_round()
        self.offered_connections = 0
        self.shed_queue_full = 0
        self.shed_deadline = 0
        self.requests_shed = 0
        self.peak_queue_depth = 0
        self.queue_wait_rounds_total = 0

    def _advance(self) -> None:
        """Pull the next arrival into the one-group lookahead."""
        group = next(self._pending, None)
        if group is None:
            self._next = None
            return
        self._release = max(self._release, group[0].arrival_round)
        self._next = (group, self._release)

    # -- bookkeeping the policies call --------------------------------------
    def shed(self, group: List[Request], reason: str) -> None:
        if reason == "deadline":
            self.shed_deadline += 1
        else:
            self.shed_queue_full += 1
        self.requests_shed += len(group)

    @property
    def connections_shed(self) -> int:
        return self.shed_queue_full + self.shed_deadline

    # -- round structure ----------------------------------------------------
    def begin_round(self, to_round: Optional[int] = None) -> None:
        """Advance the round clock: prune stale queue entries, then take
        this round's arrivals through the admission policy.

        ``to_round`` jumps the clock directly to a target round (the
        event core skipping provably idle rounds); the caller guarantees
        the skipped rounds were no-ops -- empty backlog, no arrival
        released in them.  The default advances one round, the legacy
        cadence.
        """
        if to_round is None:
            self.round += 1
        else:
            if to_round <= self.round:
                raise ValueError("round clock can only move forward")
            self.round = to_round
        if self.admission is not None:
            self.admission.prune(self)
        while self._next is not None and self._next[1] <= self.round:
            group, _ = self._next
            self._advance()
            self.offered_connections += 1
            if self.admission is None or self.admission.admit(self, group):
                self._queue.append((group, self.round))
        if len(self._queue) > self.peak_queue_depth:
            self.peak_queue_depth = len(self._queue)

    def next_arrival_round(self) -> Optional[int]:
        """Release round of the next pending arrival (``None`` when the
        stream is exhausted) -- the arrival-side bound on how far the
        event core may jump the round clock."""
        return self._next[1] if self._next is not None else None

    # -- the surface the farm's admission loop uses -------------------------
    def depth(self) -> int:
        return len(self._queue)

    def head(self) -> Optional[List[Request]]:
        return self._queue[0][0] if self._queue else None

    def pop(self) -> List[Request]:
        group, queued_round = self._queue.popleft()
        self.queue_wait_rounds_total += self.round - queued_round
        return group

    def __bool__(self) -> bool:
        return self._next is not None or bool(self._queue)


class AdmissionPolicy:
    """Accept-queue admission: which offered connections ever reach a
    worker.  The base class accepts everything (the pre-overload farm).

    ``admit`` runs once per arriving connection group and returns
    ``True`` to queue it; a policy that sheds must call
    :meth:`AcceptQueue.shed` itself (that is where the offered/shed
    anatomy counters live).  ``prune`` runs at each round boundary
    before new arrivals and may shed already-queued entries (deadline
    shedding).
    """

    name = "accept-all"

    def admit(self, queue: AcceptQueue, group: List[Request]) -> bool:
        return True

    def prune(self, queue: AcceptQueue) -> None:
        return None


class DropTailPolicy(AdmissionPolicy):
    """Classic bounded listen backlog: a full queue drops new arrivals."""

    name = "drop-tail"

    def __init__(self, max_queue: int):
        if max_queue < 1:
            raise ValueError("max_queue must be positive")
        self.max_queue = max_queue

    def admit(self, queue: AcceptQueue, group: List[Request]) -> bool:
        if queue.depth() < self.max_queue:
            return True
        queue.shed(group, "queue-full")
        return False


class DeadlineShedPolicy(DropTailPolicy):
    """Bounded backlog plus a queue-wait deadline: an entry that has
    waited more than ``deadline_rounds`` scheduling rounds is shed at
    the round boundary -- the client would have timed out anyway, so
    serving it would burn a full handshake for an abandoned page."""

    name = "deadline-shed"

    def __init__(self, max_queue: int, deadline_rounds: int):
        super().__init__(max_queue)
        if deadline_rounds < 0:
            raise ValueError("deadline_rounds must be non-negative")
        self.deadline_rounds = deadline_rounds

    def prune(self, queue: AcceptQueue) -> None:
        kept: deque = deque()
        for group, queued_round in queue._queue:
            if queue.round - queued_round > self.deadline_rounds:
                queue.shed(group, "deadline")
            else:
                kept.append((group, queued_round))
        queue._queue = kept


class ResumptionPreferredPolicy(DropTailPolicy):
    """Bounded backlog that prefers resuming clients under overflow.

    An abbreviated handshake skips the RSA decrypt entirely (Table 2's
    dominant cost), so when the backlog is full and a *resuming* client
    arrives, the youngest queued full-handshake connection is evicted in
    its favour; a full-handshake arrival at a full queue is simply
    dropped.  Handshake floods never offer a session, so under pressure
    this policy preferentially sheds exactly the traffic that burns
    server cycles without ever completing.
    """

    name = "resumption-preferred"

    def admit(self, queue: AcceptQueue, group: List[Request]) -> bool:
        if queue.depth() < self.max_queue:
            return True
        if group[0].resumable:
            for i in range(len(queue._queue) - 1, -1, -1):
                queued, _ = queue._queue[i]
                if not queued[0].resumable:
                    del queue._queue[i]
                    queue.shed(queued, "queue-full")
                    return True
        queue.shed(group, "queue-full")
        return False


ADMISSION_POLICIES = {cls.name: cls for cls in
                      (DropTailPolicy, DeadlineShedPolicy,
                       ResumptionPreferredPolicy)}


# ---------------------------------------------------------------------------
# Cipher-suite downgrade engine
# ---------------------------------------------------------------------------

#: (cipher, mac) -> modeled record-path cycles per KiB, measured once.
_SUITE_COST_CACHE: Dict[Tuple[str, str], float] = {}


def suite_cost_per_kb(suite: CipherSuite) -> float:
    """Modeled record-path cost of ``suite`` in cycles per KiB.

    Runs the repo's own Table 11/12 kernels (one 1 KiB bulk encrypt plus
    one 1 KiB MAC digest, each under a private profiler) rather than
    hard-coding the paper's printed numbers -- the downgrade decision
    table is therefore always consistent with whatever the modeled
    kernels actually charge, on either host backend (the fast path is
    bit-identical by contract).  Includes the kernels' key-setup cost,
    which slightly favours stream ciphers exactly as the paper's
    per-connection accounting does.  Cached per (cipher, mac) pair.
    """
    cache_key = (suite.cipher, suite.mac)
    cached = _SUITE_COST_CACHE.get(cache_key)
    if cached is not None:
        return cached
    from ..crypto.bench import measure_cipher, measure_hash
    cost = measure_hash(suite.mac, 1024).cycles
    if suite.cipher != "null":
        cost += measure_cipher(suite.cipher, 1024).cycles
    _SUITE_COST_CACHE[cache_key] = cost
    return cost


@dataclass(frozen=True)
class PressureSignal:
    """What the farm measures at each admission decision."""

    #: Accept-queue depth (connections waiting for a worker slot).
    queue_depth: int
    #: In-flight connections across all workers.
    active: int
    #: Total connection slots (workers x concurrency per worker).
    slots: int
    #: Current scheduling round.
    round: int

    @property
    def utilization(self) -> float:
        return self.active / self.slots if self.slots else 0.0


class SuitePolicy:
    """Steer ServerHello suite selection toward the cheap suite under
    pressure.

    The server picks the first of *its* preference order that the client
    offered, so flipping the order is the entire downgrade mechanism: no
    protocol change, just a different ServerHello.  The decision is made
    parent-side at admission (it must be identical on the serial and
    process-parallel backends) and priced from :func:`suite_cost_per_kb`
    -- for the paper's suites the payoff is the Table 11 vs Table 12
    ratio, roughly an order of magnitude of record-path cycles per byte.
    """

    def __init__(self, primary: CipherSuite = DEFAULT_SUITE,
                 downgrade: CipherSuite = RC4_MD5, *,
                 queue_high: int = 4):
        """``queue_high``: accept-queue depth at or above which the
        downgrade order is served."""
        if primary.suite_id == downgrade.suite_id:
            raise ValueError("primary and downgrade must differ")
        if queue_high < 1:
            raise ValueError("queue_high must be positive")
        self.primary = primary
        self.downgrade = downgrade
        self.queue_high = queue_high

    def payoff_ratio(self) -> float:
        """Record-path cycles/KiB of the primary over the downgrade
        suite -- how much bulk work each downgraded connection saves."""
        return suite_cost_per_kb(self.primary) / suite_cost_per_kb(
            self.downgrade)

    def under_pressure(self, pressure: PressureSignal) -> bool:
        return pressure.queue_depth >= self.queue_high

    def suites_for(self, pressure: PressureSignal,
                   ) -> Tuple[CipherSuite, ...]:
        """Server-side preference order for the next admitted
        connection."""
        if self.under_pressure(pressure):
            return (self.downgrade, self.primary)
        return (self.primary, self.downgrade)
