"""Sharded multi-worker HTTPS server farm.

The paper sizes SSL processing against a single Pentium 4 (Table 1's
secure-vs-plain capacity collapse).  This module scales that methodology
across ``N`` worker replicas, the way production sites actually recovered
the lost capacity: each worker owns a
:class:`~repro.webserver.simulator.WebServerSimulator` replica (its own
connection pool, its own :class:`~repro.ssl.server.HandshakeBatcher` queue
when batch RSA is on, and its own virtual clock -- a private
:class:`~repro.perf.Profiler`), fronted by a pluggable load balancer.

Two session-cache topologies are modelled:

* ``partitioned`` -- every worker keeps a private
  :class:`~repro.ssl.session.SessionCache` shard.  A client whose session
  was minted on worker A and who lands on worker B misses and pays a full
  handshake (the classic multi-worker resumption problem);
* ``shared`` -- one cache serves every worker (mod_ssl's shared-memory
  session cache / a distributed cache), so resumption survives
  cross-worker rescheduling.

Three balancing policies ship: round-robin, least-connections and
session-affinity hashing (route a resuming client back to the worker that
minted its session -- which recovers resumption hits even under the
partitioned topology).

**The N=1 invariant**: a one-worker farm is *bit-identical* -- cycle
totals, charge stream, transcript bytes -- to
``WebServerSimulator.run(..., concurrency=k)``.  The farm does not model
anything new at N=1; it only adds the sharding axis.  The scheduling loop
therefore mirrors ``WebServerSimulator._run_concurrent`` exactly
(admission, stepping order, batch ticking, stall handling), per worker.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from .. import perf
from ..crypto.batch_rsa import BatchRsaKeySet
from ..crypto.rsa import RsaPrivateKey
from ..ssl.ciphersuites import CipherSuite, DEFAULT_SUITE
from ..ssl.loopback import make_server_identity
from ..ssl.session import SessionCache, SslSession
from ..ssl.x509 import Certificate
from .capacity import farm_requests_per_second
from .costs import DEFAULT_COSTS, SystemCostModel
from .simulator import SimulationResult, WebServerSimulator, _Transaction
from .workload import Request, RequestWorkload

PARTITIONED = "partitioned"
SHARED = "shared"
TOPOLOGIES = (PARTITIONED, SHARED)


class _SessionPool(list):
    """Client-side session pool shared across all workers.

    Clients are oblivious to the farm: whichever worker served their last
    connection, the minted session lands here and the next resumable
    connection offers it -- exactly the single-simulator behaviour, which
    is what makes cross-worker resumption measurable at all.  ``append``
    also records the minting worker so affinity routing (and the
    cross-worker accounting) can find a session's home shard.
    """

    def __init__(self) -> None:
        super().__init__()
        self.owners: Dict[bytes, int] = {}
        self.current_worker = 0

    def append(self, session: SslSession) -> None:
        self.owners[session.session_id] = self.current_worker
        super().append(session)


# ---------------------------------------------------------------------------
# Load-balancing policies
# ---------------------------------------------------------------------------

class LoadBalancerPolicy:
    """Admission-time worker selection.

    :meth:`select` returns the index of a worker with a free connection
    slot, or ``None`` to hold the connection at the head of the accept
    queue for this scheduling round (e.g. a sticky target is saturated).
    """

    name = "abstract"

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        raise NotImplementedError


class RoundRobinPolicy(LoadBalancerPolicy):
    """Cycle through the workers, skipping saturated ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        for offset in range(farm.nworkers):
            worker = (self._next + offset) % farm.nworkers
            if farm.free_slots(worker):
                self._next = (worker + 1) % farm.nworkers
                return worker
        return None


class LeastConnectionsPolicy(LoadBalancerPolicy):
    """Pick the worker with the fewest in-flight connections."""

    name = "least-connections"

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        candidates = [w for w in range(farm.nworkers) if farm.free_slots(w)]
        if not candidates:
            return None
        return min(candidates, key=lambda w: (farm.active_connections(w), w))


class SessionAffinityPolicy(LoadBalancerPolicy):
    """Route a resuming client to the worker that minted its session.

    This is sticky routing keyed on the offered session id: under the
    partitioned cache topology it is what turns guaranteed cross-worker
    misses back into hits.  Fresh (non-resuming) connections fall back to
    round-robin; a saturated sticky target holds the connection back
    rather than breaking affinity.
    """

    name = "session-affinity"

    def __init__(self) -> None:
        self._fallback = RoundRobinPolicy()

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        session = farm.offered_session(group)
        if session is not None:
            owner = farm.session_owner(session.session_id)
            if owner is not None:
                return owner if farm.free_slots(owner) else None
        return self._fallback.select(farm, group)


POLICIES = {cls.name: cls for cls in
            (RoundRobinPolicy, LeastConnectionsPolicy,
             SessionAffinityPolicy)}


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class WorkerStats:
    """Per-worker summary row of one farm run."""

    worker: int
    cycles: float
    seconds: float
    requests_completed: int
    failures: int
    resumed_handshakes: int
    wire_bytes: int
    batched_ops: int


@dataclass
class FarmResult:
    """Aggregate + per-shard measurements of one farm run."""

    nworkers: int
    topology: str
    policy: str
    #: Per-worker results; ``results[i].profiler`` is worker ``i``'s
    #: virtual clock.
    results: List[SimulationResult] = field(default_factory=list)
    #: Per-*shard* cache counters (N shards when partitioned, 1 when
    #: shared), each ``{"shard", "workers", "hits", "misses",
    #: "evictions", "size", "capacity"}``.
    shard_stats: List[Dict] = field(default_factory=list)
    #: Resumptions served by a worker other than the session's minter
    #: (only possible under the shared topology).
    cross_worker_resumptions: int = 0

    # -- aggregates ---------------------------------------------------------
    @property
    def requests_completed(self) -> int:
        return sum(r.requests_completed for r in self.results)

    @property
    def failures(self) -> int:
        return sum(r.failures for r in self.results)

    @property
    def resumed_handshakes(self) -> int:
        return sum(r.resumed_handshakes for r in self.results)

    @property
    def bytes_served(self) -> int:
        return sum(r.bytes_served for r in self.results)

    @property
    def wire_bytes(self) -> int:
        return sum(r.wire_bytes for r in self.results)

    @property
    def batched_ops(self) -> int:
        return sum(r.batched_ops for r in self.results)

    def worker_stats(self) -> List[WorkerStats]:
        return [WorkerStats(
            worker=i, cycles=r.profiler.total_cycles(),
            seconds=r.profiler.seconds(),
            requests_completed=r.requests_completed, failures=r.failures,
            resumed_handshakes=r.resumed_handshakes,
            wire_bytes=r.wire_bytes, batched_ops=r.batched_ops)
            for i, r in enumerate(self.results)]

    def total_cycles(self) -> float:
        return sum(r.profiler.total_cycles() for r in self.results)

    def makespan_seconds(self) -> float:
        """Virtual wall-clock of the run: the busiest worker's clock."""
        return max(r.profiler.seconds() for r in self.results)

    def capacity_rps(self) -> float:
        """Achieved farm capacity: completed requests over the makespan.

        This is the farm-scale analogue of the paper's Table 1 capacity
        (requests/s at saturation): workers run in parallel, so the run
        "takes" as long as its most loaded worker.
        """
        makespan = self.makespan_seconds()
        if makespan <= 0.0:
            return 0.0
        return self.requests_completed / makespan

    def analytic_capacity_rps(self) -> float:
        """Sum of per-worker analytic ceilings (see ``capacity.py``)."""
        return farm_requests_per_second(
            [r.profiler.total_cycles() for r in self.results],
            [r.requests_completed for r in self.results],
            self.results[0].profiler.cpu)

    def merged_profiler(self) -> perf.Profiler:
        """All workers folded into one profile (Table 1 at farm scale)."""
        target = perf.Profiler(self.results[0].profiler.cpu)
        return perf.merge_profilers(target,
                                    *[r.profiler for r in self.results])

    def module_shares(self) -> Dict[str, float]:
        merged = self.merged_profiler()
        return {name: share
                for name, _, share in merged.module_breakdown()}

    def batch_histogram(self) -> Dict[int, int]:
        """Union of the per-worker batch-size histograms."""
        merged: Dict[int, int] = {}
        for r in self.results:
            for size, count in r.batches.items():
                merged[size] = merged.get(size, 0) + count
        return merged


# ---------------------------------------------------------------------------
# The farm
# ---------------------------------------------------------------------------

class _WorkerState:
    """Run-time bookkeeping for one worker replica."""

    __slots__ = ("index", "sim", "profiler", "result", "active", "stalled")

    def __init__(self, index: int, sim: WebServerSimulator):
        self.index = index
        self.sim = sim
        self.profiler = perf.Profiler()
        self.result = SimulationResult(profiler=self.profiler)
        self.active: List[_Transaction] = []
        self.stalled = 0


class ServerFarm:
    """N web-server worker replicas behind a load balancer.

    All workers serve the same identity (one certificate, like a real
    farm) and the same suite/version configuration; what varies per
    worker is its connection pool, its virtual clock, its batch queue and
    -- under the partitioned topology -- its session-cache shard.
    """

    def __init__(self, nworkers: int, *,
                 topology: str = PARTITIONED,
                 policy: Union[str, LoadBalancerPolicy] = "round-robin",
                 suite: CipherSuite = DEFAULT_SUITE,
                 key: Optional[RsaPrivateKey] = None,
                 cert: Optional[Certificate] = None,
                 costs: SystemCostModel = DEFAULT_COSTS,
                 use_crt: bool = False,
                 version: int = 0x0300,
                 seed: bytes = b"webserver",
                 key_set: Optional[BatchRsaKeySet] = None,
                 batch_size: Optional[int] = None,
                 batch_timeout: int = 8,
                 session_lifetime: float = 300.0,
                 session_cache_capacity: int = 1024):
        """``key_set`` enables batch RSA: the member keys are partitioned
        round-robin into one disjoint sub-keyset per worker (see
        :meth:`BatchRsaKeySet.partition`), so every worker's batch queue
        -- and therefore every suspended-handshake continuation -- stays
        worker-local.  Requires at least one member key per worker."""
        if nworkers < 1:
            raise ValueError("need at least one worker")
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown cache topology {topology!r}")
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise ValueError(f"unknown balancing policy {policy!r}")
            policy = POLICIES[policy]()
        self.nworkers = nworkers
        self.topology = topology
        self.policy = policy
        if key is None or cert is None:
            # Same derivation as WebServerSimulator's default, generated
            # once and shared by every worker.
            key, cert = make_server_identity(1024, seed=seed + b"-identity")
        shared_cache = (SessionCache(session_cache_capacity)
                        if topology == SHARED else None)
        subsets: Optional[List[BatchRsaKeySet]] = None
        if key_set is not None:
            subsets = key_set.partition(nworkers)
        self._pool = _SessionPool()
        self._sims: List[WebServerSimulator] = []
        for i in range(nworkers):
            sim = WebServerSimulator(
                suite=suite, key=key, cert=cert, costs=costs,
                use_crt=use_crt, version=version, seed=seed,
                key_set=subsets[i] if subsets is not None else None,
                batch_size=batch_size, batch_timeout=batch_timeout,
                session_cache=(shared_cache if shared_cache is not None
                               else SessionCache(session_cache_capacity)),
                session_lifetime=session_lifetime)
            # Clients resume against whatever worker they land on next:
            # the client-session pool is farm-global.
            sim._client_sessions = self._pool
            self._sims.append(sim)
        self._shared_cache = shared_cache
        self._states: List[_WorkerState] = []

    # -- policy callbacks ---------------------------------------------------
    def free_slots(self, worker: int) -> bool:
        state = self._states[worker]
        return len(state.active) < self._concurrency

    def active_connections(self, worker: int) -> int:
        return len(self._states[worker].active)

    def offered_session(self, group: Sequence[Request],
                        ) -> Optional[SslSession]:
        """The session the next client for ``group`` would offer (the same
        most-recent-session rule as ``_Transaction.__init__``)."""
        if group[0].resumable and self._pool:
            return self._pool[-1]
        return None

    def session_owner(self, session_id: bytes) -> Optional[int]:
        return self._pool.owners.get(session_id)

    def shard_caches(self) -> List[SessionCache]:
        if self._shared_cache is not None:
            return [self._shared_cache]
        return [sim._session_cache for sim in self._sims]

    # -- the experiment -----------------------------------------------------
    def run(self, workload: RequestWorkload, nrequests: int,
            requests_per_connection: int = 1,
            concurrency_per_worker: int = 4) -> FarmResult:
        """Process ``nrequests`` requests across the farm.

        Scheduling interleaves the workers round by round: admit from the
        global accept queue through the balancing policy, advance every
        in-flight transaction of every worker one step, then tick each
        worker's batch clock -- the exact per-worker mirror of
        ``WebServerSimulator._run_concurrent`` (which is what makes the
        N=1 farm bit-identical to the single simulator).
        """
        if requests_per_connection < 1:
            raise ValueError("requests_per_connection must be >= 1")
        if concurrency_per_worker < 1:
            raise ValueError("concurrency_per_worker must be >= 1")
        self._concurrency = concurrency_per_worker
        groups: List[List[Request]] = []
        batch: List[Request] = []
        for request in workload.requests(nrequests):
            batch.append(request)
            if len(batch) == requests_per_connection:
                groups.append(batch)
                batch = []
        if batch:
            groups.append(batch)

        self._states = [_WorkerState(i, sim)
                        for i, sim in enumerate(self._sims)]
        states = self._states
        pending = deque(groups)
        txn_id = 0
        cross_resumed = 0

        while pending or any(s.active for s in states):
            # -- admission through the balancer -----------------------------
            while pending:
                worker = self.policy.select(self, pending[0])
                if worker is None:
                    break
                state = states[worker]
                offered = self.offered_session(pending[0])
                self._pool.current_worker = worker
                txn = _Transaction(state.sim, txn_id, pending.popleft(),
                                   state.profiler, state.result)
                txn._farm_offered_owner = (
                    self._pool.owners.get(offered.session_id)
                    if offered is not None else None)
                state.active.append(txn)
                txn_id += 1
            # -- one scheduling round over every worker ----------------------
            for state in states:
                self._pool.current_worker = state.index
                progressed = False
                for txn in list(state.active):
                    if txn.step():
                        progressed = True
                    if txn.done:
                        state.active.remove(txn)
                        owner = txn._farm_offered_owner
                        if (txn.server.resumed and owner is not None
                                and owner != state.index):
                            cross_resumed += 1
                batcher = state.sim._batcher
                if batcher is not None:
                    with perf.activate(state.profiler):
                        batcher.tick()
                        if not progressed and len(batcher):
                            batcher.flush()
                            progressed = True
                if progressed:
                    state.stalled = 0
                    continue
                state.stalled += 1
                if state.stalled > 4:
                    for txn in state.active:
                        txn._fail()
                    state.active.clear()

        for state in states:
            if state.sim._batcher is not None:
                state.result.batches = dict(state.sim._batcher.batches)
                state.result.batched_ops = state.sim._batcher.ops_submitted

        shard_stats = []
        if self._shared_cache is not None:
            shard_stats.append({"shard": 0,
                                "workers": list(range(self.nworkers)),
                                **self._shared_cache.stats()})
        else:
            for i, sim in enumerate(self._sims):
                shard_stats.append({"shard": i, "workers": [i],
                                    **sim._session_cache.stats()})
        return FarmResult(
            nworkers=self.nworkers, topology=self.topology,
            policy=self.policy.name,
            results=[s.result for s in states],
            shard_stats=shard_stats,
            cross_worker_resumptions=cross_resumed)
