"""Sharded multi-worker HTTPS server farm.

The paper sizes SSL processing against a single Pentium 4 (Table 1's
secure-vs-plain capacity collapse).  This module scales that methodology
across ``N`` worker replicas, the way production sites actually recovered
the lost capacity: each worker owns a
:class:`~repro.webserver.simulator.WebServerSimulator` replica (its own
connection pool, its own :class:`~repro.ssl.server.HandshakeBatcher` queue
when batch RSA is on, and its own virtual clock -- a private
:class:`~repro.perf.Profiler`), fronted by a pluggable load balancer.

Two session-cache topologies are modelled:

* ``partitioned`` -- every worker keeps a private
  :class:`~repro.ssl.session.SessionCache` shard.  A client whose session
  was minted on worker A and who lands on worker B misses and pays a full
  handshake (the classic multi-worker resumption problem);
* ``shared`` -- one cache serves every worker (mod_ssl's shared-memory
  session cache / a distributed cache), so resumption survives
  cross-worker rescheduling.

Three balancing policies ship: round-robin, least-connections and
session-affinity hashing (route a resuming client back to the worker that
minted its session -- which recovers resumption hits even under the
partitioned topology).

**The N=1 invariant**: a one-worker farm is *bit-identical* -- cycle
totals, charge stream, transcript bytes -- to
``WebServerSimulator.run(..., concurrency=k)``.  The farm does not model
anything new at N=1; it only adds the sharding axis.  The scheduling loop
therefore mirrors ``WebServerSimulator._run_concurrent`` exactly
(admission, stepping order, batch ticking, stall handling), per worker.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .. import perf, runtime
from ..crypto.batch_rsa import BatchRsaKeySet
from ..crypto.rsa import RsaPrivateKey
from ..engines.offload import OffloadConfig
from ..ssl.ciphersuites import CipherSuite, DEFAULT_SUITE
from ..ssl.loopback import make_server_identity
from ..ssl.session import SessionCache, SslSession
from ..ssl.ticket import TicketKeyRing
from ..ssl.x509 import Certificate
from .capacity import farm_requests_per_second
from .clientpool import ClientPool
from .costs import DEFAULT_COSTS, SystemCostModel
from .events import TxnScheduler
from .overload import AcceptQueue, AdmissionPolicy, PressureSignal, SuitePolicy
from .simulator import (
    SimulationResult, WebServerSimulator, _Transaction, _admit_transaction,
)
from .workload import Request, RequestWorkload, connection_groups

PARTITIONED = "partitioned"
SHARED = "shared"
TOPOLOGIES = (PARTITIONED, SHARED)


# ---------------------------------------------------------------------------
# Load-balancing policies
# ---------------------------------------------------------------------------

class LoadBalancerPolicy:
    """Admission-time worker selection.

    :meth:`select` returns the index of a worker with a free connection
    slot, or ``None`` to hold the connection at the head of the accept
    queue for this scheduling round (e.g. a sticky target is saturated).
    """

    name = "abstract"

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        raise NotImplementedError


class RoundRobinPolicy(LoadBalancerPolicy):
    """Cycle through the workers, skipping saturated ones."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        for offset in range(farm.nworkers):
            worker = (self._next + offset) % farm.nworkers
            if farm.free_slots(worker):
                self._next = (worker + 1) % farm.nworkers
                return worker
        return None


class LeastConnectionsPolicy(LoadBalancerPolicy):
    """Pick the worker with the fewest in-flight connections."""

    name = "least-connections"

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        candidates = [w for w in range(farm.nworkers) if farm.free_slots(w)]
        if not candidates:
            return None
        return min(candidates, key=lambda w: (farm.active_connections(w), w))


class SessionAffinityPolicy(LoadBalancerPolicy):
    """Route a resuming client to the worker that minted its session.

    This is sticky routing keyed on the offered session id: under the
    partitioned cache topology it is what turns guaranteed cross-worker
    misses back into hits.  Fresh (non-resuming) connections fall back to
    round-robin; a saturated sticky target holds the connection back
    rather than breaking affinity.
    """

    name = "session-affinity"

    def __init__(self) -> None:
        self._fallback = RoundRobinPolicy()

    def select(self, farm: "ServerFarm",
               group: Sequence[Request]) -> Optional[int]:
        session = farm.offered_session(group)
        if session is not None:
            owner = farm.session_owner(session.session_id)
            if owner is not None:
                return owner if farm.free_slots(owner) else None
        return self._fallback.select(farm, group)


POLICIES = {cls.name: cls for cls in
            (RoundRobinPolicy, LeastConnectionsPolicy,
             SessionAffinityPolicy)}


# ---------------------------------------------------------------------------
# Results
# ---------------------------------------------------------------------------

@dataclass
class WorkerStats:
    """Per-worker summary row of one farm run."""

    worker: int
    cycles: float
    seconds: float
    requests_completed: int
    failures: int
    resumed_handshakes: int
    wire_bytes: int
    batched_ops: int


@dataclass
class FarmResult:
    """Aggregate + per-shard measurements of one farm run.

    Two unrelated clocks appear in this result; every figure below is
    explicit about which one it reads:

    * **virtual (modeled) time** -- each worker's private
      :class:`~repro.perf.Profiler` accumulates the Pentium 4 cycles the
      paper's cost model charges; :meth:`makespan_seconds`,
      :meth:`capacity_rps` and :meth:`analytic_capacity_rps` are derived
      from it.  Virtual figures are *deterministic* and independent of
      the execution backend (serial, fast path, process pool);
    * **host wall-clock** -- how long ``run()`` took on the machine
      executing the simulation.  :attr:`wall_seconds` records it, making
      serial-vs-parallel speedup a first-class output instead of a
      quantity benchmarks re-time around the call.  Wall figures are
      *not* deterministic and never enter baseline signatures.
    """

    nworkers: int
    topology: str
    policy: str
    #: Per-worker results; ``results[i].profiler`` is worker ``i``'s
    #: virtual clock.
    results: List[SimulationResult] = field(default_factory=list)
    #: Per-*shard* cache counters (N shards when partitioned, 1 when
    #: shared), each ``{"shard", "workers", "hits", "misses",
    #: "evictions", "size", "capacity"}``.
    shard_stats: List[Dict] = field(default_factory=list)
    #: Resumptions served by a worker other than the session's minter
    #: (only possible under the shared topology).
    cross_worker_resumptions: int = 0
    #: Host wall-clock duration of the ``run()`` call, in real seconds.
    #: Excluded from the determinism contract (and from signatures).
    wall_seconds: float = 0.0
    #: Execution backend that produced this result: ``"serial"`` or
    #: ``"parallel:<nprocs>"``.  Modeled results are bit-identical across
    #: backends; this field only reports how the host executed the run.
    backend: str = "serial"
    #: Host parallelism the ``run()`` call asked for, after resolving
    #: ``parallel=None`` against ``REPRO_PARALLEL`` (0/1 mean serial) --
    #: recorded before any clamping, so degradation is detectable.
    parallel_requested: int = 0
    #: Worker processes that actually drove scheduling rounds: ``1`` for
    #: the in-process serial loop, the pool size otherwise.  A caller
    #: (or benchmark) that requested ``N > 1`` can
    #: compare the two fields instead of parsing :attr:`backend`:
    #: ``parallel_effective < min(parallel_requested, nworkers)`` means
    #: the run degraded.
    parallel_effective: int = 1

    # -- aggregates ---------------------------------------------------------
    @property
    def requests_completed(self) -> int:
        return sum(r.requests_completed for r in self.results)

    @property
    def failures(self) -> int:
        return sum(r.failures for r in self.results)

    @property
    def resumed_handshakes(self) -> int:
        return sum(r.resumed_handshakes for r in self.results)

    @property
    def bytes_served(self) -> int:
        return sum(r.bytes_served for r in self.results)

    @property
    def wire_bytes(self) -> int:
        return sum(r.wire_bytes for r in self.results)

    @property
    def batched_ops(self) -> int:
        return sum(r.batched_ops for r in self.results)

    @property
    def tickets_minted(self) -> int:
        return sum(r.tickets_minted for r in self.results)

    @property
    def tickets_accepted(self) -> int:
        return sum(r.tickets_accepted for r in self.results)

    @property
    def tickets_rejected(self) -> int:
        return sum(r.tickets_rejected for r in self.results)

    @property
    def tickets_renewed(self) -> int:
        return sum(r.tickets_renewed for r in self.results)

    # -- overload anatomy ---------------------------------------------------
    #: Connections the workload offered (arrived at the accept queue).
    offered_connections: int = 0
    #: Connections the admission policy shed at a full backlog.
    shed_queue_full: int = 0
    #: Connections the admission policy shed past their queue deadline.
    shed_deadline: int = 0
    #: Requests lost with the shed connections.
    requests_shed: int = 0
    #: Deepest the accept queue ever got.
    peak_queue_depth: int = 0
    #: Total scheduling rounds admitted connections spent queued.
    queue_wait_rounds_total: int = 0
    #: Connections whose ServerHello the :class:`~repro.webserver.
    #: overload.SuitePolicy` steered to the downgrade suite.
    connections_downgraded: int = 0

    @property
    def connections_shed(self) -> int:
        return self.shed_queue_full + self.shed_deadline

    @property
    def handshakes_abandoned(self) -> int:
        return sum(r.handshakes_abandoned for r in self.results)

    @property
    def requests_abandoned(self) -> int:
        return sum(r.requests_abandoned for r in self.results)

    @property
    def renegotiations_served(self) -> int:
        return sum(r.renegotiations_served for r in self.results)

    @property
    def handshake_latencies(self) -> List[float]:
        """Every completed handshake's modeled latency, concatenated in
        worker-index order (each worker's list is in completion order on
        its own clock) -- deterministic across backends."""
        return [lat for r in self.results for lat in r.handshake_latencies]

    @property
    def completed_handshakes(self) -> int:
        """Handshakes that reached Finished (full, resumed and
        renegotiation handshakes alike) -- the numerator of the overload
        knee curves, which abandoned floods never enter."""
        return sum(len(r.handshake_latencies) for r in self.results)

    def handshake_latency_percentile(self, pct: float) -> float:
        """Nearest-rank percentile of the modeled handshake latency, in
        virtual seconds (``pct`` in (0, 100]); 0.0 with no completed
        handshakes."""
        latencies = sorted(self.handshake_latencies)
        if not latencies:
            return 0.0
        rank = max(1, math.ceil(pct / 100.0 * len(latencies)))
        return latencies[min(rank, len(latencies)) - 1]

    def offload_summary(self) -> Optional[Dict]:
        """Farm-wide crypto-engine offload stats; ``None`` when the run
        had no engine pool.

        Sums the per-worker pool snapshots (``results[i].offload``) into
        ``ops`` / ``fallbacks`` / ``skipped_small`` counters, reports the
        worst queue pressure any worker saw, and averages unit
        utilization across workers (each worker owns its own pool of the
        same layout).
        """
        per_worker = [r.offload for r in self.results
                      if r.offload is not None]
        if not per_worker:
            return None
        nunits = len(per_worker[0]["units"])
        utilization = [
            sum(w["units"][u]["utilization"] for w in per_worker)
            / len(per_worker) for u in range(nunits)]
        return {
            "ops": sum(w["ops"] for w in per_worker),
            "record_ops": sum(w["record_ops"] for w in per_worker),
            "modexp_ops": sum(w["modexp_ops"] for w in per_worker),
            "fallbacks": sum(w["fallbacks"] for w in per_worker),
            "skipped_small": sum(w["skipped_small"] for w in per_worker),
            "engine_cycles": round(
                sum(w["engine_cycles"] for w in per_worker), 3),
            "peak_backlog_cycles": max(
                w["peak_backlog_cycles"] for w in per_worker),
            "peak_queue_depth": max(
                w["peak_queue_depth"] for w in per_worker),
            "unit_utilization": [round(u, 6) for u in utilization],
        }

    def worker_stats(self) -> List[WorkerStats]:
        return [WorkerStats(
            worker=i, cycles=r.profiler.total_cycles(),
            seconds=r.profiler.seconds(),
            requests_completed=r.requests_completed, failures=r.failures,
            resumed_handshakes=r.resumed_handshakes,
            wire_bytes=r.wire_bytes, batched_ops=r.batched_ops)
            for i, r in enumerate(self.results)]

    def total_cycles(self) -> float:
        return sum(r.profiler.total_cycles() for r in self.results)

    def makespan_seconds(self) -> float:
        """**Virtual** duration of the run: the busiest worker's modeled
        clock (charged cycles over the modeled CPU frequency).  Compare
        :attr:`wall_seconds` for how long the host actually took."""
        return max(r.profiler.seconds() for r in self.results)

    def capacity_rps(self) -> float:
        """Achieved farm capacity in **virtual** requests/second:
        completed requests over :meth:`makespan_seconds`.

        This is the farm-scale analogue of the paper's Table 1 capacity
        (requests/s at saturation): the modeled workers run on one CPU
        each, so the run "takes" as long as its most loaded worker.  It
        says nothing about host execution speed -- a process-parallel run
        reports exactly the same figure as a serial one.
        """
        makespan = self.makespan_seconds()
        if makespan <= 0.0:
            return 0.0
        return self.requests_completed / makespan

    def analytic_capacity_rps(self) -> float:
        """Sum of per-worker analytic ceilings, in **virtual** (modeled)
        requests/second (see :func:`~repro.webserver.capacity.
        farm_requests_per_second`)."""
        return farm_requests_per_second(
            [r.profiler.total_cycles() for r in self.results],
            [r.requests_completed for r in self.results],
            self.results[0].profiler.cpu)

    def wall_speedup_over(self, other: "FarmResult") -> float:
        """Host wall-clock speedup of this run relative to ``other``
        (typically a serial run of the same workload).  Purely a host
        execution figure; both runs' modeled results should be identical.
        """
        if self.wall_seconds <= 0.0:
            return 0.0
        return other.wall_seconds / self.wall_seconds

    def merged_profiler(self) -> perf.Profiler:
        """All workers folded into one profile (Table 1 at farm scale)."""
        target = perf.Profiler(self.results[0].profiler.cpu)
        return perf.merge_profilers(target,
                                    *[r.profiler for r in self.results])

    def module_shares(self) -> Dict[str, float]:
        merged = self.merged_profiler()
        return {name: share
                for name, _, share in merged.module_breakdown()}

    def batch_histogram(self) -> Dict[int, int]:
        """Union of the per-worker batch-size histograms."""
        merged: Dict[int, int] = {}
        for r in self.results:
            for size, count in r.batches.items():
                merged[size] = merged.get(size, 0) + count
        return merged


# ---------------------------------------------------------------------------
# The farm
# ---------------------------------------------------------------------------

class _WorkerState:
    """Run-time bookkeeping for one worker replica."""

    __slots__ = ("index", "sim", "profiler", "result", "sched")

    def __init__(self, index: int, sim: WebServerSimulator,
                 events: bool = True):
        self.index = index
        self.sim = sim
        self.profiler = perf.Profiler()
        self.result = SimulationResult(profiler=self.profiler)
        #: The worker's transaction scheduler: live set, event heap,
        #: stall counter (the old ``active`` list + ``stalled`` int).
        self.sched = TxnScheduler(sim._batcher, events=events)


def _run_worker_round(state: _WorkerState, pool: ClientPool,
                      round_no: int, ticks: int = 1) -> int:
    """One scheduling round of one worker: step this round's runnable
    transactions, retire done ones, tick/flush the batch clock, track
    stalls.  ``ticks`` is the virtual-clock advance since the worker's
    last executed round (> 1 after skipped idle rounds).  Returns the
    number of cross-worker resumptions retired this round.

    This is *the* worker inner loop: the serial path calls it in worker
    order inside ``ServerFarm.run`` and the process-parallel backend
    (:mod:`repro.webserver.parallel`) calls it inside each child process.
    Keeping one shared body -- and computing each worker's next-event
    round with the same :class:`~repro.webserver.events.TxnScheduler`
    code on both backends -- is what makes the two backends (and their
    skip decisions) bit-identical by construction rather than by
    parallel maintenance.
    """
    pool.current_worker = state.index
    cross = 0

    def on_done(txn: _Transaction) -> None:
        nonlocal cross
        owner = txn._farm_offered_owner
        if txn.server.resumed and owner is not None and owner != state.index:
            cross += 1

    state.sched.run_round(round_no, ticks, state.profiler, on_done=on_done)
    return cross


def _next_round_target(queue: AcceptQueue,
                       worker_events: List[Optional[int]],
                       events: bool) -> int:
    """The next round the farm loop must execute, given each worker's
    next-event round (``None`` = no live transactions).  Shared by the
    serial loop and the process-parallel parent so both backends agree
    on every skip by construction.

    The candidates, each an upper bound on how far the clock may jump:

    * every worker's own next event (wake, batch flush, straggler fail);
    * ``round + 1`` while the accept backlog is nonempty -- admission
      retries, deadline pruning and wait counters are per-round
      observable there, so no skipping;
    * the next arrival's release round (never before ``round + 1``).

    With no candidate at all the loop is about to terminate; ``round +
    1`` keeps the clock sane.  Under ``REPRO_EVENTS=0`` the target is
    always ``round + 1``: the legacy cadence.
    """
    if not events:
        return queue.round + 1
    candidates = [ev for ev in worker_events if ev is not None]
    if queue.depth() > 0:
        candidates.append(queue.round + 1)
    arrival = queue.next_arrival_round()
    if arrival is not None:
        candidates.append(max(queue.round + 1, arrival))
    return min(candidates) if candidates else queue.round + 1


class ServerFarm:
    """N web-server worker replicas behind a load balancer.

    All workers serve the same identity (one certificate, like a real
    farm) and the same suite/version configuration; what varies per
    worker is its connection pool, its virtual clock, its batch queue and
    -- under the partitioned topology -- its session-cache shard.
    """

    def __init__(self, nworkers: int, *,
                 topology: str = PARTITIONED,
                 policy: Union[str, LoadBalancerPolicy] = "round-robin",
                 suite: CipherSuite = DEFAULT_SUITE,
                 key: Optional[RsaPrivateKey] = None,
                 cert: Optional[Certificate] = None,
                 costs: SystemCostModel = DEFAULT_COSTS,
                 use_crt: bool = False,
                 version: int = 0x0300,
                 seed: bytes = b"webserver",
                 key_set: Optional[BatchRsaKeySet] = None,
                 batch_size: Optional[int] = None,
                 batch_timeout: int = 8,
                 session_lifetime: float = 300.0,
                 session_cache_capacity: int = 1024,
                 engines: Optional[OffloadConfig] = None,
                 tickets: Optional[TicketKeyRing] = None,
                 client_pool_capacity: int = 64,
                 admission: Optional[AdmissionPolicy] = None,
                 suite_policy: Optional[SuitePolicy] = None,
                 client_suites: Optional[Sequence[CipherSuite]] = None):
        """``key_set`` enables batch RSA: the member keys are partitioned
        round-robin into one disjoint sub-keyset per worker (see
        :meth:`BatchRsaKeySet.partition`), so every worker's batch queue
        -- and therefore every suspended-handshake continuation -- stays
        worker-local.  Requires at least one member key per worker.

        ``engines`` attaches crypto-engine offload: every worker gets its
        *own* :class:`~repro.engines.OffloadPool` built from the config --
        engines are per-machine hardware, and worker-local pools (like
        the batcher and partitioned cache shards) are what keeps the
        process-parallel backend merge-free and bit-identical.

        ``tickets`` attaches one :class:`~repro.ssl.ticket.TicketKeyRing`
        shared by every worker (the ring is pure configuration -- all
        workers derive identical keys), enabling stateless resumption
        under every topology; ``client_pool_capacity`` bounds the
        farm-global per-client session pool.

        ``admission`` installs an :class:`~repro.webserver.overload.
        AdmissionPolicy` in front of the load balancer (``None`` keeps
        the unbounded pre-overload accept queue); ``suite_policy``
        installs a :class:`~repro.webserver.overload.SuitePolicy` that
        steers ServerHello suite selection under accept-queue pressure;
        ``client_suites`` is the ClientHello offer list every simulated
        client sends (default: just ``suite`` -- offer the downgrade
        suite too, or the policy has nothing to steer to).  All three
        are evaluated in the parent on both execution backends, so
        their decisions and counters are backend-invariant."""
        if nworkers < 1:
            raise ValueError("need at least one worker")
        if topology not in TOPOLOGIES:
            raise ValueError(f"unknown cache topology {topology!r}")
        if isinstance(policy, str):
            if policy not in POLICIES:
                raise ValueError(f"unknown balancing policy {policy!r}")
            policy = POLICIES[policy]()
        self.nworkers = nworkers
        self.topology = topology
        self.policy = policy
        if key is None or cert is None:
            # Same derivation as WebServerSimulator's default, generated
            # once and shared by every worker.
            key, cert = make_server_identity(1024, seed=seed + b"-identity")
        # Pre-fork key distribution: the identity (numbers, certificate,
        # warmed Montgomery contexts) is generated once, then every worker
        # gets its own key *replica* with private blinding state -- the
        # way each prefork server process owns its OpenSSL key structure.
        # Worker-local blinding is also what makes the process-parallel
        # backend cycle-exact: a single shared key would couple the
        # workers through the order its blinding pair is consumed.  At
        # N=1 the original key is used directly, preserving the
        # bit-identity with ``WebServerSimulator``.
        worker_keys = ([key] if nworkers == 1 else
                       [key.replica() for _ in range(nworkers)])
        shared_cache = (SessionCache(session_cache_capacity)
                        if topology == SHARED else None)
        subsets: Optional[List[BatchRsaKeySet]] = None
        if key_set is not None:
            subsets = key_set.partition(nworkers)
        self._pool = ClientPool(client_pool_capacity)
        self._sims: List[WebServerSimulator] = []
        for i in range(nworkers):
            sim = WebServerSimulator(
                suite=suite, key=worker_keys[i], cert=cert, costs=costs,
                use_crt=use_crt, version=version, seed=seed,
                key_set=subsets[i] if subsets is not None else None,
                batch_size=batch_size, batch_timeout=batch_timeout,
                session_cache=(shared_cache if shared_cache is not None
                               else SessionCache(session_cache_capacity)),
                session_lifetime=session_lifetime,
                engines=engines, tickets=tickets,
                client_pool_capacity=client_pool_capacity,
                client_suites=client_suites)
            # Clients resume against whatever worker they land on next:
            # the client-session pool is farm-global.
            sim._client_sessions = self._pool
            self._sims.append(sim)
        self._shared_cache = shared_cache
        self.admission = admission
        self.suite_policy = suite_policy
        self._accept_queue: Optional[AcceptQueue] = None
        self._downgraded = 0
        self._states: List[_WorkerState] = []
        # When the process-parallel backend runs, worker states live in
        # child processes; the parent tracks in-flight counts here so the
        # balancing policies keep working unchanged.
        self._parallel_active: Optional[List[int]] = None

    # -- policy callbacks ---------------------------------------------------
    def _active_of(self, worker: int) -> int:
        if self._parallel_active is not None:
            return self._parallel_active[worker]
        return len(self._states[worker].sched)

    def free_slots(self, worker: int) -> bool:
        return self._active_of(worker) < self._concurrency

    def active_connections(self, worker: int) -> int:
        return self._active_of(worker)

    def offered_session(self, group: Sequence[Request],
                        ) -> Optional[SslSession]:
        """The session the next client for ``group`` would offer (the same
        per-client pool rule as ``_Transaction.__init__``)."""
        return self._pool.offer(group[0])

    def session_owner(self, session_id: bytes) -> Optional[int]:
        return self._pool.owners.get(session_id)

    def shard_caches(self) -> List[SessionCache]:
        if self._shared_cache is not None:
            return [self._shared_cache]
        return [sim._session_cache for sim in self._sims]

    # -- admission ----------------------------------------------------------
    def _admission_plan(self, group: Sequence[Request],
                        ) -> Optional[Tuple[int, Optional[SslSession],
                                            Optional[int]]]:
        """Decide where the connection at the head of the accept queue
        goes: ``(worker, offered_session, offered_owner)``, or ``None``
        to hold it for this round.  Pure policy -- no transaction is
        built, so the parallel backend can plan admissions in the parent
        and ship them to worker processes."""
        worker = self.policy.select(self, group)
        if worker is None:
            return None
        offered = self.offered_session(group)
        owner = (self._pool.owners.get(offered.session_id)
                 if offered is not None else None)
        return worker, offered, owner

    def _suites_for_admission(self, queue: AcceptQueue,
                              ) -> Optional[Tuple[CipherSuite, ...]]:
        """Consult the suite policy for the connection being admitted.

        Runs in the parent on both backends -- once per successful
        admission plan, in admission order -- so the pressure reading
        (and therefore the downgrade decision and its counter) is
        backend-invariant.  ``None`` means no policy: the worker's
        default single-suite preference applies.
        """
        if self.suite_policy is None:
            return None
        pressure = PressureSignal(
            queue_depth=queue.depth(),
            active=sum(self._active_of(w) for w in range(self.nworkers)),
            slots=self.nworkers * self._concurrency,
            round=queue.round)
        order = self.suite_policy.suites_for(pressure)
        if order[0].suite_id != self.suite_policy.primary.suite_id:
            self._downgraded += 1
        return order

    def _admit(self, queue: AcceptQueue, txn_id: int) -> int:
        """Serial-path admission: drain the accept queue through the
        balancing policy, building transactions in place.  Returns the
        next transaction id."""
        while True:
            group = queue.head()
            if group is None:
                break
            plan = self._admission_plan(group)
            if plan is None:
                break
            worker, _, owner = plan
            suites = self._suites_for_admission(queue)
            queue.pop()
            state = self._states[worker]
            self._pool.current_worker = worker
            txn = _admit_transaction(state.sim, txn_id, group,
                                     state.profiler, state.result,
                                     server_suites=suites)
            txn_id += 1
            if txn is None:
                continue
            txn._farm_offered_owner = owner
            state.sched.add(txn, queue.round)
        return txn_id

    # -- the experiment -----------------------------------------------------
    def run(self, workload: RequestWorkload, nrequests: int,
            requests_per_connection: int = 1,
            concurrency_per_worker: int = 4,
            parallel: Optional[int] = None) -> FarmResult:
        """Process ``nrequests`` requests across the farm.

        Scheduling interleaves the workers round by round: admit from the
        global accept queue through the balancing policy, advance every
        in-flight transaction of every worker one step, then tick each
        worker's batch clock -- the exact per-worker mirror of
        ``WebServerSimulator._run_concurrent`` (which is what makes the
        N=1 farm bit-identical to the single simulator).

        ``parallel`` selects the host execution backend: ``None`` reads
        the ``REPRO_PARALLEL`` default (:func:`repro.runtime.
        parallel_processes`), ``0``/``1`` force the in-process serial
        loop, and ``N > 1`` drives the per-worker loops through ``N``
        OS processes (:mod:`repro.webserver.parallel`).  The backend is
        *not observable* in the modeled results: cycles, transcripts and
        cache counters are bit-identical either way.  Both topologies
        fan out -- the partitioned topology ships whole cache shards
        with the worker states, while the shared topology keeps the one
        cache authoritative in the parent and synchronises it at round
        boundaries (admissions carry the entries a round can look up;
        reports carry each worker's mutation log back for a
        worker-index-order replay).  ``parallel`` is clamped to the
        worker count; the result records both the requested and the
        effective parallelism (:attr:`FarmResult.parallel_requested` /
        :attr:`FarmResult.parallel_effective`) so callers can detect the
        degradation instead of inferring it from :attr:`FarmResult.
        backend`.
        """
        if requests_per_connection < 1:
            raise ValueError("requests_per_connection must be >= 1")
        if concurrency_per_worker < 1:
            raise ValueError("concurrency_per_worker must be >= 1")
        if parallel is None:
            parallel = runtime.parallel_processes()
        start = time.perf_counter()
        self._concurrency = concurrency_per_worker
        self._events_on = runtime.events_enabled()
        groups = connection_groups(workload.requests(nrequests),
                                   requests_per_connection)

        self._states = [_WorkerState(i, sim, events=self._events_on)
                        for i, sim in enumerate(self._sims)]
        self._parallel_active = None
        queue = AcceptQueue(groups, self.admission)
        self._accept_queue = queue
        self._downgraded = 0

        requested = int(parallel or 0)
        nprocs = min(requested, self.nworkers)
        if nprocs > 1:
            from .parallel import run_parallel
            result = run_parallel(self, queue, nprocs)
        else:
            result = self._run_serial(queue)
        result.parallel_requested = requested
        result.parallel_effective = (
            nprocs if result.backend.startswith("parallel") else 1)
        result.wall_seconds = time.perf_counter() - start
        return result

    def _run_serial(self, queue: AcceptQueue) -> FarmResult:
        states = self._states
        events = self._events_on
        txn_id = 0
        cross_resumed = 0
        target = 0
        while queue or any(s.sched for s in states):
            ticks = target - queue.round
            queue.begin_round(target)
            txn_id = self._admit(queue, txn_id)
            for state in states:
                cross_resumed += _run_worker_round(
                    state, self._pool, queue.round, ticks)
            target = _next_round_target(
                queue,
                [s.sched.next_event_round(queue.round) for s in states],
                events)
        return self._assemble_result(cross_resumed, backend="serial")

    def _assemble_result(self, cross_resumed: int,
                         backend: str) -> FarmResult:
        for state in self._states:
            state.result.scheduler = state.sched.stats()
            if state.sim._batcher is not None:
                state.result.batches = dict(state.sim._batcher.batches)
                state.result.batched_ops = state.sim._batcher.ops_submitted
            if state.sim._engines is not None:
                state.result.offload = state.sim._engines.snapshot(
                    state.profiler.now())

        shard_stats = []
        if self._shared_cache is not None:
            shard_stats.append({"shard": 0,
                                "workers": list(range(self.nworkers)),
                                **self._shared_cache.stats()})
        else:
            for i, sim in enumerate(self._sims):
                shard_stats.append({"shard": i, "workers": [i],
                                    **sim._session_cache.stats()})
        result = FarmResult(
            nworkers=self.nworkers, topology=self.topology,
            policy=self.policy.name,
            results=[s.result for s in self._states],
            shard_stats=shard_stats,
            cross_worker_resumptions=cross_resumed,
            backend=backend)
        queue = self._accept_queue
        if queue is not None:
            result.offered_connections = queue.offered_connections
            result.shed_queue_full = queue.shed_queue_full
            result.shed_deadline = queue.shed_deadline
            result.requests_shed = queue.requests_shed
            result.peak_queue_depth = queue.peak_queue_depth
            result.queue_wait_rounds_total = queue.queue_wait_rounds_total
        result.connections_downgraded = self._downgraded
        return result
