"""Bounded LRU pool of per-client resumable sessions.

The simulator used to append every completed connection's session to an
unbounded list and only ever read the last element -- O(clients) retained
memory in long runs, and no notion of *which* client a session belongs
to.  :class:`ClientPool` replaces it: sessions are keyed by the
workload's client identity and held in an LRU of at most ``capacity``
entries, so a 10^6-distinct-client run retains O(active clients) state
while short-population runs resume exactly as before.

``None`` is a valid client key: requests with no client identity (the
default workload) all collapse onto one slot, which reproduces the old
"offer the most recent session" behaviour byte for byte.

The pool also carries the farm's session-ownership map (which worker
minted a session), preserving the cross-worker resumption accounting the
old farm-private list subclass provided.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Hashable, Optional

from ..ssl.session import SslSession


class ClientPool:
    """LRU map of client identity -> most recent resumable session."""

    def __init__(self, capacity: int = 64):
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: "OrderedDict[Hashable, SslSession]" = OrderedDict()
        #: session_id -> worker index that minted it (farm bookkeeping).
        self.owners: Dict[bytes, int] = {}
        #: Worker currently storing (the farm sets this before folding).
        self.current_worker = 0
        self.evictions = 0
        self.stores = 0
        self.peak_size = 0

    # -- write side --------------------------------------------------------
    def store(self, client_id: Hashable, session: Optional[SslSession]) -> None:
        """Record ``client_id``'s latest session (MRU); ``None`` sessions
        (failed/unresumable handshakes) are ignored."""
        if session is None:
            return
        old = self._entries.pop(client_id, None)
        if old is not None and old.session_id != session.session_id:
            self.owners.pop(old.session_id, None)
        self._entries[client_id] = session
        self.owners[session.session_id] = self.current_worker
        self.stores += 1
        while len(self._entries) > self.capacity:
            _, evicted = self._entries.popitem(last=False)
            self.owners.pop(evicted.session_id, None)
            self.evictions += 1
        if len(self._entries) > self.peak_size:
            self.peak_size = len(self._entries)

    # -- read side ---------------------------------------------------------
    def offer(self, request) -> Optional[SslSession]:
        """The session a connection opening with ``request`` should offer.

        Non-resumable requests offer nothing.  A request without a client
        identity offers the most recently stored session (the legacy
        single-stream behaviour); identified clients offer their own last
        session, or nothing if it was evicted.  Lookups do not mutate LRU
        order -- only :meth:`store` refreshes an entry.
        """
        if not request.resumable or not self._entries:
            return None
        if request.client_id is None:
            return self.latest()
        return self._entries.get(request.client_id)

    def latest(self) -> Optional[SslSession]:
        """The most recently stored session, if any."""
        if not self._entries:
            return None
        return next(reversed(self._entries.values()))

    def lookup(self, client_id: Hashable) -> Optional[SslSession]:
        """Direct non-mutating lookup by client identity."""
        return self._entries.get(client_id)

    def session_owner(self, session_id: bytes) -> Optional[int]:
        return self.owners.get(session_id)

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __bool__(self) -> bool:
        return bool(self._entries)

    def stats(self) -> dict:
        """Occupancy and churn counters, for scenario extras and tests."""
        return {"size": len(self._entries), "capacity": self.capacity,
                "peak_size": self.peak_size, "stores": self.stores,
                "evictions": self.evictions}
