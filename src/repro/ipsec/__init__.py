"""IPsec ESP substrate (the paper's network-layer sibling of SSL).

"Although SSL/TLS protocol and IPSEC are situated in different layers
(session and network layer respectively), they have common components for
security issues" -- this package runs those common components (the same
instrumented ciphers and HMAC kernels) through the ESP packet format so
the two protections can be compared on equal footing.
"""

from .esp import decapsulate, encapsulate
from .sa import (
    ALL_ESP_SUITES, ESP_3DES_SHA1, ESP_AES128_MD5, ESP_AES128_SHA1,
    ESP_AES256_SHA1, ESP_NULL_SHA1, EspSuite, IpsecError, ReplayError,
    ReplayWindow, SecurityAssociation,
)
from .tunnel import (
    TunnelEndpoint, derive_keys, establish_tunnel, rekey_endpoint,
)

__all__ = [
    "decapsulate", "encapsulate",
    "ALL_ESP_SUITES", "ESP_3DES_SHA1", "ESP_AES128_MD5", "ESP_AES128_SHA1",
    "ESP_AES256_SHA1", "ESP_NULL_SHA1", "EspSuite", "IpsecError",
    "ReplayError", "ReplayWindow", "SecurityAssociation",
    "TunnelEndpoint", "derive_keys", "establish_tunnel",
    "rekey_endpoint",
]
