"""A bidirectional ESP tunnel: SA pairs plus key derivation.

Stands in for the IKE-established tunnel an IPsec gateway would run.  Key
material is derived from a shared secret with the instrumented hash
kernels (a simplified PRF+ -- IKE itself is out of scope), giving each
direction independent cipher and authenticator keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..crypto.mac import hmac
from ..crypto.rand import PseudoRandom
from ..crypto.sha1 import SHA1
from .esp import decapsulate, encapsulate
from .sa import EspSuite, IpsecError, SecurityAssociation


def derive_keys(shared_secret: bytes, label: bytes, length: int) -> bytes:
    """HMAC-SHA1 counter-mode expansion (a simplified IKE PRF+)."""
    out = bytearray()
    counter = 1
    while len(out) < length:
        out += hmac(SHA1, shared_secret, label + bytes([counter]))
        counter += 1
    return bytes(out[:length])


@dataclass
class TunnelEndpoint:
    """One end of the tunnel: an outbound and an inbound SA."""

    outbound: SecurityAssociation
    inbound: SecurityAssociation
    rng: PseudoRandom

    def protect(self, payload: bytes) -> bytes:
        return encapsulate(self.outbound, payload, self.rng)

    def unprotect(self, packet: bytes) -> bytes:
        return decapsulate(self.inbound, packet)


def rekey_endpoint(endpoint: TunnelEndpoint, shared_secret: bytes,
                   generation: int) -> TunnelEndpoint:
    """Fresh SAs for an existing endpoint (sequence-number exhaustion).

    New SPIs and keys derive from the shared secret and a generation
    counter; the replay windows reset with the new SAs, as RFC 2406
    requires on rekey.
    """
    suite = endpoint.outbound.suite
    per_dir = suite.key_len + suite.auth_key_len

    def direction_sa(old_spi: int) -> SecurityAssociation:
        # Key material is derived per-direction from the *old* SPI, so the
        # two endpoints (whose outbound/inbound SPIs mirror each other)
        # independently arrive at matching SAs.
        label = (b"esp-rekey-" + generation.to_bytes(4, "big")
                 + old_spi.to_bytes(4, "big"))
        material = derive_keys(shared_secret, label, per_dir)
        new_spi = (old_spi + 0x10000 * generation) & 0xFFFFFFFF
        return SecurityAssociation(
            spi=new_spi or 1, suite=suite,
            cipher_key=material[:suite.key_len],
            auth_key=material[suite.key_len:])

    return TunnelEndpoint(
        outbound=direction_sa(endpoint.outbound.spi),
        inbound=direction_sa(endpoint.inbound.spi),
        rng=endpoint.rng)


def establish_tunnel(shared_secret: bytes, suite: EspSuite,
                     spi_a: int = 0x1001, spi_b: int = 0x2002,
                     seed: bytes = b"ipsec-tunnel",
                     ) -> Tuple[TunnelEndpoint, TunnelEndpoint]:
    """Build both endpoints of a tunnel from one shared secret.

    Returns ``(initiator, responder)``; ``initiator.protect`` output is
    readable by ``responder.unprotect`` and vice versa.
    """
    if not shared_secret:
        raise IpsecError("empty shared secret")
    per_dir = suite.key_len + suite.auth_key_len
    material = derive_keys(shared_secret, b"esp-keys", 2 * per_dir)
    a_keys, b_keys = material[:per_dir], material[per_dir:]

    def make_sa(spi: int, keys: bytes) -> SecurityAssociation:
        return SecurityAssociation(
            spi=spi, suite=suite, cipher_key=keys[:suite.key_len],
            auth_key=keys[suite.key_len:])

    # Each direction needs an *independent* send SA and receive SA built
    # from the same keys (the receive side tracks its own replay window).
    initiator = TunnelEndpoint(outbound=make_sa(spi_a, a_keys),
                               inbound=make_sa(spi_b, b_keys),
                               rng=PseudoRandom(seed + b"-a"))
    responder = TunnelEndpoint(outbound=make_sa(spi_b, b_keys),
                               inbound=make_sa(spi_a, a_keys),
                               rng=PseudoRandom(seed + b"-b"))
    return initiator, responder
