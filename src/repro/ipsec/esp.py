"""ESP packet encapsulation (RFC 2406): the IPsec bulk data path.

Packet layout::

    SPI(4) || sequence(4) || IV || ciphertext || ICV(12)

where the ciphertext covers ``payload || padding || pad_len(1) ||
next_header(1)`` and the ICV is the truncated HMAC over everything before
it.  Note the contrast with SSL's record (the point of the cross-protocol
benchmark): ESP is encrypt-then-MAC with an explicit per-packet IV, SSL is
MAC-then-encrypt with a chained IV.
"""

from __future__ import annotations

from .. import perf
from ..crypto.rand import PseudoRandom
from ..perf import charge, mix
from .sa import IpsecError, SecurityAssociation

#: Per-packet header/trailer assembly bookkeeping (the kernel xfrm/esp
#: layer's share, analogous to the SSL record layer's RECORD_CALL).
ESP_CALL = mix(movl=60, movb=16, addl=10, cmpl=12, jnz=12, shll=2, shrl=2,
               pushl=4, popl=4, call=2, ret=2)

HEADER_LEN = 8  # SPI + sequence


def encapsulate(sa: SecurityAssociation, payload: bytes,
                rng: PseudoRandom, next_header: int = 4) -> bytes:
    """Protect ``payload``; returns the full ESP packet."""
    if not 0 <= next_header <= 255:
        raise IpsecError("bad next-header value")
    charge(ESP_CALL, function="esp_output", module="other")
    suite = sa.suite
    seq = sa.next_seq()
    header = sa.spi.to_bytes(4, "big") + seq.to_bytes(4, "big")

    bs = suite.block_size
    pad_len = (-(len(payload) + 2)) % bs
    trailer = bytes(range(1, pad_len + 1)) + bytes([pad_len, next_header])
    plaintext = payload + trailer

    if suite.cipher == "null":
        iv = b""
        ciphertext = plaintext
    else:
        with perf.region("pri_encryption"):
            iv = rng.bytes(suite.iv_len)
            cipher = suite.new_cipher(sa.cipher_key, iv)
            ciphertext = cipher.encrypt(plaintext)

    with perf.region("mac"):
        icv = sa.icv(header + iv + ciphertext)
    return header + iv + ciphertext + icv


def decapsulate(sa: SecurityAssociation, packet: bytes) -> bytes:
    """Verify and strip ESP protection; returns the payload.

    Order of checks follows RFC 2406: SPI, replay, ICV, then decrypt --
    so a flood of forged packets costs only an HMAC, never a decryption.
    """
    charge(ESP_CALL, function="esp_input", module="other")
    suite = sa.suite
    min_len = HEADER_LEN + suite.iv_len + suite.block_size + suite.icv_len
    if len(packet) < min_len:
        raise IpsecError("ESP packet too short")

    spi = int.from_bytes(packet[0:4], "big")
    if spi != sa.spi:
        raise IpsecError(f"SPI mismatch: got {spi:#x}, SA is {sa.spi:#x}")
    seq = int.from_bytes(packet[4:8], "big")

    icv = packet[-suite.icv_len:]
    authed = packet[:-suite.icv_len]
    with perf.region("mac"):
        expected = sa.icv(authed)
    if icv != expected:
        raise IpsecError("ICV verification failed")

    # Replay check after authentication (forged sequence numbers must not
    # be able to poke holes in the window).
    sa.window.check_and_update(seq)

    iv = authed[HEADER_LEN:HEADER_LEN + suite.iv_len]
    ciphertext = authed[HEADER_LEN + suite.iv_len:]
    if suite.cipher == "null":
        plaintext = ciphertext
    else:
        if len(ciphertext) % suite.block_size:
            raise IpsecError("ciphertext not block-aligned")
        with perf.region("pri_decryption"):
            cipher = suite.new_cipher(sa.cipher_key, iv)
            plaintext = cipher.decrypt(ciphertext)

    if len(plaintext) < 2:
        raise IpsecError("decrypted payload too short")
    pad_len = plaintext[-2]
    if pad_len + 2 > len(plaintext):
        raise IpsecError("bad ESP padding length")
    padding = plaintext[-(pad_len + 2):-2]
    if padding != bytes(range(1, pad_len + 1)):
        raise IpsecError("ESP padding bytes corrupt")
    return plaintext[:-(pad_len + 2)]
