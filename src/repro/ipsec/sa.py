"""IPsec security associations and the anti-replay window.

The paper's introduction places IPsec beside SSL/TLS: "Although SSL/TLS
protocol and IPSEC are situated in different layers (session and network
layer respectively), they have common components for security issues."
This package supplies the network-layer counterpart so the common
components -- the very same instrumented cipher and HMAC kernels -- can be
compared across the two protocols (see ``bench_ssl_vs_ipsec.py``).

A :class:`SecurityAssociation` is one direction of protection: an SPI, a
cipher (CBC block cipher or none), an HMAC authenticator with 96-bit
truncation, a send counter, and -- on the receive side -- the RFC 2401
sliding anti-replay window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..crypto.aes import AES
from ..crypto.des import TripleDES
from ..crypto.mac import hmac
from ..crypto.md5 import MD5
from ..crypto.modes import CBC
from ..crypto.sha1 import SHA1


class IpsecError(ValueError):
    """ESP processing failure (authentication, replay, format)."""


class ReplayError(IpsecError):
    """Sequence number rejected by the anti-replay window."""


@dataclass(frozen=True)
class EspSuite:
    """Cipher + authenticator combination for an SA."""

    name: str
    cipher: str          # "3des" | "aes128" | "aes256" | "null"
    auth: str            # "hmac-sha1-96" | "hmac-md5-96"

    @property
    def key_len(self) -> int:
        return {"3des": 24, "aes128": 16, "aes256": 32, "null": 0}[
            self.cipher]

    @property
    def iv_len(self) -> int:
        return {"3des": 8, "aes128": 16, "aes256": 16, "null": 0}[
            self.cipher]

    @property
    def block_size(self) -> int:
        return {"3des": 8, "aes128": 16, "aes256": 16, "null": 4}[
            self.cipher]

    @property
    def auth_key_len(self) -> int:
        return 20 if "sha1" in self.auth else 16

    @property
    def icv_len(self) -> int:
        return 12  # both HMAC variants truncate to 96 bits

    def hash_factory(self):
        return SHA1 if "sha1" in self.auth else MD5

    def new_cipher(self, key: bytes, iv: bytes) -> Optional[CBC]:
        if self.cipher == "null":
            return None
        if len(key) != self.key_len or len(iv) != self.iv_len:
            raise IpsecError(f"{self.name}: bad key/IV length")
        if self.cipher == "3des":
            return CBC(TripleDES(key), iv)
        return CBC(AES(key), iv)


ESP_3DES_SHA1 = EspSuite("esp-3des-hmac-sha1-96", "3des", "hmac-sha1-96")
ESP_AES128_SHA1 = EspSuite("esp-aes128-hmac-sha1-96", "aes128",
                           "hmac-sha1-96")
ESP_AES256_SHA1 = EspSuite("esp-aes256-hmac-sha1-96", "aes256",
                           "hmac-sha1-96")
ESP_AES128_MD5 = EspSuite("esp-aes128-hmac-md5-96", "aes128", "hmac-md5-96")
ESP_NULL_SHA1 = EspSuite("esp-null-hmac-sha1-96", "null", "hmac-sha1-96")

ALL_ESP_SUITES = (ESP_3DES_SHA1, ESP_AES128_SHA1, ESP_AES256_SHA1,
                  ESP_AES128_MD5, ESP_NULL_SHA1)


class ReplayWindow:
    """RFC 2401 appendix C sliding anti-replay window."""

    def __init__(self, size: int = 64):
        if size < 32:
            raise ValueError("window must be at least 32 (RFC 2401)")
        self.size = size
        self._top = 0          # highest sequence number accepted
        self._bitmap = 0       # bit i => (top - i) seen

    def check_and_update(self, seq: int) -> None:
        """Accept ``seq`` or raise :class:`ReplayError`."""
        if seq == 0:
            raise ReplayError("ESP sequence numbers start at 1")
        if seq > self._top:
            shift = seq - self._top
            self._bitmap = ((self._bitmap << shift) | 1) & \
                ((1 << self.size) - 1)
            self._top = seq
            return
        offset = self._top - seq
        if offset >= self.size:
            raise ReplayError(f"sequence {seq} below the replay window")
        if self._bitmap & (1 << offset):
            raise ReplayError(f"sequence {seq} replayed")
        self._bitmap |= 1 << offset

    @property
    def top(self) -> int:
        return self._top


class SecurityAssociation:
    """One direction of ESP protection."""

    def __init__(self, spi: int, suite: EspSuite, cipher_key: bytes,
                 auth_key: bytes, replay_window: int = 64):
        if not 1 <= spi <= 0xFFFFFFFF:
            raise IpsecError("SPI must be a non-zero 32-bit value")
        if len(auth_key) != suite.auth_key_len:
            raise IpsecError("bad authenticator key length")
        if len(cipher_key) != suite.key_len:
            raise IpsecError("bad cipher key length")
        self.spi = spi
        self.suite = suite
        self.cipher_key = cipher_key
        self.auth_key = auth_key
        self.seq = 0                     # last sequence number sent
        self.window = ReplayWindow(replay_window)

    def next_seq(self) -> int:
        if self.seq >= 0xFFFFFFFF:
            raise IpsecError("sequence number exhausted; rekey the SA")
        self.seq += 1
        return self.seq

    def icv(self, data: bytes) -> bytes:
        """Truncated HMAC over SPI..ciphertext (RFC 2406 section 3.4.4)."""
        return hmac(self.suite.hash_factory(), self.auth_key,
                    data)[:self.suite.icv_len]
