"""A small out-of-order pipeline scheduler simulation.

The cost model prices kernels as ``mix x per-class costs x stall factor``,
with the stall factors *asserted* from each kernel's dependency structure
(see docs/calibration.md).  This module provides an independent check: a
windowed out-of-order scheduler issuing a synthetic trace
(:func:`repro.perf.trace.synthesize_trace`) whose instructions carry
explicit dependency distances.  If the asserted stall factors are honest,
the simulated CPI must land near the charged-model CPI for every kernel --
which ``benchmarks/bench_pipeline_validation.py`` verifies.

The dependency-distance patterns are where each kernel's ILP story lives,
and they are derived from the algorithms:

* **MD5**: every step's additions/rotate consume the immediately preceding
  result -- half the stream sits on a distance-2 chain.
* **SHA-1**: the 80-step chain interleaves with the independent message
  schedule -- only one op in three is chained.
* **AES**: a round's 16 lookups are mutually independent (the paper's own
  observation motivating Figure 5); only round boundaries serialize.
* **RC4**: the j/swap recurrence gives short chains broken by the
  independent output XOR.
* **bignum mul_add**: 4-way unrolling leaves one carry chain in four.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import cycle as _cycle
from typing import Dict, Iterable, List, Tuple

from .isa import CATEGORY, InstrMix
from .trace import synthesize_trace

#: Completion latencies (cycles from issue to result availability) for a
#: P4-class core.  Distinct from the cost model's reciprocal throughputs:
#: these are what dependent instructions wait for.
DEFAULT_LATENCIES: Dict[str, int] = {
    "mem": 2,      # L1 load-use (with forwarding)
    "alu": 1,
    "logic": 1,
    "shift": 1,
    "mul": 14,     # the P4's infamous 32-bit multiply latency
    "ctrl": 1,
    "stack": 1,
    "nop": 1,
}


@dataclass(frozen=True)
class PipelineConfig:
    """Core parameters for the scheduler simulation."""

    issue_width: int = 3
    window: int = 32           # reorder-window depth (OoO lookahead)
    mem_ports: int = 1         # loads/stores issued per cycle (P4: one)
    mul_interval: int = 5      # cycles between mull issues (unpipelined)
    latencies: Dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_LATENCIES))

    def latency(self, mnemonic: str) -> int:
        return self.latencies[CATEGORY[mnemonic]]


#: Per-kernel dependency-distance patterns (cycled over the trace).  A
#: distance of 0 means "independent of recent results".  Derived from each
#: kernel's step structure: e.g. an MD5 step retires ~10 instructions of
#: which ~5 sit on the add/rotate critical chain (distance 1) while the
#: X[k]/T[i] loads are independent; AES's 16 per-round lookups are
#: mutually independent with serialization only at round boundaries.
# Each pattern encodes one *chain*: a non-zero entry is the distance back
# to the previous chain element, so consecutive chained ops really wait on
# each other; zeros are slot-filling independent work (loads of message
# words, table constants, the other unrolled lanes).
DEPENDENCY_PATTERNS: Dict[str, Tuple[int, ...]] = {
    # Every second instruction sits on the add/rotate chain: the densest
    # chain of the seven kernels (the paper's CPI 0.72 despite pure ALU).
    "md5": (2, 0),
    # One chain op in three: the schedule expansion fills the gaps.
    "sha1": (3, 0, 0),
    # Index extraction chains into each lookup (shr -> and -> load), the
    # lookups themselves being mutually independent.
    "aes": (3, 0, 0),
    # The j/swap recurrence: a chain op roughly every 2.5 instructions.
    "rc4": (2, 0, 3, 0, 0),
    # 4-way unrolling: one carry-chain op in four.
    "rsa": (4, 0, 0, 0),
}


@dataclass
class PipelineResult:
    instructions: int
    cycles: int

    @property
    def cpi(self) -> float:
        return self.cycles / self.instructions if self.instructions else 0.0

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0


def simulate(trace: Iterable[str], distances: Iterable[int],
             config: PipelineConfig = PipelineConfig()) -> PipelineResult:
    """Schedule ``trace`` on the modelled out-of-order core.

    ``distances[i]`` names which earlier instruction the i-th one depends
    on (``i - distances[i]``; 0 = independent).  A greedy oldest-first
    scheduler with a reorder window of ``config.window`` entries issues up
    to ``issue_width`` ready instructions per cycle -- the OoO lookahead
    that lets the P4 hide AES's lookup latency but not MD5's serial chain.
    """
    instrs: List[Tuple[str, int]] = [
        (mnemonic, distance) for mnemonic, distance in zip(trace, distances)
    ]
    n = len(instrs)
    if not n:
        return PipelineResult(0, 0)
    completion: Dict[int, int] = {}
    window: List[int] = []
    fetched = 0
    cycle = 0
    max_completion = 0
    mul_free_at = 0
    guard = 0
    while len(completion) < n:
        while fetched < n and len(window) < config.window:
            window.append(fetched)
            fetched += 1
        issued = 0
        mem_issued = 0
        for idx in list(window):
            if issued >= config.issue_width:
                break
            mnemonic, distance = instrs[idx]
            category = CATEGORY[mnemonic]
            if category == "mem" and mem_issued >= config.mem_ports:
                continue
            if category == "mul" and cycle < mul_free_at:
                continue
            dep = idx - distance if distance > 0 else -1
            if dep >= 0:
                done = completion.get(dep)
                if done is None or done > cycle:
                    continue  # dependency not resolved yet
            done_at = cycle + config.latency(mnemonic)
            completion[idx] = done_at
            max_completion = max(max_completion, done_at)
            window.remove(idx)
            issued += 1
            if category == "mem":
                mem_issued += 1
            elif category == "mul":
                mul_free_at = cycle + config.mul_interval
        cycle += 1
        guard += 1
        if guard > 100 * n + 1000:
            raise AssertionError("pipeline simulation did not converge")
    return PipelineResult(n, max_completion)


def simulate_kernel(kernel: str, m: InstrMix, length: int = 4096,
                    config: PipelineConfig = PipelineConfig(),
                    ) -> PipelineResult:
    """Simulate a kernel's synthetic trace with its dependency pattern."""
    if kernel not in DEPENDENCY_PATTERNS:
        raise KeyError(f"no dependency pattern for {kernel!r}; "
                       f"known: {sorted(DEPENDENCY_PATTERNS)}")
    trace = synthesize_trace(m, length)
    distances = _cycle(DEPENDENCY_PATTERNS[kernel])
    return simulate(trace, distances, config)
