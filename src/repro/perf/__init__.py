"""Performance-modelling substrate (the Oprofile/VTune/SoftSDV stand-in).

See DESIGN.md, "The central substitution: architectural profiling".
"""

from .baseline import (
    Drift, canonical, canonical_json, capture, diff_signatures, load_json,
    write_json,
)
from .cpu import CpuModel, DEFAULT_COSTS, PENTIUM3, PENTIUM4, WIDE_CORE
from .isa import CATEGORY, I, InstrMix, MixAccumulator, mix
from .profiler import (
    HTTPD, LIBCRYPTO, LIBSSL, OTHER, VMLINUX,
    FunctionStats, Profiler, RegionNode,
    activate, charge, charge_cycles, current, region, reset_default,
)
from .report import format_table, kcycles, percent
from .pipeline import (
    DEPENDENCY_PATTERNS, PipelineConfig, PipelineResult, simulate,
    simulate_kernel,
)
from .trace import merge_profilers, profile_trace, synthesize_trace, \
    trace_to_text

__all__ = [
    "Drift", "canonical", "canonical_json", "capture", "diff_signatures",
    "load_json", "write_json",
    "CpuModel", "PENTIUM3", "PENTIUM4", "WIDE_CORE", "DEFAULT_COSTS",
    "CATEGORY", "I", "InstrMix", "MixAccumulator", "mix",
    "HTTPD", "LIBCRYPTO", "LIBSSL", "OTHER", "VMLINUX",
    "FunctionStats", "Profiler", "RegionNode",
    "activate", "charge", "charge_cycles", "current", "region",
    "reset_default",
    "format_table", "kcycles", "percent",
    "merge_profilers", "profile_trace", "synthesize_trace",
    "trace_to_text",
    "DEPENDENCY_PATTERNS", "PipelineConfig", "PipelineResult", "simulate",
    "simulate_kernel",
]
