"""Set-associative cache simulation for the kernels' table working sets.

Section 6.1 of the paper asserts that "since all these crypto operations
are compute intensive, most of these move instructions are hits in the L1
cache".  That claim is load-bearing for the whole cost model (our
per-instruction costs assume L1-resident data), so this module checks it
rather than assuming it: a set-associative LRU cache model (the paper's
Pentium 4 carried an 8 KB, 4-way, 64-byte-line L1D) driven by synthetic
address streams that reproduce each kernel's actual memory-access pattern
-- the table lookups of Table 4 plus the streaming input data.

The cache-residency benchmark shows every kernel's working set fits with
>97% hit rates at 8 KB, and quantifies the counterfactual (a 2 KB cache
breaks AES's four 1 KB tables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

# ---------------------------------------------------------------------------
# The cache model
# ---------------------------------------------------------------------------


class SetAssociativeCache:
    """A classic set-associative LRU cache with hit/miss accounting."""

    def __init__(self, size_bytes: int = 8192, line_bytes: int = 64,
                 associativity: int = 4):
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry must be positive")
        if size_bytes % (line_bytes * associativity):
            raise ValueError("size must be a multiple of line * assoc")
        if line_bytes & (line_bytes - 1):
            raise ValueError("line size must be a power of two")
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.nsets = size_bytes // (line_bytes * associativity)
        # Each set is an LRU-ordered list of tags (index 0 = most recent).
        self._sets: List[List[int]] = [[] for _ in range(self.nsets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Access one byte address; returns True on hit."""
        line = address // self.line_bytes
        index = line % self.nsets
        tag = line // self.nsets
        ways = self._sets[index]
        try:
            pos = ways.index(tag)
        except ValueError:
            self.misses += 1
            ways.insert(0, tag)
            if len(ways) > self.associativity:
                ways.pop()
            return False
        if pos:
            ways.insert(0, ways.pop(pos))
        self.hits += 1
        return True

    def access_all(self, addresses: Iterator[int]) -> None:
        for a in addresses:
            self.access(a)

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.nsets)]
        self.reset_stats()


#: The paper's machine: Pentium 4 (Northwood) L1D -- 8 KB, 4-way, 64 B lines.
def pentium4_l1d() -> SetAssociativeCache:
    return SetAssociativeCache(size_bytes=8192, line_bytes=64,
                               associativity=4)


# ---------------------------------------------------------------------------
# Synthetic address streams (one per kernel)
# ---------------------------------------------------------------------------
# Memory layout: each kernel's tables sit at fixed synthetic bases; the
# message buffer streams from a disjoint region.  A small LCG supplies the
# data-dependent table indices (the real indices are ciphertext-dependent
# and therefore uniform for modelling purposes).

_MSG_BASE = 0x100000
_TABLE_BASE = 0x10000
_KEY_BASE = 0x8000
_STATE_BASE = 0x4000


class _Lcg:
    """Deterministic 32-bit LCG for data-dependent index synthesis."""

    def __init__(self, seed: int = 0x1234ABCD):
        self._s = seed & 0xFFFFFFFF

    def next(self, bound: int) -> int:
        self._s = (1103515245 * self._s + 12345) & 0xFFFFFFFF
        return (self._s >> 8) % bound


def aes_stream(nbytes: int, seed: int = 1) -> Iterator[int]:
    """AES-128 encryption: 4 x 1 KB Te tables, 176 B key schedule, data."""
    rng = _Lcg(seed)
    tables = [_TABLE_BASE + i * 1024 for i in range(4)]
    for block in range(nbytes // 16):
        for i in range(16):  # load plaintext block
            yield _MSG_BASE + block * 16 + i
        for _ in range(10):  # rounds
            for word in range(4):
                for t in range(4):  # four table lookups per output word
                    yield tables[t] + 4 * rng.next(256)
                yield _KEY_BASE + 4 * rng.next(44)  # round key word
        for i in range(16):  # store ciphertext
            yield _MSG_BASE + block * 16 + i


def des_stream(nbytes: int, seed: int = 2, rounds: int = 16) -> Iterator[int]:
    """DES (or 3DES with rounds=48): 8 x 64-entry SP tables, subkeys, data."""
    rng = _Lcg(seed)
    for block in range(nbytes // 8):
        for i in range(8):
            yield _MSG_BASE + block * 8 + i
        for r in range(rounds):
            yield _KEY_BASE + 8 * (r % 16)          # subkey
            for t in range(8):                       # eight SP lookups
                yield _TABLE_BASE + t * 256 + 4 * rng.next(64)
        for i in range(8):
            yield _MSG_BASE + block * 8 + i


def rc4_stream(nbytes: int, seed: int = 3) -> Iterator[int]:
    """RC4: 256-byte state table, three reads + two writes per byte."""
    rng = _Lcg(seed)
    for pos in range(nbytes):
        yield _MSG_BASE + pos
        for _ in range(3):
            yield _STATE_BASE + rng.next(256)
        for _ in range(2):
            yield _STATE_BASE + rng.next(256)
        yield _MSG_BASE + pos


def hash_stream(nbytes: int, seed: int = 4,
                state_words: int = 4) -> Iterator[int]:
    """MD5/SHA-1: streaming message words + small constant table + state."""
    for block in range(nbytes // 64):
        for w in range(16):
            yield _MSG_BASE + block * 64 + 4 * w
        for step in range(64):
            yield _TABLE_BASE + 4 * (step % 64)      # T[i] constants
            for s in range(state_words):
                yield _STATE_BASE + 4 * s
    # (schedule expansion for SHA-1 stays in registers/stack; its W array
    # is 320 B and included via the state accesses)


def rsa_stream(modulus_words: int = 32, montmuls: int = 60,
               seed: int = 5) -> Iterator[int]:
    """RSA: streaming word arrays of the Montgomery multiplication.

    Working set = a few multi-precision operands (n, a, b, t) of
    ``modulus_words`` 32-bit words each -- a handful of cache lines.
    """
    bases = [_STATE_BASE + i * 4 * modulus_words for i in range(4)]
    for _ in range(montmuls):
        for i in range(modulus_words):          # outer loop word
            yield bases[0] + 4 * i
            for j in range(modulus_words):      # inner muladd loop
                yield bases[1] + 4 * j
                yield bases[2] + 4 * j
    # final subtract
        for j in range(modulus_words):
            yield bases[3] + 4 * j


STREAMS = {
    "aes": lambda n: aes_stream(n),
    "des": lambda n: des_stream(n),
    "3des": lambda n: des_stream(n, rounds=48),
    "rc4": lambda n: rc4_stream(n),
    "md5": lambda n: hash_stream(n, state_words=4),
    "sha1": lambda n: hash_stream(n, state_words=5),
    "rsa": lambda n: rsa_stream(),
}


@dataclass
class ResidencyResult:
    kernel: str
    cache_bytes: int
    accesses: int
    hit_rate: float


def residency(kernel: str, nbytes: int = 8192,
              cache: SetAssociativeCache | None = None) -> ResidencyResult:
    """Run one kernel's access stream through a cache; report hit rate."""
    if kernel not in STREAMS:
        raise KeyError(f"unknown kernel {kernel!r}; "
                       f"choose from {sorted(STREAMS)}")
    if cache is None:
        cache = pentium4_l1d()
    cache.access_all(STREAMS[kernel](nbytes))
    return ResidencyResult(kernel=kernel, cache_bytes=cache.size_bytes,
                           accesses=cache.accesses,
                           hit_rate=cache.hit_rate())


class CacheHierarchy:
    """A two-level hierarchy: L1 misses fall through to L2, then memory.

    Produces the average memory access time (AMAT) in cycles -- the
    quantity that justifies the cost model's flat ~0.5-cycle pricing of
    ``movl``: with >99% L1 hit rates (see :func:`residency`) the L2 and
    memory terms contribute only a few hundredths of a cycle per access
    for every kernel the paper studies.
    """

    def __init__(self, l1: SetAssociativeCache | None = None,
                 l2: SetAssociativeCache | None = None,
                 l1_hit_cycles: float = 2.0,
                 l2_hit_cycles: float = 18.0,
                 memory_cycles: float = 220.0):
        # Defaults: the paper's P4 (8 KB L1D; 512 KB 8-way L2).
        self.l1 = l1 if l1 is not None else pentium4_l1d()
        self.l2 = l2 if l2 is not None else SetAssociativeCache(
            512 * 1024, 64, 8)
        self.l1_hit_cycles = l1_hit_cycles
        self.l2_hit_cycles = l2_hit_cycles
        self.memory_cycles = memory_cycles
        self.memory_accesses = 0

    def reset_stats(self) -> None:
        """Clear hit/miss counters while keeping cache contents (for
        steady-state measurement after a warm-up pass)."""
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.memory_accesses = 0

    def access(self, address: int) -> float:
        """Access one address; returns the latency in cycles."""
        if self.l1.access(address):
            return self.l1_hit_cycles
        if self.l2.access(address):
            return self.l2_hit_cycles
        self.memory_accesses += 1
        return self.memory_cycles

    def run(self, addresses: Iterator[int]) -> "HierarchyResult":
        total = 0.0
        count = 0
        for address in addresses:
            total += self.access(address)
            count += 1
        return HierarchyResult(
            accesses=count,
            l1_hit_rate=self.l1.hit_rate(),
            l2_hit_rate=self.l2.hit_rate(),
            memory_accesses=self.memory_accesses,
            amat_cycles=(total / count) if count else 0.0)


@dataclass
class HierarchyResult:
    accesses: int
    l1_hit_rate: float
    l2_hit_rate: float
    memory_accesses: int
    amat_cycles: float


def kernel_amat(kernel: str, nbytes: int = 8192,
                hierarchy: CacheHierarchy | None = None) -> HierarchyResult:
    """Run a kernel's access stream through the L1/L2/memory hierarchy."""
    if kernel not in STREAMS:
        raise KeyError(f"unknown kernel {kernel!r}; "
                       f"choose from {sorted(STREAMS)}")
    if hierarchy is None:
        hierarchy = CacheHierarchy()
    return hierarchy.run(STREAMS[kernel](nbytes))
