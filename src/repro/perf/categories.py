"""Classification of charged functions into the paper's crypto categories.

Figure 2 and Table 3 split libcrypto time into **public-key encryption**,
**private-key encryption**, **hashing** and **other** (random-number
generation, X509 functions, etc.).  This module maps our charged function
names onto those categories and aggregates a profiler's flat profile
accordingly.
"""

from __future__ import annotations

from typing import Dict

from .profiler import LIBCRYPTO, Profiler

PUBLIC = "public"
PRIVATE = "private"
HASH = "hash"
OTHER = "other"

#: Exact-name table first; prefix rules as fallback.
_EXACT: Dict[str, str] = {
    "mac": HASH,
    "HMAC": HASH,
    "ssl3_PRF": HASH,
    "tls1_PRF": HASH,
    "tls1_final_finish_mac": HASH,
    "gen_master_secret": HASH,
    "ssl3_final_finish_mac": HASH,
    "block_parsing": PUBLIC,       # PKCS#1 parsing is part of the RSA op
    "rand_pseudo_bytes": OTHER,
    "X509_functions": OTHER,
    "OPENSSL_cleanse": OTHER,
    "ERR_load_BN_strings": OTHER,
    "BN_generate_prime": OTHER,
}

_PREFIXES = (
    ("bn_", PUBLIC), ("BN_", PUBLIC),
    ("AES_", PRIVATE), ("DES_", PRIVATE), ("RC4", PRIVATE),
    ("cbc_", PRIVATE),
    ("MD5", HASH), ("SHA1", HASH),
)


def classify_function(name: str, module: str) -> str | None:
    """Category of a charged function, or ``None`` if not libcrypto work."""
    if module != LIBCRYPTO:
        return None
    if name in _EXACT:
        return _EXACT[name]
    for prefix, category in _PREFIXES:
        if name.startswith(prefix):
            return category
    return OTHER


def crypto_breakdown(profiler: Profiler) -> Dict[str, float]:
    """Cycles per crypto category (public/private/hash/other) -- Figure 2."""
    out = {PUBLIC: 0.0, PRIVATE: 0.0, HASH: 0.0, OTHER: 0.0}
    for fs in profiler.functions.values():
        category = classify_function(fs.name, fs.module)
        if category is not None:
            out[category] += fs.cycles
    return out


def crypto_shares(profiler: Profiler) -> Dict[str, float]:
    """Category shares of total libcrypto time (sums to 1)."""
    breakdown = crypto_breakdown(profiler)
    total = sum(breakdown.values()) or 1.0
    return {k: v / total for k, v in breakdown.items()}
