"""Profile exporters: render a :class:`~repro.perf.profiler.Profiler` as
plain text, Markdown or CSV.

The benchmarks print fixed-format tables; these exporters serve downstream
users who want to post-process a profile -- e.g. diff two runs, feed a
spreadsheet, or embed a report in documentation.

:func:`write_json` -- the canonical deterministic JSON writer every
``BENCH_*.json`` artifact goes through -- is re-exported here so the
benchmarks have one import site for "how results leave the process".
"""

from __future__ import annotations

import io
from typing import List, Optional, Tuple

from .baseline import write_json
from .profiler import Profiler, RegionNode
from .report import format_table

__all__ = [
    "compare_profiles", "functions_csv", "instruction_mix_csv",
    "modules_markdown", "region_tree_text", "write_json",
]


def region_tree_text(profiler: Profiler, max_depth: int = 4,
                     min_share: float = 0.002) -> str:
    """An indented cycle tree of the profiler's regions.

    Nodes below ``min_share`` of the total are folded into their parent to
    keep reports readable.
    """
    total = profiler.total_cycles() or 1.0
    lines: List[str] = []

    def walk(node: RegionNode, depth: int) -> None:
        if depth > max_depth:
            return
        inclusive = node.inclusive_cycles()
        if node.parent is not None:
            if inclusive / total < min_share:
                return
            indent = "  " * (depth - 1)
            lines.append(f"{indent}{node.name:<30s} "
                         f"{inclusive / 1e3:12,.1f}k  "
                         f"{100 * inclusive / total:5.1f}%")
        for child in sorted(node.children.values(),
                            key=lambda c: -c.inclusive_cycles()):
            walk(child, depth + 1)

    walk(profiler.root, 0)
    return "\n".join(lines) + ("\n" if lines else "")


def functions_csv(profiler: Profiler, top: Optional[int] = None) -> str:
    """Flat function profile as CSV (function, module, calls, cycles,
    instructions, share)."""
    out = io.StringIO()
    out.write("function,module,calls,cycles,instructions,share\n")
    total = profiler.total_cycles() or 1.0
    rows = sorted(profiler.functions.values(), key=lambda f: -f.cycles)
    if top is not None:
        rows = rows[:top]
    for fs in rows:
        name = fs.name.replace(",", ";")
        out.write(f"{name},{fs.module},{fs.calls},{fs.cycles:.0f},"
                  f"{fs.instructions():.0f},{fs.cycles / total:.6f}\n")
    return out.getvalue()


def modules_markdown(profiler: Profiler) -> str:
    """Module breakdown as a Markdown table (Table 1 style)."""
    lines = ["| module | cycles | share |", "|---|---|---|"]
    for name, cycles, share in profiler.module_breakdown():
        lines.append(f"| {name} | {cycles:,.0f} | {100 * share:.2f}% |")
    return "\n".join(lines) + "\n"


def instruction_mix_csv(profiler: Profiler) -> str:
    """Aggregate dynamic instruction mix as CSV (mnemonic, count, share)."""
    mix = profiler.global_mix.snapshot()
    total = mix.total() or 1.0
    out = io.StringIO()
    out.write("mnemonic,count,share\n")
    for name, count in sorted(mix.counts.items(), key=lambda kv: -kv[1]):
        out.write(f"{name},{count:.1f},{count / total:.6f}\n")
    return out.getvalue()


def compare_profiles(a: Profiler, b: Profiler, label_a: str = "A",
                     label_b: str = "B",
                     top: int = 12) -> str:
    """Side-by-side function comparison of two profiles.

    Useful for ablations: run the same workload under two configurations
    and see which functions moved.
    """
    names = set(a.functions) | set(b.functions)

    def cycles(p: Profiler, name: str) -> float:
        fs = p.functions.get(name)
        return fs.cycles if fs else 0.0

    rows: List[Tuple[str, float, float, str]] = []
    for name in names:
        ca, cb = cycles(a, name), cycles(b, name)
        if ca == 0 and cb == 0:
            continue
        if ca and cb:
            delta = f"{(cb - ca) / ca * 100:+.1f}%"
        else:
            delta = "new" if cb else "gone"
        rows.append((name, ca, cb, delta))
    rows.sort(key=lambda r: -max(r[1], r[2]))
    return format_table(
        ["function", f"cycles ({label_a})", f"cycles ({label_b})", "delta"],
        rows[:top], title=f"Profile comparison: {label_a} vs {label_b}")
