"""Cost model that converts instruction mixes into cycles.

The paper measured a 2.26 GHz Intel Pentium 4 with VTune/Oprofile and reported
per-kernel cycle counts, CPI (0.52 -- 0.77 across the crypto kernels, Table
11) and throughput.  We replace the physical machine with a small analytic
model:

* each instruction class has a *reciprocal-throughput* cost in cycles -- the
  average number of cycles one such instruction occupies on the modelled
  3-wide out-of-order core when surrounded by typical crypto-kernel code and
  hitting the L1 cache (the paper notes the kernels are compute-bound and
  L1-resident);

* a per-kernel *stall factor* scales the throughput-limited estimate to
  account for dependency chains the linear model cannot see.  MD5, for
  example, is a single serial chain (every step consumes the previous step's
  output), while SHA-1's message schedule provides independent work that the
  core can overlap -- which is why the paper measures MD5 at CPI 0.72 but
  SHA-1 at 0.52 despite near-identical instruction vocabularies.  Stall
  factors are declared next to each kernel's mix constant with a comment
  deriving them from the dependency structure.

The per-class costs below are the model's calibrated parameters; they were
fit once against Table 11 and are validated by
``tests/test_calibration.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from .isa import CATEGORY, I, InstrMix


#: Default per-class reciprocal-throughput costs (cycles per instruction).
#: Loads/stores and simple ALU ops issue multiple-per-cycle on the modelled
#: core; multiplies serialize through the single multiplier pipe.
DEFAULT_COSTS: Dict[str, float] = {
    I.MOVL: 0.52, I.MOVB: 0.52, I.MOVZBL: 0.52, I.LEAL: 0.45, I.BSWAP: 0.60,
    I.XORL: 0.42, I.XORB: 0.42, I.ANDL: 0.42, I.ANDB: 0.42, I.ORL: 0.42,
    I.NOTL: 0.42,
    I.ADDL: 0.42, I.ADDB: 0.42, I.ADCL: 0.50, I.SUBL: 0.42, I.SBBL: 0.50,
    I.MULL: 3.15, I.INCL: 0.42, I.DECL: 0.42,
    I.SHRL: 0.50, I.SHLL: 0.50, I.ROLL: 0.55, I.RORL: 0.55,
    I.CMPL: 0.42, I.JNZ: 0.55, I.JMP: 0.55, I.CALL: 2.50, I.RET: 2.50,
    I.PUSHL: 0.55, I.POPL: 0.55, I.NOP: 0.30,
}


@dataclass(frozen=True)
class CpuModel:
    """An analytic CPU: frequency plus per-instruction-class cycle costs."""

    name: str = "P4-2.26"
    frequency_hz: float = 2.26e9
    costs: Dict[str, float] = field(default_factory=lambda: dict(DEFAULT_COSTS))

    def __post_init__(self) -> None:
        missing = [m for m in CATEGORY if m not in self.costs]
        if missing:
            raise ValueError(f"cost table missing mnemonics: {missing}")

    def __reduce__(self):
        # Unpickle to one canonical instance per parameter set.  Profiler
        # merging and the InstrMix cost memo compare CPU models by
        # identity, so profiles that cross a process boundary (the
        # parallel farm backend) must come back holding the *same* model
        # object as profiles built locally -- e.g. the PENTIUM4 singleton.
        return (_canonical_cpu, (self.name, self.frequency_hz,
                                 dict(self.costs)))

    # -- core conversions ---------------------------------------------------
    def cycles(self, m: InstrMix, stall_factor: float = 1.0) -> float:
        """Cycles to retire ``m`` given the kernel's dependency stall factor."""
        if stall_factor <= 0:
            raise ValueError("stall_factor must be positive")
        if m._cost_cpu is self:
            base = m._cost_base
        else:
            c = self.costs
            base = sum(cnt * c[name] for name, cnt in m._counts.items())
            m._cost_cpu = self
            m._cost_base = base
        return base * stall_factor

    def cpi(self, m: InstrMix, stall_factor: float = 1.0) -> float:
        """Cycles per instruction for the mix (Table 11's CPI column)."""
        total = m.total()
        if not total:
            return 0.0
        return self.cycles(m, stall_factor) / total

    # -- derived metrics ----------------------------------------------------
    def seconds(self, cycles: float) -> float:
        return cycles / self.frequency_hz

    def throughput_mbps(self, nbytes: int, cycles: float) -> float:
        """Throughput in megabytes per second (Table 11's throughput column)."""
        if cycles <= 0:
            raise ValueError("cycles must be positive")
        return nbytes / self.seconds(cycles) / 1e6

    def path_length(self, instructions: float, nbytes: int) -> float:
        """Instructions retired per byte processed (Table 11's path length)."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        return instructions / nbytes


#: Interned models keyed by their full parameter set; populated lazily by
#: :func:`_canonical_cpu` and pre-seeded with the module-level singletons.
_INTERNED: Dict[tuple, CpuModel] = {}


def _intern_key(name: str, frequency_hz: float,
                costs: Dict[str, float]) -> tuple:
    return (name, frequency_hz, tuple(sorted(costs.items())))


def _canonical_cpu(name: str, frequency_hz: float,
                   costs: Dict[str, float]) -> CpuModel:
    """Pickle-restore hook: return the one shared instance for this
    parameter set, so identity-based CPU checks survive a round trip."""
    key = _intern_key(name, frequency_hz, costs)
    model = _INTERNED.get(key)
    if model is None:
        model = CpuModel(name=name, frequency_hz=frequency_hz,
                         costs=dict(costs))
        _INTERNED[key] = model
    return model


def _intern(model: CpuModel) -> CpuModel:
    return _INTERNED.setdefault(
        _intern_key(model.name, model.frequency_hz, model.costs), model)


#: The machine the paper profiled: a 2.26 GHz Pentium 4 workstation.
PENTIUM4 = _intern(CpuModel())


def _scaled(base: Dict[str, float], factor: float,
            overrides: Dict[str, float] | None = None) -> Dict[str, float]:
    out = {k: v * factor for k, v in base.items()}
    if overrides:
        out.update(overrides)
    return out


#: A P6-class core (Pentium III era, ~1 GHz): narrower issue (everything a
#: bit slower per clock) but a fast barrel shifter -- the P4's
#: double-pumped ALU had notoriously slow shifts/rotates, the P6 did not.
PENTIUM3 = _intern(CpuModel(
    name="P6-1.0", frequency_hz=1.0e9,
    costs=_scaled(DEFAULT_COSTS, 1.25, {
        I.SHRL: 0.45, I.SHLL: 0.45, I.ROLL: 0.45, I.RORL: 0.45,
        I.MULL: 4.0,
    })))

#: A modern wide out-of-order core (~3 GHz, 4+-wide, 3-cycle pipelined
#: multiplier): per-instruction reciprocal throughputs roughly halve and
#: the multiplier stops dominating RSA.
WIDE_CORE = _intern(CpuModel(
    name="wide-3.0", frequency_hz=3.0e9,
    costs=_scaled(DEFAULT_COSTS, 0.55, {
        I.MULL: 1.0, I.ADCL: 0.30, I.SBBL: 0.30,
        I.CALL: 1.5, I.RET: 1.5,
    })))
