"""x86-like instruction classes and instruction-mix bookkeeping.

The paper characterizes each cryptographic kernel by the IA-32 instructions it
executes (Table 12) and by derived metrics -- path length in instructions per
byte, CPI, and throughput (Table 11).  This module provides the vocabulary for
that characterization: a fixed set of instruction mnemonics (the ones that
appear in the paper's tables, plus a few needed to describe complete loops)
and :class:`InstrMix`, a multiset of instruction counts.

Every instrumented kernel in this repository declares, next to its Python
implementation, the instruction mix that one execution of the corresponding
classic 32-bit x86 implementation would retire.  Those constants are built
with :func:`mix`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple


class I:
    """Mnemonics for the instruction classes used throughout the model.

    The names follow AT&T syntax as printed in the paper (``movl``, ``adcl``,
    ...).  They are plain strings so that an :class:`InstrMix` is an ordinary
    ``str -> int`` mapping.
    """

    # Data movement
    MOVL = "movl"      # 32-bit load/store/reg-reg move
    MOVB = "movb"      # 8-bit move
    MOVZBL = "movzbl"  # zero-extending byte load (table-index extraction)
    LEAL = "leal"      # address computation / 3-operand add
    BSWAP = "bswap"    # byte swap (big-endian loads in SHA-1)
    # Logical
    XORL = "xorl"
    XORB = "xorb"
    ANDL = "andl"
    ANDB = "andb"
    ORL = "orl"
    NOTL = "notl"
    # Arithmetic
    ADDL = "addl"
    ADDB = "addb"
    ADCL = "adcl"      # add with carry (bignum kernels)
    SUBL = "subl"
    SBBL = "sbbl"      # subtract with borrow
    MULL = "mull"      # 32x32 -> 64 unsigned multiply
    INCL = "incl"
    DECL = "decl"
    # Shifts and rotates
    SHRL = "shrl"
    SHLL = "shll"
    ROLL = "roll"
    RORL = "rorl"
    # Control / stack / misc
    CMPL = "cmpl"
    JNZ = "jnz"        # conditional branch (any jcc)
    JMP = "jmp"
    CALL = "call"
    RET = "ret"
    PUSHL = "pushl"
    POPL = "popl"
    NOP = "nop"


#: Broad category for each mnemonic; used by reports and by the ISA-extension
#: models in :mod:`repro.engines.isa_ext`.
CATEGORY: Dict[str, str] = {
    I.MOVL: "mem", I.MOVB: "mem", I.MOVZBL: "mem", I.LEAL: "alu", I.BSWAP: "alu",
    I.XORL: "logic", I.XORB: "logic", I.ANDL: "logic", I.ANDB: "logic",
    I.ORL: "logic", I.NOTL: "logic",
    I.ADDL: "alu", I.ADDB: "alu", I.ADCL: "alu", I.SUBL: "alu", I.SBBL: "alu",
    I.MULL: "mul", I.INCL: "alu", I.DECL: "alu",
    I.SHRL: "shift", I.SHLL: "shift", I.ROLL: "shift", I.RORL: "shift",
    I.CMPL: "alu", I.JNZ: "ctrl", I.JMP: "ctrl", I.CALL: "ctrl", I.RET: "ctrl",
    I.PUSHL: "stack", I.POPL: "stack", I.NOP: "nop",
}

ALL_MNEMONICS: Tuple[str, ...] = tuple(CATEGORY)


class InstrMix:
    """An immutable multiset of instruction counts.

    Counts may be fractional: a mix frequently describes the *average* work of
    one iteration of a kernel (e.g. one AES round), where data-dependent paths
    contribute expected values.

    Mixes support scaling and addition so that per-block constants compose
    into per-message totals::

        block = AES_INIT_MIX + AES_ROUND_MIX * 9 + AES_FINAL_MIX
    """

    __slots__ = ("_counts", "_total", "_cost_cpu", "_cost_base")

    def __init__(self, counts: Dict[str, float] | None = None):
        # Single-entry cycle-cost memo, managed by CpuModel.cycles().  The
        # cached CpuModel is held by strong reference so its identity check
        # is safe against id reuse.
        self._cost_cpu = None
        self._cost_base = 0.0
        c: Dict[str, float] = {}
        if counts:
            for name, n in counts.items():
                if name not in CATEGORY:
                    raise ValueError(f"unknown instruction mnemonic: {name!r}")
                if n < 0:
                    raise ValueError(f"negative count for {name!r}: {n}")
                if n:
                    c[name] = float(n)
        self._counts = c
        self._total = float(sum(c.values()))

    # -- construction -----------------------------------------------------
    @classmethod
    def empty(cls) -> "InstrMix":
        return cls()

    # -- inspection --------------------------------------------------------
    @property
    def counts(self) -> Dict[str, float]:
        """A copy of the underlying ``mnemonic -> count`` mapping."""
        return dict(self._counts)

    def count(self, mnemonic: str) -> float:
        return self._counts.get(mnemonic, 0.0)

    def total(self) -> float:
        """Total number of (dynamic) instructions in the mix."""
        return self._total

    def shares(self) -> Dict[str, float]:
        """Fraction of the mix contributed by each mnemonic (sums to 1)."""
        if not self._total:
            return {}
        return {k: v / self._total for k, v in self._counts.items()}

    def top(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` most frequent mnemonics as ``(name, share)`` pairs."""
        order = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        total = self._total or 1.0
        return [(name, cnt / total) for name, cnt in order[:n]]

    def by_category(self) -> Dict[str, float]:
        """Instruction counts aggregated by :data:`CATEGORY`."""
        agg: Counter = Counter()
        for name, cnt in self._counts.items():
            agg[CATEGORY[name]] += cnt
        return dict(agg)

    # -- algebra -----------------------------------------------------------
    def scaled(self, factor: float) -> "InstrMix":
        if factor == 1:
            return self
        if factor < 0:
            raise ValueError("cannot scale a mix by a negative factor")
        return InstrMix({k: v * factor for k, v in self._counts.items()})

    def __mul__(self, factor: float) -> "InstrMix":
        return self.scaled(factor)

    __rmul__ = __mul__

    def __add__(self, other: "InstrMix") -> "InstrMix":
        if not isinstance(other, InstrMix):
            return NotImplemented
        merged = dict(self._counts)
        for k, v in other._counts.items():
            merged[k] = merged.get(k, 0.0) + v
        return InstrMix(merged)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InstrMix):
            return NotImplemented
        return self._counts == other._counts

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"InstrMix({inner})"


def mix(**counts: float) -> InstrMix:
    """Build an :class:`InstrMix` from keyword counts.

    Example::

        INNER = mix(movl=4, mull=1, addl=2, adcl=2)
    """
    return InstrMix(counts)


class MixAccumulator:
    """A mutable accumulator for instruction mixes.

    :class:`InstrMix` is immutable for safe sharing of constants; profilers
    accumulate into this mutable counterpart instead.  ``add`` is O(1): it
    appends to a pending list and folds into the counter only when a result
    is requested, because profiled kernels charge millions of times while
    results are read once per experiment.
    """

    __slots__ = ("_counts", "_pending", "_pending_total")

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._pending: List[Tuple[InstrMix, float]] = []
        # Lifetime instruction total, accumulated once per ``add`` and
        # *never* recomputed from ``_counts``: summing the folded
        # per-mnemonic columns would group the float additions
        # differently, so ``total()`` would drift in the last ulp
        # depending on when (or whether) a fold happened -- e.g. across
        # the parallel farm's pickle boundary versus a serial run.
        self._pending_total = 0.0

    def add(self, m: InstrMix, times: float = 1.0) -> None:
        self._pending.append((m, times))
        self._pending_total += m._total * times

    def _fold(self) -> None:
        if not self._pending:
            return
        counts = self._counts
        for m, times in self._pending:
            for k, v in m._counts.items():
                counts[k] += v * times
        self._pending.clear()

    def snapshot(self) -> InstrMix:
        self._fold()
        return InstrMix(dict(self._counts))

    def total(self) -> float:
        return self._pending_total

    def __getstate__(self):
        # Fold before serializing: a profiler that crosses a process
        # boundary (parallel farm workers) would otherwise drag along one
        # pending entry per charge -- megabytes for a long run.  The fold
        # replays the pending ``counts[k] += v * times`` sequence exactly
        # as a later fold would, and the lifetime total travels alongside,
        # so every observable stays bit-identical.
        self._fold()
        return (dict(self._counts), self._pending_total)

    def __setstate__(self, state) -> None:
        counts, total = state
        self._counts = Counter(counts)
        self._pending = []
        self._pending_total = total
