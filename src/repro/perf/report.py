"""Plain-text table rendering for experiment reports.

Every benchmark in ``benchmarks/`` regenerates one of the paper's tables or
figures; these helpers give them a uniform, monospace presentation that can
be diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    Numeric cells are right-aligned; floats are shown with a sensible number
    of digits.  Returns a string ending in a newline.
    """
    def cell(v: object) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 1000:
                return f"{v:,.0f}"
            if abs(v) >= 10:
                return f"{v:.1f}"
            return f"{v:.3f}"
        return str(v)

    str_rows: List[List[str]] = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, s in enumerate(row):
            widths[i] = max(widths[i], len(s))

    def is_numeric(col: int) -> bool:
        return all(_looks_numeric(r[col]) for r in str_rows if r[col])

    numeric = [is_numeric(i) for i in range(len(headers))]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for i, s in enumerate(cells):
            parts.append(s.rjust(widths[i]) if numeric[i] else s.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines) + "\n"


def _looks_numeric(s: str) -> bool:
    try:
        float(s.replace(",", "").rstrip("%"))
        return True
    except ValueError:
        return False


def percent(x: float) -> str:
    """Format a 0..1 fraction as a percentage string."""
    return f"{100.0 * x:.2f}%"


def kcycles(x: float) -> float:
    """Cycles expressed in thousands, as Table 2 prints them."""
    return x / 1000.0
