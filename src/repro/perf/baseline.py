"""Golden-baseline signatures: canonical, diffable profiler snapshots.

The reproduction's modeled cycle counts are *deterministic*: the fast
path is bit-identical to the faithful loops and a one-worker farm is
bit-identical to the single simulator.  That determinism is only worth
anything if it is pinned -- a refactor that silently shifts Table 2's
``get_client_kx`` cycles or the Table 12 instruction mix is a
correctness bug, not a perf footnote.

This module turns one :class:`~repro.perf.profiler.Profiler` into a
**signature**: a plain-dict snapshot of every deterministic quantity the
paper's tables are built from --

* total cycles and total instructions (path length), plus CPI;
* the region tree (exclusive cycles + entry counts per ``a/b/c`` path);
* the flat function profile (self cycles, calls, instructions);
* the module breakdown (libcrypto / libssl / httpd / vmlinux / other);
* the dynamic instruction-mix histogram (Table 12);
* scenario-specific extras (wire bytes, requests completed, ...).

Signatures serialize through :func:`canonical_json` -- sorted keys,
fixed float formatting, a trailing newline -- so that recording the same
scenario twice produces byte-identical files and ``git diff`` over the
committed ``baselines/*.json`` shows exactly which metric moved.
:func:`diff_signatures` compares two signatures leaf-by-leaf with
configurable relative tolerances (exact match by default, because the
quantities are deterministic).

``repro.tools.perfgate`` drives this module over a registry of named
scenarios; the ``BENCH_*`` benchmark writers share :func:`write_json`
so regenerated benchmark artifacts diff cleanly too.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .profiler import Profiler

#: Bump when the signature layout changes incompatibly; ``diff_signatures``
#: reports a schema mismatch instead of a wall of leaf drifts.
SCHEMA_VERSION = 1


# ---------------------------------------------------------------------------
# Canonical JSON
# ---------------------------------------------------------------------------

def canonical(value: Any) -> Any:
    """Normalize a JSON-able value for byte-stable serialization.

    Floats that are exact integers collapse to ints (``12.0`` and ``12``
    charge identically and must serialize identically); other floats
    keep full shortest-repr precision -- rounding would hide exactly the
    drift the gate exists to catch.  Dicts are rebuilt with string keys
    so insertion order never leaks into the output (``json.dumps`` then
    sorts them).
    """
    if isinstance(value, bool) or value is None or isinstance(value, str):
        return value
    if isinstance(value, float):
        if not math.isfinite(value):
            raise ValueError(f"non-finite value in signature: {value!r}")
        if value.is_integer() and abs(value) < 2 ** 62:
            return int(value)
        return value
    if isinstance(value, int):
        return value
    if isinstance(value, Mapping):
        return {str(k): canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def canonical_json(value: Any) -> str:
    """Serialize ``value`` canonically: sorted keys, stable float text,
    2-space indentation, trailing newline."""
    return json.dumps(canonical(value), sort_keys=True, indent=2,
                      ensure_ascii=True) + "\n"


def write_json(path: Union[str, Path], value: Any) -> Path:
    """Write ``value`` as canonical JSON; the shared ``BENCH_*``/baseline
    writer, so regenerating any artifact produces clean diffs."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(value))
    return path


def load_json(path: Union[str, Path]) -> Any:
    return json.loads(Path(path).read_text())


# ---------------------------------------------------------------------------
# Signature capture
# ---------------------------------------------------------------------------

def capture(profiler: Profiler, *, scenario: str,
            extra: Optional[Mapping[str, Any]] = None,
            meta: Optional[Mapping[str, Any]] = None) -> Dict[str, Any]:
    """Snapshot ``profiler`` into a canonical signature dict.

    ``extra`` carries scenario-level deterministic metrics (wire bytes,
    requests completed, handshake flights...); ``meta`` carries
    descriptive fields (paper table, config) that are compared too but
    exist mostly for the reader of the baseline file.
    """
    regions: Dict[str, Dict[str, Any]] = {}
    for node in profiler.root.walk():
        if node.parent is None:
            if node.exclusive_cycles:
                regions["<root>"] = {"cycles": node.exclusive_cycles,
                                     "entries": node.entries}
            continue
        regions[node.path()] = {"cycles": node.exclusive_cycles,
                                "entries": node.entries}

    functions = {
        name: {"cycles": fs.cycles, "calls": fs.calls,
               "instructions": fs.instructions()}
        for name, fs in profiler.functions.items()
    }

    mix = profiler.global_mix.snapshot()
    total_instructions = profiler.total_instructions()
    total_cycles = profiler.total_cycles()

    sig: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "scenario": scenario,
        "cycles_total": total_cycles,
        "instructions_total": total_instructions,
        "cpi": (total_cycles / total_instructions
                if total_instructions else 0.0),
        "modules": dict(profiler.modules),
        "functions": functions,
        "regions": regions,
        "instruction_mix": dict(mix.counts),
        "extra": dict(extra or {}),
        "meta": dict(meta or {}),
    }
    return canonical(sig)


# ---------------------------------------------------------------------------
# Diffing
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Drift:
    """One leaf that moved between a baseline and a fresh capture."""

    path: str            # dotted path, e.g. "regions.get_client_kx.cycles"
    baseline: Any
    fresh: Any
    relative: float      # |delta| / max(|baseline|, |fresh|); inf for shape

    def __str__(self) -> str:
        if isinstance(self.baseline, (int, float)) and \
                isinstance(self.fresh, (int, float)):
            return (f"{self.path}: {self.baseline} -> {self.fresh} "
                    f"({self.relative * 100:+.4f}% drift)")
        return f"{self.path}: {self.baseline!r} -> {self.fresh!r}"


#: Signature fields that are derived or descriptive; a drift here without
#: any primary drift would be a bug in the capture itself, but they are
#: still compared so nothing silently escapes the gate.
_NUMERIC = (int, float)


def _rel(a: float, b: float) -> float:
    denominator = max(abs(a), abs(b))
    if denominator == 0:
        return 0.0
    return abs(a - b) / denominator


def _walk_diff(path: str, base: Any, fresh: Any, tolerance: float,
               out: List[Drift]) -> None:
    if isinstance(base, Mapping) and isinstance(fresh, Mapping):
        for key in sorted(set(base) | set(fresh)):
            sub = f"{path}.{key}" if path else str(key)
            if key not in base:
                out.append(Drift(sub, "<absent>", fresh[key], math.inf))
            elif key not in fresh:
                out.append(Drift(sub, base[key], "<absent>", math.inf))
            else:
                _walk_diff(sub, base[key], fresh[key], tolerance, out)
        return
    if isinstance(base, list) and isinstance(fresh, list):
        if len(base) != len(fresh):
            out.append(Drift(f"{path}.<len>", len(base), len(fresh),
                             math.inf))
        for i, (a, b) in enumerate(zip(base, fresh)):
            _walk_diff(f"{path}[{i}]", a, b, tolerance, out)
        return
    if isinstance(base, bool) or isinstance(fresh, bool):
        if base != fresh:
            out.append(Drift(path, base, fresh, math.inf))
        return
    if isinstance(base, _NUMERIC) and isinstance(fresh, _NUMERIC):
        rel = _rel(float(base), float(fresh))
        if rel > tolerance:
            out.append(Drift(path, base, fresh, rel))
        return
    if base != fresh:
        out.append(Drift(path, base, fresh, math.inf))


def diff_signatures(baseline_sig: Mapping[str, Any],
                    fresh_sig: Mapping[str, Any], *,
                    tolerance: float = 0.0,
                    tolerances: Optional[Mapping[str, float]] = None,
                    ) -> List[Drift]:
    """Leaf-by-leaf comparison of two signatures.

    ``tolerance`` is the default *relative* tolerance applied to every
    numeric leaf (0.0 = exact match, the right default for deterministic
    modeled cycles).  ``tolerances`` overrides it per top-level section
    (``{"instruction_mix": 1e-9}``).  Shape changes -- a region that
    disappeared, a function that appeared -- always count as drift.
    """
    base = canonical(dict(baseline_sig))
    fresh = canonical(dict(fresh_sig))
    if base.get("schema") != fresh.get("schema"):
        return [Drift("schema", base.get("schema"), fresh.get("schema"),
                      math.inf)]
    overrides = dict(tolerances or {})
    out: List[Drift] = []
    for key in sorted(set(base) | set(fresh)):
        tol = overrides.get(key, tolerance)
        if key not in base:
            out.append(Drift(key, "<absent>", fresh[key], math.inf))
        elif key not in fresh:
            out.append(Drift(key, base[key], "<absent>", math.inf))
        else:
            _walk_diff(key, base[key], fresh[key], tol, out)
    return out
