"""Synthetic dynamic-instruction traces from instruction mixes.

The paper's methodology (Section 3.3): "The instruction traces collected
from SoftSDV are then analyzed through various simulation tools."  Our
instrumentation accumulates *mixes* rather than traces; this module closes
the loop by expanding a mix back into a concrete instruction sequence with
the same composition, so downstream tools that want a linear trace (simple
pipeline models, trace-file consumers) can be fed.

The expansion is deterministic and interleaves mnemonics proportionally
(stride scheduling), which reproduces the *composition* exactly
and approximates the fine-grained interleaving of the real kernels --
adequate for the composition-driven analyses the paper performs, and
clearly documented as synthetic.
"""

from __future__ import annotations

import heapq
from typing import Iterator, List, Tuple

from .isa import InstrMix
from .profiler import Profiler


def synthesize_trace(m: InstrMix, length: int | None = None,
                     ) -> Iterator[str]:
    """Yield a deterministic mnemonic sequence with the mix's composition.

    ``length`` sets the number of instructions (default: round(total)).
    Stride scheduling: instruction ``i`` of a mnemonic with ``c`` slots is
    stamped at virtual time ``(i + 0.5) / c``; emitting in timestamp order
    interleaves every mnemonic evenly through the trace.
    """
    total = m.total()
    if not total:
        return
    if length is None:
        length = round(total)
    if length < 0:
        raise ValueError("length must be non-negative")
    if length == 0:
        return
    shares = m.shares()
    # Integer slot counts summing exactly to length (largest remainder).
    raw = {name: share * length for name, share in shares.items()}
    counts = {name: int(v) for name, v in raw.items()}
    short = length - sum(counts.values())
    for name, _ in sorted(raw.items(),
                          key=lambda kv: -(kv[1] - int(kv[1])))[:short]:
        counts[name] += 1
    def stream(name: str, c: int) -> Iterator[Tuple[float, str]]:
        for i in range(c):
            yield ((i + 0.5) / c, name)

    streams = [stream(name, c)
               for name, c in sorted(counts.items()) if c > 0]
    for _, name in heapq.merge(*streams):
        yield name


def trace_to_text(trace: Iterator[str], width: int = 8) -> str:
    """Render a trace as columns of mnemonics (a dump-file format)."""
    out: List[str] = []
    row: List[str] = []
    for mnemonic in trace:
        row.append(f"{mnemonic:<8s}")
        if len(row) == width:
            out.append(" ".join(row).rstrip())
            row = []
    if row:
        out.append(" ".join(row).rstrip())
    return "\n".join(out) + ("\n" if out else "")


def profile_trace(profiler: Profiler, length: int = 256) -> List[str]:
    """A synthetic trace of a whole profile's aggregate mix."""
    return list(synthesize_trace(profiler.global_mix.snapshot(), length))


def merge_profilers(target: Profiler, *sources: Profiler) -> Profiler:
    """Fold ``sources`` into ``target`` (functions, modules, mixes, totals).

    Region trees are merged by path.  Useful for aggregating per-worker
    profiles from a multi-process experiment into one report.
    """
    for src in sources:
        if src.cpu is not target.cpu:
            raise ValueError("cannot merge profiles from different CPU "
                             "models")
        for name, fs in src.functions.items():
            dst = target.functions.get(name)
            if dst is None:
                from .profiler import FunctionStats
                dst = target.functions[name] = FunctionStats(name,
                                                             fs.module)
            dst.cycles += fs.cycles
            dst.calls += fs.calls
            dst.mix.add(fs.mix.snapshot())
        for module, cycles in src.modules.items():
            target.modules[module] += cycles
        target.global_mix.add(src.global_mix.snapshot())
        target._cycles += src.total_cycles()
        _merge_region(target.root, src.root)
    return target


def _merge_region(dst, src) -> None:
    dst.exclusive_cycles += src.exclusive_cycles
    dst.entries += src.entries
    dst.func_cycles.update(src.func_cycles)
    for name, child in src.children.items():
        _merge_region(dst.child(name), child)
