"""Hierarchical cycle-accounting profiler.

This is the reproduction's stand-in for the paper's measurement toolchain:

* Oprofile's module/function flat profile  -> :meth:`Profiler.module_breakdown`
  and :meth:`Profiler.function_breakdown` (Tables 1 and 8);
* ``rdtsc`` timestamps around handshake steps -> :meth:`Profiler.region` and
  :meth:`Profiler.now` (Tables 2, 5, 6, 7, 10);
* SoftSDV instruction traces -> the accumulated :class:`~repro.perf.isa.InstrMix`
  per function (Table 12) and derived CPI / path length (Table 11).

Instrumented code *charges* instruction mixes (or, for modelled non-crypto
components such as the kernel TCP stack, raw cycles) into the active
profiler.  Charges are attributed three ways at once:

* to the innermost open **region** (a node in a tree of nested
  context-manager scopes, e.g. ``handshake/get_client_kx/rsa_private_decryption``);
* to a flat **function** profile (self-time, like Oprofile);
* to a flat **module** profile (``libcrypto``, ``libssl``, ``httpd``,
  ``vmlinux``, ``other``).

A module-level *active profiler stack* lets deeply nested kernels charge
without threading a profiler object through every call; see
:func:`current`, :func:`activate` and the convenience wrappers
:func:`charge` / :func:`region`.
"""

from __future__ import annotations

from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from .cpu import CpuModel, PENTIUM4
from .isa import InstrMix, MixAccumulator

#: Module names mirroring Table 1 of the paper.
LIBCRYPTO = "libcrypto"
LIBSSL = "libssl"
HTTPD = "httpd"
VMLINUX = "vmlinux"
OTHER = "other"


@dataclass
class FunctionStats:
    """Flat (self-time) statistics for one named function."""

    name: str
    module: str
    cycles: float = 0.0
    calls: int = 0
    mix: MixAccumulator = field(default_factory=MixAccumulator)

    def instructions(self) -> float:
        return self.mix.total()


class RegionNode:
    """One node of the region tree.

    ``exclusive_cycles`` counts charges made while this region was innermost;
    :meth:`inclusive_cycles` adds everything charged in enclosed sub-regions.
    ``func_cycles`` records, per charged function name, the cycles attributed
    while this node was innermost -- this is what lets the handshake anatomy
    report (Table 2) list the crypto functions called inside each step.
    """

    __slots__ = ("name", "parent", "children", "exclusive_cycles",
                 "func_cycles", "entries")

    def __init__(self, name: str, parent: Optional["RegionNode"] = None):
        self.name = name
        self.parent = parent
        self.children: Dict[str, RegionNode] = {}
        self.exclusive_cycles = 0.0
        self.func_cycles: Counter = Counter()
        self.entries = 0

    def child(self, name: str) -> "RegionNode":
        node = self.children.get(name)
        if node is None:
            node = RegionNode(name, self)
            self.children[name] = node
        return node

    def inclusive_cycles(self) -> float:
        return self.exclusive_cycles + sum(
            c.inclusive_cycles() for c in self.children.values())

    def inclusive_func_cycles(self) -> Counter:
        """Per-function cycles over this node and its whole subtree."""
        agg = Counter(self.func_cycles)
        for c in self.children.values():
            agg.update(c.inclusive_func_cycles())
        return agg

    def path(self) -> str:
        parts: List[str] = []
        node: Optional[RegionNode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def walk(self) -> Iterator["RegionNode"]:
        yield self
        for c in self.children.values():
            yield from c.walk()

    def __repr__(self) -> str:
        return (f"RegionNode({self.path()!r}, "
                f"inclusive={self.inclusive_cycles():.0f})")


class Profiler:
    """Accumulates cycles, instructions and attribution for one experiment."""

    def __init__(self, cpu: CpuModel = PENTIUM4):
        self.cpu = cpu
        self.root = RegionNode("<root>")
        self._stack: List[RegionNode] = [self.root]
        self.functions: Dict[str, FunctionStats] = {}
        self.modules: Counter = Counter()
        self.global_mix = MixAccumulator()
        self._cycles = 0.0

    # -- charging -----------------------------------------------------------
    def charge(self, m: InstrMix, times: float = 1.0, *,
               function: str = "<anon>", module: str = LIBCRYPTO,
               stall: float = 1.0) -> float:
        """Charge ``times`` executions of mix ``m`` and return the cycles.

        This is the hottest non-kernel path in the model (one call per
        charged kernel invocation), so the mix's memoized per-CPU base cost
        and the accumulator appends are inlined.  The float operations and
        their order are exactly those of the out-of-line helpers, keeping
        accumulated totals bit-identical.
        """
        if m._cost_cpu is self.cpu:
            if stall <= 0:
                raise ValueError("stall_factor must be positive")
            cycles = m._cost_base * stall * times
        else:
            cycles = self.cpu.cycles(m, stall) * times
        node = self._stack[-1]
        node.exclusive_cycles += cycles
        fc = node.func_cycles
        fc[function] = fc.get(function, 0) + cycles
        mc = self.modules
        mc[module] = mc.get(module, 0) + cycles
        fs = self.functions.get(function)
        if fs is None:
            fs = self.functions[function] = FunctionStats(function, module)
        fs.cycles += cycles
        fs.calls += 1
        instr = m._total * times
        entry = (m, times)
        acc = fs.mix
        acc._pending.append(entry)
        acc._pending_total += instr
        acc = self.global_mix
        acc._pending.append(entry)
        acc._pending_total += instr
        self._cycles += cycles
        return cycles

    def charge_cycles(self, cycles: float, *, function: str = "<modelled>",
                      module: str = OTHER) -> float:
        """Charge raw modelled cycles (no instruction mix), e.g. kernel time."""
        if cycles < 0:
            raise ValueError("cannot charge negative cycles")
        node = self._stack[-1]
        node.exclusive_cycles += cycles
        node.func_cycles[function] += cycles
        self.modules[module] += cycles
        fs = self.functions.get(function)
        if fs is None:
            fs = self.functions[function] = FunctionStats(function, module)
        fs.cycles += cycles
        fs.calls += 1
        self._cycles += cycles
        return cycles

    # -- regions ------------------------------------------------------------
    @contextmanager
    def region(self, name: str) -> Iterator[RegionNode]:
        """Open a nested region; charges inside attribute to it."""
        node = self._stack[-1].child(name)
        node.entries += 1
        self._stack.append(node)
        try:
            yield node
        finally:
            popped = self._stack.pop()
            assert popped is node, "region stack corrupted"

    def now(self) -> float:
        """Virtual timestamp: total cycles charged so far (the rdtsc stand-in)."""
        return self._cycles

    def seconds(self) -> float:
        """Virtual wall-clock: charged cycles over the modelled frequency.

        This is the per-worker clock of the web-server farm -- session
        expiry and batch timeouts advance with the work a worker actually
        performed, not with host time.
        """
        return self._cycles / self.cpu.frequency_hz

    # -- results ------------------------------------------------------------
    def total_cycles(self) -> float:
        return self._cycles

    def total_instructions(self) -> float:
        return self.global_mix.total()

    def overall_cpi(self) -> float:
        instr = self.total_instructions()
        if not instr:
            return 0.0
        return self._cycles / instr

    def module_breakdown(self) -> List[Tuple[str, float, float]]:
        """``(module, cycles, share)`` rows sorted by cycles, like Table 1."""
        total = self._cycles or 1.0
        rows = sorted(self.modules.items(), key=lambda kv: -kv[1])
        return [(name, cyc, cyc / total) for name, cyc in rows]

    def function_breakdown(self, top: Optional[int] = None,
                           ) -> List[Tuple[str, float, float]]:
        """``(function, self_cycles, share)`` rows, like Oprofile / Table 8."""
        total = self._cycles or 1.0
        rows = sorted(self.functions.values(), key=lambda f: -f.cycles)
        if top is not None:
            rows = rows[:top]
        return [(f.name, f.cycles, f.cycles / total) for f in rows]

    def find_region(self, path: str) -> Optional[RegionNode]:
        """Look up a region by ``a/b/c`` path; ``None`` if never entered."""
        node = self.root
        for part in path.split("/"):
            if part not in node.children:
                return None
            node = node.children[part]
        return node

    def region_cycles(self, path: str) -> float:
        node = self.find_region(path)
        return node.inclusive_cycles() if node is not None else 0.0


# ---------------------------------------------------------------------------
# Active-profiler stack
# ---------------------------------------------------------------------------

_ACTIVE: List[Profiler] = [Profiler()]


def current() -> Profiler:
    """The profiler that instrumented code is currently charging into."""
    return _ACTIVE[-1]


@contextmanager
def activate(profiler: Profiler) -> Iterator[Profiler]:
    """Make ``profiler`` the active one for the duration of the block."""
    _ACTIVE.append(profiler)
    try:
        yield profiler
    finally:
        _ACTIVE.pop()


def reset_default(cpu: CpuModel = PENTIUM4) -> Profiler:
    """Replace the bottom-of-stack default profiler with a fresh one."""
    _ACTIVE[0] = Profiler(cpu)
    return _ACTIVE[0]


def charge(m: InstrMix, times: float = 1.0, *, function: str = "<anon>",
           module: str = LIBCRYPTO, stall: float = 1.0) -> float:
    """Charge into the active profiler (convenience wrapper)."""
    return _ACTIVE[-1].charge(m, times, function=function, module=module,
                              stall=stall)


def charge_cycles(cycles: float, *, function: str = "<modelled>",
                  module: str = OTHER) -> float:
    return _ACTIVE[-1].charge_cycles(cycles, function=function, module=module)


@contextmanager
def region(name: str) -> Iterator[RegionNode]:
    """Open a region on the active profiler (convenience wrapper)."""
    with _ACTIVE[-1].region(name) as node:
        yield node
