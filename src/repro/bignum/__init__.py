"""Multi-precision integer substrate (OpenSSL ``crypto/bn`` equivalent)."""

from .barrett import BarrettContext, mod_exp_barrett
from .bn import BigNum, mod_inverse
from .kernels import WORD_BITS, WORD_MASK
from .modexp import mod_exp, window_bits_for_exponent_size
from .montgomery import MontgomeryContext
from .product_tree import (
    ExponentNode, ExponentTree, crt_split_exponent, mod_exp_int,
)

__all__ = [
    "BarrettContext", "mod_exp_barrett",
    "BigNum", "mod_inverse", "WORD_BITS", "WORD_MASK",
    "mod_exp", "window_bits_for_exponent_size", "MontgomeryContext",
    "ExponentNode", "ExponentTree", "crt_split_exponent", "mod_exp_int",
]
