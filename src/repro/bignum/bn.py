"""Multi-precision unsigned integers over 32-bit word arrays (``BIGNUM``).

This is the arithmetic substrate of the RSA implementation.  Values are
little-endian lists of 32-bit words; the heavy operations (multiply,
square, add, subtract) charge the corresponding OpenSSL kernel names
(``bn_mul_add_words`` etc.) into the active profiler so that Table 8's flat
profile is produced by execution.  The host arithmetic itself has two
backends selected by :mod:`repro.runtime`: the faithful per-word loops of
:mod:`repro.bignum.kernels`, and a native-int fast path that packs the word
array into a Python int, performs the whole-operand operation once, and
unpacks the result -- the charges are computed from operand word counts
either way, so modeled cycles are bit-identical between backends.

Division and modular inverse are the two places where we compute via Python
integers and charge a *modelled* cost instead: they are off the hot path
(used only for Montgomery setup, blinding setup and key generation) and a
word-level Knuth-D implementation would add complexity without affecting any
reported result.  The model charges schoolbook work -- one ``bn_mul_add``-
equivalent per (quotient word x divisor word) -- under ``BN_div``.
"""

from __future__ import annotations

from typing import List, Tuple

from ..perf import charge, mix
from ..runtime import fastpath_enabled
from . import kernels as K
from .kernels import WORD_BITS, WORD_MASK

#: Per-call overhead of a top-level BN_* wrapper (argument checks, result
#: sizing, bn_expand): the "self time" Oprofile attributes to BN_uadd/BN_usub
#: and friends in Table 8.
WRAPPER_CALL = mix(pushl=3, movl=10, popl=3, call=1, ret=1, cmpl=3, jnz=3,
                   addl=2)

#: Copying one word in BN_copy (load + store + loop control).
COPY_WORD = mix(movl=2, decl=0.25, jnz=0.25)

#: Zeroizing one word in OPENSSL_cleanse (store + loop control; the real
#: routine is byte-wise but compilers vectorize to word stores).
CLEANSE_WORD = mix(movl=1, decl=0.25, jnz=0.25)


class BigNum:
    """An unsigned multi-precision integer.

    Instances are conceptually immutable: arithmetic returns new objects.
    The word list never has trailing (most-significant) zero words; zero is
    the empty list.
    """

    __slots__ = ("d",)

    def __init__(self, words: List[int] | None = None):
        self.d: List[int] = words if words is not None else []
        self._trim()

    def _trim(self) -> None:
        d = self.d
        while d and d[-1] == 0:
            d.pop()

    # -- construction -------------------------------------------------------
    @classmethod
    def from_int(cls, value: int) -> "BigNum":
        return cls(K.words_from_int(value))

    @classmethod
    def from_bytes(cls, data: bytes) -> "BigNum":
        """Interpret ``data`` as a big-endian octet string (BN_bin2bn)."""
        return cls.from_int(int.from_bytes(data, "big")) if data else cls()

    @classmethod
    def zero(cls) -> "BigNum":
        return cls()

    @classmethod
    def one(cls) -> "BigNum":
        return cls([1])

    # -- conversion -----------------------------------------------------------
    def to_int(self) -> int:
        return K.int_from_words(self.d)

    def to_bytes(self, length: int | None = None) -> bytes:
        """Big-endian octet string (BN_bn2bin), optionally left-padded."""
        value = self.to_int()
        nbytes = max(1, (self.nbits() + 7) // 8)
        if length is None:
            length = nbytes
        elif length < nbytes and value:
            raise ValueError("value does not fit in requested length")
        return value.to_bytes(length, "big")

    # -- inspection -----------------------------------------------------------
    def nwords(self) -> int:
        return len(self.d)

    def nbits(self) -> int:
        if not self.d:
            return 0
        return (len(self.d) - 1) * WORD_BITS + self.d[-1].bit_length()

    def is_zero(self) -> bool:
        return not self.d

    def is_odd(self) -> bool:
        return bool(self.d) and bool(self.d[0] & 1)

    def bit(self, i: int) -> int:
        """The ``i``-th bit (0 = least significant)."""
        w, b = divmod(i, WORD_BITS)
        if w >= len(self.d):
            return 0
        return (self.d[w] >> b) & 1

    # -- comparison -----------------------------------------------------------
    def ucmp(self, other: "BigNum") -> int:
        a, b = self.d, other.d
        if len(a) != len(b):
            return -1 if len(a) < len(b) else 1
        for i in range(len(a) - 1, -1, -1):
            if a[i] != b[i]:
                return -1 if a[i] < b[i] else 1
        return 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BigNum):
            return NotImplemented
        return self.d == other.d

    def __lt__(self, other: "BigNum") -> bool:
        return self.ucmp(other) < 0

    def __le__(self, other: "BigNum") -> bool:
        return self.ucmp(other) <= 0

    def __hash__(self) -> int:
        return hash(tuple(self.d))

    def __repr__(self) -> str:
        return f"BigNum(0x{self.to_int():x})"

    # -- arithmetic -------------------------------------------------------------
    def uadd(self, other: "BigNum") -> "BigNum":
        """Unsigned addition (BN_uadd)."""
        a, b = self.d, other.d
        if len(a) < len(b):
            a, b = b, a
        if fastpath_enabled():
            r = K.words_from_int(
                K.int_from_words(a) + K.int_from_words(b), len(a) + 1)
        else:
            n = len(b)
            r = [0] * (len(a) + 1)
            carry = K.add_words(r, a, b, n)
            for i in range(n, len(a)):
                t = a[i] + carry
                r[i] = t & WORD_MASK
                carry = t >> WORD_BITS
            r[len(a)] = carry
        charge(K.ADD_WORD, times=len(a), function="bn_add_words")
        charge(WRAPPER_CALL, function="BN_uadd")
        return BigNum(r)

    def usub(self, other: "BigNum") -> "BigNum":
        """Unsigned subtraction (BN_usub); requires ``self >= other``."""
        if self.ucmp(other) < 0:
            raise ValueError("BN_usub: would be negative")
        a, b = self.d, other.d
        n = len(a)
        if fastpath_enabled():
            r = K.words_from_int(
                K.int_from_words(a) - K.int_from_words(b), n)
        else:
            bb = b + [0] * (n - len(b))
            r = [0] * n
            borrow = K.sub_words(r, a, bb, n)
            assert borrow == 0
        charge(K.SUB_WORD, times=n, function="bn_sub_words")
        charge(WRAPPER_CALL, function="BN_usub")
        return BigNum(r)

    def mul(self, other: "BigNum") -> "BigNum":
        """Schoolbook multiplication (BN_mul over bn_mul_words/bn_mul_add_words)."""
        a, b = self.d, other.d
        if not a or not b:
            return BigNum()
        na, nb = len(a), len(b)
        if fastpath_enabled():
            r = K.words_from_int(
                K.int_from_words(a) * K.int_from_words(b), na + nb)
        else:
            r = [0] * (na + nb)
            r[na] = K.mul_words(r, 0, a, 0, na, b[0])
            for j in range(1, nb):
                r[j + na] = K.mul_add_words(r, j, a, 0, na, b[j])
        charge(K.MUL_WORD, times=na, function="bn_mul_words", stall=K.BN_STALL)
        if nb > 1:
            charge(K.MULADD_WORD, times=na * (nb - 1),
                   function="bn_mul_add_words", stall=K.BN_STALL)
        charge(K.KERNEL_CALL, times=nb, function="bn_mul_add_words")
        charge(WRAPPER_CALL, function="BN_mul")
        return BigNum(r)

    def sqr(self) -> "BigNum":
        """Squaring (BN_sqr).

        Uses the classic split into cross terms (computed once and doubled)
        plus the diagonal squares -- roughly half the multiplies of a general
        product, exactly as OpenSSL's ``bn_sqr`` routines do.  The diagonal
        pass is charged as ``bn_sqr_words``, the cross terms as
        ``bn_mul_add_words``.
        """
        a = self.d
        n = len(a)
        if not n:
            return BigNum()
        if fastpath_enabled():
            v = K.int_from_words(a)
            r = K.words_from_int(v * v, 2 * n)
        else:
            r = [0] * (2 * n)
            # Cross terms: r[2i+1 ...] += a[i] * a[i+1 .. n-1].
            for i in range(n - 1):
                c = K.mul_add_words(r, 2 * i + 1, a, i + 1, n - 1 - i, a[i])
                K.propagate_carry(r, i + n, c)
            # Double the cross terms (one shift-through-carry pass).
            carry = 0
            for i in range(2 * n):
                t = (r[i] << 1) | carry
                r[i] = t & WORD_MASK
                carry = t >> WORD_BITS
            # Add the diagonal a[i]^2 terms.
            for i in range(n):
                t = a[i] * a[i] + r[2 * i]
                r[2 * i] = t & WORD_MASK
                c = (t >> WORD_BITS) + r[2 * i + 1]
                r[2 * i + 1] = c & WORD_MASK
                K.propagate_carry(r, 2 * i + 2, c >> WORD_BITS)
        cross = n * (n - 1) // 2
        if cross:
            charge(K.MULADD_WORD, times=cross, function="bn_mul_add_words",
                   stall=K.BN_STALL)
        charge(K.ADD_WORD, times=2 * n, function="bn_add_words")
        charge(K.MUL_WORD, times=n, function="bn_sqr_words",
               stall=K.BN_STALL)
        charge(K.KERNEL_CALL, times=n, function="bn_mul_add_words")
        charge(WRAPPER_CALL, function="BN_sqr")
        return BigNum(r)

    def copy(self) -> "BigNum":
        """BN_copy."""
        charge(COPY_WORD, times=max(1, len(self.d)), function="BN_copy")
        return BigNum(list(self.d))

    def cleanse(self) -> None:
        """Zeroize the words (OPENSSL_cleanse); used on secret temporaries."""
        charge(CLEANSE_WORD, times=max(1, len(self.d)),
               function="OPENSSL_cleanse")
        for i in range(len(self.d)):
            self.d[i] = 0
        self.d.clear()

    # -- division (modelled cost; see module docstring) -------------------------
    def divmod(self, divisor: "BigNum") -> Tuple["BigNum", "BigNum"]:
        """Quotient and remainder (BN_div)."""
        if divisor.is_zero():
            raise ZeroDivisionError("BN_div: division by zero")
        q, r = divmod(self.to_int(), divisor.to_int())
        q_words = max(1, len(self.d) - len(divisor.d) + 1)
        charge(K.MULADD_WORD, times=q_words * max(1, len(divisor.d)),
               function="BN_div", stall=K.BN_STALL)
        charge(WRAPPER_CALL, function="BN_div")
        return BigNum.from_int(q), BigNum.from_int(r)

    def mod(self, modulus: "BigNum") -> "BigNum":
        """Remainder (BN_mod); fast path when already reduced."""
        if self.ucmp(modulus) < 0:
            charge(WRAPPER_CALL, function="BN_div")
            return BigNum(list(self.d))
        return self.divmod(modulus)[1]

    # -- shifts -------------------------------------------------------------------
    def lshift_words(self, k: int) -> "BigNum":
        if not self.d:
            return BigNum()
        charge(COPY_WORD, times=len(self.d) + k, function="BN_lshift")
        return BigNum([0] * k + list(self.d))

    def rshift_words(self, k: int) -> "BigNum":
        charge(COPY_WORD, times=max(1, len(self.d) - k), function="BN_rshift")
        return BigNum(list(self.d[k:]))

    def mask_words(self, k: int) -> "BigNum":
        """Value modulo 2**(32*k) (BN_mask_bits at a word boundary)."""
        charge(COPY_WORD, times=min(len(self.d), k), function="BN_mask_bits")
        return BigNum(list(self.d[:k]))


def mod_inverse(a: BigNum, m: BigNum) -> BigNum:
    """Modular inverse (BN_mod_inverse).

    Used off the hot path (Montgomery n0', blinding setup, key generation),
    so it computes with Python integers and charges a modelled cost: the
    binary extended-gcd performs O(bits) word-vector add/sub passes.
    """
    ai, mi = a.to_int(), m.to_int()
    if mi <= 0:
        raise ValueError("modulus must be positive")
    g, x = _ext_gcd(ai % mi, mi)
    if g != 1:
        raise ValueError("no modular inverse: operands not coprime")
    nwords = max(1, m.nwords())
    # ~2 add/sub vector passes per bit of the modulus.
    charge(K.SUB_WORD, times=2 * m.nbits() * nwords / WORD_BITS * 2,
           function="BN_mod_inverse")
    charge(WRAPPER_CALL, function="BN_mod_inverse")
    return BigNum.from_int(x % mi)


def _ext_gcd(a: int, b: int) -> Tuple[int, int]:
    """Return ``(gcd(a, b), x)`` with ``a*x == gcd (mod b)``."""
    old_r, r = a, b
    old_s, s = 1, 0
    while r:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
    return old_r, old_s
