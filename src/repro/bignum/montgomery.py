"""Montgomery modular arithmetic (``BN_MONT_CTX``).

RSA's modular exponentiation spends essentially all of its time in Montgomery
multiplications; the paper's Table 8 attributes RSA decryption to
``bn_mul_add_words`` (the multiply and reduction inner loops),
``bn_sub_words`` (the final conditional subtraction, executed unconditionally
with a select to blunt timing channels), and ``BN_from_montgomery`` (the
reduction bookkeeping).

Two reduction strategies are provided, both executing over the real word
kernels of :mod:`repro.bignum.kernels`:

* ``"interleaved"`` (default): the modern word-by-word CIOS-style reduction,
  n^2 single-precision multiplies per reduction (2n^2 per modular product
  including the multiplication itself);

* ``"separate"``: the strategy of the OpenSSL 0.9.7d the paper profiled --
  ``BN_from_montgomery`` there computed ``t2 = (t mod R) * Ni mod R`` and
  ``t3 = t2 * n`` as two further full multi-precision products before the
  shift and conditional subtract, i.e. ~3n^2 multiplies per modular
  product.  Selecting this mode reproduces the paper's *absolute* RSA cycle
  counts (Table 7's 6.04M for 1024-bit); the interleaved mode is ~2/3 of
  that.  The ablation benchmark compares both.
"""

from __future__ import annotations

from typing import List

from ..perf import charge, mix
from ..runtime import fastpath_enabled
from . import kernels as K
from .bn import WRAPPER_CALL, BigNum
from .kernels import WORD_BITS, WORD_MASK

#: Per-word bookkeeping inside BN_from_montgomery: load t[i], multiply by n0,
#: mask to a word, loop control -- the reduction work that is *not* the
#: bn_mul_add_words inner loop.
FROM_MONT_WORD = mix(movl=2, mull=1, andl=1, addl=1, decl=0.5, jnz=0.5)

#: One-time context setup (computing n0' by Newton iteration on one word and
#: sizing buffers); RR is computed separately via BN_div.
MONT_SETUP = mix(movl=30, mull=10, subl=10, andl=10, pushl=4, popl=4,
                 call=2, ret=2)


def _word_inverse(w0: int) -> int:
    """``w0^{-1} mod 2**32`` for odd ``w0``, by Newton/Hensel lifting."""
    if not w0 & 1:
        raise ValueError("Montgomery modulus must be odd")
    inv = w0  # correct to 3 bits
    for _ in range(5):  # doubles correct bits each round: 3->6->12->24->48
        inv = (inv * (2 - w0 * inv)) & WORD_MASK
    return inv


REDUCTION_STYLES = ("interleaved", "separate")


class MontgomeryContext:
    """Precomputed state for repeated multiplication modulo one odd modulus."""

    def __init__(self, modulus: BigNum, reduction: str = "interleaved"):
        if modulus.is_zero() or not modulus.is_odd():
            raise ValueError("Montgomery arithmetic requires an odd modulus")
        if reduction not in REDUCTION_STYLES:
            raise ValueError(f"unknown reduction style {reduction!r}; "
                             f"choose from {REDUCTION_STYLES}")
        self.n = modulus
        self.reduction = reduction
        self.nwords = modulus.nwords()
        self._n_padded: List[int] = list(modulus.d)
        self.n0 = (-_word_inverse(modulus.d[0])) & WORD_MASK
        # Native-int mirrors for the fast-path REDC (uncharged bookkeeping:
        # the modeled setup cost below is identical with or without them).
        self._n_int = modulus.to_int()
        self._r_mask = (1 << (self.nwords * WORD_BITS)) - 1
        self._ni_int = (-pow(self._n_int, -1, self._r_mask + 1)) & self._r_mask
        charge(MONT_SETUP, function="BN_MONT_CTX_set")
        # RR = R^2 mod n with R = 2^(32 * nwords); via BN_div (off hot path).
        r2 = BigNum.from_int(1 << (2 * self.nwords * WORD_BITS))
        self.rr = r2.mod(modulus)
        self._ni: BigNum | None = None  # -n^{-1} mod R, for "separate" mode

    def _full_inverse(self) -> BigNum:
        """``-n^{-1} mod R`` (0.9.7's BN_MONT_CTX Ni), computed lazily."""
        if self._ni is None:
            from .bn import mod_inverse
            r_mod = BigNum.from_int(1 << (self.nwords * WORD_BITS))
            inv = mod_inverse(self.n, r_mod)
            self._ni = r_mod.usub(inv) if not inv.is_zero() else inv
        return self._ni

    # -- core reduction -------------------------------------------------------
    def _reduce(self, t: List[int]) -> BigNum:
        """Montgomery-reduce a (<= 2n+1)-word value; returns ``t/R mod n``."""
        if self.reduction == "separate":
            return self._reduce_separate(t)
        return self._reduce_interleaved(t)

    def _reduce_interleaved(self, t: List[int]) -> BigNum:
        n = self.nwords
        if fastpath_enabled():
            # Whole-operand REDC: m = (t mod R) * (-n^{-1} mod R) mod R,
            # r = (t + m*n) / R.  Word-serial CIOS computes exactly this
            # value (standard Montgomery equivalence), so results -- and the
            # unconditional subtract-and-select below -- are bit-identical.
            t_int = K.int_from_words(t)
            m = ((t_int & self._r_mask) * self._ni_int) & self._r_mask
            r_val = (t_int + m * self._n_int) >> (n * WORD_BITS)
            charge(K.MULADD_WORD, times=n * n, function="bn_mul_add_words",
                   stall=K.BN_STALL)
            charge(FROM_MONT_WORD, times=n, function="BN_from_montgomery",
                   stall=K.BN_STALL)
            charge(WRAPPER_CALL, function="BN_from_montgomery")
            charge(K.SUB_WORD, times=n, function="bn_sub_words")
            charge(K.KERNEL_CALL, function="bn_sub_words")
            if r_val >= self._n_int:
                r_val -= self._n_int
            return BigNum(K.words_from_int(r_val, n))
        need = 2 * n + 1
        if len(t) < need:
            t.extend([0] * (need - len(t)))
        npad = self._n_padded
        n0 = self.n0
        for i in range(n):
            m = (t[i] * n0) & WORD_MASK
            c = K.mul_add_words(t, i, npad, 0, n, m)
            c = K.propagate_carry(t, i + n, c)
            assert c == 0, "reduction carry escaped the buffer"
        charge(K.MULADD_WORD, times=n * n, function="bn_mul_add_words",
               stall=K.BN_STALL)
        charge(FROM_MONT_WORD, times=n, function="BN_from_montgomery",
               stall=K.BN_STALL)
        charge(WRAPPER_CALL, function="BN_from_montgomery")
        # r = t / R; then unconditionally compute r - n and select, so the
        # subtraction cost is paid on every reduction (as in the profiled
        # library, where it contributes bn_sub_words self-time).
        r = t[n:2 * n]
        extra = t[2 * n]
        diff = [0] * n
        borrow = K.sub_words(diff, r, npad, n)
        charge(K.SUB_WORD, times=n, function="bn_sub_words")
        charge(K.KERNEL_CALL, function="bn_sub_words")
        if extra or not borrow:
            return BigNum(diff)
        return BigNum(list(r))

    def _reduce_separate(self, t: List[int]) -> BigNum:
        """OpenSSL 0.9.7-style reduction: two extra full multiplications.

        ``t2 = (t mod R) * Ni mod R``, ``t3 = t2 * n``, result
        ``(t + t3) / R`` with a final conditional subtract.  Both products
        run through BigNum.mul, so their bn_mul_add_words work is charged
        by real execution; the masking/shifting bookkeeping is the
        BN_from_montgomery self-time.
        """
        n = self.nwords
        value = BigNum(list(t))
        t1 = value.mask_words(n)                      # t mod R
        t2 = t1.mul(self._full_inverse()).mask_words(n)
        t3 = t2.mul(self.n)
        summed = value.uadd(t3)
        r = summed.rshift_words(n)                    # exact: low part == 0
        charge(FROM_MONT_WORD, times=n, function="BN_from_montgomery",
               stall=K.BN_STALL)
        charge(WRAPPER_CALL, function="BN_from_montgomery")
        rp = list(r.d) + [0] * (n + 1 - len(r.d))
        diff = [0] * n
        borrow = K.sub_words(diff, rp, self._n_padded, n)
        charge(K.SUB_WORD, times=n, function="bn_sub_words")
        charge(K.KERNEL_CALL, function="bn_sub_words")
        if rp[n] or not borrow:
            return BigNum(diff)
        return BigNum(rp[:n])

    # -- native-int fast path ---------------------------------------------------
    # These operate on Python ints end to end: the double-width product never
    # becomes a word array, skipping the pack/unpack round trips that
    # ``BigNum.mul``/``BigNum.sqr`` + ``_reduce`` would perform.  Every charge
    # is the exact sequence (mixes, times, order) the faithful word-array path
    # emits: each one is determined by operand word counts, and for a trimmed
    # BigNum ``len(d) == ceil(bit_length / 32)``, so computing the counts from
    # ``int.bit_length`` keeps modeled cycles and instruction mixes
    # bit-identical between backends.

    def _redc_int(self, t: int) -> int:
        """Whole-operand REDC; charges match ``_reduce_interleaved``."""
        n = self.nwords
        m = ((t & self._r_mask) * self._ni_int) & self._r_mask
        r_val = (t + m * self._n_int) >> (n * WORD_BITS)
        charge(K.MULADD_WORD, times=n * n, function="bn_mul_add_words",
               stall=K.BN_STALL)
        charge(FROM_MONT_WORD, times=n, function="BN_from_montgomery",
               stall=K.BN_STALL)
        charge(WRAPPER_CALL, function="BN_from_montgomery")
        charge(K.SUB_WORD, times=n, function="bn_sub_words")
        charge(K.KERNEL_CALL, function="bn_sub_words")
        if r_val >= self._n_int:
            r_val -= self._n_int
        return r_val

    def mont_mul_int(self, a_int: int, b_int: int) -> int:
        """``a * b / R mod n`` on ints; charges match ``BigNum.mul`` + REDC."""
        na = (a_int.bit_length() + WORD_BITS - 1) // WORD_BITS
        nb = (b_int.bit_length() + WORD_BITS - 1) // WORD_BITS
        if na and nb:
            t = a_int * b_int
            charge(K.MUL_WORD, times=na, function="bn_mul_words",
                   stall=K.BN_STALL)
            if nb > 1:
                charge(K.MULADD_WORD, times=na * (nb - 1),
                       function="bn_mul_add_words", stall=K.BN_STALL)
            charge(K.KERNEL_CALL, times=nb, function="bn_mul_add_words")
            charge(WRAPPER_CALL, function="BN_mul")
        else:
            t = 0
        return self._redc_int(t)

    def mont_sqr_int(self, a_int: int) -> int:
        """Montgomery square on ints; charges match ``BigNum.sqr`` + REDC."""
        na = (a_int.bit_length() + WORD_BITS - 1) // WORD_BITS
        if na:
            t = a_int * a_int
            cross = na * (na - 1) // 2
            if cross:
                charge(K.MULADD_WORD, times=cross,
                       function="bn_mul_add_words", stall=K.BN_STALL)
            charge(K.ADD_WORD, times=2 * na, function="bn_add_words")
            charge(K.MUL_WORD, times=na, function="bn_sqr_words",
                   stall=K.BN_STALL)
            charge(K.KERNEL_CALL, times=na, function="bn_mul_add_words")
            charge(WRAPPER_CALL, function="BN_sqr")
        else:
            t = 0
        return self._redc_int(t)

    def _mont_int(self, a: BigNum, b: BigNum | None) -> BigNum:
        """BigNum facade over the int fast path (one pack/unpack at the rim)."""
        if b is None:
            r_val = self.mont_sqr_int(K.int_from_words(a.d))
        else:
            r_val = self.mont_mul_int(K.int_from_words(a.d),
                                      K.int_from_words(b.d))
        return BigNum(K.words_from_int(r_val, self.nwords))

    # -- public operations -------------------------------------------------------
    def mul(self, a: BigNum, b: BigNum) -> BigNum:
        """``a * b / R mod n`` for Montgomery-form inputs (BN_mod_mul_montgomery)."""
        if self.reduction == "interleaved" and fastpath_enabled():
            return self._mont_int(a, b)
        t_bn = a.mul(b)
        return self._reduce(list(t_bn.d))

    def sqr(self, a: BigNum) -> BigNum:
        """Montgomery square; routes through BN_sqr like the profiled library."""
        if self.reduction == "interleaved" and fastpath_enabled():
            return self._mont_int(a, None)
        t_bn = a.sqr()
        return self._reduce(list(t_bn.d))

    def to_mont(self, a: BigNum) -> BigNum:
        """Convert into Montgomery form: ``a * R mod n``."""
        reduced = a.mod(self.n)
        return self.mul(reduced, self.rr)

    def from_mont(self, a: BigNum) -> BigNum:
        """Convert out of Montgomery form: ``a / R mod n``."""
        return self._reduce(list(a.d))

    def one(self) -> BigNum:
        """``R mod n`` -- the Montgomery form of 1."""
        return self.to_mont(BigNum.one())
