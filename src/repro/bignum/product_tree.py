"""Product/remainder-tree kernels for batch RSA (Fiat; Shacham-Boneh).

Batch RSA amortizes one full-width private exponentiation across ``b``
ciphertexts encrypted under the *same modulus* but *distinct, pairwise
coprime* small public exponents.  The algorithm percolates values up and
down a binary tree whose leaves are the batch members; every internal node
carries the product of the public exponents beneath it.  This module holds
the arithmetic scaffolding shared by :mod:`repro.crypto.batch_rsa`:

* :class:`ExponentTree` -- the binary product tree over the small public
  exponents (the node products are plain machine integers: even a batch of
  eight primes up to 23 multiplies out to ~27 bits);
* :func:`crt_split_exponent` -- the per-node CRT exponent ``X`` with
  ``X = 0 (mod E_L)`` and ``X = 1 (mod E_R)`` used by the downward
  percolation to split a product of plaintexts;
* :func:`mod_exp_int` -- modular exponentiation by a small machine-integer
  exponent, the workhorse of both percolation phases (every charge flows
  through the genuine :func:`repro.bignum.modexp.mod_exp` kernels).
"""

from __future__ import annotations

from math import gcd
from typing import List, Optional, Sequence

from ..perf import charge, mix
from .bn import BigNum
from .modexp import mod_exp
from .montgomery import MontgomeryContext

#: Per-node bookkeeping of the batch trees (pointer chasing, small-integer
#: products, CRT on machine words) -- trivial next to the modular work.
TREE_NODE = mix(movl=24, addl=6, cmpl=8, jnz=8, pushl=4, popl=4, call=2,
                ret=2)


class ExponentNode:
    """One node of the exponent product tree."""

    __slots__ = ("product", "left", "right", "index")

    def __init__(self, product: int, left: Optional["ExponentNode"] = None,
                 right: Optional["ExponentNode"] = None,
                 index: Optional[int] = None):
        self.product = product
        self.left = left
        self.right = right
        self.index = index  # leaf position in the batch, None for inner nodes

    @property
    def is_leaf(self) -> bool:
        return self.left is None

    def leaves(self) -> List["ExponentNode"]:
        if self.is_leaf:
            return [self]
        return self.left.leaves() + self.right.leaves()


class ExponentTree:
    """Binary product tree over a batch's small public exponents.

    The leaf order is the batch order; each internal node's ``product`` is
    the product of the exponents below it, so ``root.product`` is the batch
    public exponent ``E = prod e_i``.
    """

    def __init__(self, exponents: Sequence[int]):
        if not exponents:
            raise ValueError("exponent tree needs at least one exponent")
        for e in exponents:
            if e < 3 or e % 2 == 0:
                raise ValueError(f"batch exponents must be odd and >= 3: {e}")
        for i, a in enumerate(exponents):
            for b in exponents[i + 1:]:
                if gcd(a, b) != 1:
                    raise ValueError(
                        f"batch exponents must be pairwise coprime: {a}, {b}")
        self.exponents = list(exponents)
        leaves = [ExponentNode(e, index=i) for i, e in enumerate(exponents)]
        charge(TREE_NODE, times=max(1, 2 * len(leaves) - 1),
               function="batch_tree_build")
        self.root = self._build(leaves)

    @staticmethod
    def _build(nodes: List[ExponentNode]) -> ExponentNode:
        while len(nodes) > 1:
            paired: List[ExponentNode] = []
            for i in range(0, len(nodes) - 1, 2):
                left, right = nodes[i], nodes[i + 1]
                paired.append(ExponentNode(left.product * right.product,
                                           left, right))
            if len(nodes) % 2:
                paired.append(nodes[-1])
            nodes = paired
        return nodes[0]

    def __len__(self) -> int:
        return len(self.exponents)


def crt_split_exponent(e_left: int, e_right: int) -> int:
    """The smallest ``X > 0`` with ``X = 0 (mod e_left)``, ``X = 1 (mod
    e_right)``.

    This is the exponent the downward percolation raises a node's plaintext
    product to in order to isolate the right subtree's share; both moduli
    are small machine integers, so the CRT runs on native words.
    """
    if gcd(e_left, e_right) != 1:
        raise ValueError("CRT split needs coprime exponents")
    charge(TREE_NODE, function="batch_tree_crt")
    # X = e_left * (e_left^-1 mod e_right); X < e_left * e_right.
    inv = pow(e_left, -1, e_right)
    return e_left * inv


def mod_exp_int(base: BigNum, exponent: int, modulus: BigNum,
                mont: Optional[MontgomeryContext] = None) -> BigNum:
    """``base ** exponent mod modulus`` for a small non-negative machine
    integer exponent (the percolation steps of batch RSA)."""
    if exponent < 0:
        raise ValueError("mod_exp_int requires a non-negative exponent")
    if exponent == 0:
        return BigNum.one().mod(modulus)
    if exponent == 1:
        return base.mod(modulus)
    return mod_exp(base, BigNum.from_int(exponent), modulus, mont)
