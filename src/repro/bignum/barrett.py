"""Barrett reduction (OpenSSL's ``BN_RECP_CTX`` family).

The era library kept two modular-multiplication strategies: Montgomery for
odd moduli (the RSA hot path the paper profiles) and a reciprocal/Barrett
method otherwise.  This module supplies the Barrett side so the ablation
benchmark can show *why* Montgomery owns the RSA numbers: Barrett needs the
equivalent of three n-word products per modular multiplication against
Montgomery's interleaved two, and its quotient estimate costs a wide
multiply by the precomputed reciprocal.

Implementation note: real Barrett implementations truncate the two
estimate products; ours computes full products through the instrumented
BigNum multiply (charging the full schoolbook work), which matches the
classic generic (non-truncated) formulation and keeps the accounting
honest about what this code actually executes.
"""

from __future__ import annotations

from ..perf import charge, mix
from .bn import WRAPPER_CALL, BigNum
from .kernels import WORD_BITS
from .modexp import EXP_BIT_SCAN, window_bits_for_exponent_size

#: Barrett bookkeeping per reduction (shifts, compare/correct loop).
BARRETT_FIXUP = mix(movl=12, subl=4, cmpl=4, jnz=4, addl=2)


class BarrettContext:
    """Precomputed reciprocal for repeated reduction modulo ``m``."""

    def __init__(self, modulus: BigNum):
        if modulus.is_zero():
            raise ValueError("modulus must be non-zero")
        if modulus.nwords() < 1:
            raise ValueError("modulus too small")
        self.m = modulus
        self.k = modulus.nwords()
        # mu = floor(R^2 / m) with R = 2^(32k); via BN_div (setup only).
        r2 = BigNum.from_int(1 << (2 * self.k * WORD_BITS))
        self.mu, _ = r2.divmod(modulus)

    def reduce(self, x: BigNum) -> BigNum:
        """``x mod m`` for ``0 <= x < m^2`` (the Barrett estimate + fixup)."""
        k = self.k
        if x.ucmp(self.m) < 0:
            charge(WRAPPER_CALL, function="BN_mod_mul_reciprocal")
            return BigNum(list(x.d))
        # q = floor( floor(x / R^{k-1}) * mu / R^{k+1} )
        q1 = x.rshift_words(k - 1)
        q2 = q1.mul(self.mu)
        q = q2.rshift_words(k + 1)
        # q underestimates the true quotient by at most 2, so x - q*m is
        # non-negative and < 3m; no modular wraparound is involved.
        r = x.usub(q.mul(self.m))
        charge(BARRETT_FIXUP, function="BN_mod_mul_reciprocal")
        # The estimate is off by at most 2.
        guard = 0
        while r.ucmp(self.m) >= 0:
            r = r.usub(self.m)
            guard += 1
            if guard > 3:
                raise AssertionError("Barrett estimate out of bounds")
        return r

    def mod_mul(self, a: BigNum, b: BigNum) -> BigNum:
        """``a * b mod m`` via one product and one Barrett reduction."""
        return self.reduce(a.mul(b))


def mod_exp_barrett(base: BigNum, exponent: BigNum,
                    modulus: BigNum) -> BigNum:
    """Sliding-window exponentiation over Barrett arithmetic.

    Works for *any* modulus (unlike Montgomery's odd-only requirement);
    the trade is more multiply work per step, which the ablation
    benchmark quantifies.
    """
    ctx = BarrettContext(modulus)
    bits = exponent.nbits()
    if bits == 0:
        return BigNum.one().mod(modulus)
    wsize = window_bits_for_exponent_size(bits)
    charge(EXP_BIT_SCAN, times=bits, function="BN_mod_exp_recp")

    table = [base.mod(modulus)]
    if wsize > 1:
        base_sq = ctx.mod_mul(table[0], table[0])
        for _ in range(1, 1 << (wsize - 1)):
            table.append(ctx.mod_mul(table[-1], base_sq))

    acc = BigNum.one()
    started = False
    i = bits - 1
    while i >= 0:
        if exponent.bit(i) == 0:
            if started:
                acc = ctx.mod_mul(acc, acc)
            i -= 1
            continue
        j = max(i - wsize + 1, 0)
        while exponent.bit(j) == 0:
            j += 1
        value = 0
        for k in range(i, j - 1, -1):
            value = (value << 1) | exponent.bit(k)
        if started:
            for _ in range(i - j + 1):
                acc = ctx.mod_mul(acc, acc)
            acc = ctx.mod_mul(acc, table[(value - 1) >> 1])
        else:
            acc = table[(value - 1) >> 1]
            started = True
        i = j - 1
    return acc
