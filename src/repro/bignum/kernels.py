"""Word-level multi-precision kernels (OpenSSL's ``bn_asm`` equivalents).

The paper's RSA analysis bottoms out in a handful of tiny word-array loops:
``bn_mul_add_words`` alone is 47% of RSA decryption time (Table 8), and Table
9 prints the exact nine x86 instructions of its inner loop.  This module
implements those loops over little-endian arrays of 32-bit words and declares,
for each, the instruction mix of one loop iteration.

The compute functions here are *uncharged* -- they only do arithmetic.
Callers (:mod:`repro.bignum.bn`, :mod:`repro.bignum.montgomery`) batch-charge
the per-word mixes via :mod:`repro.perf` under the OpenSSL kernel names so
that the function-level profile of Table 8 falls out of real execution
without a per-word accounting penalty.
"""

from __future__ import annotations

import struct
from typing import List

from ..perf import mix

#: Bits per word.  The paper's machine is IA-32; OpenSSL's generic x86 path
#: uses 32-bit limbs, which is also what Table 9's ``mull`` implies.
WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
WORD_BASE = 1 << WORD_BITS

# ---------------------------------------------------------------------------
# Instruction mixes (per processed word unless stated otherwise)
# ---------------------------------------------------------------------------

#: One iteration of ``bn_mul_add_words`` -- exactly the nine instructions of
#: Table 9: four ``movl`` (load a[i], load r[i], store r[i], carry move), one
#: ``mull``, two ``addl`` and two ``adcl`` -- plus amortized loop control
#: (the x86 implementation is unrolled 4x: one ``leal``-style pointer bump,
#: ``decl`` and ``jnz`` shared across four words).
MULADD_WORD = mix(movl=4, mull=1, addl=2, adcl=2, leal=0.5, decl=0.25, jnz=0.25)

#: One iteration of ``bn_mul_words`` (r[i] = a[i]*w + c): one load, one
#: multiply, carry add, store, carry move; same amortized loop control.
MUL_WORD = mix(movl=3, mull=1, addl=1, adcl=1, leal=0.5, decl=0.25, jnz=0.25)

#: One iteration of ``bn_add_words``: load a, add b from memory with carry,
#: store; amortized loop control.
ADD_WORD = mix(movl=2, adcl=1, addl=0.25, leal=0.5, decl=0.25, jnz=0.25)

#: One iteration of ``bn_sub_words`` (subtract with borrow).
SUB_WORD = mix(movl=2, sbbl=1, subl=0.25, leal=0.5, decl=0.25, jnz=0.25)

#: Per-call prologue/epilogue of any bn_* kernel: stack frame, argument
#: loads, return.  Charged once per kernel invocation by the callers.
KERNEL_CALL = mix(pushl=3, movl=5, popl=3, ret=1, call=1, cmpl=1, jnz=1)

#: Dependency-stall factor for the bignum kernels.  The ``mull`` result feeds
#: an add-with-carry chain (Table 9), but the four-way unrolled loop exposes
#: independent multiplies, so the out-of-order core hides most of the chain;
#: a small residual stall remains.
BN_STALL = 1.05


# ---------------------------------------------------------------------------
# Compute kernels (uncharged)
# ---------------------------------------------------------------------------

def mul_add_words(r: List[int], roff: int, a: List[int], aoff: int,
                  n: int, w: int) -> int:
    """``r[roff:roff+n] += a[aoff:aoff+n] * w``; returns the carry word(s).

    The returned carry may exceed one word only if inputs violate the 32-bit
    invariant; with valid inputs it is a single word.
    """
    c = 0
    for i in range(n):
        t = a[aoff + i] * w + r[roff + i] + c
        r[roff + i] = t & WORD_MASK
        c = t >> WORD_BITS
    return c


def mul_words(r: List[int], roff: int, a: List[int], aoff: int,
              n: int, w: int) -> int:
    """``r[roff:roff+n] = a[aoff:aoff+n] * w``; returns the carry word."""
    c = 0
    for i in range(n):
        t = a[aoff + i] * w + c
        r[roff + i] = t & WORD_MASK
        c = t >> WORD_BITS
    return c


def add_words(r: List[int], a: List[int], b: List[int], n: int) -> int:
    """``r[:n] = a[:n] + b[:n]``; returns the final carry (0 or 1)."""
    c = 0
    for i in range(n):
        t = a[i] + b[i] + c
        r[i] = t & WORD_MASK
        c = t >> WORD_BITS
    return c


def sub_words(r: List[int], a: List[int], b: List[int], n: int) -> int:
    """``r[:n] = a[:n] - b[:n]``; returns the final borrow (0 or 1)."""
    brw = 0
    for i in range(n):
        t = a[i] - b[i] - brw
        if t < 0:
            t += WORD_BASE
            brw = 1
        else:
            brw = 0
        r[i] = t
    return brw


def propagate_carry(r: List[int], start: int, carry: int) -> int:
    """Add ``carry`` into ``r`` at ``start``, rippling upward.

    Returns any carry that falls off the end of the array.
    """
    i = start
    n = len(r)
    while carry and i < n:
        t = r[i] + carry
        r[i] = t & WORD_MASK
        carry = t >> WORD_BITS
        i += 1
    return carry


def words_from_int(value: int, nwords: int | None = None) -> List[int]:
    """Little-endian 32-bit words of ``value`` (padded to ``nwords`` if given).

    Packs through ``int.to_bytes`` + ``struct`` rather than a shift loop:
    this conversion is pure (uncharged) bookkeeping at the fast/faithful
    backend boundary, so it always takes the quick route.
    """
    if value < 0:
        raise ValueError("bignum words are unsigned")
    if value:
        count = (value.bit_length() + WORD_BITS - 1) // WORD_BITS
        out = list(struct.unpack(f"<{count}I",
                                 value.to_bytes(4 * count, "little")))
        while out and out[-1] == 0:  # cannot happen, but mirror the contract
            out.pop()
    else:
        out = []
    if nwords is not None:
        if len(out) > nwords:
            raise ValueError("value does not fit in requested word count")
        out.extend([0] * (nwords - len(out)))
    return out


def int_from_words(words: List[int]) -> int:
    try:
        return int.from_bytes(
            struct.pack(f"<{len(words)}I", *words), "little")
    except struct.error:
        # Out-of-range entries (callers probing invariants): the reference
        # shift/OR accumulation accepts any ints.
        value = 0
        for w in reversed(words):
            value = (value << WORD_BITS) | w
        return value
