"""Sliding-window Montgomery modular exponentiation (``BN_mod_exp_mont``).

This is "step 4: RSA computation" of Table 7 -- 97-99% of an RSA private
operation.  The implementation mirrors OpenSSL's: a window size chosen from
the exponent length, a table of odd powers in Montgomery form, and a
square-and-multiply scan of the exponent.
"""

from __future__ import annotations

from ..perf import charge, mix
from ..runtime import fastpath_enabled
from .bn import BigNum
from .kernels import words_from_int
from .montgomery import MontgomeryContext

#: Per-exponent-bit scan overhead in BN_mod_exp_mont (bit extraction, window
#: assembly, branches) -- small next to the Montgomery multiplications.
EXP_BIT_SCAN = mix(movl=3, shrl=1, andl=1, cmpl=1, jnz=1)


def window_bits_for_exponent_size(bits: int) -> int:
    """OpenSSL's ``BN_window_bits_for_exponent_size`` thresholds."""
    if bits > 671:
        return 6
    if bits > 239:
        return 5
    if bits > 79:
        return 4
    if bits > 23:
        return 3
    return 1


def mod_exp(base: BigNum, exponent: BigNum, modulus: BigNum,
            mont: MontgomeryContext | None = None) -> BigNum:
    """``base ** exponent mod modulus`` for an odd modulus.

    A precomputed :class:`MontgomeryContext` for ``modulus`` may be supplied
    (RSA keys cache one per prime); otherwise one is built on the fly.
    """
    if modulus.is_zero() or not modulus.is_odd():
        raise ValueError("mod_exp requires an odd modulus")
    if mont is None:
        mont = MontgomeryContext(modulus)
    elif mont.n != modulus:
        raise ValueError("Montgomery context does not match modulus")

    bits = exponent.nbits()
    if bits == 0:
        return BigNum.one().mod(modulus)

    wsize = window_bits_for_exponent_size(bits)
    charge(EXP_BIT_SCAN, times=bits, function="BN_mod_exp_mont")

    if mont.reduction == "interleaved" and fastpath_enabled():
        return _mod_exp_int(base, exponent, mont, bits, wsize)

    # Precompute odd powers: table[i] = base^(2i+1) in Montgomery form.
    table = [mont.to_mont(base)]
    if wsize > 1:
        base_sq = mont.sqr(table[0])
        for _ in range(1, 1 << (wsize - 1)):
            table.append(mont.mul(table[-1], base_sq))

    acc = mont.one()
    started = False  # skip leading squarings of 1
    i = bits - 1
    while i >= 0:
        if exponent.bit(i) == 0:
            if started:
                acc = mont.sqr(acc)
            i -= 1
            continue
        # Take the longest window [j..i] that starts and ends with a set bit.
        j = max(i - wsize + 1, 0)
        while exponent.bit(j) == 0:
            j += 1
        value = 0
        for k in range(i, j - 1, -1):
            value = (value << 1) | exponent.bit(k)
        if started:
            for _ in range(i - j + 1):
                acc = mont.sqr(acc)
            acc = mont.mul(acc, table[(value - 1) >> 1])
        else:
            acc = table[(value - 1) >> 1]
            started = True
        i = j - 1

    return mont.from_mont(acc)


def _mod_exp_int(base: BigNum, exponent: BigNum, mont: MontgomeryContext,
                 bits: int, wsize: int) -> BigNum:
    """Fast-path exponentiation loop holding intermediates as native ints.

    Mirrors the window scan above statement for statement; the only change
    is representation.  ``to_mont``/``one`` still run through the BigNum
    entry points (once each), and the per-iteration Montgomery operations
    use the int kernels whose charges are bit-identical to the word-array
    path, so the modeled cost of an exponentiation is unchanged.
    """
    table = [mont.to_mont(base).to_int()]
    if wsize > 1:
        base_sq = mont.mont_sqr_int(table[0])
        for _ in range(1, 1 << (wsize - 1)):
            table.append(mont.mont_mul_int(table[-1], base_sq))

    acc = mont.one().to_int()
    started = False  # skip leading squarings of 1
    i = bits - 1
    while i >= 0:
        if exponent.bit(i) == 0:
            if started:
                acc = mont.mont_sqr_int(acc)
            i -= 1
            continue
        # Take the longest window [j..i] that starts and ends with a set bit.
        j = max(i - wsize + 1, 0)
        while exponent.bit(j) == 0:
            j += 1
        value = 0
        for k in range(i, j - 1, -1):
            value = (value << 1) | exponent.bit(k)
        if started:
            for _ in range(i - j + 1):
                acc = mont.mont_sqr_int(acc)
            acc = mont.mont_mul_int(acc, table[(value - 1) >> 1])
        else:
            acc = table[(value - 1) >> 1]
            started = True
        i = j - 1

    return BigNum(words_from_int(mont._redc_int(acc), mont.nwords))
