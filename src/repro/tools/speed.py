"""``openssl speed`` equivalent over the instrumented crypto library.

Prints, per algorithm, the modelled throughput / CPI / path length on the
paper's 2.26 GHz Pentium 4 model -- the quantities of Table 11 -- plus the
wall-clock of the pure-Python execution for context.

    python -m repro.tools.speed
    python -m repro.tools.speed --bytes 16384 --rsa-bits 512 aes rc4 rsa
    python -m repro.tools.speed --json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from ..crypto.bench import ALGORITHMS, measure_cipher, measure_hash, \
    measure_rsa
from ..perf import PENTIUM3, PENTIUM4, WIDE_CORE, format_table

CPUS = {"p3": PENTIUM3, "p4": PENTIUM4, "wide": WIDE_CORE}


def run_algorithm(name: str, nbytes: int, rsa_bits: int, cpu=PENTIUM4):
    start = time.perf_counter()
    if name in ("aes", "des", "3des", "rc4"):
        m = measure_cipher(name, nbytes, cpu=cpu)
    elif name in ("md5", "sha1", "sha256"):
        m = measure_hash(name, nbytes, cpu=cpu)
    elif name == "rsa":
        m = measure_rsa(rsa_bits, cpu=cpu)
    else:
        raise KeyError(name)
    wall = time.perf_counter() - start
    return {
        "algorithm": name,
        "bytes": m.nbytes,
        "cycles": m.cycles,
        "cpi": round(m.cpi, 3),
        "instructions_per_byte": round(m.instructions / m.nbytes, 1),
        "modelled_mbps": round(m.throughput_mbps(cpu), 2),
        "wallclock_seconds": round(wall, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-speed",
        description="openssl speed over the instrumented from-scratch "
                    "crypto library (modelled 2.26 GHz Pentium 4)")
    parser.add_argument("algorithms", nargs="*", metavar="ALG",
                        help=f"subset of {', '.join(ALGORITHMS)} "
                             "(default: all)")
    parser.add_argument("--bytes", type=int, default=8192,
                        help="buffer size for bulk algorithms "
                             "(default 8192)")
    parser.add_argument("--rsa-bits", type=int, default=1024,
                        choices=(512, 1024, 2048),
                        help="RSA modulus size (default 1024)")
    parser.add_argument("--cpu", choices=sorted(CPUS), default="p4",
                        help="CPU model (default: the paper's P4)")
    parser.add_argument("--json", action="store_true",
                        help="emit JSON instead of a table")
    args = parser.parse_args(argv)

    known = tuple(ALGORITHMS) + ("sha256",)
    chosen = args.algorithms or list(known)
    unknown = set(chosen) - set(known)
    if unknown:
        parser.error(f"unknown algorithm(s): {sorted(unknown)}")
    if args.bytes < 16 or args.bytes % 16:
        parser.error("--bytes must be a positive multiple of 16")

    cpu = CPUS[args.cpu]
    results = [run_algorithm(name, args.bytes, args.rsa_bits, cpu)
               for name in chosen]

    if args.json:
        json.dump(results, sys.stdout, indent=2)
        print()
        return 0

    rows = [(r["algorithm"].upper(), r["bytes"], f"{r['cpi']:.2f}",
             r["instructions_per_byte"], f"{r['modelled_mbps']:.2f}",
             f"{r['wallclock_seconds']:.3f}s")
            for r in results]
    print(format_table(
        ["algorithm", "bytes", "CPI", "instr/byte", "modelled MB/s",
         "python wall"],
        rows,
        title=f"repro speed on the {cpu.name} model "
              f"({cpu.frequency_hz / 1e9:.2f} GHz)"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
