"""Golden-cycle performance-regression gate.

Records and checks deterministic baseline signatures (see
:mod:`repro.perf.baseline`) for a registry of named scenarios, one per
paper table plus the resumption / batch-RSA / farm workloads layered on
top of the paper.  Because every modeled quantity in the reproduction is
deterministic -- the fast path charges bit-identical cycles to the
faithful loops -- the default comparison is *exact*: any drift in a
cycle total, a region breakdown or the instruction-mix histogram fails
the gate and names the leaf that moved.

    python -m repro.tools.perfgate --list
    python -m repro.tools.perfgate --record            # refresh baselines/
    python -m repro.tools.perfgate --check             # CI gate
    python -m repro.tools.perfgate --check --report perf_gate_report.txt
    python -m repro.tools.perfgate --check --tolerance 1e-6
    python -m repro.tools.perfgate --diff a.json b.json
    python -m repro.tools.perfgate --record handshake_sslv3  # one scenario

Run it from the repository root (or pass ``--baseline-dir``); ``make
perf-gate`` / ``make perf-baseline`` wrap the two common invocations.
CI runs ``--check`` under both ``REPRO_FASTPATH=1`` and ``=0`` against
the *same* committed baselines, so a divergence between the two host
backends fails the build even if both drifted consistently from within
one backend's point of view.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from .. import perf, runtime
from ..crypto import rsa
from ..perf import baseline
from ..perf.profiler import Profiler

DEFAULT_BASELINE_DIR = Path("baselines")

#: Per-section relative tolerances layered over the CLI default.  Empty on
#: purpose: every quantity a signature captures is deterministic, so exact
#: match is the correct default everywhere.  Entries would look like
#: ``{"instruction_mix": 1e-9}`` and should be accompanied by a comment
#: explaining which nondeterminism they forgive.
SECTION_TOLERANCES: Dict[str, float] = {}


# ---------------------------------------------------------------------------
# Scenario registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One named deterministic workload whose signature gets pinned."""

    name: str
    table: str          # paper table / experiment this guards
    description: str
    run: Callable[[], Tuple[Profiler, Dict[str, Any]]]


SCENARIOS: Dict[str, Scenario] = {}


def scenario(name: str, table: str, description: str):
    def register(fn):
        SCENARIOS[name] = Scenario(name, table, description, fn)
        return fn
    return register


def _identity(bits: int = 512, seed: bytes = b"perfgate"):
    """A deterministic server identity built outside the captured profiler
    (key generation is not part of any paper table's steady state)."""
    from ..ssl.loopback import make_server_identity
    with perf.activate(Profiler()):
        return make_server_identity(bits, seed=seed)


def _session_signature(result) -> Tuple[Profiler, Dict[str, Any]]:
    """Server-side profiler + transcript metrics of a loopback run."""
    stats = result.server.stats
    return result.server_profiler, {
        "wire_bytes_sent": stats.bytes_sent,
        "wire_bytes_received": stats.bytes_received,
        "handshake_flights": result.handshake_flights,
        "echoed_bytes": len(result.echoed),
        "resumed": bool(result.server.resumed),
    }


@scenario("webserver_https", "Table 1",
          "Full HTTPS transactions through the Apache/Linux cost model")
def _webserver_https():
    from ..webserver.simulator import run_experiment
    key, cert = _identity(seed=b"pg-webserver")
    result = run_experiment(4096, nrequests=2, use_crt=False,
                            key=key, cert=cert)
    return result.profiler, {
        "requests_completed": result.requests_completed,
        "bytes_served": result.bytes_served,
        "wire_bytes": result.wire_bytes,
        "failures": result.failures,
    }


@scenario("handshake_sslv3", "Table 2",
          "SSLv3 DES-CBC3-SHA handshake, non-CRT private key")
def _handshake_sslv3():
    from ..ssl import DES_CBC3_SHA
    from ..ssl.loopback import run_session
    key, cert = _identity(seed=b"pg-hs-sslv3")
    result = run_session(b"", suite=DES_CBC3_SHA, key=key, cert=cert,
                         use_crt=False, seed=b"pg-hs-sslv3")
    return _session_signature(result)


@scenario("handshake_tls10", "Table 3",
          "TLS 1.0 handshake: PRF/HMAC replaces the SSLv3 KDF/MAC")
def _handshake_tls10():
    from ..ssl import DES_CBC3_SHA, TLS1_VERSION
    from ..ssl.loopback import run_session
    key, cert = _identity(seed=b"pg-hs-tls")
    result = run_session(b"", suite=DES_CBC3_SHA, key=key, cert=cert,
                         use_crt=False, version=TLS1_VERSION,
                         seed=b"pg-hs-tls")
    return _session_signature(result)


@scenario("handshake_aes_sha", "Table 4",
          "AES128-SHA handshake (message structure with an AES suite)")
def _handshake_aes_sha():
    from ..ssl import AES128_SHA
    from ..ssl.loopback import run_session
    key, cert = _identity(seed=b"pg-hs-aes")
    result = run_session(b"", suite=AES128_SHA, key=key, cert=cert,
                         use_crt=True, seed=b"pg-hs-aes")
    return _session_signature(result)


@scenario("resumed_session", "Table 2 (resumption)",
          "Abbreviated handshake resuming a cached session")
def _resumed_session():
    from ..ssl import DES_CBC3_SHA
    from ..ssl.loopback import run_session
    from ..ssl.session import SessionCache
    key, cert = _identity(seed=b"pg-resume")
    cache = SessionCache()
    with perf.activate(Profiler()):
        first = run_session(b"", suite=DES_CBC3_SHA, key=key, cert=cert,
                            session_cache=cache, seed=b"pg-resume-1")
    assert first.session is not None, "first handshake minted no session"
    result = run_session(b"", suite=DES_CBC3_SHA, key=key, cert=cert,
                         session_cache=cache, resume=first.session,
                         seed=b"pg-resume-2")
    sig_prof, extra = _session_signature(result)
    assert extra["resumed"], "resumption did not engage"
    return sig_prof, extra


@scenario("kernel_aes", "Table 5", "AES-128-CBC key setup + 8 KiB encrypt")
def _kernel_aes():
    from ..crypto.bench import measure_cipher
    m = measure_cipher("aes", 8192)
    return m.profiler, {"bytes": m.nbytes,
                        "key_setup_cycles": m.key_setup_cycles}


@scenario("kernel_3des", "Table 6", "3DES-CBC key setup + 2 KiB encrypt")
def _kernel_3des():
    from ..crypto.bench import measure_cipher
    m = measure_cipher("3des", 2048)
    return m.profiler, {"bytes": m.nbytes,
                        "key_setup_cycles": m.key_setup_cycles}


@scenario("kernel_rc4", "Table 11", "RC4 key setup + 8 KiB stream")
def _kernel_rc4():
    from ..crypto.bench import measure_cipher
    m = measure_cipher("rc4", 8192)
    return m.profiler, {"bytes": m.nbytes,
                        "key_setup_cycles": m.key_setup_cycles}


@scenario("kernel_rsa_crt", "Table 7",
          "512-bit RSA private decryption with CRT, steady state")
def _kernel_rsa_crt():
    from ..crypto.bench import measure_rsa
    m = measure_rsa(512, use_crt=True)
    return m.profiler, {"key_bytes": m.nbytes}


@scenario("kernel_rsa_noncrt", "Table 8",
          "512-bit RSA private decryption without CRT, steady state")
def _kernel_rsa_noncrt():
    from ..crypto.bench import measure_rsa
    m = measure_rsa(512, use_crt=False)
    return m.profiler, {"key_bytes": m.nbytes}


@scenario("kernel_bignum", "Table 9",
          "Sliding-window modular exponentiation over bn_mul_add_words")
def _kernel_bignum():
    from ..bignum import BigNum, mod_exp
    base = BigNum.from_bytes(bytes(range(1, 65)))
    modulus = BigNum.from_bytes(bytes(range(100, 164)) + b"\x01")
    exponent = BigNum.from_int(65537)
    profiler = Profiler()
    with perf.activate(profiler):
        out = mod_exp(base, exponent, modulus)
    return profiler, {"result_bytes": len(out.to_bytes())}


@scenario("kernel_md5", "Table 10", "MD5 init/update/final over 8 KiB")
def _kernel_md5():
    from ..crypto.bench import measure_hash
    m = measure_hash("md5", 8192)
    return m.profiler, {"bytes": m.nbytes}


@scenario("kernel_sha1", "Table 10", "SHA-1 init/update/final over 8 KiB")
def _kernel_sha1():
    from ..crypto.bench import measure_hash
    m = measure_hash("sha1", 8192)
    return m.profiler, {"bytes": m.nbytes}


@scenario("bulk_record_rc4_md5", "Table 11",
          "8 KiB application echo through an RC4-MD5 session")
def _bulk_record_rc4_md5():
    from ..ssl import RC4_MD5
    from ..ssl.loopback import run_session
    key, cert = _identity(seed=b"pg-bulk-rc4")
    result = run_session(b"r" * 8192, suite=RC4_MD5, key=key, cert=cert,
                         use_crt=True, seed=b"pg-bulk-rc4")
    return _session_signature(result)


@scenario("bulk_record_3des_sha", "Table 12",
          "4 KiB application echo through a DES-CBC3-SHA session")
def _bulk_record_3des_sha():
    from ..ssl import DES_CBC3_SHA
    from ..ssl.loopback import run_session
    key, cert = _identity(seed=b"pg-bulk-3des")
    result = run_session(b"d" * 4096, suite=DES_CBC3_SHA, key=key,
                         cert=cert, use_crt=True, seed=b"pg-bulk-3des")
    return _session_signature(result)


@scenario("batch_rsa_flush", "Batch RSA",
          "Concurrent handshakes amortized through the batch decryptor, "
          "including a partial timeout flush")
def _batch_rsa_flush():
    from ..crypto.batch_rsa import generate_batch_keys
    from ..crypto.rand import PseudoRandom
    from ..webserver.simulator import WebServerSimulator
    from ..webserver.workload import RequestWorkload
    with perf.activate(Profiler()):
        key_set = generate_batch_keys(512, 4,
                                      rng=PseudoRandom(b"pg-batch"))
    sim = WebServerSimulator(use_crt=True, key_set=key_set,
                             seed=b"pg-batch")
    workload = RequestWorkload.fixed(2048, resumption_rate=0.0)
    result = sim.run(workload, 6, concurrency=4)
    assert result.batched_ops, "batch queue never engaged"
    return result.profiler, {
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "wire_bytes": result.wire_bytes,
        "batched_ops": result.batched_ops,
        "batches": {str(k): v for k, v in sorted(result.batches.items())},
    }


def _farm_signature(result) -> Tuple[Profiler, Dict[str, Any]]:
    return result.merged_profiler(), {
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "resumed_handshakes": result.resumed_handshakes,
        "cross_worker_resumptions": result.cross_worker_resumptions,
        "wire_bytes": result.wire_bytes,
        "per_worker_cycles": [w.cycles for w in result.worker_stats()],
        # Session-cache hit/miss/eviction counters per shard: the
        # shared-topology round-boundary sync must leave them (and the
        # cache occupancy) exactly where the serial loop does.
        "shard_stats": result.shard_stats,
    }


@scenario("farm_2workers", "Farm scaling",
          "Two-worker shared-cache farm with 50% resumption")
def _farm_2workers():
    from ..webserver import RequestWorkload, ServerFarm, SHARED
    key, cert = _identity(seed=b"pg-farm")
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert, use_crt=True)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.5)
    result = farm.run(workload, 6, concurrency_per_worker=2)
    return _farm_signature(result)


@scenario("farm_2workers_partitioned", "Farm scaling",
          "Two-worker partitioned farm, session-affinity routing; "
          "eligible for the process-parallel backend, so CI checks it "
          "under REPRO_PARALLEL settings against this one baseline")
def _farm_2workers_partitioned():
    from ..webserver import PARTITIONED, RequestWorkload, ServerFarm
    key, cert = _identity(seed=b"pg-farm-part")
    farm = ServerFarm(2, topology=PARTITIONED, policy="session-affinity",
                      key=key, cert=cert, use_crt=True)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.5)
    # No explicit ``parallel=``: the run honors REPRO_PARALLEL, which is
    # exactly the point -- the signature must not depend on it.
    result = farm.run(workload, 6, concurrency_per_worker=2)
    return _farm_signature(result)


@scenario("farm_2workers_shared", "Farm scaling",
          "Two-worker shared-cache farm with cross-worker resumption; "
          "eligible for the process-parallel backend (round-boundary "
          "cache sync), so CI checks it under REPRO_PARALLEL settings "
          "against this one baseline")
def _farm_2workers_shared():
    from ..webserver import RequestWorkload, ServerFarm, SHARED
    key, cert = _identity(seed=b"pg-farm-shared")
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert, use_crt=True)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.5)
    # No explicit ``parallel=``: honors REPRO_PARALLEL, like the
    # partitioned scenario -- a parallel run must reproduce the serially
    # recorded signature, shared-cache counters included.
    result = farm.run(workload, 8, concurrency_per_worker=2)
    assert result.cross_worker_resumptions > 0, \
        "shared farm scenario stopped exercising cross-worker resumption"
    return _farm_signature(result)


@scenario("ticket_resumption", "Session tickets",
          "Ticket-enabled simulator: a small client pool resumes via "
          "RFC-5077-style stateless tickets, leaving the server-side id "
          "cache empty the whole run")
def _ticket_resumption():
    from ..ssl.ticket import TicketKeyRing
    from ..webserver.simulator import WebServerSimulator
    from ..webserver.workload import RequestWorkload
    key, cert = _identity(seed=b"pg-tickets")
    ring = TicketKeyRing(seed=b"pg-tickets", rotation_interval=3600.0)
    sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                             seed=b"pg-tickets", tickets=ring,
                             client_pool_capacity=8)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.7,
                                     seed=b"pg-tickets", clients=4)
    result = sim.run(workload, 10)
    assert result.tickets_minted > 0, "no tickets minted"
    assert result.tickets_accepted > 0, "no ticket resumption engaged"
    assert len(sim._session_cache) == 0, \
        "ticket mode leaked state into the server-side id cache"
    return result.profiler, {
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "wire_bytes": result.wire_bytes,
        "resumed_handshakes": result.resumed_handshakes,
        "tickets_minted": result.tickets_minted,
        "tickets_accepted": result.tickets_accepted,
        "tickets_rejected": result.tickets_rejected,
        "tickets_renewed": result.tickets_renewed,
        "session_cache_size": len(sim._session_cache),
        "client_pool": sim._client_sessions.stats(),
    }


@scenario("ticket_rotation_churn", "Session tickets",
          "Ticket key rotation churn: the rotation interval is a few "
          "handshake-times of virtual wall-clock, so offered tickets "
          "straddle epoch boundaries -- stale-but-in-window offers renew, "
          "out-of-window offers fall back to full handshakes")
def _ticket_rotation_churn():
    from ..ssl.ticket import TicketKeyRing
    from ..webserver.simulator import WebServerSimulator
    from ..webserver.workload import RequestWorkload
    key, cert = _identity(seed=b"pg-ticket-rot")
    # Virtual seconds advance at cycles/2.4e9; one transaction here is a
    # few ms, so a ~5 ms rotation interval with a one-epoch accept window
    # yields both renewals and out-of-window rejections within 14 runs.
    ring = TicketKeyRing(seed=b"pg-ticket-rot", rotation_interval=0.005,
                         accept_window=1)
    sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                             seed=b"pg-ticket-rot", tickets=ring,
                             client_pool_capacity=8)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.9,
                                     seed=b"pg-ticket-rot", clients=2)
    result = sim.run(workload, 14)
    assert result.tickets_renewed > 0, \
        "rotation scenario stopped exercising stale-epoch renewal"
    assert result.tickets_rejected > 0, \
        "rotation scenario stopped exercising out-of-window fallback"
    assert result.failures == 0, result
    return result.profiler, {
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "wire_bytes": result.wire_bytes,
        "resumed_handshakes": result.resumed_handshakes,
        "tickets_minted": result.tickets_minted,
        "tickets_accepted": result.tickets_accepted,
        "tickets_rejected": result.tickets_rejected,
        "tickets_renewed": result.tickets_renewed,
        "session_cache_size": len(sim._session_cache),
        "client_pool": sim._client_sessions.stats(),
    }


@scenario("engines_1x_bulk", "Section 6.2 offload",
          "Single crypto engine (AES cipher + hash pipeline, modexp "
          "assist) offloading a bulk-heavy AES workload; the offload "
          "snapshot (per-unit ops/busy cycles, queue peaks) is part of "
          "the signature")
def _engines_1x_bulk():
    from ..engines import single_engine_config
    from ..ssl.ciphersuites import AES128_SHA
    from ..webserver.simulator import WebServerSimulator
    from ..webserver.workload import RequestWorkload
    key, cert = _identity(seed=b"pg-engines")
    sim = WebServerSimulator(suite=AES128_SHA, key=key, cert=cert,
                             use_crt=True, seed=b"pg-engines",
                             engines=single_engine_config())
    result = sim.run(RequestWorkload.fixed(16384), 4)
    assert result.offload is not None and result.offload["ops"] > 0, \
        "engine pool never engaged"
    assert result.failures == 0, result
    return result.profiler, {
        "requests_completed": result.requests_completed,
        "failures": result.failures,
        "wire_bytes": result.wire_bytes,
        "offload": result.offload,
    }


@scenario("engines_preferential_farm", "Section 6.2 offload",
          "Two-worker shared-cache farm over a heterogeneous engine pool "
          "(fast 3DES core + slow generic core, tight saturation bound): "
          "exercises preferential assignment and the software-fallback "
          "path; eligible for the process-parallel backend")
def _engines_preferential_farm():
    from ..engines import (
        GENERIC_CIPHER_UNIT, HASH_UNIT, MODEXP_UNIT, OffloadConfig,
        UnitDesign,
    )
    from ..webserver import RequestWorkload, ServerFarm, SHARED
    fast_3des = UnitDesign("cipher", {"3des": 0.5, "des": 0.5},
                           label="3des-unit")
    # One hash pipeline and a tight backlog bound: a 32 KiB response is
    # two back-to-back 16 KiB records, and the second arrives while the
    # hash unit still holds the first -- deterministic saturation.
    config = OffloadConfig(
        units=(fast_3des, GENERIC_CIPHER_UNIT, HASH_UNIT, MODEXP_UNIT),
        saturation_cycles=10_000.0)
    key, cert = _identity(seed=b"pg-engines-farm")
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert, use_crt=True,
                      engines=config)
    workload = RequestWorkload.fixed(32768, resumption_rate=0.5)
    # No explicit ``parallel=``: honors REPRO_PARALLEL, so CI's engine
    # gate re-checks this baseline through the process pool (engine
    # pools ship inside the pickled worker states).
    result = farm.run(workload, 8, concurrency_per_worker=2)
    summary = result.offload_summary()
    assert summary is not None and summary["ops"] > 0, \
        "engine pool never engaged"
    assert summary["fallbacks"] > 0, \
        "saturation fallback path never exercised"
    profiler, extra = _farm_signature(result)
    extra["offload"] = [r.offload for r in result.results]
    extra["offload_summary"] = summary
    return profiler, extra


def _overload_signature(result) -> Tuple[Profiler, Dict[str, Any]]:
    """Farm signature plus the overload anatomy: every offered/shed/
    abandoned/downgraded counter, the per-handshake modeled latencies and
    their p50/p99.  All of it is deterministic and must fold identically
    on the process-parallel backend."""
    profiler, extra = _farm_signature(result)
    extra.update({
        "offered_connections": result.offered_connections,
        "shed_queue_full": result.shed_queue_full,
        "shed_deadline": result.shed_deadline,
        "requests_shed": result.requests_shed,
        "peak_queue_depth": result.peak_queue_depth,
        "queue_wait_rounds_total": result.queue_wait_rounds_total,
        "connections_downgraded": result.connections_downgraded,
        "handshakes_abandoned": result.handshakes_abandoned,
        "requests_abandoned": result.requests_abandoned,
        "renegotiations_served": result.renegotiations_served,
        "completed_handshakes": result.completed_handshakes,
        "handshake_latencies": result.handshake_latencies,
        "handshake_latency_p50": result.handshake_latency_percentile(50),
        "handshake_latency_p99": result.handshake_latency_percentile(99),
    })
    return profiler, extra


@scenario("overload_flash_crowd", "Overload anatomy",
          "Two-worker shared farm under a flash-crowd ramp with handshake "
          "floods and renegotiation storms, deadline-shedding admission; "
          "eligible for the process-parallel backend, so CI re-checks the "
          "serially recorded signature through the process pool")
def _overload_flash_crowd():
    from ..webserver import (
        AdversarialWorkload, DeadlineShedPolicy, ServerFarm, SHARED,
    )
    key, cert = _identity(seed=b"pg-overload")
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert, use_crt=True,
                      admission=DeadlineShedPolicy(max_queue=3,
                                                   deadline_rounds=4))
    workload = AdversarialWorkload.fixed(
        2048, resumption_rate=0.5, seed=b"pg-overload-1", clients=4,
        mean_gap_rounds=2.0, flash=(3, 6.0), flood_rate=0.25,
        reneg_rate=0.15)
    # No explicit ``parallel=``: honors REPRO_PARALLEL.  Every anatomy
    # counter in the signature is planned parent-side or folded in
    # worker-index order, so the parallel run must reproduce it exactly.
    result = farm.run(workload, 14, concurrency_per_worker=2)
    assert result.shed_queue_full > 0 and result.shed_deadline > 0, \
        "flash crowd stopped exercising both shedding modes"
    assert result.handshakes_abandoned > 0, \
        "flash crowd stopped exercising handshake floods"
    assert result.renegotiations_served > 0, \
        "flash crowd stopped exercising renegotiation storms"
    return _overload_signature(result)


@scenario("overload_downgrade_policy", "Overload anatomy",
          "Two-worker shared farm under a zero-gap burst: drop-tail "
          "admission plus the cipher-suite downgrade engine steering "
          "ServerHello toward RC4/MD5 at queue pressure; eligible for "
          "the process-parallel backend")
def _overload_downgrade_policy():
    from ..ssl.ciphersuites import DES_CBC3_SHA, RC4_MD5
    from ..webserver import (
        AdversarialWorkload, DropTailPolicy, ServerFarm, SHARED,
        SuitePolicy,
    )
    key, cert = _identity(seed=b"pg-downgrade")
    policy = SuitePolicy(primary=DES_CBC3_SHA, downgrade=RC4_MD5,
                         queue_high=3)
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert, use_crt=True,
                      admission=DropTailPolicy(max_queue=6),
                      suite_policy=policy,
                      client_suites=(DES_CBC3_SHA, RC4_MD5))
    workload = AdversarialWorkload.fixed(
        8192, resumption_rate=0.4, seed=b"pg-downgrade", clients=4,
        mean_gap_rounds=0.0)
    result = farm.run(workload, 10, concurrency_per_worker=2)
    assert result.connections_downgraded > 0, \
        "burst stopped exercising the suite downgrade engine"
    assert result.connections_downgraded < result.offered_connections, \
        "downgrade engaged on every connection -- no pressure contrast"
    profiler, extra = _overload_signature(result)
    extra["suite_payoff_ratio"] = round(policy.payoff_ratio(), 6)
    return profiler, extra


# ---------------------------------------------------------------------------
# Capture / record / check
# ---------------------------------------------------------------------------

def capture_scenario(name: str) -> Dict[str, Any]:
    """Run one scenario from a cold start and return its signature.

    Process-global one-time charges (the RSA error-string tables) are
    re-armed first and every scenario builds its own keys, so captures
    are independent of scenario order and of whatever ran before.
    """
    scn = SCENARIOS[name]
    rsa.reset_error_tables()
    with perf.activate(Profiler()):
        profiler, extra = scn.run()
    return baseline.capture(profiler, scenario=name, extra=extra,
                            meta={"table": scn.table,
                                  "description": scn.description})


def baseline_path(directory: Path, name: str) -> Path:
    return directory / f"{name}.json"


def record(names: List[str], directory: Path) -> List[Path]:
    paths = []
    for name in names:
        t0 = time.perf_counter()
        sig = capture_scenario(name)
        path = baseline.write_json(baseline_path(directory, name), sig)
        print(f"recorded {name:24s} -> {path} "
              f"({sig['cycles_total']:,} cycles, "
              f"{time.perf_counter() - t0:.2f}s)")
        paths.append(path)
    return paths


def check(names: List[str], directory: Path, *, tolerance: float = 0.0,
          ) -> Tuple[bool, str]:
    """Re-capture every scenario and diff against committed baselines.

    Returns ``(ok, report_text)``; the report names each drifted leaf so
    a reviewer can see which table moved without re-running locally.
    """
    lines: List[str] = []
    backend = "fast" if runtime.fastpath_enabled() else "faithful"
    lines.append(f"perf-gate: {len(names)} scenario(s), "
                 f"backend={backend}, tolerance={tolerance}")
    ok = True
    failed: List[str] = []
    for name in names:
        path = baseline_path(directory, name)
        if not path.exists():
            ok = False
            failed.append(name)
            lines.append(f"FAIL {name}: no baseline at {path} "
                         f"(run --record and commit it)")
            continue
        committed = baseline.load_json(path)
        t0 = time.perf_counter()
        fresh = capture_scenario(name)
        drifts = baseline.diff_signatures(
            committed, fresh, tolerance=tolerance,
            tolerances=SECTION_TOLERANCES)
        if drifts:
            ok = False
            failed.append(name)
            lines.append(f"FAIL {name}: {len(drifts)} drifted metric(s) "
                         f"[{SCENARIOS[name].table}]")
            shown = drifts[:40]
            for drift in shown:
                lines.append(f"  {drift}")
            if len(drifts) > len(shown):
                lines.append(f"  ... and {len(drifts) - len(shown)} more")
        else:
            lines.append(f"ok   {name:24s} "
                         f"[{SCENARIOS[name].table}] "
                         f"({time.perf_counter() - t0:.2f}s)")
    if failed:
        # Drifting scenario names lead the report: the first line a
        # reviewer (or a CI log excerpt) sees answers "which table moved".
        lines.insert(1, "drifting scenarios: " + ", ".join(failed))
    lines.append("perf-gate: " + ("PASS" if ok else "FAIL"))
    return ok, "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-perfgate",
        description="Record/check golden deterministic performance "
                    "baselines for the paper-table scenarios")
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--record", action="store_true",
                      help="capture signatures and write baselines/*.json")
    mode.add_argument("--check", action="store_true",
                      help="diff fresh captures against committed "
                           "baselines; exit 1 on drift")
    mode.add_argument("--diff", nargs=2, metavar=("A", "B"),
                      help="diff two signature JSON files")
    mode.add_argument("--list", action="store_true",
                      help="list registered scenarios")
    parser.add_argument("scenarios", nargs="*",
                        help="scenario names (default: all)")
    parser.add_argument("--only", action="append", metavar="NAME",
                        help="restrict to scenarios whose name equals or "
                             "contains NAME (repeatable; composes with "
                             "positional names)")
    parser.add_argument("--baseline-dir", default=str(DEFAULT_BASELINE_DIR),
                        help="where baselines live (default: baselines/)")
    parser.add_argument("--tolerance", type=float, default=0.0,
                        help="default relative tolerance for numeric "
                             "leaves (default: 0.0 = exact)")
    parser.add_argument("--report", metavar="PATH",
                        help="also write the check report to this file "
                             "(uploaded as a CI artifact on failure)")
    args = parser.parse_args(argv)

    if args.list:
        for name, scn in SCENARIOS.items():
            print(f"{name:24s} [{scn.table}] {scn.description}")
        return 0

    if args.diff:
        a, b = (baseline.load_json(p) for p in args.diff)
        drifts = baseline.diff_signatures(a, b, tolerance=args.tolerance,
                                          tolerances=SECTION_TOLERANCES)
        for drift in drifts:
            print(drift)
        print(f"{len(drifts)} drifted metric(s)")
        return 1 if drifts else 0

    names = args.scenarios or list(SCENARIOS)
    unknown = [n for n in names if n not in SCENARIOS]
    if unknown:
        parser.error(f"unknown scenario(s): {', '.join(unknown)}; "
                     f"see --list")
    if args.only:
        names = [n for n in names
                 if any(sel == n or sel in n for sel in args.only)]
        if not names:
            parser.error(f"--only {', '.join(args.only)} matched no "
                         f"scenario; see --list")
    directory = Path(args.baseline_dir)

    if args.record:
        record(names, directory)
        return 0

    ok, report = check(names, directory, tolerance=args.tolerance)
    sys.stdout.write(report)
    if args.report:
        Path(args.report).write_text(report)
        if not ok:
            print(f"report written to {args.report}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
