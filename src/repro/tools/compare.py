"""Profile diff between two handshake configurations.

Runs the same loopback handshake under two configurations and prints the
side-by-side function profile -- the quickest way to see what a knob
(CRT, protocol version, cipher suite, key size) actually moves.

    python -m repro.tools.compare --knob crt
    python -m repro.tools.compare --knob version
    python -m repro.tools.compare --knob suite --suites DES-CBC3-SHA RC4-MD5
"""

from __future__ import annotations

import argparse

from ..perf.export import compare_profiles
from ..ssl import TLS1_VERSION, lookup
from ..ssl.loopback import make_server_identity, profiled_handshake


def run_handshake(key, cert, suite, version=0x0300, use_crt=True):
    sp, _, _, _ = profiled_handshake(key, cert, suite=suite,
                                     version=version, use_crt=use_crt,
                                     seed=b"cmp")
    return sp


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-compare",
        description="Diff two handshake configurations' server profiles")
    parser.add_argument("--knob", choices=("crt", "version", "suite"),
                        default="crt")
    parser.add_argument("--suites", nargs=2,
                        default=["DES-CBC3-SHA", "AES128-SHA"],
                        help="two suite names for --knob suite")
    parser.add_argument("--bits", type=int, default=1024,
                        choices=(512, 1024))
    parser.add_argument("--top", type=int, default=12)
    args = parser.parse_args(argv)

    key, cert = make_server_identity(args.bits, seed=b"compare-tool")
    default_suite = lookup("DES-CBC3-SHA")

    if args.knob == "crt":
        a = run_handshake(key, cert, default_suite, use_crt=False)
        b = run_handshake(key, cert, default_suite, use_crt=True)
        labels = ("non-CRT", "CRT")
    elif args.knob == "version":
        a = run_handshake(key, cert, default_suite, version=0x0300)
        b = run_handshake(key, cert, default_suite, version=TLS1_VERSION)
        labels = ("SSLv3", "TLS1.0")
    else:
        s1, s2 = (lookup(name) for name in args.suites)
        a = run_handshake(key, cert, s1)
        b = run_handshake(key, cert, s2)
        labels = (s1.name, s2.name)

    print(compare_profiles(a, b, *labels, top=args.top))
    print(f"totals: {labels[0]} {a.total_cycles():,.0f} cycles, "
          f"{labels[1]} {b.total_cycles():,.0f} cycles "
          f"({b.total_cycles() / a.total_cycles():.2f}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
