"""Command-line tools: the reproduction's equivalents of ``openssl speed``
and a profile explorer.  Run as modules::

    python -m repro.tools.speed --bytes 8192
    python -m repro.tools.anatomy rsa aes
"""
