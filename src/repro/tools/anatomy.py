"""Profile explorer: dump the anatomy of an SSL handshake or crypto kernel.

    python -m repro.tools.anatomy handshake
    python -m repro.tools.anatomy handshake --crt --tls
    python -m repro.tools.anatomy rsa aes sha1
"""

from __future__ import annotations

import argparse

from ..crypto.bench import ALGORITHMS
from ..perf.export import functions_csv, region_tree_text


def run_handshake(use_crt: bool, tls: bool):
    from ..ssl import DES_CBC3_SHA, TLS1_VERSION
    from ..ssl.loopback import make_server_identity, profiled_handshake

    key, cert = make_server_identity(1024, seed=b"anatomy-tool")
    sp, _, _, _ = profiled_handshake(
        key, cert, suite=DES_CBC3_SHA,
        version=TLS1_VERSION if tls else 0x0300,
        use_crt=use_crt, seed=b"tool")
    return sp


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-anatomy",
        description="Dump region trees / flat profiles for handshakes and "
                    "crypto kernels")
    parser.add_argument("targets", nargs="+",
                        help=f"'handshake' or any of {', '.join(ALGORITHMS)}")
    parser.add_argument("--crt", action="store_true",
                        help="use CRT RSA in the handshake (default: "
                             "non-CRT, the paper's Table 2 configuration)")
    parser.add_argument("--tls", action="store_true",
                        help="negotiate TLS 1.0 instead of SSLv3")
    parser.add_argument("--csv", action="store_true",
                        help="also print the flat function profile as CSV")
    parser.add_argument("--trace", type=int, metavar="N", default=0,
                        help="also print an N-instruction synthetic trace "
                             "(SoftSDV-style) of the aggregate mix")
    args = parser.parse_args(argv)

    for target in args.targets:
        print(f"==== {target} " + "=" * max(0, 50 - len(target)))
        if target == "handshake":
            prof = run_handshake(args.crt, args.tls)
        elif target in ALGORITHMS:
            from ..crypto.bench import measure_cipher, measure_hash, \
                measure_rsa
            if target in ("aes", "des", "3des", "rc4"):
                prof = measure_cipher(target, 8192).profiler
            elif target in ("md5", "sha1"):
                prof = measure_hash(target, 8192).profiler
            else:
                prof = measure_rsa(1024).profiler
        else:
            parser.error(f"unknown target {target!r}")
        print(region_tree_text(prof))
        if args.csv:
            print(functions_csv(prof, top=15))
        if args.trace:
            from ..perf.trace import profile_trace, trace_to_text
            print(trace_to_text(iter(profile_trace(prof, args.trace))))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
