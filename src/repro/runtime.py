"""Host-execution configuration: the fast-path switch.

The reproduction separates two concerns that real profiled code fuses:

* **modeled cycles** -- every instrumented routine *charges* the paper's
  per-word/per-block instruction mixes into :mod:`repro.perf`, producing
  the Tables 1-12 numbers analytically;
* **host compute** -- the arithmetic the routine actually performs on this
  machine to produce protocol-visible bytes.

Because the charges are batch-computed from operand sizes (never from the
host loop shape), the host compute can be swapped for much faster
native-int implementations without perturbing a single modeled cycle.
This module holds the process-wide switch selecting between the two
backends:

* **fast path** (default): word arrays pack into Python ints and whole
  operands multiply/reduce in one big-int operation; hash compression
  functions run unrolled; symmetric ciphers run flattened cores.
* **faithful path** (``REPRO_FASTPATH=0`` in the environment, or
  :func:`set_fastpath` / :func:`fastpath` at runtime): the original
  word-by-word reference loops execute, mirroring the profiled OpenSSL
  source structure.

Both backends are bit-identical in outputs *and* in charged cycles --
enforced by ``tests/test_fastpath_equivalence.py``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_FALSEY = ("0", "false", "off", "no")

_fastpath: bool = os.environ.get("REPRO_FASTPATH", "1").lower() not in _FALSEY


def fastpath_enabled() -> bool:
    """True when the native-int/flattened host backend is selected."""
    return _fastpath


def set_fastpath(enabled: bool) -> bool:
    """Select the host backend; returns the previous setting."""
    global _fastpath
    previous = _fastpath
    _fastpath = bool(enabled)
    return previous


@contextmanager
def fastpath(enabled: bool) -> Iterator[None]:
    """Temporarily select a host backend (tests compare the two)."""
    previous = set_fastpath(enabled)
    try:
        yield
    finally:
        set_fastpath(previous)


# ---------------------------------------------------------------------------
# Process-parallel farm execution (REPRO_PARALLEL)
# ---------------------------------------------------------------------------

def _parse_parallel(raw: str) -> int:
    try:
        value = int(raw.strip() or "0")
    except ValueError:
        return 0
    return max(0, value)


#: Default pool size for ``ServerFarm.run``: 0/1 = serial (the default),
#: N > 1 = drive the per-worker simulation loops through N processes.
#: Mirrors ``REPRO_FASTPATH``: an environment default that call sites can
#: override per run, with the same determinism contract (modeled cycles
#: never depend on the execution backend).
_parallel: int = _parse_parallel(os.environ.get("REPRO_PARALLEL", "0"))


def parallel_processes() -> int:
    """The configured default farm pool size (0/1 means serial)."""
    return _parallel


def set_parallel(processes: int) -> int:
    """Set the default farm pool size; returns the previous setting."""
    global _parallel
    if processes < 0:
        raise ValueError("pool size cannot be negative")
    previous = _parallel
    _parallel = int(processes)
    return previous


@contextmanager
def parallel(processes: int) -> Iterator[None]:
    """Temporarily select a default farm pool size."""
    previous = set_parallel(processes)
    try:
        yield
    finally:
        set_parallel(previous)


# ---------------------------------------------------------------------------
# Discrete-event scheduler core (REPRO_EVENTS)
# ---------------------------------------------------------------------------

#: Default scheduling core for the simulator and farm loops: the
#: discrete-event heap (:mod:`repro.webserver.events`) that skips idle
#: rounds and keeps parked transactions out of the per-round scan.
#: ``REPRO_EVENTS=0`` selects the legacy scan-everything round loop --
#: the reference semantics the event core must reproduce bit-identically
#: (and the comparison arm of ``make bench-events``).  Like the fast
#: path, the switch is a host-execution choice: modeled cycles,
#: transcripts and every anatomy counter are identical either way.
_events: bool = os.environ.get("REPRO_EVENTS", "1").lower() not in _FALSEY


def events_enabled() -> bool:
    """True when the discrete-event scheduler core is selected."""
    return _events


def set_events(enabled: bool) -> bool:
    """Select the scheduler core; returns the previous setting."""
    global _events
    previous = _events
    _events = bool(enabled)
    return previous


@contextmanager
def events(enabled: bool) -> Iterator[None]:
    """Temporarily select a scheduler core (tests compare the two)."""
    previous = set_events(enabled)
    try:
        yield
    finally:
        set_events(previous)
