"""Asynchronous crypto-engine offload pool (Section 6.2 as a backend).

Section 6.2 proposes hardware assists -- a parallel cipher+MAC record
engine (Figure 6), an AES round unit, and (from the related multi-core
security-processor work, arXiv 1410.7560) pools of heterogeneous crypto
cores fed by a *preferential* scheduler that sends each operation to the
cheapest core able to serve it.  ``repro.engines`` has modeled those
units in isolation; this module turns them into an execution backend the
web-server simulator and farm can actually run on.

The model splits every offloaded operation into two honest halves:

* **CPU-side dispatch** -- building the descriptor, programming the DMA
  engine and taking the completion interrupt.  Charged to the worker's
  profiler as an instruction mix (``engine_dispatch``), a few hundred
  cycles, inside an ``engine_offload`` region.
* **Engine-side latency** -- the unit's service time, tracked on a
  per-unit completion timeline in the *same* virtual clock the profiler
  advances (``Profiler.now``).  The CPU does **not** block on it: the
  whole point of the asynchronous queue is that record processing for
  one connection overlaps CPU work for the others.

Because the CPU only pays dispatch, an offloaded record is almost free
on the host processor -- until the engines can't keep up.  Each unit
carries a backlog (``free_at - now``); once every capable unit's backlog
exceeds ``OffloadConfig.saturation_cycles`` the scheduler refuses the op
and the caller runs the ordinary software path, paying full CPU price.
That software fallback is the knee in the capacity curve: arrival rate
is CPU-driven, so a saturated pool self-throttles (fallback ops burn CPU
cycles, the engine timeline drains) and capacity degrades smoothly
toward the software-only number instead of diverging.

Records need a capable *cipher* unit and a capable *hash* unit (Figure
6's engine drives both from one descriptor); the preferential scheduler
picks, per op and per role, the available unit with the earliest
projected completion.  Cipher and MAC overlap as in the closed form of
:func:`repro.engines.crypto_engine.fragment_latency`: both passes stream
over the data concurrently, then the cipher makes a short serial pass
over the MAC+padding tail.  RSA private-key operations go to a
``modexp`` unit whose per-op cost scales cubically with the modulus
width, as schoolbook multiplication and exponent length both grow
linearly.

Everything here is plain arithmetic over profiler timestamps: a pool is
deterministic, pickles cleanly (it rides inside each farm worker's
state through the process-parallel protocol), and is strictly
worker-local -- one pool per worker, like the batcher and the
partitioned session-cache shards, so the lockstep merge needs no new
synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from .. import perf
from ..perf import charge, mix

__all__ = [
    "UnitDesign", "OffloadConfig", "OffloadPool",
    "AES_UNIT", "RC4_UNIT", "GENERIC_CIPHER_UNIT", "HASH_UNIT",
    "MODEXP_UNIT", "default_engine_config", "single_engine_config",
]

#: Descriptor build + DMA programming + completion handling for one record.
RECORD_DISPATCH = mix(movl=160, movb=40, addl=40, cmpl=30, jnz=30,
                      pushl=12, popl=12, call=8, ret=8)

#: Dispatching one modular exponentiation (operands are copied into the
#: unit's register file, so the fixed cost is a little higher).
MODEXP_DISPATCH = mix(movl=240, movb=60, addl=50, cmpl=30, jnz=30,
                      pushl=12, popl=12, call=8, ret=8)

#: Modexp engine cost scales with the cube of the modulus width relative
#: to this reference (n^2 multiplication work x n exponent bits).
MODEXP_REF_BITS = 512


@dataclass(frozen=True)
class UnitDesign:
    """One engine core: what it can do and how fast.

    ``kind`` is ``"cipher"``, ``"hash"`` or ``"modexp"``.  ``rates`` maps
    algorithm names (the :class:`~repro.ssl.ciphersuites.CipherSuite`
    ``cipher``/``mac`` strings, or ``"rsa"``) to cycles per byte -- except
    for modexp units, where the rate is cycles per ``MODEXP_REF_BITS``-bit
    exponentiation.  ``fixed_cycles`` is the unit's per-op setup (key
    schedule load, IV latch).
    """

    kind: str
    rates: Mapping[str, float]
    fixed_cycles: float = 50.0
    label: str = ""

    def rate(self, algo: str) -> Optional[float]:
        return self.rates.get(algo)


#: Section 6.2.2's dedicated AES unit: one round per cycle, ~0.25
#: cycles/byte in a 4-lane arrangement.
AES_UNIT = UnitDesign("cipher", {"aes": 0.25}, label="aes-unit")

#: The 1-byte/1-clock RC4 coprocessor (arXiv 1205.1737).
RC4_UNIT = UnitDesign("cipher", {"rc4": 1.0}, label="rc4-unit")

#: A general-purpose cipher core (microcoded, so slower per byte but
#: capable of every suite cipher) -- the heterogeneous pool's safety net
#: and the target the preferential scheduler spills onto.
GENERIC_CIPHER_UNIT = UnitDesign(
    "cipher", {"aes": 1.0, "3des": 2.0, "des": 1.5, "rc4": 1.5},
    label="cipher-unit")

#: Figure 6's MAC half: MD5/SHA-1 digest pipelines.
HASH_UNIT = UnitDesign("hash", {"md5": 0.75, "sha1": 1.25},
                       label="hash-unit")

#: Public-key assist: one 512-bit modular exponentiation in ~120k engine
#: cycles (vs ~2.3M modeled software cycles), scaling cubically in width.
MODEXP_UNIT = UnitDesign("modexp", {"rsa": 120_000.0}, fixed_cycles=500.0,
                         label="modexp-unit")


@dataclass(frozen=True)
class OffloadConfig:
    """A pool layout plus the scheduler's fallback thresholds.

    ``saturation_cycles`` is the backlog (in virtual cycles) beyond which
    a unit stops accepting work; when every capable unit is past it the
    op falls back to software.  ``min_record_bytes`` keeps tiny records
    (handshake finished messages, HTTP request echoes) on the CPU, where
    the dispatch overhead would not pay for itself.
    """

    units: Tuple[UnitDesign, ...]
    saturation_cycles: float = 200_000.0
    min_record_bytes: int = 256


def single_engine_config() -> OffloadConfig:
    """One record engine (AES cipher + hash pipeline) plus a modexp unit."""
    return OffloadConfig(units=(AES_UNIT, HASH_UNIT, MODEXP_UNIT))


def default_engine_config() -> OffloadConfig:
    """A heterogeneous pool exercising preferential assignment: fast
    dedicated cipher units backed by a slower generic core, two hash
    pipelines, and a modexp assist."""
    return OffloadConfig(units=(AES_UNIT, RC4_UNIT, GENERIC_CIPHER_UNIT,
                                HASH_UNIT, HASH_UNIT, MODEXP_UNIT))


@dataclass
class _UnitState:
    """Mutable per-unit scheduling state (worker-local, pickles)."""

    design: UnitDesign
    free_at: float = 0.0
    ops: int = 0
    busy_cycles: float = 0.0
    pending: List[float] = field(default_factory=list)

    def prune(self, now: float) -> None:
        if self.pending and self.pending[0] <= now:
            self.pending = [t for t in self.pending if t > now]


class OffloadPool:
    """Worker-local asynchronous offload queue over a pool of engine cores.

    The pool never touches real bytes: callers run the genuine software
    crypto under a *scratch* profiler (so the transcript stays
    bit-identical to a software run) and this class accounts the modeled
    cost -- dispatch mixes on the live profiler, service time on the
    per-unit timelines.
    """

    def __init__(self, config: OffloadConfig):
        if not config.units:
            raise ValueError("offload pool needs at least one unit")
        self.config = config
        self.units = [_UnitState(design=u) for u in config.units]
        self.ops = 0
        self.record_ops = 0
        self.modexp_ops = 0
        self.fallbacks = 0
        self.skipped_small = 0
        self.engine_cycles = 0.0
        self.latency_cycles = 0.0
        self.peak_backlog_cycles = 0.0
        self.peak_queue_depth = 0

    # -- scheduling ---------------------------------------------------------
    def _pick(self, kind: str, algo: str, nbytes: float,
              now: float) -> Optional[int]:
        """Preferential assignment: cheapest capable, unsaturated unit.

        "Cheapest" is the earliest projected completion of this op on
        that unit -- a backlogged fast core loses to an idle slow one,
        which is exactly the spill behaviour the heterogeneous-pool
        scheduler (arXiv 1410.7560) is after.  Ties break on unit index,
        keeping assignment deterministic.
        """
        best = None
        best_done = 0.0
        for i, unit in enumerate(self.units):
            d = unit.design
            if d.kind != kind:
                continue
            rate = d.rate(algo)
            if rate is None:
                continue
            if unit.free_at - now > self.config.saturation_cycles:
                continue
            done = max(unit.free_at, now) + d.fixed_cycles + rate * nbytes
            if best is None or done < best_done:
                best, best_done = i, done
        return best

    def _commit(self, index: int, start: float, done: float,
                now: float) -> None:
        unit = self.units[index]
        unit.prune(now)
        unit.free_at = done
        unit.ops += 1
        unit.busy_cycles += done - start
        unit.pending.append(done)
        self.engine_cycles += done - start
        self.peak_backlog_cycles = max(self.peak_backlog_cycles, done - now)
        depth = sum(len(u.pending) for u in self.units)
        self.peak_queue_depth = max(self.peak_queue_depth, depth)

    # -- record offload -----------------------------------------------------
    def submit_record(self, direction: str, cipher_algo: str,
                      hash_algo: str, data_bytes: int,
                      tail_bytes: int) -> bool:
        """Try to offload one record (seal or open).

        On success the dispatch mix is charged to the live profiler (in
        an ``engine_offload`` region), the chosen cipher+hash units'
        timelines advance, and the caller must run the real crypto under
        a scratch profiler.  On refusal nothing is charged and the
        caller takes the ordinary software path.
        """
        if data_bytes < self.config.min_record_bytes:
            self.skipped_small += 1
            return False
        now = perf.current().now()
        ci = self._pick("cipher", cipher_algo, data_bytes + tail_bytes, now)
        hi = self._pick("hash", hash_algo, data_bytes, now)
        if ci is None or hi is None:
            self.fallbacks += 1
            return False
        cunit, hunit = self.units[ci], self.units[hi]
        c_rate = cunit.design.rate(cipher_algo)
        h_rate = hunit.design.rate(hash_algo)
        with perf.region("engine_offload"):
            charge(RECORD_DISPATCH, function="engine_dispatch",
                   module=perf.LIBCRYPTO)
            now = perf.current().now()
            # Figure 6 overlap: cipher and MAC stream the payload
            # concurrently; the cipher then covers the MAC+padding tail.
            c_start = max(cunit.free_at, now)
            h_start = max(hunit.free_at, now)
            hash_done = h_start + hunit.design.fixed_cycles + \
                h_rate * data_bytes
            data_done = c_start + cunit.design.fixed_cycles + \
                c_rate * data_bytes
            done = max(data_done, hash_done) + c_rate * tail_bytes
            self._commit(hi, h_start, hash_done, now)
            self._commit(ci, c_start, done, now)
            self.latency_cycles += done - now
            self.ops += 1
            self.record_ops += 1
        return True

    # -- RSA offload --------------------------------------------------------
    def rsa_decrypt(self, key, ciphertext: bytes) -> bytes:
        """Private-key decrypt through the modexp unit, if one is free.

        The real decrypt still runs (under a scratch profiler) so the
        pre-master bytes, blinding RNG advance and padding-failure
        behaviour are identical to software; only the modeled cost moves
        to the engine.  Saturated or absent modexp units fall back to
        the plain software decrypt.
        """
        bits = key.n.nbits()
        # Exponent length and operand width both scale the engine's
        # schoolbook multiplier cubically.
        scale = (bits / MODEXP_REF_BITS) ** 3
        mi = self._pick("modexp", "rsa", 0.0, perf.current().now())
        if mi is None:
            self.fallbacks += 1
            return key.decrypt(ciphertext)
        unit = self.units[mi]
        service = unit.design.rate("rsa") * scale
        with perf.region("engine_offload"):
            # The one-shot error-string load is CPU-side library state;
            # pay it on the live profiler before the scratch run.
            key.charge_error_load()
            charge(MODEXP_DISPATCH, function="engine_dispatch",
                   module=perf.LIBCRYPTO)
            now = perf.current().now()
            start = max(unit.free_at, now)
            done = start + unit.design.fixed_cycles + service
            self._commit(mi, start, done, now)
            self.latency_cycles += done - now
            self.ops += 1
            self.modexp_ops += 1
        with perf.activate(perf.Profiler()):
            return key.decrypt(ciphertext)

    # -- reporting ----------------------------------------------------------
    def snapshot(self, now: Optional[float] = None) -> Dict[str, Any]:
        """Stats dict for results/baselines (deterministic, JSON-safe)."""
        if now is None:
            now = perf.current().now()
        units = []
        for unit in self.units:
            utilization = unit.busy_cycles / now if now > 0 else 0.0
            units.append({
                "label": unit.design.label or unit.design.kind,
                "kind": unit.design.kind,
                "ops": unit.ops,
                "busy_cycles": round(unit.busy_cycles, 3),
                "utilization": round(min(utilization, 1.0), 6),
            })
        return {
            "ops": self.ops,
            "record_ops": self.record_ops,
            "modexp_ops": self.modexp_ops,
            "fallbacks": self.fallbacks,
            "skipped_small": self.skipped_small,
            "engine_cycles": round(self.engine_cycles, 3),
            "latency_cycles": round(self.latency_cycles, 3),
            "peak_backlog_cycles": round(self.peak_backlog_cycles, 3),
            "peak_queue_depth": self.peak_queue_depth,
            "units": units,
        }
