"""Hardware-acceleration models for Section 6.2's proposals.

The paper closes by sketching three acceleration tiers: ISA support
(3-operand logical instructions for the hash kernels), hardware units (an
AES round unit performing the sixteen table lookups in parallel), and
asynchronous crypto engines with parallel cipher+MAC pipelines.  These
models quantify each proposal against the instrumented software baselines.
"""

from .aes_unit import AesUnitDesign, AesUnitEstimate, estimate as \
    aes_unit_estimate, software_block_cycles, throughput_mbps
from .crypto_engine import (
    EngineDesign, EngineSimulator, FragmentLatency, SimOutcome,
    SoftwareCosts, fragment_latency,
)
from .hash_unit import HashUnitDesign, HashUnitEstimate, SERIAL_STEPS
from .hash_unit import estimate as hash_unit_estimate
from .isa_ext import (
    IsaExtensionEstimate, IsaExtensionParams, KERNEL_PARAMS,
    estimate as isa_estimate, transform_mix,
)
from .offload import (
    AES_UNIT, GENERIC_CIPHER_UNIT, HASH_UNIT, MODEXP_UNIT, RC4_UNIT,
    OffloadConfig, OffloadPool, UnitDesign, default_engine_config,
    single_engine_config,
)

__all__ = [
    "AesUnitDesign", "AesUnitEstimate", "aes_unit_estimate",
    "software_block_cycles", "throughput_mbps",
    "EngineDesign", "EngineSimulator", "FragmentLatency", "SimOutcome",
    "SoftwareCosts", "fragment_latency",
    "HashUnitDesign", "HashUnitEstimate", "SERIAL_STEPS",
    "hash_unit_estimate",
    "IsaExtensionEstimate", "IsaExtensionParams", "KERNEL_PARAMS",
    "isa_estimate", "transform_mix",
    "AES_UNIT", "GENERIC_CIPHER_UNIT", "HASH_UNIT", "MODEXP_UNIT",
    "RC4_UNIT", "OffloadConfig", "OffloadPool", "UnitDesign",
    "default_engine_config", "single_engine_config",
]
