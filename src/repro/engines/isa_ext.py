"""ISA-extension model: three-operand logical instructions (Section 6.2.1).

The paper observes that MD5/SHA-1 step functions are three-input logical
operations (Figure 4) that x86's two-operand ISA expands into instruction
*pairs*, and that the eight-register file forces extra ``mov`` traffic to
spill intermediates.  The proposed fix is either a true 3-operand logical
instruction or wide (MMX-style) registers holding multiple operands.

This model transforms an instrumented kernel's instruction mix under that
proposal and re-prices it on the CPU model:

* a fraction of the logical ops (``xorl/andl/orl/notl``) are the *second*
  instruction of a two-instruction three-input function -- those fuse away;
* a fraction of the ``movl`` traffic exists only to shuttle intermediates
  through the tiny register file -- extra architectural registers remove it;
* dependency chains shorten (two dependent ALU ops become one), so the
  kernel's stall factor relaxes toward the throughput limit.

The per-kernel parameters are derived from the algorithms' structure and
documented on :data:`KERNEL_PARAMS`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..perf import CpuModel, InstrMix, PENTIUM4

_LOGICAL = ("xorl", "andl", "orl", "notl")


@dataclass(frozen=True)
class IsaExtensionParams:
    """How strongly a kernel benefits from 3-operand logical support."""

    #: Fraction of logical instructions that are the second half of a
    #: three-input function and fuse into the new instruction.
    logical_fusion: float
    #: Fraction of movl traffic that is register-pressure spill fill/flush
    #: removable with more / wider registers.
    mov_elision: float
    #: Multiplier (< 1) applied to the kernel's dependency-stall factor:
    #: fusing dependent pairs shortens the critical chain.
    stall_relief: float


#: Derivations:
#:  * MD5: F/G (rounds 1-2) are and/xor triples -> ~40% of logicals fuse;
#:    the serial chain shortens materially (stall 1.61 -> ~1.25).
#:  * SHA-1: Ch/Maj/Parity triples fuse similarly but the kernel is already
#:    near the throughput limit, so stall relief is small.
KERNEL_PARAMS: Dict[str, IsaExtensionParams] = {
    "md5": IsaExtensionParams(logical_fusion=0.40, mov_elision=0.35,
                              stall_relief=0.78),
    "sha1": IsaExtensionParams(logical_fusion=0.40, mov_elision=0.30,
                               stall_relief=0.95),
}


@dataclass
class IsaExtensionEstimate:
    """Before/after comparison for one kernel."""

    kernel: str
    base_instructions: float
    new_instructions: float
    base_cycles: float
    new_cycles: float

    @property
    def instruction_reduction(self) -> float:
        return 1.0 - self.new_instructions / self.base_instructions

    @property
    def speedup(self) -> float:
        return self.base_cycles / self.new_cycles


def transform_mix(m: InstrMix, params: IsaExtensionParams) -> InstrMix:
    """The instruction mix after applying the ISA extension."""
    counts = m.counts
    out: Dict[str, float] = {}
    for name, count in counts.items():
        if name in _LOGICAL:
            out[name] = count * (1.0 - params.logical_fusion)
        elif name == "movl":
            out[name] = count * (1.0 - params.mov_elision)
        else:
            out[name] = count
    return InstrMix(out)


def estimate(kernel: str, m: InstrMix, stall: float,
             cpu: CpuModel = PENTIUM4) -> IsaExtensionEstimate:
    """Estimate the effect of 3-operand support on one hash kernel."""
    if kernel not in KERNEL_PARAMS:
        raise KeyError(f"no ISA-extension parameters for kernel {kernel!r};"
                       f" known: {sorted(KERNEL_PARAMS)}")
    params = KERNEL_PARAMS[kernel]
    new_mix = transform_mix(m, params)
    new_stall = max(1.0, stall * params.stall_relief)
    return IsaExtensionEstimate(
        kernel=kernel,
        base_instructions=m.total(),
        new_instructions=new_mix.total(),
        base_cycles=cpu.cycles(m, stall),
        new_cycles=cpu.cycles(new_mix, new_stall),
    )
