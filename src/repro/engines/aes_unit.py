"""Hardware AES round unit model (Section 6.2.2, Figure 5).

The paper proposes a functional unit that performs one full AES round --
sixteen table lookups, the XOR tree and the round-key addition -- as a
single operation, exploiting the fact that a round's four basic operations
"have no dependency on each other, therefore can be performed in parallel
completely", and that the unit "can be extended to perform all rounds and
return the final four outputs".

The model compares three design points for one 16-byte block:

* **software**: the instrumented table-based implementation's cycles;
* **round unit**: a new instruction per round -- issue overhead plus the
  unit's pipelined round latency, state still shuttles through registers;
* **block unit**: the extended all-rounds unit -- one dispatch, rounds
  chained inside the unit at its round latency, no per-round ISA traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto import aes
from ..perf import CpuModel, PENTIUM4


@dataclass(frozen=True)
class AesUnitDesign:
    """Hardware parameters of the proposed unit."""

    #: Cycles for the unit to produce a round's four output words.  Four
    #: parallel SRAM lookups + XOR tree: a few cycles at P4-class clocks.
    round_latency: float = 3.0
    #: Instruction-issue + operand-setup cycles for each new instruction.
    issue_overhead: float = 2.0
    #: One-time dispatch/result-readback cycles for the all-rounds unit.
    block_dispatch: float = 10.0


@dataclass
class AesUnitEstimate:
    key_bits: int
    software_cycles: float
    round_unit_cycles: float
    block_unit_cycles: float

    @property
    def round_unit_speedup(self) -> float:
        return self.software_cycles / self.round_unit_cycles

    @property
    def block_unit_speedup(self) -> float:
        return self.software_cycles / self.block_unit_cycles


def software_block_cycles(key_bits: int, cpu: CpuModel = PENTIUM4) -> float:
    """Cycles of one software AES block op (matches Table 5's structure)."""
    rounds = {128: 10, 192: 12, 256: 14}[key_bits]
    return (cpu.cycles(aes.AES_INIT, aes.AES_STALL)
            + cpu.cycles(aes.AES_ROUND, aes.AES_STALL) * (rounds - 1)
            + cpu.cycles(aes.AES_FINAL, aes.AES_STALL))


def estimate(key_bits: int = 128,
             design: AesUnitDesign = AesUnitDesign(),
             cpu: CpuModel = PENTIUM4) -> AesUnitEstimate:
    """Compare software vs round-unit vs block-unit for one block."""
    if key_bits not in (128, 192, 256):
        raise ValueError("AES key size must be 128, 192 or 256 bits")
    rounds = {128: 10, 192: 12, 256: 14}[key_bits]
    software = software_block_cycles(key_bits, cpu)
    # Round unit: state load + initial ARK still in software (~init phase),
    # then one instruction per round; final store.
    sw_init = cpu.cycles(aes.AES_INIT, aes.AES_STALL)
    sw_store = 8.0  # four result stores, pipelined
    round_unit = (sw_init
                  + rounds * (design.issue_overhead + design.round_latency)
                  + sw_store)
    # Block unit: one dispatch; rounds chain internally.
    block_unit = (design.block_dispatch + rounds * design.round_latency
                  + sw_store)
    return AesUnitEstimate(key_bits=key_bits, software_cycles=software,
                           round_unit_cycles=round_unit,
                           block_unit_cycles=block_unit)


def throughput_mbps(block_cycles: float, cpu: CpuModel = PENTIUM4) -> float:
    """MB/s for back-to-back 16-byte blocks at the given per-block cost."""
    if block_cycles <= 0:
        raise ValueError("block cycles must be positive")
    return 16.0 / (block_cycles / cpu.frequency_hz) / 1e6
