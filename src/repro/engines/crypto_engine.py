"""Asynchronous crypto-engine model (Section 6.2.3, Figure 6).

The paper's highest-level proposal: an engine with an AES (cipher) unit and
a hashing unit fed by a control unit reading descriptors from memory.  For
each outgoing fragment the MAC computation and the encryption of the data
part proceed **in parallel**; when the hash unit finishes, the MAC and
padding are fed through the cipher unit to produce the fragment tail.  The
engine runs asynchronously with the CPU, and several engines (or several
units per engine) can serve fragments concurrently in the bulk phase.

Two levels of modelling:

* :func:`fragment_latency` -- closed-form cycles for one fragment under
  sequential software, synchronous engine, and the parallel scheme;
* :class:`EngineSimulator` -- a small discrete-event simulation of one or
  more engines draining a queue of fragments, for throughput estimates
  with queueing effects included.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import List, Tuple

from ..perf import CpuModel, PENTIUM4


@dataclass(frozen=True)
class EngineDesign:
    """Hardware parameters of one crypto engine."""

    #: Cipher-unit cost per byte (pipelined AES: ~10 rounds / 16 bytes at a
    #: few cycles per round).
    cipher_cycles_per_byte: float = 0.25
    #: Hash-unit cost per byte (SHA-1 at one 64-byte block per ~80 cycles).
    hash_cycles_per_byte: float = 1.25
    #: Control-unit overhead per descriptor (fetch, DMA setup, completion).
    descriptor_overhead: float = 400.0
    #: Number of (cipher+hash) unit pairs in the engine.
    units: int = 1


@dataclass(frozen=True)
class SoftwareCosts:
    """Software per-byte costs from the instrumented kernels (Table 11)."""

    cipher_cycles_per_byte: float
    hash_cycles_per_byte: float
    mac_fixed: float = 3_000.0   # per-record MAC dispatch
    record_fixed: float = 1_000.0


@dataclass
class FragmentLatency:
    data_bytes: int
    tail_bytes: int
    software_cycles: float
    engine_serial_cycles: float
    engine_parallel_cycles: float

    @property
    def parallel_speedup(self) -> float:
        return self.software_cycles / self.engine_parallel_cycles

    @property
    def overlap_gain(self) -> float:
        """Gain of cipher||hash parallelism over the same engine run
        serially."""
        return self.engine_serial_cycles / self.engine_parallel_cycles


def fragment_latency(data_bytes: int, software: SoftwareCosts,
                     design: EngineDesign = EngineDesign(),
                     mac_size: int = 20, block_size: int = 16,
                     ) -> FragmentLatency:
    """Latency of producing one encrypted fragment (data + MAC + padding)."""
    if data_bytes <= 0:
        raise ValueError("fragment must carry data")
    total = data_bytes + mac_size + 1
    pad = (-total) % block_size
    tail = mac_size + 1 + pad

    sw = (software.mac_fixed + software.record_fixed
          + software.hash_cycles_per_byte * data_bytes
          + software.cipher_cycles_per_byte * (data_bytes + tail))
    # Engine, units run back-to-back (no overlap).
    serial = (design.descriptor_overhead
              + design.hash_cycles_per_byte * data_bytes
              + design.cipher_cycles_per_byte * (data_bytes + tail))
    # Engine, Figure 6 overlap: cipher starts on the data immediately while
    # the hash unit MACs it; the tail waits for whichever finishes last.
    overlap = max(design.hash_cycles_per_byte * data_bytes,
                  design.cipher_cycles_per_byte * data_bytes)
    parallel = (design.descriptor_overhead + overlap
                + design.cipher_cycles_per_byte * tail)
    return FragmentLatency(data_bytes=data_bytes, tail_bytes=tail,
                           software_cycles=sw, engine_serial_cycles=serial,
                           engine_parallel_cycles=parallel)


# ---------------------------------------------------------------------------
# Discrete-event simulation of engines draining a fragment queue
# ---------------------------------------------------------------------------

@dataclass
class SimOutcome:
    fragments: int
    bytes_processed: int
    makespan_cycles: float
    unit_busy_cycles: float

    def throughput_mbps(self, cpu: CpuModel = PENTIUM4) -> float:
        if self.makespan_cycles <= 0:
            return 0.0
        return self.bytes_processed / (
            self.makespan_cycles / cpu.frequency_hz) / 1e6

    @property
    def utilization(self) -> float:
        """Average busy fraction of the unit pairs over the makespan."""
        if self.makespan_cycles <= 0:
            return 0.0
        return self.unit_busy_cycles / self.makespan_cycles


class EngineSimulator:
    """Event-driven simulation: ``units`` pairs serving queued fragments.

    Each fragment occupies one cipher+hash unit pair for its Figure 6
    parallel latency (descriptor fetch, overlapped data pass, tail pass).
    Fragments are taken FIFO; the simulation reports makespan, throughput
    and utilization so the multiple-units claim of Section 6.2 can be
    quantified with queueing included.
    """

    def __init__(self, design: EngineDesign = EngineDesign(),
                 mac_size: int = 20, block_size: int = 16):
        if design.units < 1:
            raise ValueError("engine needs at least one unit pair")
        self.design = design
        self.mac_size = mac_size
        self.block_size = block_size

    def _service_cycles(self, data_bytes: int) -> Tuple[float, int]:
        """Unit-pair occupancy for one fragment: overlapped data pass plus
        the cipher's serial tail.  The descriptor fetch is *not* part of
        the pair's service -- see :meth:`run`."""
        d = self.design
        total = data_bytes + self.mac_size + 1
        pad = (-total) % self.block_size
        tail = self.mac_size + 1 + pad
        overlap = max(d.hash_cycles_per_byte * data_bytes,
                      d.cipher_cycles_per_byte * data_bytes)
        return overlap + d.cipher_cycles_per_byte * tail, tail

    def run(self, fragment_sizes: List[int],
            arrival_gap: float = 0.0) -> SimOutcome:
        """Serve ``fragment_sizes`` (bytes each); optional arrival spacing.

        An empty queue is a legal no-op (zero fragments, zero makespan) --
        callers draining whatever a connection produced must not have to
        special-case "nothing this round".

        The engine's control unit fetches a fragment's descriptor as soon
        as the fragment arrives, concurrently with whatever the cipher+
        hash pairs are processing: a fragment is *ready* at ``arrival +
        descriptor_overhead`` and occupies a pair only for its data/tail
        service.  On an idle engine this reproduces Figure 6's closed-form
        latency (descriptor + overlapped pass + tail) exactly; for
        back-to-back fragments the fetch hides behind the previous
        fragment's service instead of being re-paid serially.  Fragments
        are assigned FIFO to the earliest-free pair (ties by heap order,
        deterministic for identical floats).
        """
        if not fragment_sizes:
            return SimOutcome(fragments=0, bytes_processed=0,
                              makespan_cycles=0.0, unit_busy_cycles=0.0)
        # Min-heap of unit-free times, one entry per unit pair.
        units: List[float] = [0.0] * self.design.units
        heapq.heapify(units)
        busy = 0.0
        nbytes = 0
        finish = 0.0
        for i, size in enumerate(fragment_sizes):
            ready = i * arrival_gap + self.design.descriptor_overhead
            service, tail = self._service_cycles(size)
            free_at = heapq.heappop(units)
            start = max(free_at, ready)
            done = start + service
            heapq.heappush(units, done)
            busy += service
            nbytes += size + tail
            finish = max(finish, done)
        return SimOutcome(fragments=len(fragment_sizes),
                          bytes_processed=nbytes, makespan_cycles=finish,
                          unit_busy_cycles=busy / self.design.units)
