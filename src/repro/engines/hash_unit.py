"""Hardware hash-unit model (the "hashing unit" of Figure 6).

The crypto engine of Section 6.2.3 contains a hashing unit alongside the
AES unit.  This model prices that unit standalone, symmetric with
:mod:`repro.engines.aes_unit`: a block-at-a-time MD5/SHA-1 datapath that
retires one 64-byte block in a fixed number of cycles (bounded below by
the algorithms' 64/80 serial steps -- the hash chain cannot be
parallelized away, only pipelined across *independent* messages, which is
exactly what the engine's multi-session bulk phase provides).
"""

from __future__ import annotations

from dataclasses import dataclass

import repro.crypto.md5 as md5_mod
import repro.crypto.sha1 as sha1_mod
from ..perf import CpuModel, PENTIUM4

#: Software cycles per 64-byte block, from the instrumented kernels.
_SOFTWARE = {
    "md5": (md5_mod.MD5_BLOCK, md5_mod.MD5_STALL),
    "sha1": (sha1_mod.SHA1_BLOCK, sha1_mod.SHA1_STALL),
}

#: Serial steps per block: the lower bound a single-message hash unit
#: cannot beat (one step's result feeds the next).
SERIAL_STEPS = {"md5": 64, "sha1": 80}


@dataclass(frozen=True)
class HashUnitDesign:
    """Hardware parameters of the hash unit."""

    #: Cycles per compression-function step (1 = one step per clock).
    cycles_per_step: float = 1.0
    #: Fixed per-block overhead (message load, state writeback).
    block_overhead: float = 8.0
    #: Independent messages interleaved in the pipelined datapath.
    pipeline_depth: int = 1


@dataclass
class HashUnitEstimate:
    algorithm: str
    software_cycles_per_block: float
    unit_cycles_per_block: float

    @property
    def speedup(self) -> float:
        return self.software_cycles_per_block / self.unit_cycles_per_block

    def throughput_mbps(self, cpu: CpuModel = PENTIUM4) -> float:
        return 64.0 / (self.unit_cycles_per_block / cpu.frequency_hz) / 1e6


def estimate(algorithm: str = "sha1",
             design: HashUnitDesign = HashUnitDesign(),
             cpu: CpuModel = PENTIUM4) -> HashUnitEstimate:
    """Compare the software block against the hardware unit.

    With ``pipeline_depth`` independent messages, the per-message block
    cost amortizes: the serial chain constrains a *single* message, not
    the datapath.
    """
    if algorithm not in _SOFTWARE:
        raise KeyError(f"unknown hash {algorithm!r}; "
                       f"choose from {sorted(_SOFTWARE)}")
    if design.pipeline_depth < 1:
        raise ValueError("pipeline depth must be at least 1")
    m, stall = _SOFTWARE[algorithm]
    software = cpu.cycles(m, stall)
    steps = SERIAL_STEPS[algorithm]
    per_message = (steps * design.cycles_per_step + design.block_overhead)
    unit = per_message / design.pipeline_depth
    return HashUnitEstimate(algorithm=algorithm,
                            software_cycles_per_block=software,
                            unit_cycles_per_block=unit)
