"""Legacy setup shim.

The primary metadata lives in pyproject.toml; this file exists so that
editable installs work in offline environments that lack the `wheel`
package (pip then falls back to `setup.py develop`).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Anatomy and Performance of SSL Processing' "
        "(ISPASS 2005)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
)
