"""IPsec ESP: packet format, anti-replay, tunnels, failure injection."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rand import PseudoRandom
from repro.ipsec import (
    ALL_ESP_SUITES, ESP_3DES_SHA1, ESP_AES128_SHA1,
    IpsecError, ReplayError, ReplayWindow, SecurityAssociation,
    decapsulate, encapsulate, establish_tunnel,
)


def make_sa_pair(suite=ESP_AES128_SHA1, spi=0x1234):
    keys = PseudoRandom(b"sa-keys")
    ck = keys.bytes(suite.key_len)
    ak = keys.bytes(suite.auth_key_len)
    tx = SecurityAssociation(spi, suite, ck, ak)
    rx = SecurityAssociation(spi, suite, ck, ak)
    return tx, rx


class TestReplayWindow:
    def test_in_order(self):
        w = ReplayWindow()
        for seq in range(1, 100):
            w.check_and_update(seq)
        assert w.top == 99

    def test_duplicate_rejected(self):
        w = ReplayWindow()
        w.check_and_update(5)
        with pytest.raises(ReplayError):
            w.check_and_update(5)

    def test_out_of_order_within_window(self):
        w = ReplayWindow()
        w.check_and_update(10)
        w.check_and_update(7)   # late but inside window
        w.check_and_update(9)
        with pytest.raises(ReplayError):
            w.check_and_update(7)  # now a replay

    def test_below_window_rejected(self):
        w = ReplayWindow(size=64)
        w.check_and_update(100)
        with pytest.raises(ReplayError):
            w.check_and_update(36)  # 100 - 36 = 64 >= window
        w.check_and_update(37)      # 63 back: still acceptable

    def test_zero_rejected(self):
        with pytest.raises(ReplayError):
            ReplayWindow().check_and_update(0)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            ReplayWindow(size=16)

    @given(st.lists(st.integers(1, 2000), min_size=1, max_size=300,
                    unique=True))
    @settings(max_examples=30, deadline=None)
    def test_unique_in_window_sequences_accepted(self, seqs):
        """Any unique sequence stream is accepted so long as each number
        is within the window of the running maximum when it arrives."""
        w = ReplayWindow(size=64)
        top = 0
        for seq in seqs:
            if seq > top or top - seq < 64:
                w.check_and_update(seq)
                top = max(top, seq)


class TestEspPackets:
    @pytest.mark.parametrize("suite", ALL_ESP_SUITES,
                             ids=lambda s: s.name)
    def test_roundtrip_every_suite(self, suite):
        tx, rx = make_sa_pair(suite)
        rng = PseudoRandom(b"iv")
        payload = b"inner packet" * 13
        assert decapsulate(rx, encapsulate(tx, payload, rng)) == payload

    def test_packet_structure(self):
        tx, _ = make_sa_pair()
        pkt = encapsulate(tx, b"data", PseudoRandom(b"iv"))
        assert int.from_bytes(pkt[0:4], "big") == 0x1234   # SPI
        assert int.from_bytes(pkt[4:8], "big") == 1        # first seq

    def test_ciphertext_block_aligned(self):
        tx, _ = make_sa_pair(ESP_3DES_SHA1)
        for n in range(1, 25):
            pkt = encapsulate(tx, bytes(n), PseudoRandom(b"iv"))
            body = len(pkt) - 8 - tx.suite.iv_len - 12
            assert body % 8 == 0

    def test_empty_payload(self):
        tx, rx = make_sa_pair()
        pkt = encapsulate(tx, b"", PseudoRandom(b"iv"))
        assert decapsulate(rx, pkt) == b""

    def test_sequence_increments(self):
        tx, rx = make_sa_pair()
        rng = PseudoRandom(b"iv")
        for expected_seq in (1, 2, 3):
            pkt = encapsulate(tx, b"p", rng)
            assert int.from_bytes(pkt[4:8], "big") == expected_seq
            decapsulate(rx, pkt)

    def test_tampered_icv_rejected(self):
        tx, rx = make_sa_pair()
        pkt = bytearray(encapsulate(tx, b"payload", PseudoRandom(b"iv")))
        pkt[-1] ^= 1
        with pytest.raises(IpsecError, match="ICV"):
            decapsulate(rx, bytes(pkt))

    def test_tampered_ciphertext_rejected(self):
        tx, rx = make_sa_pair()
        pkt = bytearray(encapsulate(tx, b"payload" * 5, PseudoRandom(b"iv")))
        pkt[20] ^= 0x80
        with pytest.raises(IpsecError, match="ICV"):
            decapsulate(rx, bytes(pkt))

    def test_wrong_spi_rejected(self):
        tx, _ = make_sa_pair(spi=0x1111)
        _, rx = make_sa_pair(spi=0x2222)
        pkt = encapsulate(tx, b"p", PseudoRandom(b"iv"))
        with pytest.raises(IpsecError, match="SPI"):
            decapsulate(rx, pkt)

    def test_replayed_packet_rejected(self):
        tx, rx = make_sa_pair()
        pkt = encapsulate(tx, b"once only", PseudoRandom(b"iv"))
        decapsulate(rx, pkt)
        with pytest.raises(ReplayError):
            decapsulate(rx, pkt)

    def test_truncated_packet_rejected(self):
        tx, rx = make_sa_pair()
        pkt = encapsulate(tx, b"p" * 40, PseudoRandom(b"iv"))
        with pytest.raises(IpsecError):
            decapsulate(rx, pkt[:12])

    def test_replay_checked_after_auth(self):
        """A forged packet with a huge sequence number must not advance
        the window (ICV fails first)."""
        tx, rx = make_sa_pair()
        rng = PseudoRandom(b"iv")
        forged = bytearray(encapsulate(tx, b"a", rng))
        forged[4:8] = (999).to_bytes(4, "big")  # bogus seq, stale ICV
        with pytest.raises(IpsecError, match="ICV"):
            decapsulate(rx, bytes(forged))
        assert rx.window.top == 0  # window untouched

    def test_sequence_exhaustion(self):
        tx, _ = make_sa_pair()
        tx.seq = 0xFFFFFFFF
        with pytest.raises(IpsecError, match="rekey"):
            encapsulate(tx, b"p", PseudoRandom(b"iv"))

    @given(st.binary(max_size=600))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payload):
        tx, rx = make_sa_pair()
        pkt = encapsulate(tx, payload, PseudoRandom(b"prop-iv"))
        assert decapsulate(rx, pkt) == payload


class TestSaValidation:
    def test_bad_spi(self):
        with pytest.raises(IpsecError):
            SecurityAssociation(0, ESP_AES128_SHA1, bytes(16), bytes(20))

    def test_bad_key_lengths(self):
        with pytest.raises(IpsecError):
            SecurityAssociation(1, ESP_AES128_SHA1, bytes(15), bytes(20))
        with pytest.raises(IpsecError):
            SecurityAssociation(1, ESP_AES128_SHA1, bytes(16), bytes(19))


class TestTunnel:
    def test_bidirectional(self):
        a, b = establish_tunnel(b"secret", ESP_AES128_SHA1)
        assert b.unprotect(a.protect(b"a->b")) == b"a->b"
        assert a.unprotect(b.protect(b"b->a")) == b"b->a"

    def test_directions_use_different_keys(self):
        a, _ = establish_tunnel(b"secret", ESP_AES128_SHA1)
        assert a.outbound.cipher_key != a.inbound.cipher_key
        assert a.outbound.spi != a.inbound.spi

    def test_different_secrets_cannot_interoperate(self):
        a, _ = establish_tunnel(b"secret-one", ESP_AES128_SHA1)
        _, b = establish_tunnel(b"secret-two", ESP_AES128_SHA1)
        with pytest.raises(IpsecError):
            b.unprotect(a.protect(b"crossed wires"))

    def test_empty_secret_rejected(self):
        with pytest.raises(IpsecError):
            establish_tunnel(b"", ESP_AES128_SHA1)

    def test_many_packets_with_drops_and_reordering(self):
        """A lossy, reordering network: the receiver still accepts every
        packet exactly once."""
        a, b = establish_tunnel(b"secret", ESP_AES128_SHA1)
        packets = [a.protect(f"pkt-{i}".encode()) for i in range(40)]
        # Deliver with local reordering (swap pairs) and some drops.
        order = list(range(40))
        for i in range(0, 38, 4):
            order[i], order[i + 1] = order[i + 1], order[i]
        delivered = [order[i] for i in range(40) if i % 7 != 3]
        got = {b.unprotect(packets[i]).decode() for i in delivered}
        assert got == {f"pkt-{i}" for i in delivered}


class TestRekey:
    def test_rekeyed_endpoints_interoperate(self):
        from repro.ipsec import establish_tunnel, rekey_endpoint
        a, b = establish_tunnel(b"secret", ESP_AES128_SHA1)
        a2 = rekey_endpoint(a, b"secret", generation=1)
        b2 = rekey_endpoint(b, b"secret", generation=1)
        assert b2.unprotect(a2.protect(b"fresh keys")) == b"fresh keys"
        assert a2.unprotect(b2.protect(b"both ways")) == b"both ways"

    def test_rekey_changes_keys_and_spis(self):
        from repro.ipsec import establish_tunnel, rekey_endpoint
        a, _ = establish_tunnel(b"secret", ESP_AES128_SHA1)
        a2 = rekey_endpoint(a, b"secret", generation=1)
        assert a2.outbound.cipher_key != a.outbound.cipher_key
        assert a2.outbound.spi != a.outbound.spi

    def test_old_packets_rejected_after_rekey(self):
        from repro.ipsec import establish_tunnel, rekey_endpoint
        a, b = establish_tunnel(b"secret", ESP_AES128_SHA1)
        old_packet = a.protect(b"pre-rekey")
        b2 = rekey_endpoint(b, b"secret", generation=1)
        with pytest.raises(IpsecError):
            b2.unprotect(old_packet)

    def test_replay_window_resets(self):
        from repro.ipsec import establish_tunnel, rekey_endpoint
        a, b = establish_tunnel(b"secret", ESP_AES128_SHA1)
        for _ in range(5):
            b.unprotect(a.protect(b"x"))
        a2 = rekey_endpoint(a, b"secret", 1)
        b2 = rekey_endpoint(b, b"secret", 1)
        assert b2.inbound.window.top == 0
        b2.unprotect(a2.protect(b"first on new sa"))
        assert b2.inbound.window.top == 1
