"""Command-line tools (repro.tools.speed / repro.tools.anatomy)."""

import json

import pytest

from repro.tools import anatomy, speed


class TestSpeed:
    def test_table_output(self, capsys):
        assert speed.main(["md5", "--bytes", "2048"]) == 0
        out = capsys.readouterr().out
        assert "MD5" in out
        assert "modelled MB/s" in out

    def test_json_output(self, capsys):
        assert speed.main(["rc4", "sha1", "--json", "--bytes", "1024"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert [d["algorithm"] for d in data] == ["rc4", "sha1"]
        for d in data:
            assert d["modelled_mbps"] > 0
            assert d["bytes"] == 1024

    def test_rsa_bits_option(self, capsys):
        assert speed.main(["rsa", "--rsa-bits", "512", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data[0]["bytes"] == 64  # 512-bit modulus

    def test_default_runs_all(self, capsys):
        assert speed.main(["--bytes", "1024"]) == 0
        out = capsys.readouterr().out
        for name in ("AES", "DES", "3DES", "RC4", "RSA", "MD5", "SHA1"):
            assert name in out

    def test_unknown_algorithm_rejected(self, capsys):
        with pytest.raises(SystemExit):
            speed.main(["blowfish"])

    def test_bad_bytes_rejected(self):
        with pytest.raises(SystemExit):
            speed.main(["aes", "--bytes", "100"])


class TestAnatomy:
    def test_kernel_target(self, capsys):
        assert anatomy.main(["sha1"]) == 0
        out = capsys.readouterr().out
        assert "==== sha1" in out

    def test_rsa_region_tree(self, capsys):
        assert anatomy.main(["rsa"]) == 0
        out = capsys.readouterr().out
        assert "rsa_private_decryption" in out
        assert "computation" in out

    def test_csv_flag(self, capsys):
        assert anatomy.main(["rsa", "--csv"]) == 0
        out = capsys.readouterr().out
        assert "function,module,calls,cycles" in out
        assert "bn_mul_add_words" in out

    def test_unknown_target(self):
        with pytest.raises(SystemExit):
            anatomy.main(["quantum"])

    @pytest.mark.slow
    def test_handshake_target(self, capsys):
        assert anatomy.main(["handshake", "--crt"]) == 0
        out = capsys.readouterr().out
        assert "get_client_kx" in out


class TestCompare:
    def test_crt_knob(self, capsys):
        from repro.tools import compare
        assert compare.main(["--knob", "crt", "--bits", "512"]) == 0
        out = capsys.readouterr().out
        assert "bn_mul_add_words" in out
        assert "non-CRT" in out and "totals:" in out

    def test_suite_knob(self, capsys):
        from repro.tools import compare
        assert compare.main(["--knob", "suite", "--bits", "512",
                             "--suites", "DES-CBC3-SHA", "RC4-MD5"]) == 0
        out = capsys.readouterr().out
        assert "RC4-MD5" in out

    @pytest.mark.slow
    def test_version_knob(self, capsys):
        from repro.tools import compare
        assert compare.main(["--knob", "version", "--bits", "512"]) == 0
        assert "TLS1.0" in capsys.readouterr().out
