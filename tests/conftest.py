"""Shared fixtures.

Every test runs under its own freshly activated profiler so that cycle
accounting from one test can never leak into another, and expensive RSA
identities are generated once per session.
"""

from __future__ import annotations

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.crypto.rsa import generate_key
from repro.ssl.x509 import make_self_signed


@pytest.fixture(autouse=True)
def isolated_profiler():
    """Activate a fresh profiler for the duration of each test."""
    profiler = perf.Profiler()
    with perf.activate(profiler):
        yield profiler


@pytest.fixture(scope="session")
def rsa512():
    """A deterministic 512-bit RSA key (fast; for protocol tests)."""
    return generate_key(512, rng=PseudoRandom(b"fixture-512"))


@pytest.fixture(scope="session")
def rsa1024():
    """A deterministic 1024-bit RSA key (the paper's size)."""
    return generate_key(1024, rng=PseudoRandom(b"fixture-1024"))


@pytest.fixture(scope="session")
def identity512(rsa512):
    """(key, certificate) pair with a 512-bit key."""
    return rsa512, make_self_signed("CN=test-server-512", rsa512)


@pytest.fixture(scope="session")
def identity1024(rsa1024):
    """(key, certificate) pair with the paper's 1024-bit key."""
    return rsa1024, make_self_signed("CN=test-server-1024", rsa1024)


@pytest.fixture()
def rng():
    """A deterministic PRNG, fresh per test."""
    return PseudoRandom(b"test-rng")
