"""Public API surface: __all__ integrity and top-level importability.

A downstream user's first contact is ``from repro.X import Y``; these
tests pin every advertised name to an importable attribute so the public
surface cannot silently rot.
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.perf",
    "repro.bignum",
    "repro.crypto",
    "repro.ssl",
    "repro.webserver",
    "repro.engines",
    "repro.ipsec",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    module = importlib.import_module(package)
    assert hasattr(module, "__all__"), package
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_module_docstrings_present(package):
    module = importlib.import_module(package)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, package


def test_headline_imports():
    """The README's quickstart names, verbatim."""
    from repro.ssl import DES_CBC3_SHA
    from repro.ssl.loopback import make_server_identity, run_session  # noqa: F401
    from repro.crypto import AES, MD5, RC4, SHA1, TripleDES, generate_key  # noqa: F401
    from repro.perf import PENTIUM4, Profiler  # noqa: F401
    assert DES_CBC3_SHA.name == "DES-CBC3-SHA"


def test_version_string():
    import repro
    assert repro.__version__.count(".") == 2


def test_no_accidental_stdlib_shadowing():
    """Submodules must not shadow their own public callables (the md5()/
    sha1() convenience constructors live in their modules only)."""
    import repro.crypto as crypto
    import repro.crypto.md5 as md5_module
    assert not callable(getattr(crypto, "md5", None)) or \
        hasattr(getattr(crypto, "md5"), "MD5")
    assert md5_module.MD5 is crypto.MD5


PUBLIC_ENTRY_POINTS = [
    ("repro.tools.speed", "main"),
    ("repro.tools.anatomy", "main"),
]


@pytest.mark.parametrize("module,attr", PUBLIC_ENTRY_POINTS)
def test_cli_entry_points(module, attr):
    mod = importlib.import_module(module)
    assert callable(getattr(mod, attr))
