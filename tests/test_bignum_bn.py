"""Unit + property tests for BigNum arithmetic."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.bignum import BigNum, mod_inverse

nat = st.integers(0, 2**512)
pos = st.integers(1, 2**512)


class TestConstruction:
    def test_zero(self):
        z = BigNum.zero()
        assert z.is_zero()
        assert z.to_int() == 0
        assert z.nwords() == 0
        assert z.nbits() == 0

    def test_one(self):
        assert BigNum.one().to_int() == 1

    def test_leading_zero_words_trimmed(self):
        assert BigNum([1, 0, 0]).nwords() == 1

    @given(nat)
    def test_int_roundtrip(self, v):
        assert BigNum.from_int(v).to_int() == v

    @given(st.binary(max_size=64))
    def test_bytes_roundtrip_modulo_leading_zeros(self, data):
        bn = BigNum.from_bytes(data)
        assert bn.to_int() == int.from_bytes(data, "big") if data else True

    def test_to_bytes_padding(self):
        assert BigNum.from_int(0x1234).to_bytes(4) == b"\x00\x00\x124"

    def test_to_bytes_too_short_rejected(self):
        with pytest.raises(ValueError):
            BigNum.from_int(1 << 64).to_bytes(4)

    @given(nat)
    def test_nbits_matches_python(self, v):
        assert BigNum.from_int(v).nbits() == v.bit_length()

    @given(nat)
    def test_bit_accessor(self, v):
        bn = BigNum.from_int(v)
        for i in (0, 1, 17, 100, 511):
            assert bn.bit(i) == (v >> i) & 1

    def test_is_odd(self):
        assert BigNum.from_int(7).is_odd()
        assert not BigNum.from_int(8).is_odd()
        assert not BigNum.zero().is_odd()


class TestComparison:
    @given(nat, nat)
    def test_ucmp_matches_python(self, a, b):
        expect = (a > b) - (a < b)
        assert BigNum.from_int(a).ucmp(BigNum.from_int(b)) == expect

    @given(nat, nat)
    def test_ordering_operators(self, a, b):
        A, B = BigNum.from_int(a), BigNum.from_int(b)
        assert (A < B) == (a < b)
        assert (A <= B) == (a <= b)
        assert (A == B) == (a == b)

    def test_hashable(self):
        assert len({BigNum.from_int(5), BigNum.from_int(5),
                    BigNum.from_int(6)}) == 2


class TestArithmetic:
    @given(nat, nat)
    def test_uadd(self, a, b):
        assert BigNum.from_int(a).uadd(BigNum.from_int(b)).to_int() == a + b

    @given(nat, nat)
    def test_usub(self, a, b):
        hi, lo = max(a, b), min(a, b)
        assert BigNum.from_int(hi).usub(
            BigNum.from_int(lo)).to_int() == hi - lo

    def test_usub_negative_rejected(self):
        with pytest.raises(ValueError):
            BigNum.from_int(1).usub(BigNum.from_int(2))

    @given(nat, nat)
    @settings(max_examples=60)
    def test_mul(self, a, b):
        assert BigNum.from_int(a).mul(BigNum.from_int(b)).to_int() == a * b

    def test_mul_by_zero(self):
        assert BigNum.from_int(12345).mul(BigNum.zero()).is_zero()

    @given(nat)
    @settings(max_examples=60)
    def test_sqr_matches_mul(self, a):
        A = BigNum.from_int(a)
        assert A.sqr().to_int() == a * a

    def test_sqr_zero_and_one(self):
        assert BigNum.zero().sqr().is_zero()
        assert BigNum.one().sqr().to_int() == 1

    @given(nat, pos)
    def test_divmod(self, a, m):
        q, r = BigNum.from_int(a).divmod(BigNum.from_int(m))
        assert q.to_int() == a // m
        assert r.to_int() == a % m

    def test_divmod_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            BigNum.from_int(5).divmod(BigNum.zero())

    @given(nat, pos)
    def test_mod(self, a, m):
        assert BigNum.from_int(a).mod(BigNum.from_int(m)).to_int() == a % m

    def test_copy_is_independent(self):
        a = BigNum.from_int(42)
        b = a.copy()
        b.d.append(99)
        assert a.to_int() == 42

    def test_cleanse_zeroizes(self):
        a = BigNum.from_int(1 << 200)
        a.cleanse()
        assert a.is_zero()


class TestShifts:
    @given(nat, st.integers(0, 8))
    def test_word_shifts(self, v, k):
        bn = BigNum.from_int(v)
        assert bn.lshift_words(k).to_int() == v << (32 * k)
        assert bn.rshift_words(k).to_int() == v >> (32 * k)

    @given(nat, st.integers(0, 8))
    def test_mask_words(self, v, k):
        assert BigNum.from_int(v).mask_words(k).to_int() == \
            v % (1 << (32 * k))


class TestModInverse:
    @given(st.integers(3, 2**256).filter(lambda x: x % 2 == 1),
           st.integers(1, 2**256))
    @settings(max_examples=40)
    def test_inverse_property(self, m, a):
        a = a | 1  # ensure odd vs odd m is usually coprime; skip otherwise
        import math
        if math.gcd(a, m) != 1:
            return
        inv = mod_inverse(BigNum.from_int(a), BigNum.from_int(m))
        assert (inv.to_int() * a) % m == 1

    def test_non_coprime_rejected(self):
        with pytest.raises(ValueError, match="coprime"):
            mod_inverse(BigNum.from_int(6), BigNum.from_int(9))

    def test_zero_modulus_rejected(self):
        with pytest.raises(ValueError):
            mod_inverse(BigNum.from_int(3), BigNum.zero())


class TestChargeAttribution:
    def test_mul_charges_kernel_functions(self, isolated_profiler):
        BigNum.from_int(2**200).mul(BigNum.from_int(2**200))
        names = set(isolated_profiler.functions)
        assert "bn_mul_add_words" in names or "bn_mul_words" in names
        assert "BN_mul" in names

    def test_sqr_charges_sqr_words(self, isolated_profiler):
        BigNum.from_int(2**200 + 17).sqr()
        assert "bn_sqr_words" in isolated_profiler.functions

    def test_division_charges_bn_div(self, isolated_profiler):
        BigNum.from_int(2**300).divmod(BigNum.from_int(2**100 + 3))
        assert "BN_div" in isolated_profiler.functions


class TestAlgebraicLaws:
    """Ring laws over the word-array arithmetic (hypothesis)."""

    @given(nat, nat, nat)
    @settings(max_examples=40, deadline=None)
    def test_mul_distributes_over_add(self, a, b, c):
        A, B, C = (BigNum.from_int(v) for v in (a, b, c))
        left = A.mul(B.uadd(C))
        right = A.mul(B).uadd(A.mul(C))
        assert left == right

    @given(nat, nat)
    @settings(max_examples=40, deadline=None)
    def test_mul_commutes(self, a, b):
        A, B = BigNum.from_int(a), BigNum.from_int(b)
        assert A.mul(B) == B.mul(A)

    @given(nat, nat, nat)
    @settings(max_examples=25, deadline=None)
    def test_mul_associates(self, a, b, c):
        A, B, C = (BigNum.from_int(v) for v in (a, b, c))
        assert A.mul(B).mul(C) == A.mul(B.mul(C))

    @given(nat, pos)
    @settings(max_examples=40, deadline=None)
    def test_divmod_reconstructs(self, a, m):
        A, M = BigNum.from_int(a), BigNum.from_int(m)
        q, r = A.divmod(M)
        assert q.mul(M).uadd(r) == A
        assert r < M

    @given(nat, nat, pos)
    @settings(max_examples=25, deadline=None)
    def test_modular_reduction_homomorphism(self, a, b, m):
        A, B, M = (BigNum.from_int(v) for v in (a, b, m))
        direct = A.mul(B).mod(M)
        reduced = A.mod(M).mul(B.mod(M)).mod(M)
        assert direct == reduced

    @given(nat)
    @settings(max_examples=30, deadline=None)
    def test_add_sub_inverse(self, a):
        A = BigNum.from_int(a)
        B = BigNum.from_int(a // 2 + 1)
        assert A.uadd(B).usub(B) == A
