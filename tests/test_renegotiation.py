"""Renegotiation: fresh handshakes over an established connection.

Section 4.1's observation — "session re-negotiation using the previously
setup keys can avoid the public key encryption" — exercised literally: the
server sends a HelloRequest, the client re-handshakes (offering its cached
session for an abbreviated exchange), and traffic keys roll over without
dropping the connection.
"""

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, SessionCache, SslClient, SslServer
from repro.ssl.errors import HandshakeFailure, UnexpectedMessage
from repro.ssl.loopback import pump


@pytest.fixture()
def connected(identity512):
    key, cert = identity512
    cache = SessionCache()
    sp, cp = perf.Profiler(), perf.Profiler()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                           session_cache=cache,
                           rng=PseudoRandom(b"reneg-s"))
    with perf.activate(cp):
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"reneg-c"))
        client.start_handshake()
    pump(client, server, cp, sp)
    assert client.handshake_complete and server.handshake_complete
    return client, server, cp, sp


def transfer(client, server, cp, sp, payload):
    with perf.activate(cp):
        client.write(payload)
    with perf.activate(sp):
        server.receive(client.pending_output())
        return server.read()


class TestServerInitiated:
    def test_resumed_renegotiation(self, connected):
        client, server, cp, sp = connected
        original_master = server.master_secret
        with perf.activate(sp):
            server.request_renegotiation()
        pump(client, server, cp, sp)
        assert server.renegotiations == 1
        assert client.renegotiations == 1
        assert server.resumed           # session id was offered and found
        assert server.master_secret == original_master
        assert transfer(client, server, cp, sp, b"post-reneg") == \
            b"post-reneg"

    def test_resumed_renegotiation_skips_rsa(self, connected):
        client, server, cp, sp = connected
        baseline = sp.region_cycles(
            "get_client_kx/rsa_private_decryption")
        with perf.activate(sp):
            server.request_renegotiation()
        pump(client, server, cp, sp)
        after = sp.region_cycles("get_client_kx/rsa_private_decryption")
        assert after == baseline  # no new RSA decryption happened

    def test_data_flows_under_old_keys_before_reneg_completes(
            self, connected):
        client, server, cp, sp = connected
        with perf.activate(sp):
            server.request_renegotiation()
        # Client has not yet seen the HelloRequest: writes still work.
        assert transfer(client, server, cp, sp, b"mid-flight") == \
            b"mid-flight"
        pump(client, server, cp, sp)
        assert server.handshake_complete

    def test_multiple_renegotiations(self, connected):
        client, server, cp, sp = connected
        for i in range(3):
            with perf.activate(sp):
                server.request_renegotiation()
            pump(client, server, cp, sp)
            assert server.handshake_complete
            assert transfer(client, server, cp, sp,
                            f"round-{i}".encode()) == f"round-{i}".encode()
        assert server.renegotiations == 3

    def test_before_first_handshake_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert)
        with pytest.raises(UnexpectedMessage):
            server.request_renegotiation()

    def test_disabled_renegotiation(self, identity512):
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                               allow_renegotiation=False,
                               rng=PseudoRandom(b"nr-s"))
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"nr-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        with pytest.raises(UnexpectedMessage):
            server.request_renegotiation()
        # A client-initiated attempt is declined with the warning-level
        # no_renegotiation alert; both sides stay up on the old keys.
        with perf.activate(cp):
            client.renegotiate()
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert not server.closed
            wire = server.pending_output()
        with perf.activate(cp):
            client.receive(wire)   # warning alert: abandon renegotiation
        assert client.handshake_complete and not client.closed
        assert transfer(client, server, cp, sp,
                        b"still alive") == b"still alive"


class TestClientInitiated:
    def test_full_renegotiation_changes_master(self, connected):
        client, server, cp, sp = connected
        original_master = server.master_secret
        with perf.activate(cp):
            client.renegotiate(session=None)  # force a full handshake
        pump(client, server, cp, sp)
        assert not server.resumed
        assert server.master_secret != original_master
        assert transfer(client, server, cp, sp, b"new-keys") == b"new-keys"

    def test_keys_actually_roll_over(self, connected):
        client, server, cp, sp = connected
        state_before = server._records._read_state
        with perf.activate(cp):
            client.renegotiate(session=None)
        pump(client, server, cp, sp)
        assert server._records._read_state is not state_before

    def test_before_handshake_rejected(self):
        client = SslClient()
        with pytest.raises(HandshakeFailure):
            client.renegotiate()
