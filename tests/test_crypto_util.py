"""Constant-time comparison and DES weak-key handling."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.des import (
    DES, SEMI_WEAK_KEYS, WEAK_KEYS, is_weak_key,
)
from repro.crypto.util import ct_equal


class TestCtEqual:
    def test_equal(self):
        assert ct_equal(b"same-bytes", b"same-bytes")

    def test_unequal(self):
        assert not ct_equal(b"same-bytes", b"same-bytez")

    def test_length_mismatch(self):
        assert not ct_equal(b"short", b"longer-bytes")

    def test_empty(self):
        assert ct_equal(b"", b"")

    @given(st.binary(max_size=100), st.binary(max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_matches_python_equality(self, a, b):
        assert ct_equal(a, b) == (a == b)

    def test_charged(self, isolated_profiler):
        ct_equal(b"x" * 20, b"y" * 20)
        assert "CRYPTO_memcmp" in isolated_profiler.functions


class TestWeakKeys:
    @pytest.mark.parametrize("key", WEAK_KEYS)
    def test_weak_key_self_inverse(self, key):
        """The defining property: E_k(E_k(x)) == x."""
        d = DES(key)
        block = b"weakness"
        assert d.encrypt_block(d.encrypt_block(block)) == block

    @pytest.mark.parametrize("pair_index", range(0, len(SEMI_WEAK_KEYS), 2))
    def test_semi_weak_pairs_invert_each_other(self, pair_index):
        """E_k2(E_k1(x)) == x for each semi-weak pair."""
        k1, k2 = SEMI_WEAK_KEYS[pair_index], SEMI_WEAK_KEYS[pair_index + 1]
        block = b"SemiWeak"
        assert DES(k2).encrypt_block(DES(k1).encrypt_block(block)) == block

    @pytest.mark.parametrize("key", WEAK_KEYS + SEMI_WEAK_KEYS)
    def test_detected(self, key):
        assert is_weak_key(key)

    def test_parity_insensitive(self):
        # Same key with flipped parity bits is still weak.
        noisy = bytes(b ^ 0x01 for b in WEAK_KEYS[0])
        assert is_weak_key(noisy)

    def test_normal_keys_pass(self):
        for key in (b"12345678", bytes(range(8)), b"\x5a" * 8):
            assert not is_weak_key(key)
            DES(key, check_weak=True)  # accepted

    def test_checked_constructor_rejects(self):
        with pytest.raises(ValueError, match="weak"):
            DES(WEAK_KEYS[0], check_weak=True)

    def test_unchecked_constructor_accepts(self):
        DES(WEAK_KEYS[0])  # default preserves raw FIPS behaviour

    def test_length_validated(self):
        with pytest.raises(ValueError):
            is_weak_key(b"short")
