"""MD5 and SHA-1: published vectors, hashlib cross-check, API behaviour."""

import hashlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.md5 import MD5, md5
from repro.crypto.sha1 import SHA1, sha1

# RFC 1321 appendix A.5 test suite
MD5_VECTORS = [
    (b"", "d41d8cd98f00b204e9800998ecf8427e"),
    (b"a", "0cc175b9c0f1b6a831c399e269772661"),
    (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
    (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
    (b"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"),
    (b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
     "d174ab98d277d9f5a5611c2c9f419d9f"),
    (b"1234567890" * 8, "57edf4a22be3c955ac49da2e2107b67a"),
]

# FIPS 180-2 appendix examples
SHA1_VECTORS = [
    (b"", "da39a3ee5e6b4b0d3255bfef95601890afd80709"),
    (b"abc", "a9993e364706816aba3e25717850c26c9cd0d89d"),
    (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
     "84983e441c3bd26ebaae4aa1f95129e5e54670f1"),
    (b"a" * 1_000_000, "34aa973cd4c4daa4f61eeb2bdbad27316534016f"),
]


class TestMd5Vectors:
    @pytest.mark.parametrize("message,expected", MD5_VECTORS)
    def test_rfc1321(self, message, expected):
        assert md5(message).hexdigest() == expected

    def test_digest_size(self):
        assert len(md5(b"x").digest()) == 16


class TestSha1Vectors:
    @pytest.mark.parametrize("message,expected", SHA1_VECTORS[:3])
    def test_fips(self, message, expected):
        assert sha1(message).hexdigest() == expected

    @pytest.mark.slow
    def test_million_a(self):
        message, expected = SHA1_VECTORS[3]
        assert sha1(message).hexdigest() == expected

    def test_digest_size(self):
        assert len(sha1(b"x").digest()) == 20


class TestAgainstHashlib:
    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_md5_matches(self, data):
        assert md5(data).digest() == hashlib.md5(data).digest()

    @given(st.binary(max_size=2000))
    @settings(max_examples=50, deadline=None)
    def test_sha1_matches(self, data):
        assert sha1(data).digest() == hashlib.sha1(data).digest()

    @given(st.lists(st.binary(max_size=200), max_size=12))
    @settings(max_examples=40, deadline=None)
    def test_incremental_equals_oneshot(self, chunks):
        joined = b"".join(chunks)
        m, s = MD5(), SHA1()
        for chunk in chunks:
            m.update(chunk)
            s.update(chunk)
        assert m.digest() == hashlib.md5(joined).digest()
        assert s.digest() == hashlib.sha1(joined).digest()


class TestApi:
    @pytest.mark.parametrize("factory", [MD5, SHA1])
    def test_update_rejects_str(self, factory):
        with pytest.raises(TypeError):
            factory().update("not bytes")

    @pytest.mark.parametrize("factory", [MD5, SHA1])
    def test_copy_snapshots_state(self, factory):
        h = factory(b"prefix-")
        snap = h.copy()
        h.update(b"tail1")
        snap.update(b"tail2")
        assert h.digest() == factory(b"prefix-tail1").digest()
        assert snap.digest() == factory(b"prefix-tail2").digest()

    @pytest.mark.parametrize("factory", [MD5, SHA1])
    def test_digest_is_idempotent_pure(self, factory):
        h = factory(b"data")
        assert h.digest() == h.digest()

    @pytest.mark.parametrize("factory", [MD5, SHA1])
    def test_accepts_bytearray_and_memoryview(self, factory):
        ref = factory(b"hello").digest()
        assert factory(bytearray(b"hello")).digest() == ref
        h = factory()
        h.update(memoryview(b"hello"))
        assert h.digest() == ref

    @pytest.mark.parametrize("factory,pad_boundary", [(MD5, 55), (SHA1, 55)])
    def test_padding_boundaries(self, factory, pad_boundary):
        # Lengths around the 55/56/63/64 padding edges.
        import hashlib
        ref = {MD5: hashlib.md5, SHA1: hashlib.sha1}[factory]
        for n in (54, 55, 56, 57, 63, 64, 65, 119, 120, 128):
            data = bytes(range(256))[:n] * 1
            assert factory(data).digest() == ref(data).digest()


class TestInstrumentation:
    def test_update_charges_blocks(self, isolated_profiler):
        MD5(bytes(640)).digest()
        stats = isolated_profiler.functions["MD5_Update"]
        assert stats.cycles > 0

    def test_hash_cost_scales_linearly(self):
        from repro import perf
        costs = []
        for n in (64 * 16, 64 * 32):
            p = perf.Profiler()
            with perf.activate(p):
                SHA1(bytes(n)).digest()
            costs.append(p.total_cycles())
        assert costs[1] / costs[0] == pytest.approx(2.0, rel=0.1)


class TestSha256:
    """SHA-256 (FIPS 180-2, the standard the paper cites for SHA-1)."""

    VECTORS = [
        (b"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855"),
        (b"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff"
                 "61f20015ad"),
        (b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
         "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db"
         "06c1"),
    ]

    @pytest.mark.parametrize("message,expected", VECTORS)
    def test_fips_vectors(self, message, expected):
        from repro.crypto.sha256 import SHA256
        assert SHA256(message).hexdigest() == expected

    @given(st.binary(max_size=2000))
    @settings(max_examples=40, deadline=None)
    def test_matches_hashlib(self, data):
        from repro.crypto.sha256 import SHA256
        assert SHA256(data).digest() == hashlib.sha256(data).digest()

    @given(st.lists(st.binary(max_size=150), max_size=8))
    @settings(max_examples=25, deadline=None)
    def test_incremental(self, chunks):
        from repro.crypto.sha256 import SHA256
        h = SHA256()
        for chunk in chunks:
            h.update(chunk)
        assert h.digest() == hashlib.sha256(b"".join(chunks)).digest()

    def test_copy_snapshots(self):
        from repro.crypto.sha256 import SHA256
        h = SHA256(b"pre")
        snap = h.copy()
        h.update(b"-a")
        snap.update(b"-b")
        assert h.digest() == hashlib.sha256(b"pre-a").digest()
        assert snap.digest() == hashlib.sha256(b"pre-b").digest()

    def test_costs_more_than_sha1(self):
        """The successor hash trades cycles for security margin."""
        from repro.crypto.bench import measure_hash
        sha1_m = measure_hash("sha1", 8192)
        sha256_m = measure_hash("sha256", 8192)
        assert sha256_m.cycles > 1.3 * sha1_m.cycles
        assert sha256_m.path_length > 1.3 * sha1_m.path_length

    def test_update_type_checked(self):
        from repro.crypto.sha256 import SHA256
        with pytest.raises(TypeError):
            SHA256().update("text")
