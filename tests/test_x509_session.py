"""Certificates and session cache."""

import pytest

from repro.ssl.errors import BadCertificate
from repro.ssl.session import SessionCache, SslSession
from repro.ssl.x509 import Certificate, make_self_signed


class TestCertificate:
    def test_self_signed_roundtrip(self, rsa512):
        cert = make_self_signed("CN=unit-test", rsa512, serial=7)
        parsed = Certificate.from_bytes(cert.to_bytes())
        assert parsed.subject == "CN=unit-test"
        assert parsed.serial == 7
        assert parsed.public_key.n == rsa512.n
        assert parsed.verify(rsa512.public())

    def test_unsigned_cannot_encode(self, rsa512):
        cert = Certificate(subject="s", issuer="s", serial=1, not_before=0,
                           not_after=10, public_key=rsa512.public())
        with pytest.raises(BadCertificate):
            cert.to_bytes()

    def test_verify_unsigned_false(self, rsa512):
        cert = Certificate(subject="s", issuer="s", serial=1, not_before=0,
                           not_after=10, public_key=rsa512.public())
        assert not cert.verify(rsa512.public())

    def test_tampered_subject_fails_verification(self, rsa512):
        cert = make_self_signed("CN=original", rsa512)
        cert.subject = "CN=attacker"
        assert not cert.verify(rsa512.public())

    def test_wrong_issuer_key_fails(self, rsa512):
        from repro.crypto.rand import PseudoRandom
        from repro.crypto.rsa import generate_key
        other = generate_key(256, rng=PseudoRandom(b"other-issuer"))
        cert = make_self_signed("CN=x", rsa512)
        assert not cert.verify(other.public())

    def test_garbage_bytes_rejected(self):
        with pytest.raises(BadCertificate):
            Certificate.from_bytes(b"not a certificate")

    def test_truncated_bytes_rejected(self, rsa512):
        data = make_self_signed("CN=x", rsa512).to_bytes()
        with pytest.raises(BadCertificate):
            Certificate.from_bytes(data[:len(data) // 2])

    def test_validity_window(self, rsa512):
        cert = Certificate(subject="s", issuer="s", serial=1,
                           not_before=100, not_after=200,
                           public_key=rsa512.public())
        assert cert.is_valid_at(100)
        assert cert.is_valid_at(200)
        assert not cert.is_valid_at(99)
        assert not cert.is_valid_at(201)

    def test_cross_signing(self, rsa512, rsa1024):
        """A CA key signs a leaf holding a different public key."""
        leaf = Certificate(subject="CN=leaf", issuer="CN=ca", serial=2,
                           not_before=0, not_after=2**31,
                           public_key=rsa512.public())
        leaf.sign_with(rsa1024)
        assert leaf.verify(rsa1024.public())
        assert not leaf.verify(rsa512.public())

    def test_parse_charges_x509_functions(self, rsa512, isolated_profiler):
        Certificate.from_bytes(make_self_signed("CN=q", rsa512).to_bytes())
        assert "X509_functions" in isolated_profiler.functions


class TestSslSession:
    def test_validation(self):
        with pytest.raises(ValueError):
            SslSession(session_id=b"", cipher_suite_id=10,
                       master_secret=bytes(48))
        with pytest.raises(ValueError):
            SslSession(session_id=b"x" * 33, cipher_suite_id=10,
                       master_secret=bytes(48))
        with pytest.raises(ValueError):
            SslSession(session_id=b"ok", cipher_suite_id=10,
                       master_secret=bytes(47))


class TestSessionCache:
    def _session(self, tag: bytes) -> SslSession:
        return SslSession(session_id=tag.ljust(8, b"\0"),
                          cipher_suite_id=0x0A, master_secret=bytes(48))

    def test_put_get(self):
        cache = SessionCache()
        s = self._session(b"a")
        cache.put(s)
        assert cache.get(s.session_id) is s
        assert cache.hits == 1

    def test_miss_counted(self):
        cache = SessionCache()
        assert cache.get(b"missing!") is None
        assert cache.misses == 1

    def test_lru_eviction(self):
        cache = SessionCache(capacity=2)
        a, b, c = (self._session(t) for t in (b"a", b"b", b"c"))
        cache.put(a)
        cache.put(b)
        cache.get(a.session_id)  # a is now most-recently used
        cache.put(c)             # evicts b
        assert cache.get(b.session_id) is None
        assert cache.get(a.session_id) is a
        assert len(cache) == 2

    def test_reput_moves_to_end(self):
        cache = SessionCache(capacity=2)
        a, b, c = (self._session(t) for t in (b"a", b"b", b"c"))
        cache.put(a)
        cache.put(b)
        cache.put(a)  # refresh a
        cache.put(c)  # evicts b
        assert cache.get(a.session_id) is a
        assert cache.get(b.session_id) is None

    def test_remove(self):
        cache = SessionCache()
        s = self._session(b"a")
        cache.put(s)
        assert cache.remove(s.session_id) is s
        assert cache.get(s.session_id) is None
        assert cache.remove(b"not-there") is None  # no error

    def test_remove_counts_eviction(self):
        # remove() used to bypass the evictions counter, contradicting
        # the "every early exit is counted" contract and understating
        # churn in FarmResult.shard_stats.
        cache = SessionCache()
        s = self._session(b"a")
        cache.put(s)
        cache.remove(s.session_id)
        assert cache.evictions == 1
        cache.remove(s.session_id)  # already gone: not churn
        cache.remove(b"not-there")
        assert cache.evictions == 1

    def test_every_exit_path_counts_an_eviction(self):
        # The class docstring's contract, pinned exit path by exit path:
        # LRU drop in put(), expiry drop in get(), purge_expired() sweep,
        # and explicit remove().
        cache = SessionCache(capacity=2)
        a, b, c = (self._session(t) for t in (b"a", b"b", b"c"))
        cache.put(a)
        cache.put(b)
        cache.put(c)                      # 1: LRU-evicts a
        assert cache.evictions == 1
        expired = SslSession(session_id=b"expired!", cipher_suite_id=0x0A,
                             master_secret=bytes(48), created_at=0.0,
                             lifetime=1.0)
        cache.put(expired)                # 2: LRU-evicts b
        assert cache.evictions == 2
        assert cache.get(expired.session_id, now=5.0) is None
        assert cache.evictions == 3       # 3: expiry drop on lookup
        stale = SslSession(session_id=b"stale!!!", cipher_suite_id=0x0A,
                           master_secret=bytes(48), created_at=0.0,
                           lifetime=1.0)
        cache.put(stale)
        assert cache.purge_expired(now=5.0) == 1
        assert cache.evictions == 4       # 4: purge sweep
        assert cache.remove(c.session_id) is c
        assert cache.evictions == 5       # 5: explicit remove
        assert cache.stats()["evictions"] == 5

    def test_replacement_counted_separately(self):
        # put() under a live id used to overwrite silently: the displaced
        # session left the cache with no counter recording it.  It is
        # *replacement*, not eviction -- folding it into evictions would
        # double-book churn (the slot never emptied).
        cache = SessionCache(capacity=2)
        a, b = (self._session(t) for t in (b"a", b"b"))
        cache.put(a)
        cache.put(b)
        fresh_a = self._session(b"a")
        cache.put(fresh_a)                       # same id, new session
        assert cache.replacements == 1
        assert cache.evictions == 0              # no slot was freed
        assert len(cache) == 2
        assert cache.get(a.session_id) is fresh_a
        assert cache.stats()["replacements"] == 1

    def test_replacement_refreshes_lru_slot(self):
        # A replaced entry takes the most-recent slot, exactly as a
        # fresh insert of that id would.
        cache = SessionCache(capacity=2)
        a, b, c = (self._session(t) for t in (b"a", b"b", b"c"))
        cache.put(a)
        cache.put(b)
        cache.put(self._session(b"a"))           # a replaced -> MRU
        cache.put(c)                             # evicts b, not a
        assert cache.peek(a.session_id) is not None
        assert cache.peek(b.session_id) is None
        assert (cache.replacements, cache.evictions) == (1, 1)

    def test_replacement_is_not_any_other_exit_path(self):
        # Pin the full counter separation: a replace touches neither the
        # hit/miss counters nor the eviction counter, and the other exit
        # paths never touch replacements.
        cache = SessionCache(capacity=1)
        a = self._session(b"a")
        cache.put(a)
        cache.put(self._session(b"a"))
        assert (cache.hits, cache.misses) == (0, 0)
        assert (cache.replacements, cache.evictions) == (1, 0)
        cache.put(self._session(b"b"))           # LRU-evicts the a-slot
        cache.remove(b"b".ljust(8, b"\0"))       # explicit remove
        assert (cache.replacements, cache.evictions) == (1, 2)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SessionCache(capacity=0)

    def test_peek_is_non_mutating(self):
        cache = SessionCache(capacity=2)
        a, b = (self._session(t) for t in (b"a", b"b"))
        cache.put(a)
        cache.put(b)
        assert cache.peek(a.session_id) is a      # no LRU refresh...
        assert cache.peek(b"missing!") is None    # ...and no miss count
        assert (cache.hits, cache.misses) == (0, 0)
        cache.put(self._session(b"c"))            # a still oldest: evicted
        assert cache.peek(a.session_id) is None
        assert cache.peek(b.session_id) is b


class TestChainVerification:
    @pytest.fixture(scope="class")
    def ca_setup(self, rsa512, rsa1024):
        from repro.ssl.x509 import make_ca_signed_pair
        leaf, ca = make_ca_signed_pair("CN=test-ca", "CN=leaf-server",
                                       ca_key=rsa1024, leaf_key=rsa512)
        return leaf, ca

    def test_valid_chain(self, ca_setup):
        from repro.ssl.x509 import verify_chain
        leaf, ca = ca_setup
        assert verify_chain([leaf, ca])

    def test_single_self_signed(self, rsa512):
        from repro.ssl.x509 import verify_chain
        cert = make_self_signed("CN=solo", rsa512)
        assert verify_chain([cert])

    def test_empty_chain(self):
        from repro.ssl.x509 import verify_chain
        assert not verify_chain([])

    def test_broken_link_rejected(self, ca_setup, rsa512):
        from repro.ssl.x509 import verify_chain
        leaf, ca = ca_setup
        impostor = make_self_signed("CN=test-ca", rsa512)  # wrong key
        assert not verify_chain([leaf, impostor])

    def test_issuer_name_mismatch_rejected(self, ca_setup, rsa1024):
        from repro.ssl.x509 import verify_chain
        leaf, _ = ca_setup
        other_ca = make_self_signed("CN=different-ca", rsa1024)
        assert not verify_chain([leaf, other_ca])

    def test_trust_anchor_required_when_given(self, ca_setup, rsa512):
        from repro.ssl.x509 import verify_chain
        leaf, ca = ca_setup
        stranger = make_self_signed("CN=stranger", rsa512)
        assert verify_chain([leaf, ca], trusted=[ca])
        assert not verify_chain([leaf, ca], trusted=[stranger])

    def test_expired_certificate_rejected(self, rsa512):
        from repro.ssl.x509 import verify_chain
        cert = make_self_signed("CN=expired", rsa512, not_before=100,
                                not_after=200)
        assert verify_chain([cert], at_time=150)
        assert not verify_chain([cert], at_time=250)

    def test_handshake_with_chain(self, rsa512, rsa1024):
        from repro import perf
        from repro.crypto.rand import PseudoRandom
        from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
        from repro.ssl.loopback import pump
        from repro.ssl.x509 import make_ca_signed_pair
        leaf, ca = make_ca_signed_pair("CN=chain-ca", "CN=chain-leaf",
                                       ca_key=rsa1024, leaf_key=rsa512)
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(rsa512, leaf, suites=(DES_CBC3_SHA,),
                               cert_chain=(ca,),
                               rng=PseudoRandom(b"chain-s"))
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA,), trusted_issuer=ca,
                               rng=PseudoRandom(b"chain-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        assert client.handshake_complete and server.handshake_complete
        assert client.server_certificate.subject == "CN=chain-leaf"


class TestSessionExpiry:
    def _session(self, created=0.0, lifetime=300.0):
        return SslSession(session_id=b"expiring", cipher_suite_id=0x0A,
                          master_secret=bytes(48), created_at=created,
                          lifetime=lifetime)

    def test_fresh_session_found(self):
        cache = SessionCache()
        cache.put(self._session())
        assert cache.get(b"expiring", now=100.0) is not None

    def test_expired_session_misses_and_drops(self):
        cache = SessionCache()
        cache.put(self._session(created=0.0, lifetime=300.0))
        assert cache.get(b"expiring", now=301.0) is None
        assert cache.misses == 1
        assert len(cache) == 0

    def test_no_clock_skips_expiry(self):
        cache = SessionCache()
        cache.put(self._session(lifetime=1.0))
        assert cache.get(b"expiring") is not None

    def test_purge_expired(self):
        cache = SessionCache()
        cache.put(self._session(created=0.0, lifetime=10.0))
        fresh = SslSession(session_id=b"fresh-one", cipher_suite_id=0x0A,
                           master_secret=bytes(48), created_at=100.0)
        cache.put(fresh)
        assert cache.purge_expired(now=50.0) == 1
        assert len(cache) == 1
        assert cache.get(b"fresh-one") is fresh

    def test_lifetime_validation(self):
        with pytest.raises(ValueError):
            self._session(lifetime=0)

    def test_boundary_not_expired(self):
        s = self._session(created=0.0, lifetime=300.0)
        assert not s.expired_at(300.0)
        assert s.expired_at(300.0001)
