"""CBC mode: NIST vectors, chaining semantics, validation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES
from repro.crypto.des import DES, TripleDES
from repro.crypto.modes import CBC, cbc_decrypt, cbc_encrypt


class TestAesCbcNistVectors:
    # NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt)
    KEY = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
    IV = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
    PT = bytes.fromhex(
        "6bc1bee22e409f96e93d7e117393172a"
        "ae2d8a571e03ac9c9eb76fac45af8e51"
        "30c81c46a35ce411e5fbc1191a0a52ef"
        "f69f2445df4f9b17ad2b417be66c3710")
    CT = bytes.fromhex(
        "7649abac8119b246cee98e9b12e9197d"
        "5086cb9b507219ee95db113a917678b2"
        "73bed6b8e3c1743b7116e69e22229516"
        "3ff1caa1681fac09120eca307586e1a7")

    def test_encrypt(self):
        assert cbc_encrypt(AES(self.KEY), self.IV, self.PT) == self.CT

    def test_decrypt(self):
        assert cbc_decrypt(AES(self.KEY), self.IV, self.CT) == self.PT


class TestChaining:
    def test_incremental_equals_oneshot(self):
        cipher = AES(bytes(16))
        iv = bytes(range(16))
        data = bytes(range(256)) * 2
        oneshot = cbc_encrypt(AES(bytes(16)), iv, data)
        cbc = CBC(cipher, iv)
        pieces = b"".join(cbc.encrypt(data[i:i + 64])
                          for i in range(0, len(data), 64))
        assert pieces == oneshot

    def test_iv_property_advances(self):
        cbc = CBC(DES(b"k" * 8), bytes(8))
        ct = cbc.encrypt(b"A" * 16)
        assert cbc.iv == ct[-8:]

    def test_decrypt_tracks_chain(self):
        key = b"k" * 24
        iv = bytes(8)
        data = b"B" * 64
        ct = cbc_encrypt(TripleDES(key), iv, data)
        dec = CBC(TripleDES(key), iv)
        plain = b"".join(dec.decrypt(ct[i:i + 16])
                         for i in range(0, len(ct), 16))
        assert plain == data

    def test_identical_blocks_encrypt_differently(self):
        """The point of CBC: equal plaintext blocks diverge."""
        ct = cbc_encrypt(AES(bytes(16)), bytes(16), bytes(64))
        blocks = [ct[i:i + 16] for i in range(0, 64, 16)]
        assert len(set(blocks)) == 4

    def test_bit_flip_corrupts_two_blocks_only(self):
        key, iv = bytes(16), bytes(16)
        data = bytes(range(16)) * 4
        ct = bytearray(cbc_encrypt(AES(key), iv, data))
        ct[20] ^= 0x80  # flip a bit in block 1
        plain = cbc_decrypt(AES(key), iv, bytes(ct))
        assert plain[:16] == data[:16]          # block 0 untouched
        assert plain[16:32] != data[16:32]      # block 1 garbled
        assert plain[32:48] != data[32:48]      # block 2 has flipped bit
        assert plain[48:] == data[48:]          # block 3 untouched


class TestValidation:
    def test_partial_block_rejected(self):
        with pytest.raises(ValueError):
            CBC(AES(bytes(16)), bytes(16)).encrypt(b"short")

    def test_wrong_iv_length_rejected(self):
        with pytest.raises(ValueError):
            CBC(AES(bytes(16)), bytes(8))

    def test_empty_input_ok(self):
        cbc = CBC(AES(bytes(16)), bytes(16))
        assert cbc.encrypt(b"") == b""


@given(st.binary(min_size=16, max_size=16),
       st.binary(min_size=16, max_size=16),
       st.integers(1, 8))
@settings(max_examples=30, deadline=None)
def test_cbc_roundtrip_property(key, iv, nblocks):
    data = bytes(range(16)) * nblocks
    ct = cbc_encrypt(AES(key), iv, data)
    assert cbc_decrypt(AES(key), iv, ct) == data
    assert ct != data
