"""Diffie-Hellman and the DHE-RSA cipher suites."""

import pytest

from repro import perf
from repro.bignum import BigNum
from repro.crypto.dh import (
    DhError, DhKeyPair, DhParams, OAKLEY_GROUP2_P,
)
from repro.crypto.rand import PseudoRandom
from repro.ssl import SslClient, SslServer, TLS1_VERSION
from repro.ssl.ciphersuites import (
    DES_CBC3_SHA, DHE_RSA_AES128_SHA, EDH_RSA_DES_CBC3_SHA,
)
from repro.ssl.errors import HandshakeFailure
from repro.ssl.handshake import ServerKeyExchange
from repro.ssl.loopback import pump


class TestDhParams:
    def test_oakley_group2_constants(self):
        params = DhParams.oakley_group2()
        assert params.p.nbits() == 1024
        assert params.g.to_int() == 2
        assert OAKLEY_GROUP2_P % 2 == 1

    def test_small_modulus_rejected(self):
        with pytest.raises(DhError):
            DhParams(p=BigNum.from_int(1009), g=BigNum.from_int(2))

    def test_even_modulus_rejected(self):
        with pytest.raises(DhError):
            DhParams(p=BigNum.from_int(1 << 300), g=BigNum.from_int(2))

    def test_generator_range(self):
        p = BigNum.from_int((1 << 300) + 1)
        with pytest.raises(DhError):
            DhParams(p=p, g=BigNum.from_int(1))

    @pytest.mark.parametrize("bad", [0, 1])
    def test_degenerate_public_rejected(self, bad):
        params = DhParams.oakley_group2()
        with pytest.raises(DhError):
            params.validate_public(BigNum.from_int(bad))

    def test_p_minus_one_rejected(self):
        params = DhParams.oakley_group2()
        with pytest.raises(DhError):
            params.validate_public(
                BigNum.from_int(params.p.to_int() - 1))


class TestDhAgreement:
    @pytest.fixture(scope="class")
    def params(self):
        return DhParams.oakley_group2()

    def test_both_sides_agree(self, params):
        alice = DhKeyPair(params, PseudoRandom(b"alice"))
        bob = DhKeyPair(params, PseudoRandom(b"bob"), mont=alice._mont)
        assert alice.compute_shared(bob.public) == \
            bob.compute_shared(alice.public)

    def test_public_value_correct(self, params):
        kp = DhKeyPair(params, PseudoRandom(b"check"))
        expected = pow(params.g.to_int(), kp._x.to_int(), params.p.to_int())
        assert kp.public.to_int() == expected

    def test_different_keys_different_secrets(self, params):
        a = DhKeyPair(params, PseudoRandom(b"a"))
        b = DhKeyPair(params, PseudoRandom(b"b"), mont=a._mont)
        c = DhKeyPair(params, PseudoRandom(b"c"), mont=a._mont)
        assert a.compute_shared(b.public) != a.compute_shared(c.public)

    def test_short_exponent_rejected(self, params):
        with pytest.raises(DhError):
            DhKeyPair(params, exponent_bits=64)

    def test_charges_bignum_kernels(self, params, isolated_profiler):
        kp = DhKeyPair(params, PseudoRandom(b"prof"))
        kp.compute_shared(BigNum.from_int(0x1234567890ABCDEF))
        assert "bn_mul_add_words" in isolated_profiler.functions
        assert isolated_profiler.region_cycles("dh_generate_key") > 0
        assert isolated_profiler.region_cycles("dh_compute_key") > 0


def dhe_pair(identity, suite=EDH_RSA_DES_CBC3_SHA, version=0x0300):
    key, cert = identity
    sp, cp = perf.Profiler(), perf.Profiler()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(suite,),
                           rng=PseudoRandom(b"dhe-s"))
    with perf.activate(cp):
        client = SslClient(suites=(suite,), version=version,
                           rng=PseudoRandom(b"dhe-c"))
        client.start_handshake()
    pump(client, server, cp, sp)
    return client, server, cp, sp


class TestDheHandshake:
    @pytest.mark.parametrize("suite", [EDH_RSA_DES_CBC3_SHA,
                                       DHE_RSA_AES128_SHA],
                             ids=lambda s: s.name)
    @pytest.mark.parametrize("version", [0x0300, TLS1_VERSION],
                             ids=["sslv3", "tls10"])
    def test_completes_and_transfers(self, identity512, suite, version):
        client, server, cp, sp = dhe_pair(identity512, suite, version)
        assert client.handshake_complete and server.handshake_complete
        assert client.master_secret == server.master_secret
        with perf.activate(cp):
            client.write(b"dhe payload" * 11)
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"dhe payload" * 11

    def test_server_kx_step_present(self, identity512):
        _, _, _, sp = dhe_pair(identity512)
        assert sp.region_cycles("send_server_kx") > 0
        assert sp.region_cycles("send_server_kx/dh_generate_key") > 0
        # The RSA signature inside the server key exchange.
        assert sp.region_cycles(
            "send_server_kx/rsa_private_encryption") > 0
        # The shared-secret computation replaces the RSA decryption.
        assert sp.region_cycles("get_client_kx/dh_compute_key") > 0
        assert sp.region_cycles(
            "get_client_kx/rsa_private_decryption") == 0

    def test_dhe_costs_more_than_rsa_kx(self, identity512):
        """Ephemeral DH adds a signature plus two modexps server-side."""
        _, _, _, sp_dhe = dhe_pair(identity512)
        _, _, _, sp_rsa = dhe_pair(identity512, suite=DES_CBC3_SHA)
        assert sp_dhe.total_cycles() > sp_rsa.total_cycles()

    def test_tampered_server_kx_signature_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert, suites=(EDH_RSA_DES_CBC3_SHA,),
                           rng=PseudoRandom(b"sig-s"))
        client = SslClient(suites=(EDH_RSA_DES_CBC3_SHA,),
                           rng=PseudoRandom(b"sig-c"))
        client.start_handshake()
        server.receive(client.pending_output())
        flight = bytearray(server.pending_output())
        # Flip a byte near the end of the ServerKeyExchange record (the
        # signature trails the message; the final record is server_done).
        flight[-20] ^= 0xFF
        with pytest.raises(HandshakeFailure):
            client.receive(bytes(flight))

    def test_degenerate_client_public_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert, suites=(EDH_RSA_DES_CBC3_SHA,),
                           rng=PseudoRandom(b"deg-s"))
        client = SslClient(suites=(EDH_RSA_DES_CBC3_SHA,),
                           rng=PseudoRandom(b"deg-c"))
        client.start_handshake()
        server.receive(client.pending_output())
        client.receive(server.pending_output())
        client.pending_output()  # discard the honest flight
        # Forge a ClientKeyExchange carrying Yc = 1.
        from repro.ssl.codec import ByteWriter
        from repro.ssl.handshake import ClientKeyExchange
        from repro.ssl.record import ContentType, RecordLayer
        forged = ClientKeyExchange(
            encrypted_pre_master=ByteWriter().vec16(b"\x01").bytes())
        wire = RecordLayer().emit(ContentType.HANDSHAKE, forged.to_bytes())
        with pytest.raises(HandshakeFailure):
            server.receive(wire)


class TestServerKeyExchangeMessage:
    def test_roundtrip(self):
        msg = ServerKeyExchange(dh_p=b"\xff" * 128, dh_g=b"\x02",
                                dh_ys=b"\xab" * 128, signature=b"S" * 64)
        parsed = ServerKeyExchange.parse(msg.body())
        assert parsed == msg

    def test_params_bytes_exclude_signature(self):
        msg = ServerKeyExchange(dh_p=b"P", dh_g=b"G", dh_ys=b"Y",
                                signature=b"SIG")
        assert b"SIG" not in msg.params_bytes()

    def test_empty_params_rejected(self):
        from repro.ssl.errors import DecodeError
        msg = ServerKeyExchange(dh_p=b"", dh_g=b"G", dh_ys=b"Y",
                                signature=b"S")
        with pytest.raises(DecodeError):
            ServerKeyExchange.parse(msg.body())


class TestDheSessionLifecycle:
    def test_dhe_resumption(self, identity512):
        """A DHE session resumes without repeating the DH exchange."""
        from repro.ssl import SessionCache
        cache = SessionCache()
        key, cert = identity512
        sp1, cp1 = perf.Profiler(), perf.Profiler()
        with perf.activate(sp1):
            s1 = SslServer(key, cert, suites=(EDH_RSA_DES_CBC3_SHA,),
                           session_cache=cache, rng=PseudoRandom(b"d1-s"))
        with perf.activate(cp1):
            c1 = SslClient(suites=(EDH_RSA_DES_CBC3_SHA,),
                           rng=PseudoRandom(b"d1-c"))
            c1.start_handshake()
        pump(c1, s1, cp1, sp1)
        assert c1.session is not None

        sp2, cp2 = perf.Profiler(), perf.Profiler()
        with perf.activate(sp2):
            s2 = SslServer(key, cert, suites=(EDH_RSA_DES_CBC3_SHA,),
                           session_cache=cache, rng=PseudoRandom(b"d2-s"))
        with perf.activate(cp2):
            c2 = SslClient(suites=(EDH_RSA_DES_CBC3_SHA,),
                           session=c1.session, rng=PseudoRandom(b"d2-c"))
            c2.start_handshake()
        pump(c2, s2, cp2, sp2)
        assert s2.resumed
        assert sp2.region_cycles("send_server_kx") == 0
        assert sp2.region_cycles("get_client_kx/dh_compute_key") == 0

    def test_dhe_renegotiation_full(self, identity512):
        """Renegotiating a DHE connection generates fresh DH parameters."""
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert, suites=(EDH_RSA_DES_CBC3_SHA,),
                               rng=PseudoRandom(b"dr-s"))
        with perf.activate(cp):
            client = SslClient(suites=(EDH_RSA_DES_CBC3_SHA,),
                               rng=PseudoRandom(b"dr-c"))
            client.start_handshake()
        pump(client, server, cp, sp)
        skx_before = sp.region_cycles("send_server_kx")
        with perf.activate(cp):
            client.renegotiate(session=None)
        pump(client, server, cp, sp)
        assert server.handshake_complete
        assert sp.region_cycles("send_server_kx") > skx_before
