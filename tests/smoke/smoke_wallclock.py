"""Wall-clock smoke: the fast path must stay interactive.

The fast path exists to keep the simulator usable from a terminal; this
script holds a coarse host wall-clock budget on a full-handshake
loopback session so a regression that silently disables a fast backend
fails fast.  The absolute bound allows slow shared CI runners; the
fast-vs-faithful ratio catches a disabled backend regardless of machine
speed.

Run via ``make smoke-wallclock`` (CI) or directly::

    PYTHONPATH=src python tests/smoke/smoke_wallclock.py

Not collected by pytest (the tier-1 gate pins modeled numbers; this one
intentionally measures the host) -- it is a plain script with asserts.
"""

import time

from repro import runtime
from repro.ssl.loopback import make_server_identity, run_session


def best_of(key, cert, n: int) -> float:
    best = float("inf")
    for _ in range(n):
        t0 = time.perf_counter()
        run_session(b"", key=key, cert=cert)
        best = min(best, time.perf_counter() - t0)
    return best


def main() -> None:
    key, cert = make_server_identity()
    run_session(b"", key=key, cert=cert)  # warm caches
    fast = best_of(key, cert, 5)
    with runtime.fastpath(False):
        faithful = best_of(key, cert, 2)
    print(f"handshake: fast {fast * 1e3:.1f} ms, "
          f"faithful {faithful * 1e3:.1f} ms "
          f"({faithful / fast:.1f}x)")
    # ~40 ms / ~250 ms on a dev box.
    assert fast < 2.5, f"fast-path handshake too slow: {fast:.2f}s"
    assert faithful / fast > 2.5, (
        f"fast path no longer faster: {faithful / fast:.2f}x")


if __name__ == "__main__":
    main()
