"""Farm smoke: a small end-to-end sharded-farm run under a wall-clock
budget.

Two workers, shared session cache, a handful of requests.  Catches farm
scheduling deadlocks -- a stuck admission or batch queue would blow the
budget -- without the cost of the full bench-farm sweep.

Run via ``make smoke-farm`` (CI) or directly::

    PYTHONPATH=src python tests/smoke/smoke_farm.py

Not collected by pytest (the tier-1 gate pins modeled numbers; this one
intentionally measures the host) -- it is a plain script with asserts.
"""

import time

from repro.ssl.loopback import make_server_identity
from repro.webserver import RequestWorkload, ServerFarm, SHARED


def main() -> None:
    key, cert = make_server_identity(512, seed=b"farm-smoke")
    farm = ServerFarm(2, topology=SHARED, key=key, cert=cert,
                      use_crt=True)
    workload = RequestWorkload.fixed(2048, resumption_rate=0.5)
    t0 = time.perf_counter()
    result = farm.run(workload, 8, concurrency_per_worker=2)
    elapsed = time.perf_counter() - t0
    print(f"farm smoke: {result.requests_completed} completed, "
          f"{result.resumed_handshakes} resumed "
          f"({result.cross_worker_resumptions} cross-worker), "
          f"{result.capacity_rps():.0f} rps in {elapsed:.2f}s")
    assert result.requests_completed == 8, result
    assert result.failures == 0, result
    assert elapsed < 60.0, f"farm smoke too slow: {elapsed:.1f}s"


if __name__ == "__main__":
    main()
