"""End-to-end SSLv3 handshake and data-transfer integration tests."""

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ssl import (
    ALL_SUITES, DES_CBC3_SHA, RC4_MD5, SessionCache, SslClient, SslServer,
)
from repro.ssl.errors import (
    BadRecordMac, HandshakeFailure, PeerAlert, SslError,
)
from repro.ssl.loopback import pump, run_session


def handshake_pair(identity, suite=DES_CBC3_SHA, cache=None, session=None):
    key, cert = identity
    sp, cp = perf.Profiler(), perf.Profiler()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(suite,), session_cache=cache,
                           rng=PseudoRandom(b"hs-server"))
    with perf.activate(cp):
        client = SslClient(suites=(suite,), session=session,
                           rng=PseudoRandom(b"hs-client"))
        client.start_handshake()
    pump(client, server, cp, sp)
    return client, server, cp, sp


class TestFullHandshake:
    @pytest.mark.parametrize("suite",
                             [s for s in ALL_SUITES if s.cipher != "null"],
                             ids=lambda s: s.name)
    def test_every_suite_completes(self, identity512, suite):
        client, server, _, _ = handshake_pair(identity512, suite)
        assert client.handshake_complete and server.handshake_complete
        assert client.cipher_suite is suite
        assert server.cipher_suite is suite

    def test_application_data_both_ways(self, identity512):
        client, server, cp, sp = handshake_pair(identity512)
        with perf.activate(cp):
            client.write(b"from-client")
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"from-client"
            server.write(b"from-server")
        with perf.activate(cp):
            client.receive(server.pending_output())
            assert client.read() == b"from-server"

    def test_large_transfer_crosses_fragment_boundary(self, identity512):
        client, server, cp, sp = handshake_pair(identity512)
        blob = bytes(range(256)) * 200  # 51200 bytes > 3 fragments
        with perf.activate(cp):
            client.write(blob)
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == blob

    def test_empty_write_allowed(self, identity512):
        client, server, cp, sp = handshake_pair(identity512)
        with perf.activate(cp):
            client.write(b"")
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b""

    def test_write_before_handshake_rejected(self, identity512):
        key, cert = identity512
        client = SslClient()
        with pytest.raises(SslError):
            client.write(b"too early")

    def test_shared_master_secret(self, identity512):
        client, server, _, _ = handshake_pair(identity512)
        assert client.master_secret == server.master_secret
        assert len(server.master_secret) == 48

    def test_close_notify(self, identity512):
        client, server, cp, sp = handshake_pair(identity512)
        with perf.activate(cp):
            client.close()
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.closed

    def test_certificate_surfaced_to_client(self, identity512):
        key, cert = identity512
        client, server, _, _ = handshake_pair(identity512)
        assert client.server_certificate.public_key.n == key.n

    def test_run_session_echo(self, identity512):
        key, cert = identity512
        result = run_session(b"echo" * 100, key=key, cert=cert)
        assert result.echoed == b"echo" * 100
        assert result.handshake_flights >= 2

    def test_1024_bit_identity(self, identity1024):
        client, server, _, _ = handshake_pair(identity1024)
        assert client.handshake_complete and server.handshake_complete


class TestResumption:
    def test_abbreviated_handshake(self, identity512):
        cache = SessionCache()
        c1, s1, _, _ = handshake_pair(identity512, cache=cache)
        assert not s1.resumed
        assert c1.session is not None
        c2, s2, cp, sp = handshake_pair(identity512, cache=cache,
                                        session=c1.session)
        assert s2.resumed and c2.resumed
        assert c2.handshake_complete and s2.handshake_complete
        # Data still flows on the resumed session.
        with perf.activate(cp):
            c2.write(b"resumed data")
        with perf.activate(sp):
            s2.receive(c2.pending_output())
            assert s2.read() == b"resumed data"

    def test_resumption_skips_rsa(self, identity512):
        cache = SessionCache()
        c1, s1, _, sp1 = handshake_pair(identity512, cache=cache)
        c2, s2, _, sp2 = handshake_pair(identity512, cache=cache,
                                        session=c1.session)
        assert sp1.region_cycles("get_client_kx/rsa_private_decryption") > 0
        assert sp2.region_cycles("get_client_kx/rsa_private_decryption") == 0

    def test_unknown_session_falls_back_to_full(self, identity512):
        from repro.ssl.session import SslSession
        cache = SessionCache()
        stale = SslSession(session_id=b"unknown-session-id",
                           cipher_suite_id=DES_CBC3_SHA.suite_id,
                           master_secret=bytes(48))
        client, server, _, _ = handshake_pair(identity512, cache=cache,
                                              session=stale)
        assert not server.resumed and not client.resumed
        assert client.handshake_complete and server.handshake_complete

    def test_resumed_sessions_share_master(self, identity512):
        cache = SessionCache()
        c1, s1, _, _ = handshake_pair(identity512, cache=cache)
        c2, s2, _, _ = handshake_pair(identity512, cache=cache,
                                      session=c1.session)
        assert s2.master_secret == c1.session.master_secret
        # ... but fresh randoms give fresh key blocks: records from session
        # 1 cannot replay into session 2 (different randoms were exchanged).
        assert (c1.client_random, c1.server_random) != \
            (c2.client_random, c2.server_random)


class TestFailureModes:
    def test_no_common_suite(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,))
        client = SslClient(suites=(RC4_MD5,))
        client.start_handshake()
        with pytest.raises(HandshakeFailure):
            server.receive(client.pending_output())
        # Fatal alert queued for the client.
        with pytest.raises(PeerAlert):
            client.receive(server.pending_output())

    def test_tampered_finished_record(self, identity512):
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,))
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"tamper"))
        client.start_handshake()
        server.receive(client.pending_output())
        client.receive(server.pending_output())
        # Client's flight: KX + CCS + Finished.  Flip a bit in the last
        # (encrypted) record.
        flight = bytearray(client.pending_output())
        flight[-1] ^= 0x40
        with pytest.raises(BadRecordMac):
            server.receive(bytes(flight))
        assert not server.handshake_complete

    def test_tampered_client_kx_fails_handshake(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,))
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"kx-tamper"))
        client.start_handshake()
        server.receive(client.pending_output())
        client.receive(server.pending_output())
        flight = bytearray(client.pending_output())
        # The ClientKeyExchange is the first record of the flight; corrupt a
        # byte inside the encrypted pre-master (after record+hs headers).
        flight[12] ^= 0xFF
        with pytest.raises((HandshakeFailure, BadRecordMac)):
            server.receive(bytes(flight))

    def test_application_data_before_handshake_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert)
        from repro.ssl.record import ContentType, RecordLayer
        rogue = RecordLayer().emit(ContentType.APPLICATION_DATA, b"early")
        with pytest.raises(SslError):
            server.receive(rogue)

    def test_handshake_out_of_order_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert)
        from repro.ssl.handshake import Finished
        from repro.ssl.record import ContentType, RecordLayer
        msg = Finished(verify_data=bytes(36)).to_bytes()
        wire = RecordLayer().emit(ContentType.HANDSHAKE, msg)
        with pytest.raises(SslError):
            server.receive(wire)

    def test_double_start_rejected(self):
        client = SslClient()
        client.start_handshake()
        with pytest.raises(HandshakeFailure):
            client.start_handshake()

    def test_old_ssl2_client_version_rejected(self, identity512):
        key, cert = identity512
        server = SslServer(key, cert)
        from repro.ssl.handshake import ClientHello
        from repro.ssl.record import ContentType, RecordLayer
        hello = ClientHello(client_random=bytes(32),
                            cipher_suites=(DES_CBC3_SHA.suite_id,),
                            version=0x0200)
        wire = RecordLayer().emit(ContentType.HANDSHAKE, hello.to_bytes())
        with pytest.raises(HandshakeFailure):
            server.receive(wire)


class TestAnatomyRegions:
    """The handshake produces the step regions of Table 2."""

    STEPS = ["init", "get_client_hello", "send_server_hello",
             "send_server_cert", "send_server_done", "get_client_kx",
             "get_finished", "send_cipher_spec", "send_finished",
             "server_flush"]

    def test_all_steps_present_with_cycles(self, identity512):
        _, _, _, sp = handshake_pair(identity512)
        for step in self.STEPS:
            assert sp.region_cycles(step) > 0, f"missing step {step}"

    def test_client_kx_dominates(self, identity512):
        _, _, _, sp = handshake_pair(identity512)
        kx = sp.region_cycles("get_client_kx")
        total = sum(sp.region_cycles(s) for s in self.STEPS)
        # Even with a small 512-bit CRT key, the RSA step is the single
        # largest; the paper's 1024-bit non-CRT setup reaches ~92% (the
        # Table 2/3 benchmarks check that configuration).
        assert kx == max(sp.region_cycles(s) for s in self.STEPS)
        assert kx / total > 0.35

    def test_nested_crypto_functions(self, identity512):
        _, _, _, sp = handshake_pair(identity512)
        assert sp.region_cycles("get_client_kx/rsa_private_decryption") > 0
        assert sp.region_cycles("get_client_kx/gen_master_secret") > 0
        assert sp.region_cycles("get_client_kx/cert_verify_mac") > 0
        assert sp.region_cycles("get_finished/gen_key_block") > 0
        assert sp.region_cycles("get_finished/final_finish_mac") > 0
        assert sp.region_cycles("send_finished/final_finish_mac") > 0


class TestChunkedDelivery:
    """Incremental parsing: handshakes survive arbitrary re-chunking."""

    from hypothesis import given, settings, strategies as st

    @given(st.integers(1, 97))
    @settings(max_examples=12, deadline=None)
    def test_handshake_with_tiny_chunks(self, identity512, chunk):
        key, cert = identity512
        sp, cp = perf.Profiler(), perf.Profiler()
        with perf.activate(sp):
            server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"chunk-s"))
        with perf.activate(cp):
            client = SslClient(suites=(DES_CBC3_SHA,),
                               rng=PseudoRandom(b"chunk-c"))
            client.start_handshake()
        for _ in range(12):
            with perf.activate(cp):
                c_out = client.pending_output()
            with perf.activate(sp):
                s_out = server.pending_output()
            if not c_out and not s_out:
                break
            for i in range(0, len(c_out), chunk):
                with perf.activate(sp):
                    server.receive(c_out[i:i + chunk])
            for i in range(0, len(s_out), chunk):
                with perf.activate(cp):
                    client.receive(s_out[i:i + chunk])
        assert client.handshake_complete and server.handshake_complete
        with perf.activate(cp):
            client.write(b"chunked!")
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"chunked!"


class TestConnectionStats:
    def test_counters_after_session(self, identity512):
        key, cert = identity512
        result = run_session(b"stat" * 200, key=key, cert=cert)
        c_stats = result.client.stats
        s_stats = result.server.stats
        # Application payload accounting (echo: both directions).
        assert c_stats.app_bytes_sent == 800
        assert c_stats.app_bytes_received == 800
        assert s_stats.app_bytes_received == 800
        # What one side sends, the other receives.
        assert c_stats.bytes_sent == s_stats.bytes_received
        assert s_stats.bytes_sent >= c_stats.bytes_received  # client closed first
        assert c_stats.records_sent >= 5   # hello, kx, ccs, finished, data
        assert s_stats.records_received >= c_stats.records_sent - 1

    def test_as_dict(self, identity512):
        key, cert = identity512
        result = run_session(b"", key=key, cert=cert)
        d = result.server.stats.as_dict()
        assert set(d) == {"records_sent", "records_received", "bytes_sent",
                          "bytes_received", "app_bytes_sent",
                          "app_bytes_received"}


class TestProfiledHandshakeHelper:
    def test_returns_all_four(self, identity512):
        from repro.ssl import profiled_handshake
        key, cert = identity512
        sp, cp, client, server = profiled_handshake(key, cert,
                                                    seed=b"helper")
        assert server.handshake_complete and client.handshake_complete
        assert sp.region_cycles("get_client_kx") > 0
        # The client's KX nests under its record-processing region.
        kx_nodes = [n for n in cp.root.walk()
                    if n.name == "send_client_kx"]
        assert kx_nodes and kx_nodes[0].inclusive_cycles() > 0
        # Server work never leaks into the client profiler.
        assert cp.region_cycles("get_client_kx") == 0

    def test_version_and_crt_knobs(self, identity512):
        from repro.ssl import TLS1_VERSION, profiled_handshake
        key, cert = identity512
        _, _, client, server = profiled_handshake(
            key, cert, version=TLS1_VERSION, use_crt=True, seed=b"knobs")
        assert server.version == TLS1_VERSION
        assert key.use_crt is True

    def test_resume_knob(self, identity512):
        from repro.ssl import SessionCache, profiled_handshake
        key, cert = identity512
        cache = SessionCache()
        _, _, c1, _ = profiled_handshake(key, cert, session_cache=cache,
                                         seed=b"r1")
        _, _, _, s2 = profiled_handshake(key, cert, session_cache=cache,
                                         resume=c1.session, seed=b"r2")
        assert s2.resumed
