"""Hardware-acceleration models (Section 6.2)."""

import pytest

import repro.crypto.md5 as md5
import repro.crypto.sha1 as sha1
from repro.engines import (
    AesUnitDesign, EngineDesign, EngineSimulator, KERNEL_PARAMS,
    SoftwareCosts, aes_unit_estimate, fragment_latency, isa_estimate,
    software_block_cycles, throughput_mbps, transform_mix,
)


class TestIsaExtension:
    def test_md5_estimate_shrinks_instructions(self):
        est = isa_estimate("md5", md5.MD5_BLOCK, md5.MD5_STALL)
        assert 0.1 < est.instruction_reduction < 0.5
        assert est.speedup > 1.2

    def test_sha1_estimate(self):
        est = isa_estimate("sha1", sha1.SHA1_BLOCK, sha1.SHA1_STALL)
        assert est.speedup > 1.1

    def test_md5_gains_more_relief_than_sha1(self):
        """MD5's serial chain means fusion helps its CPI more."""
        md5_est = isa_estimate("md5", md5.MD5_BLOCK, md5.MD5_STALL)
        sha_est = isa_estimate("sha1", sha1.SHA1_BLOCK, sha1.SHA1_STALL)
        assert md5_est.speedup > sha_est.speedup

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            isa_estimate("blowfish", md5.MD5_BLOCK, 1.0)

    def test_transform_preserves_non_targets(self):
        new = transform_mix(md5.MD5_BLOCK, KERNEL_PARAMS["md5"])
        assert new.count("roll") == md5.MD5_BLOCK.count("roll")
        assert new.count("addl") == md5.MD5_BLOCK.count("addl")
        assert new.count("xorl") < md5.MD5_BLOCK.count("xorl")
        assert new.count("movl") < md5.MD5_BLOCK.count("movl")


class TestAesUnit:
    def test_block_unit_faster_than_round_unit(self):
        est = aes_unit_estimate(128)
        assert est.software_cycles > est.round_unit_cycles > \
            est.block_unit_cycles

    def test_speedups_are_substantial(self):
        est = aes_unit_estimate(128)
        assert est.round_unit_speedup > 3
        assert est.block_unit_speedup > 5

    def test_software_cycles_match_table5_structure(self):
        # ~562 cycles per 128-bit block in the paper's Table 5.
        sw = software_block_cycles(128)
        assert 350 < sw < 800

    def test_aes256_scales_rounds(self):
        assert software_block_cycles(256) > software_block_cycles(128)
        est128, est256 = aes_unit_estimate(128), aes_unit_estimate(256)
        assert est256.block_unit_cycles > est128.block_unit_cycles

    def test_invalid_key_size(self):
        with pytest.raises(ValueError):
            aes_unit_estimate(512)

    def test_hw_throughput_can_saturate_gigabit(self):
        """The paper notes software AES cannot saturate 1 Gbps; the block
        unit should comfortably exceed it."""
        est = aes_unit_estimate(128)
        sw_mbps = throughput_mbps(est.software_cycles)
        hw_mbps = throughput_mbps(est.block_unit_cycles)
        assert sw_mbps < 125          # 1 Gbps = 125 MB/s
        assert hw_mbps > 125

    def test_throughput_requires_positive_cycles(self):
        with pytest.raises(ValueError):
            throughput_mbps(0)


class TestCryptoEngine:
    SW = SoftwareCosts(cipher_cycles_per_byte=44.0,
                       hash_cycles_per_byte=16.7)

    def test_parallel_beats_serial_engine(self):
        lat = fragment_latency(1024, self.SW)
        assert lat.engine_parallel_cycles < lat.engine_serial_cycles
        assert lat.overlap_gain > 1.0

    def test_engine_beats_software(self):
        lat = fragment_latency(1024, self.SW)
        assert lat.parallel_speedup > 5

    def test_tail_includes_mac_and_padding(self):
        lat = fragment_latency(1024, self.SW, mac_size=20, block_size=16)
        total = 1024 + 20 + 1
        assert lat.tail_bytes == 20 + 1 + ((-total) % 16)
        assert (1024 + lat.tail_bytes) % 16 == 0

    def test_zero_data_rejected(self):
        with pytest.raises(ValueError):
            fragment_latency(0, self.SW)

    def test_simulator_throughput_scales_with_units(self):
        frags = [1024] * 64
        one = EngineSimulator(EngineDesign(units=1)).run(frags)
        four = EngineSimulator(EngineDesign(units=4)).run(frags)
        assert four.makespan_cycles < one.makespan_cycles
        ratio = one.makespan_cycles / four.makespan_cycles
        assert 3.0 < ratio <= 4.2

    def test_simulator_utilization_bounds(self):
        out = EngineSimulator(EngineDesign(units=2)).run([512] * 10)
        assert 0.0 < out.utilization <= 1.0

    def test_arrival_gap_bounds_throughput(self):
        sim = EngineSimulator(EngineDesign(units=4))
        saturated = sim.run([1024] * 32, arrival_gap=0.0)
        trickle = sim.run([1024] * 32, arrival_gap=100_000.0)
        assert trickle.makespan_cycles > saturated.makespan_cycles
        assert trickle.utilization < saturated.utilization

    def test_empty_queue_is_a_noop(self):
        # A connection can legitimately produce nothing in a round; the
        # drain must not blow up (and utilization must not divide by 0).
        out = EngineSimulator().run([])
        assert out.fragments == 0
        assert out.bytes_processed == 0
        assert out.makespan_cycles == 0.0
        assert out.utilization == 0.0
        assert out.throughput_mbps() == 0.0

    def test_idle_engine_matches_closed_form(self):
        # One fragment on an idle engine: the simulator must reproduce the
        # Figure 6 closed-form parallel latency exactly (descriptor fetch
        # + overlapped pass + cipher tail).
        design = EngineDesign()
        lat = fragment_latency(1024, TestCryptoEngine.SW, design)
        out = EngineSimulator(design).run([1024])
        assert out.makespan_cycles == pytest.approx(
            lat.engine_parallel_cycles)

    def test_back_to_back_descriptor_prefetch(self):
        # The control unit fetches descriptor i+1 while the pair works on
        # fragment i: N back-to-back fragments on one pair cost one
        # descriptor fetch plus N services, not N of each.
        design = EngineDesign(units=1)
        sim = EngineSimulator(design)
        service, _ = sim._service_cycles(1024)
        out = sim.run([1024] * 8)
        assert out.makespan_cycles == pytest.approx(
            design.descriptor_overhead + 8 * service)
        # Busy time counts only pair occupancy, never descriptor fetches.
        assert out.unit_busy_cycles == pytest.approx(8 * service)

    def test_two_unit_fifo_drain_order(self):
        # FIFO assignment to the earliest-free pair, exact arithmetic:
        # with a big and a small fragment queued first, the third must
        # land on the pair that freed first (the small one's).
        design = EngineDesign(units=2, descriptor_overhead=400.0)
        sim = EngineSimulator(design)
        big, _ = sim._service_cycles(8192)
        small, _ = sim._service_cycles(512)
        out = sim.run([8192, 512, 512])
        # Pair A: big; pair B: small then small (B frees first both times).
        assert out.makespan_cycles == pytest.approx(
            max(400.0 + big, 400.0 + 2 * small))

    def test_unit_count_validation(self):
        with pytest.raises(ValueError):
            EngineSimulator(EngineDesign(units=0))

    def test_outcome_throughput_helper(self):
        out = EngineSimulator().run([1024] * 4)
        assert out.throughput_mbps() > 0


class TestDesignSweeps:
    """Monotonicity of the hardware models across their design spaces."""

    def test_aes_unit_latency_sweep(self):
        prev = None
        for latency in (1.0, 2.0, 4.0, 8.0):
            est = aes_unit_estimate(
                128, AesUnitDesign(round_latency=latency))
            if prev is not None:
                assert est.block_unit_cycles > prev
            prev = est.block_unit_cycles

    def test_engine_descriptor_overhead_sweep(self):
        prev = None
        for overhead in (100.0, 400.0, 1600.0):
            lat = fragment_latency(
                1024, TestCryptoEngine.SW,
                EngineDesign(descriptor_overhead=overhead))
            if prev is not None:
                assert lat.engine_parallel_cycles > prev
            prev = lat.engine_parallel_cycles

    def test_overlap_gain_peaks_when_units_balanced(self):
        """The Figure 6 overlap buys most when hash and cipher rates are
        comparable, and little when one side dominates."""
        balanced = fragment_latency(
            4096, TestCryptoEngine.SW,
            EngineDesign(cipher_cycles_per_byte=1.0,
                         hash_cycles_per_byte=1.0))
        lopsided = fragment_latency(
            4096, TestCryptoEngine.SW,
            EngineDesign(cipher_cycles_per_byte=1.0,
                         hash_cycles_per_byte=0.05))
        assert balanced.overlap_gain > lopsided.overlap_gain

    def test_unit_scaling_saturates_at_queue_depth(self):
        """More unit pairs than queued fragments buy nothing."""
        frags = [2048] * 4
        four = EngineSimulator(EngineDesign(units=4)).run(frags)
        eight = EngineSimulator(EngineDesign(units=8)).run(frags)
        assert eight.makespan_cycles == pytest.approx(
            four.makespan_cycles)

    def test_isa_params_bounds(self):
        for params in KERNEL_PARAMS.values():
            assert 0 < params.logical_fusion < 1
            assert 0 < params.mov_elision < 1
            assert 0 < params.stall_relief <= 1


class TestHashUnit:
    def test_speedup_over_software(self):
        from repro.engines import hash_unit_estimate
        est = hash_unit_estimate("sha1")
        # ~780 software cycles per block vs 88 hardware.
        assert 5 < est.speedup < 15
        assert est.throughput_mbps() > 1000

    def test_md5_unit_faster_than_sha1_unit(self):
        from repro.engines import hash_unit_estimate
        md5_est = hash_unit_estimate("md5")
        sha_est = hash_unit_estimate("sha1")
        # Fewer serial steps per block.
        assert md5_est.unit_cycles_per_block < \
            sha_est.unit_cycles_per_block

    def test_pipelining_amortizes_across_messages(self):
        from repro.engines import HashUnitDesign, hash_unit_estimate
        single = hash_unit_estimate("sha1", HashUnitDesign())
        deep = hash_unit_estimate("sha1",
                                  HashUnitDesign(pipeline_depth=4))
        assert deep.unit_cycles_per_block == pytest.approx(
            single.unit_cycles_per_block / 4)

    def test_serial_step_floor(self):
        from repro.engines import SERIAL_STEPS, hash_unit_estimate, \
            HashUnitDesign
        est = hash_unit_estimate(
            "md5", HashUnitDesign(cycles_per_step=1.0, block_overhead=0.0))
        assert est.unit_cycles_per_block == SERIAL_STEPS["md5"]

    def test_validation(self):
        from repro.engines import HashUnitDesign, hash_unit_estimate
        with pytest.raises(KeyError):
            hash_unit_estimate("sha999")
        with pytest.raises(ValueError):
            hash_unit_estimate("md5", HashUnitDesign(pipeline_depth=0))
