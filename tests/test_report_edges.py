"""Edge cases across the small reporting/formatting helpers."""

import pytest

from repro.perf.report import format_table, kcycles, percent
from repro.ssl.errors import AlertDescription


class TestFormatTable:
    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text and text.endswith("\n")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [("only-one",)])

    def test_numeric_right_alignment(self):
        text = format_table(["name", "value"],
                            [("x", 1.0), ("longer", 200.0)])
        lines = text.splitlines()
        # Numeric column right-aligned: the short number ends the line.
        assert lines[-2].endswith("1.000") or lines[-2].endswith("1")

    def test_large_numbers_thousands_separated(self):
        text = format_table(["v"], [(1234567.0,)])
        assert "1,234,567" in text

    def test_title_underlined(self):
        text = format_table(["c"], [("x",)], title="My Title")
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_mixed_text_column_left_aligned(self):
        text = format_table(["name", "n"],
                            [("a", 1.0), ("bbbb", 2.0)])
        row_a = [l for l in text.splitlines() if l.startswith("a")][0]
        assert row_a.startswith("a   ")  # padded to column width


class TestSmallHelpers:
    def test_percent(self):
        assert percent(0.5) == "50.00%"
        assert percent(0.0) == "0.00%"
        assert percent(1.0) == "100.00%"

    def test_kcycles(self):
        assert kcycles(1500.0) == 1.5

    def test_alert_names_cover_known_codes(self):
        for code in (0, 10, 20, 30, 40, 41, 42, 43, 44, 45, 46, 47, 100):
            assert not AlertDescription.name(code).startswith("alert_")

    def test_alert_name_unknown_code(self):
        assert AlertDescription.name(99) == "alert_99"


class TestLoopbackFailure:
    def test_pump_detects_stuck_protocol(self):
        """Endpoints that keep emitting without progressing trip the
        convergence guard instead of spinning forever."""
        from repro import perf
        from repro.ssl import SslError
        from repro.ssl.loopback import pump

        class Chatterbox:
            handshake_complete = False
            closed = False

            def pending_output(self):
                return b"\x15"  # always something, never progress

            def receive(self, data):
                pass  # swallows everything

        with pytest.raises(SslError, match="converge"):
            pump(Chatterbox(), Chatterbox(), perf.Profiler(),
                 perf.Profiler())
