"""Cross-module integration: features composed the way deployments mix them."""

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.perf.trace import merge_profilers
from repro.ssl import (
    DES_CBC3_SHA, SessionCache, SslClient, SslServer, TLS1_VERSION,
)
from repro.ssl.ciphersuites import DHE_RSA_AES128_SHA, EXP_RC4_MD5
from repro.ssl.loopback import pump
from repro.ssl.x509 import make_ca_signed_pair
from repro.webserver import RequestWorkload, WebServerSimulator


def run_pair(server_kwargs, client_kwargs, payload=b"integration"):
    sp, cp = perf.Profiler(), perf.Profiler()
    with perf.activate(sp):
        server = SslServer(rng=PseudoRandom(b"int-s"), **server_kwargs)
    with perf.activate(cp):
        client = SslClient(rng=PseudoRandom(b"int-c"), **client_kwargs)
        client.start_handshake()
    pump(client, server, cp, sp)
    assert client.handshake_complete and server.handshake_complete
    with perf.activate(cp):
        client.write(payload)
    with perf.activate(sp):
        server.receive(client.pending_output())
        assert server.read() == payload
    return client, server, cp, sp


class TestKitchenSink:
    def test_tls_dhe_chain_v2hello(self, rsa512, rsa1024):
        """TLS 1.0 + DHE + CA-signed chain + v2-compat opening, together."""
        leaf, ca = make_ca_signed_pair("CN=integration-ca", "CN=leaf",
                                       ca_key=rsa1024, leaf_key=rsa512)
        client, server, cp, sp = run_pair(
            dict(private_key=rsa512, certificate=leaf, cert_chain=(ca,),
                 suites=(DHE_RSA_AES128_SHA,)),
            dict(suites=(DHE_RSA_AES128_SHA,), version=TLS1_VERSION,
                 use_v2_hello=True, trusted_issuer=ca))
        assert server.version == TLS1_VERSION
        assert sp.region_cycles("send_server_kx") > 0

    def test_export_suite_with_resumption_and_renegotiation(self,
                                                            identity512):
        key, cert = identity512
        cache = SessionCache()
        client, server, cp, sp = run_pair(
            dict(private_key=key, certificate=cert, suites=(EXP_RC4_MD5,),
                 session_cache=cache),
            dict(suites=(EXP_RC4_MD5,)))
        # Renegotiate (resumed via session id) and keep transferring.
        with perf.activate(sp):
            server.request_renegotiation()
        pump(client, server, cp, sp)
        assert server.resumed
        with perf.activate(cp):
            client.write(b"still-export-grade")
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"still-export-grade"

    def test_separate_montgomery_in_full_handshake(self, identity512):
        key, cert = identity512
        key.mont_reduction = "separate"
        try:
            client, server, _, sp = run_pair(
                dict(private_key=key, certificate=cert,
                     suites=(DES_CBC3_SHA,)),
                dict(suites=(DES_CBC3_SHA,)))
            assert sp.region_cycles(
                "get_client_kx/rsa_private_decryption") > 0
        finally:
            key.mont_reduction = "interleaved"

    def test_tls_webserver_simulation(self, identity512):
        """The web-server environment with a TLS-only... the simulator's
        client defaults to SSLv3; drive it with TLS via the client knob
        indirectly by checking the stack still serves SSLv3 (version
        plumbing is covered elsewhere); here: DHE suite end to end."""
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                 suite=DHE_RSA_AES128_SHA)
        result = sim.run(RequestWorkload.fixed(1024), 1)
        assert result.requests_completed == 1
        assert result.failures == 0
        # DHE shifts more of the crypto into public-key work (two modexps
        # plus an RSA signature).
        assert result.crypto_category_shares()["public"] > 0.5


class TestProfileAggregation:
    def test_merge_webserver_workers(self, identity512):
        """Two simulated workers' profiles merge into one Table-1 view."""
        key, cert = identity512
        results = []
        for worker in range(2):
            sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                     seed=b"worker-%d" % worker)
            results.append(sim.run(RequestWorkload.fixed(1024), 1))
        merged = merge_profilers(perf.Profiler(),
                                 *(r.profiler for r in results))
        total = sum(r.profiler.total_cycles() for r in results)
        assert merged.total_cycles() == pytest.approx(total)
        modules = {name for name, _, _ in merged.module_breakdown()}
        assert {"libcrypto", "vmlinux", "httpd"} <= modules

    def test_shares_stable_across_seeds(self, identity512):
        """Crypto-category shares are a property of the workload, not the
        seed: two different-seed runs agree within a few points."""
        key, cert = identity512
        shares = []
        for seed in (b"seed-a", b"seed-b"):
            sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                     seed=seed)
            r = sim.run(RequestWorkload.fixed(1024), 1)
            shares.append(r.crypto_category_shares()["public"])
        assert shares[0] == pytest.approx(shares[1], abs=0.05)
