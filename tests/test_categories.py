"""Function-name classification driving Figure 2 / Table 3."""

import pytest

from repro import perf
from repro.perf import Profiler, mix
from repro.perf.categories import (
    HASH, OTHER, PRIVATE, PUBLIC, classify_function, crypto_breakdown,
    crypto_shares,
)


class TestClassification:
    @pytest.mark.parametrize("name,expected", [
        ("bn_mul_add_words", PUBLIC),
        ("BN_from_montgomery", PUBLIC),
        ("BN_div", PUBLIC),
        ("block_parsing", PUBLIC),        # PKCS#1 is part of the RSA op
        ("AES_encrypt", PRIVATE),
        ("DES_encrypt3", PRIVATE),
        ("RC4", PRIVATE),
        ("RC4_set_key", PRIVATE),
        ("cbc_encrypt", PRIVATE),
        ("MD5_Update", HASH),
        ("SHA1_Final", HASH),
        ("mac", HASH),
        ("ssl3_PRF", HASH),
        ("rand_pseudo_bytes", OTHER),
        ("X509_functions", OTHER),
        ("OPENSSL_cleanse", OTHER),
        ("ERR_load_BN_strings", OTHER),
        ("some_unknown_crypto_fn", OTHER),
    ])
    def test_known_names(self, name, expected):
        assert classify_function(name, "libcrypto") == expected

    @pytest.mark.parametrize("module", ["libssl", "httpd", "vmlinux",
                                        "other"])
    def test_non_libcrypto_excluded(self, module):
        assert classify_function("AES_encrypt", module) is None


class TestAggregation:
    def _profile(self):
        p = Profiler()
        p.charge(mix(mull=100), function="bn_mul_add_words")
        p.charge(mix(xorl=100), function="DES_encrypt3")
        p.charge(mix(addl=100), function="SHA1_Update")
        p.charge(mix(movl=100), function="rand_pseudo_bytes")
        p.charge(mix(movl=999), function="apache", module="httpd")
        return p

    def test_breakdown_covers_categories(self):
        b = crypto_breakdown(self._profile())
        assert all(b[c] > 0 for c in (PUBLIC, PRIVATE, HASH, OTHER))

    def test_non_crypto_modules_excluded(self):
        p = self._profile()
        b = crypto_breakdown(p)
        assert sum(b.values()) < p.total_cycles()

    def test_shares_sum_to_one(self):
        shares = crypto_shares(self._profile())
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_empty_profile(self):
        shares = crypto_shares(Profiler())
        assert sum(shares.values()) == 0.0

    def test_real_rsa_decrypt_is_public(self, rsa512, rng):
        p = Profiler()
        ct = rsa512.public().encrypt(b"classify", rng)
        with perf.activate(p):
            rsa512.decrypt(ct)
        shares = crypto_shares(p)
        assert shares[PUBLIC] > 0.9
