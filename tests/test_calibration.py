"""Paper-shape calibration checks.

These tests pin the reproduction to the paper's published numbers: each
asserts that a measured quantity lands inside a tolerance band around the
corresponding table/figure value (or that a structural ordering holds).
EXPERIMENTS.md records the exact measured-versus-paper values; these tests
keep the shapes from regressing.
"""

import pytest

from repro.crypto.bench import (
    aes_block_breakdown, characteristics, des_block_breakdown,
    hash_phase_breakdown, instruction_mix, key_setup_shares,
    measure_rsa, rsa_step_breakdown,
)

#: Table 11 of the paper: CPI, path length (instr/byte), throughput (MB/s).
PAPER_TABLE11 = {
    "aes": (0.66, 50, 51.19),
    "des": (0.67, 69, 36.95),
    "3des": (0.66, 194, 13.32),
    "rc4": (0.57, 14, 211.34),
    "rsa": (0.77, 61457, 0.036),
    "md5": (0.72, 12, 197.86),
    "sha1": (0.52, 24, 135.30),
}


@pytest.fixture(scope="module")
def table11():
    return characteristics(nbytes=8192, rsa_bits=1024)


class TestTable11:
    @pytest.mark.parametrize("name", list(PAPER_TABLE11))
    def test_cpi_within_five_percent(self, table11, name):
        paper_cpi = PAPER_TABLE11[name][0]
        assert table11[name].cpi == pytest.approx(paper_cpi, rel=0.05)

    @pytest.mark.parametrize("name,tol", [
        ("aes", 0.20), ("des", 0.20), ("3des", 0.15), ("rc4", 0.25),
        ("md5", 0.15), ("sha1", 0.15),
    ])
    def test_path_length_within_tolerance(self, table11, name, tol):
        paper_path = PAPER_TABLE11[name][1]
        assert table11[name].path_length == pytest.approx(paper_path,
                                                          rel=tol)

    def test_rsa_path_length_order_of_magnitude(self, table11):
        # Structural deviation documented in EXPERIMENTS.md: our Montgomery
        # reduction is word-interleaved (2n^2 multiplies per product) while
        # OpenSSL 0.9.7d's was two extra full multiplications (3n^2), so our
        # path is ~2/3 of the paper's 61457 instructions/byte.
        assert 30_000 < table11["rsa"].path_length < 75_000

    def test_throughput_ordering_matches_paper(self, table11):
        """Who is faster than whom -- the load-bearing shape."""
        t = {k: v.throughput_mbps for k, v in table11.items()}
        assert t["rc4"] > t["md5"] > t["sha1"] > t["aes"] > t["des"] > \
            t["3des"] > t["rsa"]

    def test_throughput_within_factor(self, table11):
        """Absolute throughput within 1.6x of the paper (its Table 11 is
        internally inconsistent by ~1.3x between CPI*path and MB/s)."""
        for name, (_, _, mbps) in PAPER_TABLE11.items():
            ratio = table11[name].throughput_mbps / mbps
            assert 0.6 < ratio < 1.9, (name, ratio)

    def test_aes_cannot_saturate_gigabit(self, table11):
        """Paper: 'it is still incapable of saturating a network link
        running at 1Gbps'."""
        assert table11["aes"].throughput_mbps < 125

    def test_private_key_range_matches_paper_claim(self, table11):
        """Paper: private-key suite throughput spans ~13 to ~211 MB/s."""
        assert table11["3des"].throughput_mbps == \
            min(table11[c].throughput_mbps
                for c in ("aes", "des", "3des", "rc4"))
        assert table11["rc4"].throughput_mbps == \
            max(table11[c].throughput_mbps
                for c in ("aes", "des", "3des", "rc4"))


class TestTable5Aes:
    def test_128_bit_shares(self):
        rows = aes_block_breakdown(128)
        total = sum(c for _, c in rows)
        shares = [c / total for _, c in rows]
        assert shares[1] == pytest.approx(0.71, abs=0.06)  # paper: 70.64%
        assert shares[0] == pytest.approx(0.12, abs=0.05)
        assert shares[2] == pytest.approx(0.17, abs=0.06)

    def test_256_bit_main_rounds_grow(self):
        share_128 = _phase_share(aes_block_breakdown(128), 1)
        share_256 = _phase_share(aes_block_breakdown(256), 1)
        assert share_256 > share_128          # paper: 70.64% -> 77.91%
        assert share_256 == pytest.approx(0.78, abs=0.05)

    def test_total_cycles_near_paper(self):
        total_128 = sum(c for _, c in aes_block_breakdown(128))
        total_256 = sum(c for _, c in aes_block_breakdown(256))
        assert total_128 == pytest.approx(562, rel=0.2)   # Table 5
        assert total_256 == pytest.approx(747, rel=0.2)

    def test_fixed_phases_unchanged_by_key_size(self):
        """Paper: 'Larger key size only affects the second part'."""
        r128, r256 = aes_block_breakdown(128), aes_block_breakdown(256)
        assert r128[0][1] == r256[0][1]
        assert r128[2][1] == r256[2][1]

    def test_breakdown_consistent_with_execution(self, isolated_profiler):
        from repro.crypto.aes import AES
        AES(bytes(16)).encrypt_block(bytes(16))
        executed = isolated_profiler.functions["AES_encrypt"].cycles
        modelled = sum(c for _, c in aes_block_breakdown(128))
        assert executed == pytest.approx(modelled, rel=0.05)


class TestTable6Des:
    def test_des_substitution_share(self):
        share = _phase_share(des_block_breakdown("des"), 1)
        assert share == pytest.approx(0.747, abs=0.05)   # paper: 74.74%

    def test_3des_substitution_share(self):
        share = _phase_share(des_block_breakdown("3des"), 1)
        assert share == pytest.approx(0.891, abs=0.04)   # paper: 89.1%

    def test_total_cycles_near_paper(self):
        assert sum(c for _, c in des_block_breakdown("des")) == \
            pytest.approx(382, rel=0.2)
        assert sum(c for _, c in des_block_breakdown("3des")) == \
            pytest.approx(1027, rel=0.2)

    def test_ip_fp_shared_across_variants(self):
        des_rows, tdes_rows = (des_block_breakdown("des"),
                               des_block_breakdown("3des"))
        assert des_rows[0][1] == tdes_rows[0][1]
        assert des_rows[2][1] == tdes_rows[2][1]


class TestTable7Rsa:
    @pytest.fixture(scope="class")
    def rsa_1024(self):
        return measure_rsa(1024, use_crt=True)

    def test_computation_share(self, rsa_1024):
        rows = dict(rsa_step_breakdown(rsa_1024))
        total = sum(rows.values())
        assert rows["computation"] / total > 0.93   # paper: 98.85%

    def test_all_steps_nonzero(self, rsa_1024):
        for step, cycles in rsa_step_breakdown(rsa_1024):
            assert cycles > 0, step

    def test_total_cycles_near_paper(self, rsa_1024):
        # Paper: 6.04M cycles for a 1024-bit op; our interleaved Montgomery
        # reduction does 2/3 of the 0.9.7 multiply work (see EXPERIMENTS.md).
        assert 3.5e6 < rsa_1024.cycles < 7.5e6

    def test_512_to_1024_scaling(self):
        m512 = measure_rsa(512)
        m1024 = measure_rsa(1024)
        ratio = m1024.cycles / m512.cycles
        # CRT cost scales ~n^3: paper measures 5.05x (6.04M / 1.20M).
        assert 4.0 < ratio < 8.5

    def test_noncrt_matches_handshake_magnitude(self):
        """Table 2's 18.56M-cycle RSA entry is consistent with non-CRT."""
        m = measure_rsa(1024, use_crt=False)
        assert 13e6 < m.cycles < 23e6


class TestTable8Functions:
    def test_top_function_and_membership(self):
        m = measure_rsa(1024)
        rows = m.profiler.function_breakdown(top=10)
        names = [name for name, _, _ in rows]
        assert names[0] == "bn_mul_add_words"     # paper: 47.04%
        share = rows[0][2]
        assert share > 0.40
        expected_members = {"bn_sub_words", "BN_from_montgomery"}
        assert expected_members <= set(names)


class TestTable10Hashes:
    @pytest.mark.parametrize("name,update_share", [
        ("md5", 0.9088), ("sha1", 0.9205),
    ])
    def test_update_dominates(self, name, update_share):
        rows = dict(hash_phase_breakdown(name, 1024))
        total = sum(rows.values())
        assert rows["Update"] / total == pytest.approx(update_share,
                                                       abs=0.05)

    def test_sha1_costs_more_than_md5(self):
        md5_total = sum(c for _, c in hash_phase_breakdown("md5", 1024))
        sha_total = sum(c for _, c in hash_phase_breakdown("sha1", 1024))
        # Paper Table 10: 6679 vs 10723 cycles on 1024 bytes.
        assert 1.3 < sha_total / md5_total < 2.0

    def test_init_is_negligible(self):
        rows = dict(hash_phase_breakdown("md5", 1024))
        assert rows["Init"] / sum(rows.values()) < 0.02


class TestFigure3KeySetup:
    @pytest.fixture(scope="class")
    def shares(self):
        return key_setup_shares(sizes=(1024, 8192, 32768))

    def test_rc4_dominant_at_1kb(self, shares):
        rc4_1k = dict(shares["rc4"])[1024]
        assert rc4_1k == pytest.approx(0.285, abs=0.08)   # paper: 28.5%

    def test_block_ciphers_small_at_1kb(self, shares):
        for name in ("aes", "des", "3des"):
            share = dict(shares[name])[1024]
            assert 0.002 < share < 0.06, name  # paper: 1.0% - 3.6%

    def test_shares_decrease_with_size(self, shares):
        for name, series in shares.items():
            values = [v for _, v in series]
            assert values == sorted(values, reverse=True), name

    def test_8kb_thresholds(self, shares):
        """Paper: <0.5% for block ciphers and ~5% for RC4 at 8 KB."""
        assert dict(shares["rc4"])[8192] < 0.08
        for name in ("aes", "des", "3des"):
            assert dict(shares[name])[8192] < 0.012, name


class TestTable12InstructionMix:
    PAPER_TOP = {
        "aes": "movl", "des": "xorl", "3des": "xorl", "rc4": "movl",
        "rsa": "movl", "md5": "movl", "sha1": "movl",
    }

    @pytest.mark.parametrize("name", list(PAPER_TOP))
    def test_top_instruction_matches(self, name):
        top = instruction_mix(name, nbytes=2048, top=1)[0][0]
        assert top == self.PAPER_TOP[name]

    def test_aes_shares_close_to_paper(self):
        shares = dict(instruction_mix("aes", nbytes=4096))
        assert shares["movl"] == pytest.approx(0.3775, abs=0.06)
        assert shares["xorl"] == pytest.approx(0.2509, abs=0.06)

    def test_rsa_arith_instructions_prominent(self):
        shares = dict(instruction_mix("rsa"))
        # Paper: addl 16.25%, adcl 16.18%, mull 6.10%.
        assert shares.get("adcl", 0) > 0.08
        assert shares.get("mull", 0) > 0.04

    def test_des_xor_heavy(self):
        shares = dict(instruction_mix("des", nbytes=2048))
        assert shares["xorl"] == pytest.approx(0.4111, abs=0.07)

    def test_top10_covers_most_instructions(self):
        for name in ("aes", "des", "rc4", "md5", "sha1"):
            total = sum(s for _, s in instruction_mix(name, nbytes=2048))
            assert total > 0.85, name  # paper: 89.78% - 98.63%


def _phase_share(rows, index):
    total = sum(c for _, c in rows)
    return rows[index][1] / total
