"""Adversarial-input fuzzing: malformed wire bytes must fail *cleanly*.

Every failure path must surface as an :class:`~repro.ssl.errors.SslError`
subclass (so a server can alert and close) -- never an IndexError,
struct.error or other accidental exception class.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
from repro.ssl.errors import SslError
from repro.ssl.handshake import (
    CertificateMsg, ClientHello, Finished, ServerHello, ServerKeyExchange,
    parse_message,
)
from repro.ssl.loopback import make_server_identity
from repro.ssl.record import RecordLayer


@pytest.fixture(scope="module")
def identity():
    return make_server_identity(512, seed=b"fuzz")


class TestRecordLayerFuzz:
    @given(st.binary(max_size=400))
    @settings(max_examples=60, deadline=None)
    def test_random_bytes_never_crash(self, data):
        rl = RecordLayer()
        try:
            rl.feed(data)
        except SslError:
            pass  # clean rejection is fine

    @given(st.binary(min_size=5, max_size=120))
    @settings(max_examples=60, deadline=None)
    def test_valid_header_random_body(self, tail):
        rl = RecordLayer()
        wire = bytes([22, 3, 0]) + len(tail).to_bytes(2, "big") + tail
        try:
            rl.feed(wire)
        except SslError:
            pass


class TestHandshakeParserFuzz:
    @given(st.sampled_from([1, 2, 11, 12, 14, 16, 20]),
           st.binary(max_size=300))
    @settings(max_examples=80, deadline=None)
    def test_parse_message_never_crashes(self, msg_type, body):
        try:
            parse_message(msg_type, body)
        except SslError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_specific_parsers(self, body):
        for parser in (ClientHello, ServerHello, CertificateMsg, Finished,
                       ServerKeyExchange):
            try:
                parser.parse(body)
            except SslError:
                pass

    @given(st.binary(max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_certificate_bytes(self, blob):
        from repro.ssl.errors import BadCertificate
        from repro.ssl.x509 import Certificate
        try:
            Certificate.from_bytes(blob)
        except BadCertificate:
            pass


class TestServerFacingFuzz:
    """A live server fed mutated client flights must alert, not crash."""

    def _fresh_server(self, identity):
        key, cert = identity
        return SslServer(key, cert, suites=(DES_CBC3_SHA,),
                         rng=PseudoRandom(b"fuzz-server"))

    @given(st.binary(min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_raw_garbage(self, identity, data):
        server = self._fresh_server(identity)
        try:
            server.receive(data)
        except SslError:
            pass

    @given(st.integers(0, 200), st.integers(0, 255))
    @settings(max_examples=40, deadline=None)
    def test_mutated_client_hello(self, identity, position, value):
        server = self._fresh_server(identity)
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"fuzz-client"))
        client.start_handshake()
        flight = bytearray(client.pending_output())
        flight[position % len(flight)] ^= value or 1
        try:
            server.receive(bytes(flight))
        except SslError:
            pass

    @given(st.integers(0, 400), st.integers(1, 255))
    @settings(max_examples=30, deadline=None)
    def test_mutated_second_flight(self, identity, position, value):
        server = self._fresh_server(identity)
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"fuzz-client2"))
        client.start_handshake()
        server.receive(client.pending_output())
        client.receive(server.pending_output())
        flight = bytearray(client.pending_output())
        flight[position % len(flight)] ^= value
        try:
            server.receive(bytes(flight))
        except SslError:
            pass

    def test_server_closed_after_fatal(self, identity):
        server = self._fresh_server(identity)
        with pytest.raises(SslError):
            server.receive(b"\x16\x03\x00\x00\x04\x01\x00\x00\x00")
        assert server.closed
        # Further input on a dead connection is rejected cleanly.
        with pytest.raises(SslError):
            server.receive(b"\x17\x03\x00\x00\x01x")
