"""Discrete-event scheduler core: unit semantics, bit-identity against
the committed golden baselines, and streaming-admission memory bounds.

The contract under test (``repro.webserver.events``): the event heap
must reproduce the legacy scan loop's schedule *exactly* -- admission
order among runnable transactions, batcher flush wake placement, the
stalled-straggler countdown -- while never touching parked transactions
and telling the driver how far the round clock may jump.
"""

import tracemalloc
from pathlib import Path

import pytest

from repro import runtime
from repro.crypto import rsa
from repro.perf import baseline
from repro.ssl.loopback import make_server_identity
from repro.webserver import ServerFarm
from repro.webserver.events import STALL_LIMIT, TxnScheduler
from repro.webserver.overload import AcceptQueue, AdversarialWorkload
from repro.webserver.workload import Request, connection_groups
from repro.perf import Profiler


# ---------------------------------------------------------------------------
# Scheduler unit semantics (fake transactions, fake batcher)
# ---------------------------------------------------------------------------

class FakeTxn:
    """Scripted transaction: pops one behaviour per step.

    ``"go"`` progresses, ``"park"`` reports no progress (a batch wait),
    ``"done"`` progresses and completes.  The step log records the
    global interleaving the scheduler produced.
    """

    def __init__(self, name, script, log):
        self.name = name
        self.script = list(script)
        self.log = log
        self.done = False
        self.failed = False

    def step(self):
        action = self.script.pop(0) if self.script else "go"
        self.log.append((self.name, action))
        if action == "done":
            self.done = True
            return True
        return action != "park"

    def _fail(self):
        self.failed = True
        self.done = True


class FakeBatcher:
    """Just enough of HandshakeBatcher's surface for the scheduler:
    ``flushes``/``__len__``/``tick``/``flush``."""

    def __init__(self):
        self.flushes = 0
        self.queued = 0
        self.ticks = 0

    def __len__(self):
        return self.queued

    def tick(self, ticks=1):
        self.ticks += ticks

    def flush(self):
        if self.queued:
            self.flushes += 1
            self.queued = 0


def drive(sched, profiler=None, max_rounds=50):
    """Run the scheduler the way the farm does: execute, ask for the
    next event, jump.  Returns the list of executed round numbers."""
    profiler = profiler or Profiler()
    executed = []
    round_no, prev = 0, -1
    while sched and len(executed) < max_rounds:
        sched.run_round(round_no, round_no - prev, profiler)
        executed.append(round_no)
        prev = round_no
        nxt = sched.next_event_round(round_no)
        if nxt is None:
            break
        round_no = nxt
    return executed


class TestTxnScheduler:
    def test_admission_order_within_a_round(self):
        log = []
        sched = TxnScheduler()
        for name in ("a", "b", "c"):
            sched.add(FakeTxn(name, ["go", "done"], log), 0)
        drive(sched)
        # Each round sweeps the runnable set in admission order.
        assert [e[0] for e in log] == ["a", "b", "c", "a", "b", "c"]

    def test_completion_is_constant_time_removal(self):
        log = []
        sched = TxnScheduler()
        done_names = []
        sched.add(FakeTxn("a", ["done"], log), 0)
        sched.add(FakeTxn("b", ["go", "done"], log), 0)
        sched.run_round(0, 1, Profiler(),
                        on_done=lambda t: done_names.append(t.name))
        assert done_names == ["a"]
        assert len(sched) == 1

    def test_parked_txn_not_touched_until_flush(self):
        log = []
        batcher = FakeBatcher()
        sched = TxnScheduler(batcher)
        parked = FakeTxn("p", ["go", "park", "done"], log)
        runner = FakeTxn("r", ["go", "go", "go", "done"], log)
        sched.add(parked, 0)
        sched.add(runner, 0)
        sched.run_round(0, 1, Profiler())
        sched.run_round(1, 1, Profiler())
        batcher.queued = 1  # the decrypt "p" parked on
        sched.run_round(2, 1, Profiler())
        sched.run_round(3, 1, Profiler())
        # "p" parked in round 1 and must not appear in rounds 2-3.
        assert log.count(("p", "park")) == 1
        assert [e for e in log if e[0] == "p"] == [("p", "go"), ("p", "park")]
        # Round 4: nothing progresses, so the legacy not-progressed
        # flush fires and wakes "p" for round 5.
        sched.run_round(4, 1, Profiler())
        assert batcher.flushes == 1
        sched.run_round(5, 1, Profiler())
        assert ("p", "done") in log

    def test_mid_step_flush_wakes_later_orders_same_round(self):
        log = []
        batcher = FakeBatcher()
        sched = TxnScheduler(batcher)

        class FlushingTxn(FakeTxn):
            def step(self):
                result = super().step()
                if self.script and self.script[0] == "FLUSH":
                    self.script.pop(0)
                    batcher.queued = 1
                    batcher.flush()
                return result

        early = FakeTxn("early", ["park", "done"], log)        # order 0
        flusher = FlushingTxn("mid", ["go", "go", "FLUSH", "done"], log)
        late = FakeTxn("late", ["park", "go", "done"], log)    # order 2
        sched.add(early, 0)
        sched.add(flusher, 0)
        sched.add(late, 0)
        sched.run_round(0, 1, Profiler())   # early and late park
        log_before = len(log)
        sched.run_round(1, 1, Profiler())   # mid flushes during its step
        round1 = log[log_before:]
        # late (order 2 > the flusher's order 1) is re-stepped within
        # round 1 -- the scan loop would still have reached it; early
        # (order 0 <= 1) was already passed and waits for round 2.
        assert round1 == [("mid", "go"), ("late", "go")]
        sched.run_round(2, 1, Profiler())
        assert ("early", "done") in log

    def test_straggler_countdown_jump_and_fail(self):
        log = []
        sched = TxnScheduler()
        txn = FakeTxn("s", ["park"] * 20, log)
        sched.add(txn, 0)
        sched.run_round(0, 1, Profiler())
        # Nothing runnable, nothing queued: the next interesting round
        # is the stall deadline (round 0 already burned one tick).
        nxt = sched.next_event_round(0)
        assert nxt == STALL_LIMIT
        sched.run_round(nxt, nxt - 0, Profiler())
        assert txn.failed and not sched

    def test_next_event_round_tracks_batcher_continuations(self):
        # A queued decrypt can outlive its transaction (mid-handshake
        # abandons); the legacy loop still flushes it next round.
        batcher = FakeBatcher()
        batcher.queued = 1
        sched = TxnScheduler(batcher)
        assert sched.next_event_round(7) == 8
        batcher.queued = 0
        assert sched.next_event_round(7) is None

    def test_scan_mode_steps_everything_every_round(self):
        log = []
        sched = TxnScheduler(events=False)
        sched.add(FakeTxn("a", ["go", "park", "park", "done"], log), 0)
        sched.add(FakeTxn("b", ["go", "go", "go", "done"], log), 0)
        for round_no in range(4):
            sched.run_round(round_no, 1, Profiler())
        # The scan loop re-steps parked transactions as no-ops.
        assert [e[0] for e in log] == ["a", "b"] * 4
        assert sched.touched == 8

    def test_work_counters(self):
        log = []
        sched = TxnScheduler()
        sched.add(FakeTxn("a", ["go", "done"], log), 0)
        drive(sched)
        stats = sched.stats()
        assert stats["touched"] == 2
        assert stats["rounds_executed"] == 2
        assert stats["rounds_virtual"] >= stats["rounds_executed"]


# ---------------------------------------------------------------------------
# Bit-identity: event core vs legacy scan loop vs committed baselines
# ---------------------------------------------------------------------------

#: One representative per golden scenario family touched by the event
#: core (simulator, farm, engines, tickets, overload).
FAMILY_SCENARIOS = (
    "webserver_https",
    "farm_2workers",
    "engines_preferential_farm",
    "ticket_resumption",
    "overload_flash_crowd",
)


@pytest.mark.parametrize("name", FAMILY_SCENARIOS)
def test_event_core_matches_committed_baseline(name):
    from repro.tools.perfgate import baseline_path, capture_scenario
    committed = baseline.load_json(baseline_path(Path("baselines"), name))
    with runtime.events(True):
        fresh = capture_scenario(name)
    assert baseline.diff_signatures(committed, fresh) == []


@pytest.mark.parametrize("name", ("farm_2workers", "overload_flash_crowd"))
def test_legacy_scan_loop_still_matches_baseline(name):
    # REPRO_EVENTS=0 keeps the reference semantics runnable; it must
    # stay pinned to the same goldens.
    from repro.tools.perfgate import baseline_path, capture_scenario
    committed = baseline.load_json(baseline_path(Path("baselines"), name))
    with runtime.events(False):
        fresh = capture_scenario(name)
    assert baseline.diff_signatures(committed, fresh) == []


def _farm_signature(result):
    return (result.requests_completed, result.failures,
            round(result.total_cycles(), 3), result.wire_bytes,
            tuple(round(lat, 9) for lat in result.handshake_latencies),
            result.queue_wait_rounds_total, result.peak_queue_depth,
            result.handshakes_abandoned, result.resumed_handshakes)


def _run_overload_farm(events):
    rsa.reset_error_tables()
    key, cert = make_server_identity(512, seed=b"evcore-test")
    farm = ServerFarm(2, key=key, cert=cert, use_crt=True, seed=b"evcore")
    workload = AdversarialWorkload.fixed(
        2048, resumption_rate=0.5, seed=b"evcore-wl", clients=8,
        mean_gap_rounds=4.0, flood_rate=0.25)
    with runtime.events(events):
        result = farm.run(workload, 24, concurrency_per_worker=4)
    return _farm_signature(result), [r.scheduler for r in result.results]


def test_event_core_signature_equals_scan_loop():
    sig_on, stats_on = _run_overload_farm(True)
    sig_off, stats_off = _run_overload_farm(False)
    assert sig_on == sig_off
    # ... and the event core did strictly less scheduler work.
    rounds_on = sum(s["rounds_executed"] for s in stats_on)
    rounds_off = sum(s["rounds_executed"] for s in stats_off)
    assert rounds_on < rounds_off
    assert (sum(s["touched"] for s in stats_on)
            <= sum(s["touched"] for s in stats_off))


# ---------------------------------------------------------------------------
# Streaming admission: O(lookahead + capacity) memory
# ---------------------------------------------------------------------------

def _synthetic_requests(nrequests):
    for i in range(nrequests):
        yield Request(path=f"/doc-{i}.html", size_bytes=1024,
                      resumable=bool(i & 1), client_id=i % 32,
                      arrival_round=i // 8)


def test_million_request_stream_drains_in_flat_memory():
    """The full admission path (generator -> grouper -> AcceptQueue)
    holds one group of lookahead: a 10^6-request stream must drain
    within a small constant peak, nowhere near the ~200 MB an eager
    groups list would pin."""
    nrequests = 10 ** 6
    tracemalloc.start()
    queue = AcceptQueue(connection_groups(_synthetic_requests(nrequests), 4))
    drained = 0
    while queue:
        target = queue.round + 1
        upcoming = queue.next_arrival_round()
        if queue.depth() == 0 and upcoming is not None:
            target = max(target, upcoming)
        queue.begin_round(target)
        while queue.depth():
            drained += len(queue.pop())
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert drained == nrequests
    # Measured ~4 KiB; 64 KiB leaves slack without letting a
    # re-materialization (tens of MB) sneak back in.
    assert peak < 64 * 1024, f"streaming admission peaked at {peak} bytes"


def test_farm_consumes_workload_lazily():
    # A one-shot generator is sufficient: nothing may materialize or
    # re-iterate the stream.
    rsa.reset_error_tables()
    key, cert = make_server_identity(512, seed=b"evcore-test")
    farm = ServerFarm(1, key=key, cert=cert, use_crt=True, seed=b"evcore")
    workload = AdversarialWorkload.fixed(1024, seed=b"evcore-lazy",
                                         mean_gap_rounds=1.0)
    result = farm.run(workload, 6, concurrency_per_worker=2)
    assert result.requests_completed == 6
