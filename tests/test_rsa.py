"""RSA: roundtrips, CRT consistency, blinding, the Table 7 anatomy."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import perf
from repro.bignum import BigNum
from repro.crypto import pkcs1
from repro.crypto.rand import PseudoRandom
from repro.crypto.rsa import (
    RsaError, RsaPublicKey, generate_key,
)
from repro.crypto.sha1 import sha1


class TestKeyGeneration:
    def test_key_structure(self, rsa512):
        n = rsa512.n.to_int()
        p, q = rsa512.p.to_int(), rsa512.q.to_int()
        assert p * q == n
        assert n.bit_length() == 512
        assert p > q
        e, d = rsa512.e.to_int(), rsa512.d.to_int()
        assert (e * d) % ((p - 1) * (q - 1) // __import__("math").gcd(
            p - 1, q - 1)) == 1

    def test_crt_components(self, rsa512):
        p, q, d = (rsa512.p.to_int(), rsa512.q.to_int(), rsa512.d.to_int())
        assert rsa512.dmp1.to_int() == d % (p - 1)
        assert rsa512.dmq1.to_int() == d % (q - 1)
        assert (rsa512.iqmp.to_int() * q) % p == 1

    def test_deterministic_for_seed(self):
        a = generate_key(128, rng=PseudoRandom(b"same"))
        b = generate_key(128, rng=PseudoRandom(b"same"))
        assert a.n == b.n

    def test_odd_bits_rejected(self):
        with pytest.raises(RsaError):
            generate_key(129)

    def test_tiny_key_rejected(self):
        with pytest.raises(RsaError):
            generate_key(32)


class TestRoundtrip:
    def test_encrypt_decrypt(self, rsa512, rng):
        msg = b"\x03\x00" + rng.bytes(46)
        ct = rsa512.public().encrypt(msg, rng)
        assert len(ct) == 64
        assert rsa512.decrypt(ct) == msg

    def test_crt_and_noncrt_agree(self, rsa512, rng):
        ct = rsa512.public().encrypt(b"agree?", rng)
        rsa512.use_crt = True
        via_crt = rsa512.decrypt(ct)
        rsa512.use_crt = False
        via_plain = rsa512.decrypt(ct)
        rsa512.use_crt = True
        assert via_crt == via_plain == b"agree?"

    def test_blinding_does_not_change_result(self, rsa512, rng):
        ct = rsa512.public().encrypt(b"blinded", rng)
        rsa512.blinding = False
        no_blind = rsa512.decrypt(ct)
        rsa512.blinding = True
        blind = rsa512.decrypt(ct)
        assert no_blind == blind == b"blinded"

    def test_repeated_decrypts_consistent(self, rsa512, rng):
        """Blinding state mutates between calls; results must not."""
        ct = rsa512.public().encrypt(b"again", rng)
        assert all(rsa512.decrypt(ct) == b"again" for _ in range(4))

    @given(st.binary(min_size=1, max_size=21))  # 32-byte modulus - 11 pad
    @settings(max_examples=15, deadline=None)
    def test_roundtrip_property(self, msg):
        key = generate_key(256, rng=PseudoRandom(b"prop-key"))
        rng = PseudoRandom(b"prop-rng")
        assert key.decrypt(key.public().encrypt(msg, rng)) == msg

    def test_wrong_length_ciphertext(self, rsa512):
        with pytest.raises(RsaError):
            rsa512.decrypt(bytes(63))

    def test_corrupted_ciphertext_raises(self, rsa512, rng):
        ct = bytearray(rsa512.public().encrypt(b"secret", rng))
        ct[10] ^= 0xFF
        with pytest.raises((RsaError, pkcs1.Pkcs1Error)):
            rsa512.decrypt(bytes(ct))

    def test_unreduced_input_rejected(self, rsa512):
        big = rsa512.n.uadd(BigNum.one())
        with pytest.raises(RsaError):
            rsa512.raw_private(big)


class TestSignatures:
    def test_sign_verify(self, rsa512):
        digest = sha1(b"message").digest()
        sig = rsa512.sign("sha1", digest)
        assert rsa512.public().verify(
            sig, pkcs1.digest_info("sha1", digest))

    def test_verify_rejects_wrong_payload(self, rsa512):
        sig = rsa512.sign("sha1", sha1(b"message").digest())
        assert not rsa512.public().verify(
            sig, pkcs1.digest_info("sha1", sha1(b"other").digest()))

    def test_verify_rejects_bitflip(self, rsa512):
        digest = sha1(b"message").digest()
        sig = bytearray(rsa512.sign("sha1", digest))
        sig[0] ^= 1
        assert not rsa512.public().verify(
            bytes(sig), pkcs1.digest_info("sha1", digest))

    def test_verify_rejects_wrong_length(self, rsa512):
        assert not rsa512.public().verify(b"short",
                                          pkcs1.digest_info("sha1",
                                                            bytes(20)))

    def test_raw_payload_signature(self, rsa512):
        """SSLv3-style: 36-byte md5||sha1 signed without DigestInfo."""
        payload = bytes(36)
        sig = rsa512.sign("sha1", payload, raw_payload=True)
        assert rsa512.public().verify(sig, payload)

    def test_signature_mathematical_property(self, rsa512):
        digest = sha1(b"m").digest()
        sig = rsa512.sign("sha1", digest)
        s = int.from_bytes(sig, "big")
        n, e = rsa512.n.to_int(), rsa512.e.to_int()
        block = pow(s, e, n).to_bytes(64, "big")
        assert block.startswith(b"\x00\x01\xff")


class TestPublicKey:
    def test_even_modulus_rejected(self):
        with pytest.raises(RsaError):
            RsaPublicKey(BigNum.from_int(100), BigNum.from_int(3))

    def test_raw_public_matches_pow(self, rsa512):
        pub = rsa512.public()
        x = 123456789
        assert pub.raw_public(BigNum.from_int(x)).to_int() == \
            pow(x, pub.e.to_int(), pub.n.to_int())


class TestAnatomy:
    """The instrumentation that regenerates Table 7."""

    def test_decrypt_opens_all_six_steps(self, rsa512, rng,
                                         isolated_profiler):
        ct = rsa512.public().encrypt(b"anatomy", rng)
        rsa512.decrypt(ct)
        base = "rsa_private_decryption"
        for step in ("init", "data_to_bn", "blinding", "computation",
                     "bn_to_data", "block_parsing"):
            assert isolated_profiler.region_cycles(f"{base}/{step}") > 0, step

    def test_computation_dominates(self, rsa512, rng, isolated_profiler):
        ct = rsa512.public().encrypt(b"dominant", rng)
        rsa512.decrypt(ct)  # warm-up: blinding setup
        p = perf.Profiler()
        with perf.activate(p):
            rsa512.decrypt(ct)
        total = p.region_cycles("rsa_private_decryption")
        comp = p.region_cycles("rsa_private_decryption/computation")
        assert comp / total > 0.85  # paper: 97-99%

    def test_noncrt_costs_more(self, rsa512, rng):
        ct = rsa512.public().encrypt(b"crt-vs", rng)
        rsa512.decrypt(ct)  # warm blinding
        p_crt, p_plain = perf.Profiler(), perf.Profiler()
        rsa512.use_crt = True
        with perf.activate(p_crt):
            rsa512.decrypt(ct)
        rsa512.use_crt = False
        with perf.activate(p_plain):
            rsa512.decrypt(ct)
        rsa512.use_crt = True
        ratio = (p_plain.region_cycles("rsa_private_decryption")
                 / p_crt.region_cycles("rsa_private_decryption"))
        assert 2.5 < ratio < 5.0  # theory: ~3.5-4x

    def test_top_function_is_bn_mul_add_words(self, rsa512, rng,
                                              isolated_profiler):
        ct = rsa512.public().encrypt(b"flat-profile", rng)
        rsa512.decrypt(ct)
        top = isolated_profiler.function_breakdown(top=1)[0][0]
        assert top == "bn_mul_add_words"  # Table 8's #1
