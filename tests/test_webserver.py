"""HTTP layer, workload generation, and the web-server simulation."""

import pytest

from repro import perf
from repro.webserver import (
    ApacheWorker, DEFAULT_COSTS, HttpError, RequestWorkload,
    SystemCostModel, WebServerSimulator, build_request, build_response,
    document_bytes, parse_request, parse_response,
)


class TestHttp:
    def test_request_roundtrip(self):
        req = parse_request(build_request("/doc-1024-0.html"))
        assert req.method == "GET"
        assert req.path == "/doc-1024-0.html"
        assert req.headers["host"] == "repro-server"

    def test_response_roundtrip(self):
        status, body = parse_response(build_response(b"<html>hi</html>"))
        assert status.startswith("HTTP/1.1 200")
        assert body == b"<html>hi</html>"

    @pytest.mark.parametrize("bad", [
        b"NONSENSE\r\n\r\n",
        b"GET /\r\n\r\n",                      # missing version
        b"GET / HTTP/2.0\r\n\r\n",             # unsupported version
        b"GET / HTTP/1.1\r\nBadHeader\r\n\r\n",
        b"\xff\xfe\r\n\r\n",
    ])
    def test_malformed_requests_rejected(self, bad):
        with pytest.raises(HttpError):
            parse_request(bad)

    def test_truncated_response_rejected(self):
        with pytest.raises(HttpError):
            parse_response(b"HTTP/1.1 200 OK\r\n")

    def test_document_bytes_deterministic_and_sized(self):
        a = document_bytes("/x", 1000)
        assert len(a) == 1000
        assert a == document_bytes("/x", 1000)
        assert a != document_bytes("/y", 1000)


class TestApacheWorker:
    def test_serves_sized_document(self):
        worker = ApacheWorker(DEFAULT_COSTS)
        response = worker.handle(build_request("/doc-2048-5.html"))
        status, body = parse_response(response)
        assert status.startswith("HTTP/1.1 200")
        assert len(body) == 2048

    def test_unknown_path_is_404(self):
        worker = ApacheWorker(DEFAULT_COSTS)
        status, _ = parse_response(worker.handle(build_request("/nope")))
        assert "404" in status

    def test_bad_request_is_400(self):
        worker = ApacheWorker(DEFAULT_COSTS)
        status, _ = parse_response(worker.handle(b"garbage\r\n\r\n"))
        assert "400" in status

    def test_non_get_rejected(self):
        worker = ApacheWorker(DEFAULT_COSTS)
        status, _ = parse_response(worker.handle(
            b"POST /doc-10-0.html HTTP/1.1\r\n\r\n"))
        assert "405" in status

    def test_charges_httpd_module(self, isolated_profiler):
        ApacheWorker(DEFAULT_COSTS).handle(build_request("/doc-1024-0.html"))
        modules = dict((n, c) for n, c, _ in
                       isolated_profiler.module_breakdown())
        assert modules.get("httpd", 0) > 0


class TestWorkload:
    def test_fixed_workload(self):
        wl = RequestWorkload.fixed(4096)
        reqs = wl.as_list(5)
        assert len(reqs) == 5
        assert all(r.size_bytes == 4096 for r in reqs)
        assert len({r.path for r in reqs}) == 5

    def test_mix_respects_choices(self):
        wl = RequestWorkload([(100, 1.0), (9999, 1.0)], seed=b"mix")
        sizes = {r.size_bytes for r in wl.requests(40)}
        assert sizes <= {100, 9999}
        assert len(sizes) == 2

    def test_resumption_rate_extremes(self):
        all_resume = RequestWorkload.fixed(10, resumption_rate=1.0)
        assert all(r.resumable for r in all_resume.requests(10))
        no_resume = RequestWorkload.fixed(10, resumption_rate=0.0)
        assert not any(r.resumable for r in no_resume.requests(10))

    def test_deterministic_for_seed(self):
        a = RequestWorkload([(1, 1), (2, 1)], seed=b"s").as_list(10)
        b = RequestWorkload([(1, 1), (2, 1)], seed=b"s").as_list(10)
        assert [r.size_bytes for r in a] == [r.size_bytes for r in b]

    @pytest.mark.parametrize("bad_kwargs", [
        dict(size_mix=[]),
        dict(size_mix=[(10, 0.0)]),
        dict(size_mix=[(10, 1.0)], resumption_rate=1.5),
        dict(size_mix=[(10, 1.0)], clients=0),
    ])
    def test_validation(self, bad_kwargs):
        with pytest.raises(ValueError):
            RequestWorkload(**bad_kwargs)

    def test_three_way_mix_has_no_boundary_skew(self):
        # Satellite fix: cumulative *float* shares drift for weights that
        # don't sum cleanly -- three 1/3 shares accumulate to 0.9999...,
        # so the last bucket silently absorbed boundary draws.  With
        # integer cumulative thresholds each bucket's share of the draw
        # span is exact to within one unit in 10^6.
        wl = RequestWorkload([(100, 1.0), (200, 1.0), (300, 1.0)],
                             seed=b"skew")
        counts = {100: 0, 200: 0, 300: 0}
        n = 9000
        for r in wl.requests(n):
            counts[r.size_bytes] += 1
        for size, c in counts.items():
            assert abs(c - n / 3) < n * 0.05, (size, counts)

    def test_mix_thresholds_are_exact_integers(self):
        # The final threshold is pinned to the full draw span: no draw
        # value can fall off the end of the table, whatever the weights.
        wl = RequestWorkload([(1, 1.0), (2, 1.0), (3, 1.0)], seed=b"t")
        bounds = [b for b, _ in wl._thresholds]
        assert bounds[-1] == 1_000_000
        assert bounds == sorted(bounds)
        assert all(isinstance(b, int) for b in bounds)
        # Three equal weights: thresholds within one unit of exact
        # thirds, not 333299-style drifted values.
        assert abs(bounds[0] - 333_333) <= 1
        assert abs(bounds[1] - 666_667) <= 1

    def test_client_ids_drawn_only_when_population_set(self):
        # No population: no client draw at all, so pre-existing seeded
        # workloads (and every committed baseline) see an unchanged
        # request stream.
        anon = RequestWorkload.fixed(100, seed=b"c")
        assert all(r.client_id is None for r in anon.requests(5))
        pop = RequestWorkload.fixed(100, resumption_rate=0.5, seed=b"c",
                                    clients=7)
        stamped = pop.as_list(20)
        assert all(r.client_id in range(7) for r in stamped)
        assert len({r.client_id for r in stamped}) > 1
        # Deterministic per seed, like the rest of the stream.
        again = RequestWorkload.fixed(100, resumption_rate=0.5, seed=b"c",
                                      clients=7).as_list(20)
        assert [r.client_id for r in stamped] \
            == [r.client_id for r in again]


class TestCostModel:
    def test_costs_scale_with_size(self):
        m = SystemCostModel()
        assert m.kernel_cycles(32) > m.kernel_cycles(1)
        assert m.httpd_cycles(32) > m.httpd_cycles(1)
        assert m.other_cycles(32) > m.other_cycles(1)

    def test_connection_setup_dominates_at_small_sizes(self):
        m = SystemCostModel()
        assert m.kernel_cycles(1) < 1.1 * m.kernel_per_connection


class TestSimulation:
    @pytest.fixture(scope="class")
    def sim_result(self):
        # The paper's configuration: 1024-bit key, non-CRT private op
        # (see DESIGN.md), 1 KB documents.  A dedicated key is generated
        # because the simulator configures use_crt on the key object.
        from repro.crypto.rand import PseudoRandom
        from repro.crypto.rsa import generate_key
        from repro.ssl.x509 import make_self_signed
        key = generate_key(1024, rng=PseudoRandom(b"websim-key"))
        cert = make_self_signed("CN=websim", key)
        sim = WebServerSimulator(key=key, cert=cert, use_crt=False)
        return sim.run(RequestWorkload.fixed(1024), 2)

    def test_all_requests_complete(self, sim_result):
        assert sim_result.requests_completed == 2
        assert sim_result.failures == 0
        assert sim_result.bytes_served == 2048

    def test_all_five_modules_present(self, sim_result):
        shares = sim_result.module_shares()
        assert set(shares) == {"libcrypto", "libssl", "httpd", "vmlinux",
                               "other"}
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_libcrypto_dominates(self, sim_result):
        shares = sim_result.module_shares()
        assert shares["libcrypto"] > 0.6  # paper: 70.83%
        assert shares["libssl"] < 0.05    # paper: 0.82%

    def test_crypto_split_public_dominates(self, sim_result):
        split = sim_result.crypto_category_shares()
        assert split["public"] == max(split.values())
        assert split["public"] > 0.8  # paper: ~90% at 1 KB
        assert sum(split.values()) == pytest.approx(1.0)

    def test_resumption_reduces_cost(self, identity512):
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True)
        full = sim.run(RequestWorkload.fixed(512), 1)
        resumed = sim.run(
            RequestWorkload.fixed(512, resumption_rate=1.0), 2)
        assert resumed.resumed_handshakes >= 1
        assert resumed.cycles_per_request() < full.cycles_per_request()


class TestTransactionAccounting:
    def _bare_transaction(self, nrequests):
        from collections import deque
        from repro.webserver.simulator import SimulationResult, _Transaction
        txn = _Transaction.__new__(_Transaction)
        txn._requests = deque(range(nrequests))
        txn._nrequests = nrequests
        txn._result = SimulationResult(profiler=perf.Profiler())
        return txn

    def test_fail_counts_remaining_requests(self):
        from repro.webserver.simulator import _Transaction
        txn = self._bare_transaction(3)
        txn.phase = _Transaction.HANDSHAKE
        txn._fail()
        assert txn._result.failures == 3
        assert txn.done

    def test_fail_in_closing_counts_nothing(self):
        """Every request was already tallied (completed or failed) by the
        time CLOSING starts; pre-fix, `len(...) or self._nrequests`
        double-counted all of them as failures too."""
        from repro.webserver.simulator import _Transaction
        txn = self._bare_transaction(3)
        txn._requests.clear()
        txn.phase = _Transaction.CLOSING
        txn._fail()
        assert txn._result.failures == 0
        assert txn.done

    def test_admission_failure_counts_not_crashes(self, identity512,
                                                  monkeypatch):
        """Satellite fix: _Transaction.__init__ runs real handshake
        openings, and an SslError escaping it used to crash
        _run_concurrent's scheduling loop instead of being accounted.
        Now admission failures count every request of the would-be
        connection as a failure and the run completes."""
        from repro.ssl.errors import SslError
        from repro.webserver import simulator as sim_mod

        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True)
        boom = {"remaining": 2}
        original = sim_mod.SslServer.__init__

        def flaky(self, *args, **kwargs):
            if boom["remaining"]:
                boom["remaining"] -= 1
                raise SslError("injected constructor failure")
            return original(self, *args, **kwargs)

        monkeypatch.setattr(sim_mod.SslServer, "__init__", flaky)
        result = sim.run(RequestWorkload.fixed(1024), 5, concurrency=2)
        assert result.failures == 2
        assert result.requests_completed == 3


class TestKeepAlive:
    @pytest.fixture(scope="class")
    def identities(self, identity512):
        return identity512

    def test_keepalive_amortizes_handshake(self, identities):
        key, cert = identities
        one = WebServerSimulator(key=key, cert=cert, use_crt=True).run(
            RequestWorkload.fixed(2048), 4, requests_per_connection=1)
        four = WebServerSimulator(key=key, cert=cert, use_crt=True).run(
            RequestWorkload.fixed(2048), 4, requests_per_connection=4)
        assert one.requests_completed == four.requests_completed == 4
        assert four.cycles_per_request() < 0.5 * one.cycles_per_request()

    def test_partial_final_batch(self, identities):
        key, cert = identities
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True)
        result = sim.run(RequestWorkload.fixed(1024), 5,
                         requests_per_connection=2)
        assert result.requests_completed == 5  # 2 + 2 + 1

    def test_keepalive_shifts_module_shares(self, identities):
        """More bulk per handshake: crypto share of *private* rises."""
        key, cert = identities
        one = WebServerSimulator(key=key, cert=cert, use_crt=True).run(
            RequestWorkload.fixed(4096), 3, requests_per_connection=1)
        many = WebServerSimulator(key=key, cert=cert, use_crt=True).run(
            RequestWorkload.fixed(4096), 3, requests_per_connection=3)
        assert many.crypto_category_shares()["private"] > \
            one.crypto_category_shares()["private"]

    def test_validation(self, identities):
        key, cert = identities
        sim = WebServerSimulator(key=key, cert=cert)
        with pytest.raises(ValueError):
            sim.run(RequestWorkload.fixed(1024), 1,
                    requests_per_connection=0)


class TestPhaseBreakdown:
    def test_small_requests_are_handshake_bound(self, identity512):
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True)
        result = sim.run(RequestWorkload.fixed(1024), 2)
        phases = result.phase_breakdown()
        assert phases["handshake"] > phases["bulk"]
        assert sum(phases.values()) == pytest.approx(
            result.profiler.total_cycles(), rel=0.01)

    def test_large_keepalive_shifts_to_bulk(self, identity512):
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True)
        result = sim.run(RequestWorkload.fixed(16384), 4,
                         requests_per_connection=4)
        phases = result.phase_breakdown()
        assert phases["bulk"] > phases["handshake"]

    def test_empty_result(self, identity512):
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert)
        from repro import perf as perf_mod
        from repro.webserver.simulator import SimulationResult
        empty = SimulationResult(profiler=perf_mod.Profiler())
        assert empty.cycles_per_request() == 0.0
        assert sum(empty.phase_breakdown().values()) == 0.0
