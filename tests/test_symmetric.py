"""RC4, DES, 3DES, AES: published vectors and property tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.aes import AES, INV_SBOX, SBOX
from repro.crypto.des import DES, TripleDES
from repro.crypto.rc4 import RC4


class TestRc4:
    def test_classic_vectors(self):
        assert RC4(b"Key").process(b"Plaintext").hex() == \
            "bbf316e8d940af0ad3"
        assert RC4(b"Wiki").process(b"pedia").hex() == "1021bf0420"
        assert RC4(b"Secret").process(b"Attack at dawn").hex() == \
            "45a01f645fc35b383552544b9bf5"

    def test_rfc6229_key_0102030405(self):
        ks = RC4(bytes.fromhex("0102030405")).process(bytes(16))
        assert ks.hex() == "b2396305f03dc027ccc3524a0a1118a8"

    def test_encryption_is_decryption(self):
        data = b"symmetric stream cipher" * 3
        assert RC4(b"k1").process(RC4(b"k1").process(data)) == data

    def test_incremental_continuity(self):
        oneshot = RC4(b"key").process(bytes(100))
        stream = RC4(b"key")
        pieces = b"".join(stream.process(bytes(n)) for n in (1, 9, 40, 50))
        assert pieces == oneshot

    def test_empty_input(self):
        assert RC4(b"key").process(b"") == b""

    @pytest.mark.parametrize("bad", [b"", b"x" * 257])
    def test_key_length_validation(self, bad):
        with pytest.raises(ValueError):
            RC4(bad)

    @given(st.binary(min_size=1, max_size=64), st.binary(max_size=500))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, key, data):
        assert RC4(key).process(RC4(key).process(data)) == data

    def test_state_table_is_permutation_after_setup(self):
        cipher = RC4(b"any key")
        assert sorted(cipher._s) == list(range(256))


class TestDes:
    def test_classic_known_answer(self):
        d = DES(bytes.fromhex("133457799BBCDFF1"))
        assert d.encrypt_block(bytes.fromhex("0123456789ABCDEF")) == \
            bytes.fromhex("85E813540F0AB405")

    def test_all_zero_key(self):
        d = DES(bytes(8))
        assert d.encrypt_block(bytes(8)) == bytes.fromhex("8CA64DE9C1B123A7")

    def test_all_ones_key(self):
        d = DES(b"\xff" * 8)
        assert d.encrypt_block(b"\xff" * 8) == \
            bytes.fromhex("7359B2163E4EDC58")

    def test_decrypt_inverts(self):
        d = DES(b"8bytekey")
        ct = d.encrypt_block(b"12345678")
        assert d.decrypt_block(ct) == b"12345678"

    @given(st.binary(min_size=8, max_size=8), st.binary(min_size=8,
                                                        max_size=8))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, key, block):
        d = DES(key)
        assert d.decrypt_block(d.encrypt_block(block)) == block

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            DES(b"short")

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            DES(b"8bytekey").encrypt_block(b"toolongblock")

    def test_complementation_property(self):
        """DES(~k, ~p) == ~DES(k, p) -- a classic structural identity."""
        key = bytes.fromhex("133457799BBCDFF1")
        pt = bytes.fromhex("0123456789ABCDEF")
        inv = bytes(b ^ 0xFF for b in key)
        inv_pt = bytes(b ^ 0xFF for b in pt)
        ct = DES(key).encrypt_block(pt)
        ct2 = DES(inv).encrypt_block(inv_pt)
        assert ct2 == bytes(b ^ 0xFF for b in ct)


class TestTripleDes:
    def test_sp800_67_vector(self):
        key = bytes.fromhex(
            "0123456789ABCDEF23456789ABCDEF01456789ABCDEF0123")
        t = TripleDES(key)
        pt = b"The qufck brown fox jump"
        ct = b"".join(t.encrypt_block(pt[i:i + 8]) for i in range(0, 24, 8))
        assert ct.hex().upper() == ("A826FD8CE53B855FCCE21C8112256FE6"
                                    "68D5C05DD9B6B900")

    def test_degenerates_to_single_des_with_equal_keys(self):
        key = bytes.fromhex("133457799BBCDFF1")
        t = TripleDES(key * 3)
        d = DES(key)
        pt = b"ABCDEFGH"
        assert t.encrypt_block(pt) == d.encrypt_block(pt)

    @given(st.binary(min_size=24, max_size=24),
           st.binary(min_size=8, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, key, block):
        t = TripleDES(key)
        assert t.decrypt_block(t.encrypt_block(block)) == block

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            TripleDES(b"x" * 16)

    def test_runs_three_times_the_rounds(self, isolated_profiler):
        from repro import perf
        p1 = perf.Profiler()
        with perf.activate(p1):
            DES(b"k" * 8).encrypt_block(b"B" * 8)
        p3 = perf.Profiler()
        with perf.activate(p3):
            TripleDES(b"k" * 24).encrypt_block(b"B" * 8)
        r1 = p1.functions["DES_encrypt"].mix.total()
        r3 = p3.functions["DES_encrypt3"].mix.total()
        assert 2.2 < r3 / r1 < 3.0  # 3x rounds, shared IP/FP


class TestAes:
    # FIPS 197 appendix C
    PT = bytes.fromhex("00112233445566778899aabbccddeeff")
    CASES = [
        (bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
         "69c4e0d86a7b0430d8cdb78070b4c55a"),
        (bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"),
         "dda97ca4864cdfe06eaf70a0ec0d7191"),
        (bytes.fromhex("000102030405060708090a0b0c0d0e0f"
                       "101112131415161718191a1b1c1d1e1f"),
         "8ea2b7ca516745bfeafc49904b496089"),
    ]

    @pytest.mark.parametrize("key,expected", CASES)
    def test_fips197_appendix_c(self, key, expected):
        a = AES(key)
        ct = a.encrypt_block(self.PT)
        assert ct.hex() == expected
        assert a.decrypt_block(ct) == self.PT

    def test_fips197_appendix_b(self):
        a = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        assert a.encrypt_block(
            bytes.fromhex("3243f6a8885a308d313198a2e0370734")).hex() == \
            "3925841d02dc09fbdc118597196a0b32"

    def test_round_counts(self):
        assert AES(bytes(16)).rounds == 10
        assert AES(bytes(24)).rounds == 12
        assert AES(bytes(32)).rounds == 14

    def test_sbox_generated_correctly(self):
        # FIPS 197 spot values
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16
        assert all(INV_SBOX[SBOX[i]] == i for i in range(256))

    def test_key_length_validation(self):
        with pytest.raises(ValueError):
            AES(bytes(20))

    def test_block_length_validation(self):
        with pytest.raises(ValueError):
            AES(bytes(16)).encrypt_block(bytes(8))

    @given(st.sampled_from([16, 24, 32]).flatmap(
        lambda n: st.tuples(st.binary(min_size=n, max_size=n),
                            st.binary(min_size=16, max_size=16))))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_property(self, key_block):
        key, block = key_block
        a = AES(key)
        assert a.decrypt_block(a.encrypt_block(block)) == block

    def test_256_runs_more_rounds_than_128(self, isolated_profiler):
        from repro import perf
        p128, p256 = perf.Profiler(), perf.Profiler()
        with perf.activate(p128):
            AES(bytes(16)).encrypt_block(bytes(16))
        with perf.activate(p256):
            AES(bytes(32)).encrypt_block(bytes(16))
        # Table 5: larger key only lengthens the main-rounds part.
        assert p256.functions["AES_encrypt"].cycles > \
            p128.functions["AES_encrypt"].cycles


class TestAesAvsKat:
    """NIST AESAVS GFSbox known-answer vectors (zero key)."""

    GFSBOX_128 = [
        ("f34481ec3cc627bacd5dc3fb08f273e6",
         "0336763e966d92595a567cc9ce537f5e"),
        ("9798c4640bad75c7c3227db910174e72",
         "a9a1631bf4996954ebc093957b234589"),
        ("96ab5c2ff612d9dfaae8c31f30c42168",
         "ff4f8391a6a40ca5b25d23bedd44a597"),
    ]

    @pytest.mark.parametrize("pt,ct", GFSBOX_128)
    def test_gfsbox_128(self, pt, ct):
        a = AES(bytes(16))
        assert a.encrypt_block(bytes.fromhex(pt)).hex() == ct
        assert a.decrypt_block(bytes.fromhex(ct)).hex() == pt

    def test_chained_encryption_reversible(self):
        """Monte-Carlo-style chaining: 1000 chained encryptions walk back
        to the start under 1000 decryptions, and the trajectory never
        cycles early."""
        a = AES(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        block = bytes(16)
        seen = set()
        for _ in range(1000):
            assert block not in seen
            seen.add(block)
            block = a.encrypt_block(block)
        for _ in range(1000):
            block = a.decrypt_block(block)
        assert block == bytes(16)
