"""PRNG determinism, PKCS#1 formatting, prime generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import pkcs1
from repro.crypto.pkcs1 import Pkcs1Error
from repro.crypto.primes import generate_prime, is_probable_prime
from repro.crypto.rand import PseudoRandom


class TestPseudoRandom:
    def test_deterministic_for_equal_seeds(self):
        a = PseudoRandom(b"seed").bytes(64)
        b = PseudoRandom(b"seed").bytes(64)
        assert a == b

    def test_different_seeds_differ(self):
        assert PseudoRandom(b"s1").bytes(32) != PseudoRandom(b"s2").bytes(32)

    def test_stream_advances(self):
        rng = PseudoRandom(b"seed")
        assert rng.bytes(16) != rng.bytes(16)

    def test_reseed_resets(self):
        rng = PseudoRandom(b"seed")
        first = rng.bytes(16)
        rng.bytes(100)
        rng.seed(b"seed")
        assert rng.bytes(16) == first

    def test_zero_length(self):
        assert PseudoRandom(b"s").bytes(0) == b""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            PseudoRandom(b"s").bytes(-1)

    @given(st.integers(1, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_int_below_in_range(self, bound):
        rng = PseudoRandom(b"bound-test")
        for _ in range(5):
            assert 0 <= rng.int_below(bound) < bound

    def test_int_below_invalid_bound(self):
        with pytest.raises(ValueError):
            PseudoRandom(b"s").int_below(0)

    @given(st.integers(8, 256))
    @settings(max_examples=20, deadline=None)
    def test_odd_int_properties(self, bits):
        v = PseudoRandom(b"odd").odd_int(bits)
        assert v % 2 == 1
        assert v.bit_length() == bits

    def test_charged_as_rand_pseudo_bytes(self, isolated_profiler):
        PseudoRandom(b"s").bytes(32)
        stats = isolated_profiler.functions.get("rand_pseudo_bytes")
        assert stats is not None and stats.cycles > 0


class TestPkcs1Encryption:
    def test_roundtrip(self, rng):
        block = pkcs1.pad_encrypt(b"pre-master" * 4, 128, rng)
        assert len(block) == 128
        assert pkcs1.unpad_decrypt(block, 128) == b"pre-master" * 4

    def test_structure(self, rng):
        block = pkcs1.pad_encrypt(b"m", 64, rng)
        assert block[0] == 0 and block[1] == 2
        assert 0 not in block[2:-2]  # PS is non-zero

    def test_message_too_long(self, rng):
        with pytest.raises(Pkcs1Error):
            pkcs1.pad_encrypt(bytes(54), 64, rng)

    def test_max_length_message(self, rng):
        msg = bytes(range(53))
        block = pkcs1.pad_encrypt(msg, 64, rng)
        assert pkcs1.unpad_decrypt(block, 64) == msg

    @pytest.mark.parametrize("mutant", [
        b"\x01\x02" + b"\xaa" * 61 + b"\x00",      # bad leading byte
        b"\x00\x01" + b"\xaa" * 61 + b"\x00",      # bad block type
        b"\x00\x02" + b"\xaa" * 62,                 # no separator
        b"\x00\x02" + b"\xaa" * 3 + b"\x00" + b"m" * 58,  # PS too short
    ])
    def test_malformed_blocks_rejected(self, mutant):
        with pytest.raises(Pkcs1Error):
            pkcs1.unpad_decrypt(mutant, 64)

    def test_length_mismatch_rejected(self):
        with pytest.raises(Pkcs1Error):
            pkcs1.unpad_decrypt(bytes(63), 64)

    @given(st.binary(min_size=1, max_size=48))
    @settings(max_examples=30, deadline=None)
    def test_roundtrip_property(self, msg):
        rng = PseudoRandom(b"pkcs1-prop")
        assert pkcs1.unpad_decrypt(pkcs1.pad_encrypt(msg, 128, rng),
                                   128) == msg


class TestPkcs1Signature:
    def test_roundtrip(self):
        payload = b"digest-info-bytes"
        block = pkcs1.pad_sign(payload, 64)
        assert block[0] == 0 and block[1] == 1
        assert pkcs1.unpad_verify(block, 64) == payload

    def test_ps_is_all_ff(self):
        block = pkcs1.pad_sign(b"x", 64)
        assert set(block[2:-2]) == {0xFF}

    def test_malformed_rejected(self):
        good = bytearray(pkcs1.pad_sign(b"x", 64))
        bad = bytes(good[:5]) + b"\x00" + bytes(good[6:])
        with pytest.raises(Pkcs1Error):
            pkcs1.unpad_verify(bad, 64)

    def test_digest_info_prefixes(self):
        di = pkcs1.digest_info("sha1", bytes(20))
        assert di.startswith(bytes.fromhex("3021300906052b0e03021a"))
        di_md5 = pkcs1.digest_info("md5", bytes(16))
        assert len(di_md5) == 18 + 16

    def test_digest_info_unknown_hash(self):
        with pytest.raises(Pkcs1Error):
            pkcs1.digest_info("sha999", bytes(20))


class TestPrimes:
    KNOWN_PRIMES = [2, 3, 5, 7, 97, 7919, 104729, (1 << 61) - 1]
    KNOWN_COMPOSITES = [1, 4, 100, 561, 8911, 1 << 40]  # incl. Carmichael

    @pytest.mark.parametrize("p", KNOWN_PRIMES)
    def test_known_primes(self, p, rng):
        assert is_probable_prime(p, rng)

    @pytest.mark.parametrize("c", KNOWN_COMPOSITES)
    def test_known_composites(self, c, rng):
        assert not is_probable_prime(c, rng)

    def test_generated_prime_properties(self, rng):
        p = generate_prime(96, rng)
        assert p.bit_length() == 96
        assert p % 2 == 1
        assert is_probable_prime(p, rng)

    def test_top_two_bits_set(self, rng):
        p = generate_prime(64, rng)
        assert (p >> 62) & 0b11 == 0b11

    def test_too_small_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_prime(8, rng)
