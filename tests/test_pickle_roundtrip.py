"""Pickle round trips for everything the parallel farm ships across
process boundaries: profilers (with CPU-model identity), SSL servers,
session caches, batch-RSA keyset partitions and whole RSA keys.

The bar is not "unpickles without raising": objects that carry modeled
state must charge the *same cycles* after a round trip as before --
that's what makes the process-parallel backend's merge cycle-exact.
"""

from __future__ import annotations

import pickle

import pytest

from repro import perf
from repro.crypto.batch_rsa import BatchRsaDecryptor, generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.perf import baseline
from repro.perf.cpu import PENTIUM3, PENTIUM4, WIDE_CORE, CpuModel
from repro.perf.isa import MixAccumulator, mix
from repro.perf.profiler import Profiler
from repro.perf.trace import merge_profilers
from repro.ssl import DES_CBC3_SHA
from repro.ssl.loopback import run_session
from repro.ssl.session import SessionCache, SslSession

from tests.test_fastpath_equivalence import snapshot


def roundtrip(obj):
    return pickle.loads(pickle.dumps(obj))


@pytest.fixture(scope="module")
def batch_keys():
    return generate_batch_keys(512, 4, rng=PseudoRandom(b"pkl-batch"))


class TestCpuModelInterning:
    @pytest.mark.parametrize("model", [PENTIUM4, PENTIUM3, WIDE_CORE])
    def test_singletons_survive_identically(self, model):
        assert roundtrip(model) is model

    def test_custom_model_interns_once(self):
        custom = CpuModel(name="custom", frequency_hz=1.5e9,
                          costs=dict(PENTIUM4.costs))
        first = roundtrip(custom)
        assert roundtrip(custom) is first
        assert first.costs == custom.costs

    def test_nested_references_collapse(self):
        # Two profilers over PENTIUM4 pickled together come back sharing
        # the one canonical model (merge checks CPU by identity).
        a, b = Profiler(), Profiler()
        ra, rb = roundtrip((a, b))
        assert ra.cpu is rb.cpu is PENTIUM4


class TestProfilerRoundTrip:
    def charged_profiler(self) -> Profiler:
        profiler = Profiler()
        with perf.activate(profiler):
            with perf.region("outer"):
                perf.charge(mix(movl=100, mull=10), times=3,
                            function="f", module="m")
                with perf.region("inner"):
                    perf.charge(mix(addl=7), times=2.5, function="g")
        return profiler

    def test_modeled_cycles_identical(self):
        profiler = self.charged_profiler()
        clone = roundtrip(profiler)
        # Serializing folds the source's pending mix entries in place
        # (observation-transparent), so compare after the dumps.
        assert snapshot(clone) == snapshot(profiler)
        assert clone.total_cycles() == profiler.total_cycles()

    def test_full_signature_identical(self):
        profiler = self.charged_profiler()
        clone = roundtrip(profiler)
        a = baseline.canonical_json(baseline.capture(profiler, scenario="t"))
        b = baseline.canonical_json(baseline.capture(clone, scenario="t"))
        assert a == b

    def test_unpickled_profiler_merges(self):
        # The original parallel-farm failure mode: merge_profilers
        # compares CPU models by identity, which only survives the pickle
        # boundary because CpuModel interns on unpickle.
        profiler = self.charged_profiler()
        clone = roundtrip(profiler)
        merged = merge_profilers(Profiler(), profiler, clone)
        assert merged.total_cycles() == 2 * profiler.total_cycles()

    def test_accumulator_folds_on_serialize(self):
        acc = MixAccumulator()
        acc.add(mix(movl=5), times=2.0)
        clone = roundtrip(acc)
        assert clone.total() == acc.total() == 10.0
        assert clone.snapshot() == acc.snapshot()

    def test_live_session_profiler_roundtrip(self, identity512):
        key, cert = identity512
        result = run_session(b"x" * 512, suite=DES_CBC3_SHA, key=key,
                             cert=cert, seed=b"pkl-prof")
        clone = roundtrip(result.server_profiler)
        assert snapshot(clone) == snapshot(result.server_profiler)


class TestSslServerRoundTrip:
    def test_completed_server_state_survives(self, identity512):
        key, cert = identity512
        result = run_session(b"ping" * 64, suite=DES_CBC3_SHA, key=key,
                             cert=cert, seed=b"pkl-server")
        server = result.server
        clone = roundtrip(server)
        assert clone.master_secret == server.master_secret
        assert clone.resumed == server.resumed
        assert clone.stats.bytes_sent == server.stats.bytes_sent
        assert clone.stats.bytes_received == server.stats.bytes_received
        assert clone._session_id == server._session_id

    def test_server_key_still_charges_identically(self, identity512):
        key, _ = identity512
        clone = roundtrip(key)
        rng = PseudoRandom(b"pkl-ct")
        ciphertext = key.public().encrypt(b"secret-premaster", rng)
        p1, p2 = Profiler(), Profiler()
        with perf.activate(p1):
            original_out = key.replica().decrypt(ciphertext)
        with perf.activate(p2):
            clone_out = clone.replica().decrypt(ciphertext)
        assert original_out == clone_out == b"secret-premaster"
        assert snapshot(p1) == snapshot(p2)


class TestSessionCacheRoundTrip:
    def make_session(self, tag: bytes) -> SslSession:
        return SslSession(session_id=tag.ljust(32, b"\1"),
                          cipher_suite_id=DES_CBC3_SHA.suite_id,
                          master_secret=b"m" * 48, created_at=1.0)

    def test_contents_and_stats_survive(self):
        cache = SessionCache(4)
        sessions = [self.make_session(bytes([i + 1])) for i in range(6)]
        for s in sessions:
            cache.put(s)
        cache.get(sessions[-1].session_id, now=2.0)
        cache.get(b"absent".ljust(32, b"\1"), now=2.0)
        clone = roundtrip(cache)
        assert clone.stats() == cache.stats()
        hit = clone.get(sessions[-1].session_id, now=2.0)
        assert hit is not None
        assert hit.master_secret == sessions[-1].master_secret


class TestBatchKeySetRoundTrip:
    def test_partition_shards_decrypt_identically(self, batch_keys):
        shards = batch_keys.partition(2)
        clones = roundtrip(shards)
        rng = PseudoRandom(b"pkl-batch-ct")
        for shard, clone in zip(shards, clones):
            assert clone.exponents == shard.exponents
            items = [(i, member.public().encrypt(b"pm-%d" % i, rng))
                     for i, member in enumerate(shard.members)]
            p1, p2 = Profiler(), Profiler()
            with perf.activate(p1):
                out1 = BatchRsaDecryptor(shard).decrypt_batch(items)
            with perf.activate(p2):
                out2 = BatchRsaDecryptor(clone).decrypt_batch(items)
            assert out1 == out2
            assert all(out1)
            assert snapshot(p1) == snapshot(p2)

    def test_members_keep_shared_modulus(self, batch_keys):
        clone = roundtrip(batch_keys)
        assert clone.n == batch_keys.n
        assert all(m.n == batch_keys.n for m in clone.members)
