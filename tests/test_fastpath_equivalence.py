"""Dual-backend equivalence: fast host path vs faithful reference loops.

The tentpole invariant of the two-level execution model (DESIGN.md): for
every kernel, running with ``REPRO_FASTPATH`` on or off must produce

* bit-identical output bytes, and
* a bit-identical charge stream -- total cycles, total instructions,
  per-function cycles/call-counts/instruction mixes, per-module cycles.

Each check here runs the same seeded workload under both backends with a
fresh profiler and compares full snapshots, so a fast-path branch that
drifts by a single charge (or a single float ULP) fails loudly.
"""

from __future__ import annotations

import hashlib
import random

import pytest

from repro import perf, runtime
from repro.bignum.bn import BigNum
from repro.bignum.modexp import mod_exp
from repro.bignum.montgomery import REDUCTION_STYLES, MontgomeryContext
from repro.crypto import rsa
from repro.crypto.aes import AES
from repro.crypto.des import DES, TripleDES
from repro.crypto.mac import Ssl3MacContext, TlsMacContext, ssl3_mac, tls_mac
from repro.crypto.md5 import MD5
from repro.crypto.modes import CBC
from repro.crypto.rc4 import RC4
from repro.crypto.sha1 import SHA1
from repro.ssl.loopback import make_server_identity, run_session


def snapshot(profiler: perf.Profiler):
    """Everything a backend could perturb, in comparable form."""
    return (
        profiler.total_cycles(),
        profiler.total_instructions(),
        {name: (fs.cycles, fs.calls, fs.module, fs.mix.snapshot().counts)
         for name, fs in profiler.functions.items()},
        dict(profiler.modules),
    )


def run_both(workload):
    """Run ``workload`` under each backend; return [(result, snapshot)]."""
    out = []
    for fast in (True, False):
        with runtime.fastpath(fast):
            profiler = perf.Profiler()
            with perf.activate(profiler):
                result = workload()
            out.append((result, snapshot(profiler)))
    return out


def assert_equivalent(workload):
    (fast_res, fast_snap), (ref_res, ref_snap) = run_both(workload)
    assert fast_res == ref_res
    assert fast_snap == ref_snap
    return fast_res


def rand_bn(rng: random.Random, words: int) -> BigNum:
    return BigNum.from_int(rng.getrandbits(words * 32) | 1)


# ---------------------------------------------------------------------------
# bignum kernels
# ---------------------------------------------------------------------------

def test_bignum_ops_equivalence():
    rng = random.Random(0xB16)
    for _ in range(25):
        na, nb = rng.randint(1, 40), rng.randint(1, 40)
        a, b = rand_bn(rng, na), rand_bn(rng, nb)
        big, small = (a, b) if a.ucmp(b) >= 0 else (b, a)
        for op in (lambda: a.uadd(b).to_int(),
                   lambda: big.usub(small).to_int(),
                   lambda: a.mul(b).to_int(),
                   lambda: a.sqr().to_int(),
                   lambda: a.divmod(b)[0].to_int()):
            assert_equivalent(op)
    # Degenerate shapes: zero operands, single words.
    zero = BigNum.zero()
    one = BigNum.one()
    assert_equivalent(lambda: zero.mul(one).to_int())
    assert_equivalent(lambda: zero.sqr().to_int())
    assert_equivalent(lambda: one.uadd(zero).to_int())


@pytest.mark.parametrize("style", REDUCTION_STYLES)
def test_montgomery_equivalence(style):
    rng = random.Random(0x40A7 + len(style))
    for words in (3, 8, 16):
        modulus = rand_bn(rng, words)            # odd by construction
        a = BigNum.from_int(rng.getrandbits(words * 32) % modulus.to_int())
        b = BigNum.from_int(rng.getrandbits(words * 32) % modulus.to_int())

        def workload():
            ctx = MontgomeryContext(modulus, style)
            am, bm = ctx.to_mont(a), ctx.to_mont(b)
            prod = ctx.mul(am, bm)
            sq = ctx.sqr(am)
            return (ctx.from_mont(prod).to_int(),
                    ctx.from_mont(sq).to_int(),
                    ctx.from_mont(ctx.one()).to_int())

        results = assert_equivalent(workload)
        # The modular algebra itself must hold, not just match across
        # backends.
        n = modulus.to_int()
        assert results[0] == a.to_int() * b.to_int() % n
        assert results[1] == a.to_int() ** 2 % n
        assert results[2] == 1


@pytest.mark.parametrize("style", REDUCTION_STYLES)
def test_mod_exp_equivalence(style):
    rng = random.Random(0xE4B)
    for bits in (96, 256, 521):
        n_int = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        modulus = BigNum.from_int(n_int)
        base = BigNum.from_int(rng.getrandbits(bits) % n_int)
        exp = BigNum.from_int(rng.getrandbits(bits // 2) | 1)

        def workload():
            ctx = MontgomeryContext(modulus, style)
            return mod_exp(base, exp, modulus, ctx).to_int()

        result = assert_equivalent(workload)
        assert result == pow(base.to_int(), exp.to_int(), n_int)


# ---------------------------------------------------------------------------
# symmetric ciphers and hashes
# ---------------------------------------------------------------------------

def test_block_cipher_equivalence():
    rng = random.Random(0xC1F)
    cases = [(AES, 16), (AES, 24), (AES, 32), (DES, 8), (TripleDES, 24)]
    for cls, key_len in cases:
        key = bytes(rng.randrange(256) for _ in range(key_len))
        block = bytes(rng.randrange(256) for _ in range(cls.block_size))

        def workload():
            cipher = cls(key)
            ct = cipher.encrypt_block(block)
            return ct, cipher.decrypt_block(ct)

        ct, pt = assert_equivalent(workload)
        assert pt == block and ct != block


def test_cbc_mode_equivalence():
    rng = random.Random(0xCBC)
    for cls, key_len in ((AES, 16), (TripleDES, 24)):
        key = bytes(rng.randrange(256) for _ in range(key_len))
        iv = bytes(rng.randrange(256) for _ in range(cls.block_size))
        data = bytes(rng.randrange(256)
                     for _ in range(cls.block_size * 11))

        def workload():
            ct = CBC(cls(key), iv).encrypt(data)
            pt = CBC(cls(key), iv).decrypt(ct)
            return ct, pt

        ct, pt = assert_equivalent(workload)
        assert pt == data


def test_rc4_equivalence():
    rng = random.Random(0x4C4)
    for n in (0, 1, 17, 1000):
        key = bytes(rng.randrange(256) for _ in range(16))
        data = bytes(rng.randrange(256) for _ in range(n))

        def workload():
            ct = RC4(key).process(data)
            return ct, RC4(key).process(ct)

        ct, pt = assert_equivalent(workload)
        assert pt == data


def test_hash_equivalence():
    rng = random.Random(0x4A5)
    for n in (0, 1, 55, 56, 64, 65, 1000):
        data = bytes(rng.randrange(256) for _ in range(n))
        for cls, ref in ((MD5, hashlib.md5), (SHA1, hashlib.sha1)):

            def workload():
                h = cls()
                h.update(data[: n // 2])
                h.update(data[n // 2:])
                return h.digest()

            digest = assert_equivalent(workload)
            assert digest == ref(data).digest()


# ---------------------------------------------------------------------------
# precomputed MAC contexts (fast path) vs the plain per-record functions
# ---------------------------------------------------------------------------

def mac_workloads(hash_cls, secret):
    """(context-based, plain-function) SSLv3 + TLS MAC workloads."""
    records = [(0, 22, b"finished"), (1, 23, b"x" * 400), (2, 23, b"")]

    def ssl3_ctx():
        ctx = Ssl3MacContext(hash_cls, secret)
        return [ctx.mac(seq, ct, data) for seq, ct, data in records]

    def ssl3_plain():
        return [ssl3_mac(hash_cls, secret, seq, ct, data)
                for seq, ct, data in records]

    def tls_ctx():
        ctx = TlsMacContext(hash_cls, secret)
        return [ctx.mac(seq, ct, 0x0301, data) for seq, ct, data in records]

    def tls_plain():
        return [tls_mac(hash_cls, secret, seq, ct, 0x0301, data)
                for seq, ct, data in records]

    return (ssl3_ctx, ssl3_plain), (tls_ctx, tls_plain)


@pytest.mark.parametrize("hash_cls", [MD5, SHA1])
@pytest.mark.parametrize("secret_len", [0, 16, 64, 100])
def test_mac_context_matches_plain(hash_cls, secret_len):
    """The per-connection MAC contexts must be invisible: same MAC bytes,
    same charged cycles/calls/mixes as calling ssl3_mac/tls_mac per record
    -- including construction (whose setup hashing is charge-free)."""
    secret = bytes(range(secret_len % 256))[:secret_len].ljust(secret_len,
                                                               b"\x5a")
    for ctx_fn, plain_fn in mac_workloads(hash_cls, secret):
        results = []
        for fn in (ctx_fn, plain_fn):
            profiler = perf.Profiler()
            with perf.activate(profiler):
                macs = fn()
            results.append((macs, snapshot(profiler)))
        assert results[0] == results[1]
        # And the context path itself is backend-independent.
        assert_equivalent(ctx_fn)


# ---------------------------------------------------------------------------
# full sessions
# ---------------------------------------------------------------------------

def session_snapshots(fast: bool, data: bytes):
    """One full loopback session under ``fast``; fresh identity and error
    tables per run so lazy per-key state evolves identically."""
    with runtime.fastpath(True):
        key, cert = make_server_identity(seed=b"equivalence")
    with runtime.fastpath(fast):
        rsa.reset_error_tables()
        result = run_session(data, key=key, cert=cert)
    session = result.session
    return (result.echoed, session.master_secret,
            snapshot(result.server_profiler),
            snapshot(result.client_profiler))


def test_run_session_equivalence():
    data = b"GET / HTTP/1.0\r\n\r\n" * 40
    fast = session_snapshots(True, data)
    faithful = session_snapshots(False, data)
    assert fast[0] == faithful[0] == data     # echoed bytes
    assert fast[1] == faithful[1]             # negotiated master secret
    assert fast[2] == faithful[2]             # server charge stream
    assert fast[3] == faithful[3]             # client charge stream


def test_run_session_golden_cycles():
    """Drift guard: the modeled handshake cost for a pinned workload.

    The value is the server-side total for ``run_session`` with the
    default suite and the fixed ``equivalence`` identity.  Both backends
    must reproduce it exactly (the charge stream is deterministic); a
    change here means the *model* changed and the paper tables need
    re-validation, fast path or not.
    """
    golden = session_snapshots(True, b"")[2]
    faithful = session_snapshots(False, b"")[2]
    assert golden == faithful
    cycles, instructions = golden[0], golden[1]
    # The paper's Table 2 server handshake is ~20.5M cycles non-CRT;
    # the CRT default lands near a third of that.  Guard the bracket so
    # a silently dropped or doubled charge cannot hide inside noise.
    assert 4e6 < cycles < 12e6
    assert 5e6 < instructions < 16e6
