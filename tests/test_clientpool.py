"""ClientPool: the bounded LRU replacing the unbounded session list.

The regression this pins (ISSUE satellite 1): the simulator used to
append every completed connection's session to a plain list that was
never pruned -- O(completed connections) retained memory.  The pool
bounds retained state at ``capacity`` entries no matter how many
distinct clients flow through, while reproducing the old
"offer the most recent session" behaviour for anonymous workloads.
"""

from __future__ import annotations

import pytest

from repro.ssl.session import SslSession
from repro.webserver import ClientPool
from repro.webserver.workload import Request


def session(n: int) -> SslSession:
    return SslSession(session_id=bytes([n % 256]) * 32,
                      cipher_suite_id=0x000A,
                      master_secret=bytes([n % 256]) * 48)


def request(client_id=None, resumable=True) -> Request:
    return Request(path="/r", size_bytes=1024, resumable=resumable,
                   client_id=client_id)


class TestClientPool:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ClientPool(0)

    def test_store_and_offer_by_identity(self):
        pool = ClientPool(4)
        s1, s2 = session(1), session(2)
        pool.store(1, s1)
        pool.store(2, s2)
        assert pool.offer(request(client_id=1)) is s1
        assert pool.offer(request(client_id=2)) is s2
        assert pool.offer(request(client_id=3)) is None

    def test_anonymous_requests_get_latest(self):
        pool = ClientPool(4)
        pool.store(1, session(1))
        pool.store(2, session(2))
        assert pool.offer(request()) is pool.latest()
        assert pool.latest().session_id == session(2).session_id

    def test_none_is_a_valid_client_key(self):
        # The legacy single-stream workload has no client ids: every
        # store lands on the one None slot, so the pool holds exactly
        # one session however many connections complete.
        pool = ClientPool(4)
        for n in range(10):
            pool.store(None, session(n))
        assert len(pool) == 1
        assert pool.offer(request()).session_id == session(9).session_id

    def test_non_resumable_offers_nothing(self):
        pool = ClientPool(4)
        pool.store(1, session(1))
        assert pool.offer(request(client_id=1, resumable=False)) is None

    def test_none_sessions_ignored(self):
        pool = ClientPool(4)
        pool.store(1, None)
        assert len(pool) == 0 and pool.stores == 0

    def test_lru_eviction_drops_oldest(self):
        pool = ClientPool(2)
        pool.store(1, session(1))
        pool.store(2, session(2))
        pool.store(3, session(3))
        assert len(pool) == 2
        assert pool.evictions == 1
        assert pool.offer(request(client_id=1)) is None    # evicted
        assert pool.offer(request(client_id=2)) is not None

    def test_restore_refreshes_lru_position(self):
        pool = ClientPool(2)
        pool.store(1, session(1))
        pool.store(2, session(2))
        pool.store(1, session(11))      # client 1 back to MRU
        pool.store(3, session(3))       # evicts client 2, not 1
        assert pool.offer(request(client_id=1)).session_id \
            == session(11).session_id
        assert pool.offer(request(client_id=2)) is None

    def test_offer_does_not_mutate_lru_order(self):
        pool = ClientPool(2)
        pool.store(1, session(1))
        pool.store(2, session(2))
        pool.offer(request(client_id=1))    # a read, not a refresh
        pool.store(3, session(3))           # still evicts client 1
        assert pool.offer(request(client_id=1)) is None

    def test_owner_map_tracks_and_prunes(self):
        pool = ClientPool(2)
        pool.current_worker = 3
        s1 = session(1)
        pool.store(1, s1)
        assert pool.session_owner(s1.session_id) == 3
        pool.current_worker = 5
        s1b = session(11)
        pool.store(1, s1b)                  # replaced: old owner pruned
        assert pool.session_owner(s1.session_id) is None
        assert pool.session_owner(s1b.session_id) == 5
        pool.store(2, session(2))
        pool.store(3, session(3))           # evicts client 1's entry
        assert pool.session_owner(s1b.session_id) is None

    def test_bounded_growth_regression(self):
        # The satellite-1 contract: 1000 distinct clients through a
        # capacity-8 pool retain at most 8 sessions (and 8 owner-map
        # entries) at every point, with churn fully counted.
        pool = ClientPool(8)
        for n in range(1000):
            pool.store(n, session(n))
            assert len(pool) <= 8
            assert len(pool.owners) <= 8
        assert pool.peak_size == 8
        assert pool.stores == 1000
        assert pool.evictions == 992

    def test_stats(self):
        pool = ClientPool(2)
        pool.store(1, session(1))
        pool.store(2, session(2))
        pool.store(3, session(3))
        assert pool.stats() == {"size": 2, "capacity": 2, "peak_size": 2,
                                "stores": 3, "evictions": 1}

    def test_bool_and_len(self):
        pool = ClientPool(2)
        assert not pool and len(pool) == 0
        pool.store(1, session(1))
        assert pool and len(pool) == 1
