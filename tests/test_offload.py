"""Crypto-engine offload pool (Section 6.2 wired into the simulator).

Unit level: the preferential scheduler (cheapest capable core, spill to
the generic unit, saturation refusal), the skip-small policy, the
timeline accounting, and pickling (the pool rides inside farm worker
states through the process-parallel protocol).

Integration level: offload must never change the transcript -- wire
bytes are bit-identical to a software run -- while cutting modeled CPU
cycles by the Section 6.2 margins; the farm surfaces per-worker pools
and an aggregate summary.
"""

from __future__ import annotations

import pickle

import pytest

from repro import perf
from repro.crypto import rsa
from repro.engines import (
    AES_UNIT, GENERIC_CIPHER_UNIT, HASH_UNIT, MODEXP_UNIT, OffloadConfig,
    OffloadPool, RC4_UNIT, UnitDesign, default_engine_config,
    single_engine_config,
)
from repro.ssl.ciphersuites import AES128_SHA, RC4_MD5
from repro.webserver import RequestWorkload, SHARED, ServerFarm, \
    WebServerSimulator


def make_pool(*units, saturation=200_000.0, min_bytes=256):
    return OffloadPool(OffloadConfig(units=tuple(units),
                                     saturation_cycles=saturation,
                                     min_record_bytes=min_bytes))


class TestScheduler:
    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            OffloadPool(OffloadConfig(units=()))

    def test_prefers_cheapest_capable_unit(self):
        # AES goes to the dedicated unit (0.25 c/B), not the generic core
        # (1.0 c/B), even though both are idle and capable.
        pool = make_pool(GENERIC_CIPHER_UNIT, AES_UNIT, HASH_UNIT)
        assert pool.submit_record("seal", "aes", "sha1", 4096, 21)
        assert pool.units[1].ops == 1          # aes-unit took the data pass
        assert pool.units[0].ops == 0

    def test_incapable_unit_never_picked(self):
        # The AES unit cannot serve 3DES; only the generic core can.
        pool = make_pool(AES_UNIT, GENERIC_CIPHER_UNIT, HASH_UNIT)
        assert pool.submit_record("seal", "3des", "sha1", 4096, 24)
        assert pool.units[0].ops == 0
        assert pool.units[1].ops == 1

    def test_no_capable_cipher_falls_back(self):
        pool = make_pool(AES_UNIT, HASH_UNIT)
        assert not pool.submit_record("seal", "3des", "sha1", 4096, 24)
        assert pool.fallbacks == 1
        assert pool.ops == 0

    def test_record_needs_hash_unit_too(self):
        # Figure 6 drives cipher and MAC from one descriptor: a pool with
        # no hash pipeline cannot take the record at all.
        pool = make_pool(AES_UNIT)
        assert not pool.submit_record("seal", "aes", "sha1", 4096, 21)
        assert pool.fallbacks == 1

    def test_backlogged_fast_core_spills_to_idle_slow_one(self):
        # Load the AES unit until an idle generic core finishes sooner;
        # the preferential scheduler must spill, not queue.
        pool = make_pool(AES_UNIT, GENERIC_CIPHER_UNIT, HASH_UNIT,
                         saturation=10**9)
        for _ in range(8):
            assert pool.submit_record("seal", "aes", "sha1", 16384, 21)
        # aes-unit backlog ~8 * 4k cycles; generic does 16k in ~16k cycles
        # from now, so once backlog exceeds the rate gap it wins a pick.
        assert pool.units[1].ops > 0
        assert pool.units[0].ops > 0

    def test_saturation_refuses_then_drains(self):
        pool = make_pool(AES_UNIT, HASH_UNIT, saturation=1_000.0)
        assert pool.submit_record("seal", "aes", "sha1", 16384, 21)
        # Hash pipeline holds ~20k cycles of backlog > 1k bound.
        assert not pool.submit_record("seal", "aes", "sha1", 16384, 21)
        assert pool.fallbacks == 1
        # Advance the virtual clock past the backlog: accepted again.
        perf.charge_cycles(100_000.0)
        assert pool.submit_record("seal", "aes", "sha1", 16384, 21)
        assert pool.record_ops == 2

    def test_small_records_stay_in_software(self):
        pool = make_pool(AES_UNIT, HASH_UNIT, min_bytes=256)
        assert not pool.submit_record("seal", "aes", "sha1", 64, 21)
        assert pool.skipped_small == 1
        assert pool.fallbacks == 0


class TestAccounting:
    def test_dispatch_charged_in_offload_region(self, isolated_profiler):
        pool = make_pool(AES_UNIT, HASH_UNIT)
        before = isolated_profiler.now()
        assert pool.submit_record("seal", "aes", "sha1", 8192, 21)
        spent = isolated_profiler.now() - before
        # CPU pays a few hundred dispatch cycles, never the ~11k-cycle
        # engine service.
        assert 0 < spent < 2_000
        assert isolated_profiler.find_region("engine_offload") is not None

    def test_overlap_timing(self, isolated_profiler):
        # done = max(cipher data pass, hash pass) + cipher tail, with each
        # unit's fixed setup in its own lane.
        pool = make_pool(AES_UNIT, HASH_UNIT)
        assert pool.submit_record("seal", "aes", "sha1", 8192, 21)
        now = isolated_profiler.now()
        hash_done = HASH_UNIT.fixed_cycles + 1.25 * 8192
        data_done = AES_UNIT.fixed_cycles + 0.25 * 8192
        expected = max(hash_done, data_done) + 0.25 * 21
        assert pool.units[0].free_at - now == pytest.approx(expected)

    def test_modexp_decrypt_real_bytes_engine_cost(self, rsa512, rng):
        pool = make_pool(MODEXP_UNIT)
        ct = rsa512.public().encrypt(b"pre-master", rng)
        assert pool.rsa_decrypt(rsa512, ct) == b"pre-master"
        assert pool.modexp_ops == 1
        # 512-bit op at the reference width: rate + fixed, exactly.
        assert pool.units[0].busy_cycles == pytest.approx(
            MODEXP_UNIT.rates["rsa"] + MODEXP_UNIT.fixed_cycles)

    def test_modexp_scales_cubically(self, rsa512, rsa1024, rng):
        pool = make_pool(MODEXP_UNIT, saturation=10**12)
        pool.rsa_decrypt(rsa512, rsa512.public().encrypt(b"x", rng))
        small = pool.units[0].busy_cycles - MODEXP_UNIT.fixed_cycles
        pool2 = make_pool(MODEXP_UNIT, saturation=10**12)
        pool2.rsa_decrypt(rsa1024, rsa1024.public().encrypt(b"x", rng))
        big = pool2.units[0].busy_cycles - MODEXP_UNIT.fixed_cycles
        assert big / small == pytest.approx(
            (rsa1024.n.nbits() / rsa512.n.nbits()) ** 3, rel=0.01)

    def test_modexp_saturation_falls_back_to_software(self, rsa512, rng):
        pool = make_pool(MODEXP_UNIT, saturation=1_000.0)
        ct = rsa512.public().encrypt(b"pm", rng)
        assert pool.rsa_decrypt(rsa512, ct) == b"pm"
        # The unit now holds ~120k cycles of backlog > the 1k bound: the
        # next decrypt runs in software (full CPU price) but still works.
        assert pool.rsa_decrypt(rsa512, ct) == b"pm"
        assert pool.modexp_ops == 1
        assert pool.fallbacks == 1

    def test_snapshot_shape(self):
        pool = make_pool(AES_UNIT, HASH_UNIT, MODEXP_UNIT)
        assert pool.submit_record("seal", "aes", "sha1", 8192, 21)
        snap = pool.snapshot()
        assert snap["ops"] == snap["record_ops"] == 1
        assert snap["peak_queue_depth"] == 2    # cipher + hash lanes
        assert [u["kind"] for u in snap["units"]] == \
            ["cipher", "hash", "modexp"]
        assert all(0.0 <= u["utilization"] <= 1.0 for u in snap["units"])

    def test_pool_pickles_mid_flight(self):
        pool = make_pool(AES_UNIT, HASH_UNIT)
        assert pool.submit_record("seal", "aes", "sha1", 8192, 21)
        clone = pickle.loads(pickle.dumps(pool))
        assert clone.record_ops == 1
        assert clone.units[0].free_at == pool.units[0].free_at
        # The clone keeps scheduling from where the original stopped.
        assert clone.submit_record("seal", "aes", "sha1", 8192, 21)
        assert clone.record_ops == 2


def run_sim(engines, *, identity, suite=AES128_SHA, size=16384, n=4):
    key, cert = identity
    rsa.reset_error_tables()
    sim = WebServerSimulator(suite=suite, key=key, cert=cert, use_crt=False,
                             seed=b"offload-test", engines=engines)
    return sim.run(RequestWorkload.fixed(size), n)


class TestSimulatorIntegration:
    def test_transcript_identical_cycles_halved(self, identity1024):
        # The paper's 1024-bit identity, non-CRT: both the modexp assist
        # and the record engine carry real weight here.
        software = run_sim(None, identity=identity1024)
        offload = run_sim(single_engine_config(), identity=identity1024)
        assert offload.failures == software.failures == 0
        # The engines never touch bytes: the wire transcript must match
        # the software run exactly.
        assert offload.wire_bytes == software.wire_bytes
        # ... while the modeled CPU cost drops by at least 2x.
        assert software.profiler.total_cycles() > \
            2.0 * offload.profiler.total_cycles()

    def test_snapshot_attached_to_result(self, identity512):
        result = run_sim(default_engine_config(), identity=identity512)
        assert result.offload is not None
        assert result.offload["ops"] > 0
        assert result.offload["modexp_ops"] > 0

    def test_no_engines_no_snapshot(self, identity512):
        assert run_sim(None, identity=identity512).offload is None

    def test_rc4_lands_on_rc4_unit(self, identity512):
        result = run_sim(default_engine_config(), identity=identity512,
                         suite=RC4_MD5)
        units = {u["label"]: u["ops"] for u in result.offload["units"]}
        assert units["rc4-unit"] > 0
        assert units["aes-unit"] == 0


class TestFarmIntegration:
    def _run_farm(self, identity, engines, parallel=0):
        key, cert = identity
        rsa.reset_error_tables()
        farm = ServerFarm(2, topology=SHARED, key=key, cert=cert,
                          use_crt=True, engines=engines)
        return farm.run(RequestWorkload.fixed(8192, resumption_rate=0.5),
                        8, concurrency_per_worker=2, parallel=parallel)

    def test_summary_aggregates_workers(self, identity512):
        result = self._run_farm(identity512, single_engine_config())
        summary = result.offload_summary()
        assert summary is not None
        assert summary["ops"] == sum(r.offload["ops"]
                                     for r in result.results)
        assert len(summary["unit_utilization"]) == 3

    def test_summary_none_without_engines(self, identity512):
        assert self._run_farm(identity512, None).offload_summary() is None

    def test_capacity_gain_carries_to_farm(self, identity512):
        software = self._run_farm(identity512, None)
        offload = self._run_farm(identity512, single_engine_config())
        assert offload.wire_bytes == software.wire_bytes
        assert software.total_cycles() > offload.total_cycles()
