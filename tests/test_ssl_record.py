"""Record layer: sealing/opening, padding, MAC enforcement, framing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.ssl import kdf
from repro.ssl.ciphersuites import (
    AES128_SHA, ALL_SUITES, DES_CBC3_SHA, NULL_SHA, RC4_MD5, lookup,
)
from repro.ssl.errors import BadRecordMac, DecodeError
from repro.ssl.record import (
    ConnectionState, ContentType, KeyMaterial, RecordLayer, SSL3_VERSION,
)


def make_states(suite, seed=b"record-test"):
    """A matched (sender, receiver) state pair for one direction."""
    need = suite.key_material_length() // 2
    block = kdf.derive(bytes(48), seed.ljust(32, b"\0"), bytes(32),
                       suite.key_material_length())
    material = KeyMaterial(
        mac_secret=block[:suite.mac_key_len],
        key=block[suite.mac_key_len:suite.mac_key_len + suite.key_len],
        iv=block[need - suite.iv_len:need],
    )
    tx = ConnectionState(suite, material)
    rx = ConnectionState(suite, KeyMaterial(material.mac_secret,
                                            material.key, material.iv))
    return tx, rx


class TestSealOpen:
    @pytest.mark.parametrize("suite", ALL_SUITES, ids=lambda s: s.name)
    def test_roundtrip_every_suite(self, suite):
        tx, rx = make_states(suite)
        payload = b"application data" * 9
        body = tx.seal(ContentType.APPLICATION_DATA, payload)
        assert rx.open(ContentType.APPLICATION_DATA, body) == payload

    def test_ciphertext_differs_from_plaintext(self):
        tx, _ = make_states(DES_CBC3_SHA)
        payload = b"secret" * 10
        body = tx.seal(ContentType.APPLICATION_DATA, payload)
        assert payload not in body

    def test_block_padding_alignment(self):
        tx, _ = make_states(DES_CBC3_SHA)
        for n in range(1, 20):
            body = tx.seal(ContentType.APPLICATION_DATA, bytes(n))
            assert len(body) % 8 == 0

    def test_stream_cipher_no_padding(self):
        tx, _ = make_states(RC4_MD5)
        body = tx.seal(ContentType.APPLICATION_DATA, bytes(10))
        assert len(body) == 10 + 16  # data + MD5 MAC

    def test_null_cipher_passthrough_with_mac(self):
        tx, rx = make_states(NULL_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"plain")
        assert body.startswith(b"plain")
        assert len(body) == 5 + 20
        assert rx.open(ContentType.APPLICATION_DATA, body) == b"plain"

    def test_sequence_numbers_advance_together(self):
        tx, rx = make_states(AES128_SHA)
        for i in range(5):
            body = tx.seal(ContentType.APPLICATION_DATA, f"msg{i}".encode())
            assert rx.open(ContentType.APPLICATION_DATA,
                           body) == f"msg{i}".encode()

    def test_replayed_record_rejected(self):
        tx, rx = make_states(AES128_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"once")
        rx.open(ContentType.APPLICATION_DATA, body)
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, body)

    def test_tampered_ciphertext_rejected(self):
        tx, rx = make_states(DES_CBC3_SHA)
        body = bytearray(tx.seal(ContentType.APPLICATION_DATA, b"x" * 32))
        body[4] ^= 0x01
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, bytes(body))

    def test_wrong_content_type_rejected(self):
        tx, rx = make_states(AES128_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"typed")
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.HANDSHAKE, body)

    def test_truncated_ciphertext_rejected(self):
        tx, rx = make_states(DES_CBC3_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"y" * 32)
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, body[:-8])

    def test_non_block_multiple_rejected(self):
        _, rx = make_states(DES_CBC3_SHA)
        with pytest.raises(BadRecordMac):
            rx.open(ContentType.APPLICATION_DATA, bytes(13))

    def test_oversized_fragment_rejected(self):
        tx, _ = make_states(AES128_SHA)
        with pytest.raises(ValueError):
            tx.seal(ContentType.APPLICATION_DATA, bytes(16385))

    @given(st.binary(max_size=2000))
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, payload):
        tx, rx = make_states(DES_CBC3_SHA, seed=b"prop")
        body = tx.seal(ContentType.APPLICATION_DATA, payload)
        assert rx.open(ContentType.APPLICATION_DATA, body) == payload


class TestRecordLayerFraming:
    def test_emit_header_format(self):
        rl = RecordLayer()
        wire = rl.emit(ContentType.HANDSHAKE, b"hello")
        assert wire[0] == ContentType.HANDSHAKE
        assert int.from_bytes(wire[1:3], "big") == SSL3_VERSION
        assert int.from_bytes(wire[3:5], "big") == 5
        assert wire[5:] == b"hello"

    def test_fragmentation_over_16k(self):
        rl = RecordLayer()
        wire = rl.emit(ContentType.APPLICATION_DATA, bytes(40000))
        rx = RecordLayer()
        records = rx.feed(wire)
        assert len(records) == 3
        assert sum(len(p) for _, p in records) == 40000
        assert max(len(p) for _, p in records) == 16384

    def test_feed_handles_partial_delivery(self):
        tx, rx = RecordLayer(), RecordLayer()
        wire = tx.emit(ContentType.APPLICATION_DATA, b"fragmented-arrival")
        got = []
        for i in range(0, len(wire), 3):
            got.extend(rx.feed(wire[i:i + 3]))
        assert got == [(ContentType.APPLICATION_DATA, b"fragmented-arrival")]

    def test_feed_multiple_records_at_once(self):
        tx, rx = RecordLayer(), RecordLayer()
        wire = tx.emit(ContentType.HANDSHAKE, b"a") + tx.emit(
            ContentType.ALERT, b"bb")
        assert [t for t, _ in rx.feed(wire)] == [ContentType.HANDSHAKE,
                                                 ContentType.ALERT]

    def test_bad_content_type_rejected(self):
        rl = RecordLayer()
        with pytest.raises(DecodeError):
            rl.feed(b"\x63\x03\x00\x00\x01x")

    def test_bad_version_rejected(self):
        rl = RecordLayer()
        with pytest.raises(DecodeError):
            rl.feed(b"\x16\x03\x02\x00\x01x")  # TLS 1.1: unsupported

    def test_tls10_version_accepted(self):
        rl = RecordLayer()
        assert rl.feed(b"\x16\x03\x01\x00\x01x") == [(22, b"x")]

    def test_oversize_record_rejected(self):
        rl = RecordLayer()
        header = bytes([22]) + b"\x03\x00" + (20000).to_bytes(2, "big")
        with pytest.raises(DecodeError):
            rl.feed(header)

    def test_emit_invalid_type_rejected(self):
        with pytest.raises(ValueError):
            RecordLayer().emit(99, b"x")

    def test_encrypted_end_to_end_through_layers(self):
        suite = DES_CBC3_SHA
        tx_state, rx_state = make_states(suite)
        tx, rx = RecordLayer(), RecordLayer()
        tx.set_write_state(tx_state)
        rx.set_read_state(rx_state)
        wire = tx.emit(ContentType.APPLICATION_DATA, b"layered" * 11)
        assert rx.feed(wire) == [(ContentType.APPLICATION_DATA,
                                  b"layered" * 11)]

    def test_write_read_active_flags(self):
        rl = RecordLayer()
        assert not rl.write_active and not rl.read_active
        tx_state, _ = make_states(AES128_SHA)
        rl.set_write_state(tx_state)
        assert rl.write_active and not rl.read_active


class TestCipherSuiteRegistry:
    def test_lookup_by_name_id_identity(self):
        assert lookup("DES-CBC3-SHA") is DES_CBC3_SHA
        assert lookup(0x000A) is DES_CBC3_SHA
        assert lookup(DES_CBC3_SHA) is DES_CBC3_SHA

    def test_lookup_unknown(self):
        with pytest.raises(KeyError):
            lookup("TLS13-CHACHA")
        with pytest.raises(KeyError):
            lookup(0xFFFF)

    @pytest.mark.parametrize("suite", ALL_SUITES, ids=lambda s: s.name)
    def test_key_material_length_formula(self, suite):
        if suite.export:
            # Export suites draw only the short secrets from the key block.
            expected = 2 * (suite.mac_key_len + suite.secret_key_len)
        else:
            expected = 2 * (suite.mac_key_len + suite.key_len
                            + suite.iv_len)
        assert suite.key_material_length() == expected

    def test_paper_suite_parameters(self):
        s = DES_CBC3_SHA
        assert s.cipher == "3des" and s.mac == "sha1"
        assert s.key_len == 24 and s.iv_len == 8 and s.block_size == 8
        assert s.mac_size == 20

    def test_new_cipher_key_validation(self):
        with pytest.raises(ValueError):
            DES_CBC3_SHA.new_cipher(bytes(16), bytes(8))
        with pytest.raises(ValueError):
            DES_CBC3_SHA.new_cipher(bytes(24), bytes(4))
