"""SSLv3 MAC and HMAC tests (RFC 2202 vectors for HMAC)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.mac import hmac, ssl3_mac
from repro.crypto.md5 import MD5
from repro.crypto.sha1 import SHA1

# RFC 2202 HMAC-MD5 vectors (cases 1-3)
HMAC_MD5_VECTORS = [
    (b"\x0b" * 16, b"Hi There", "9294727a3638bb1c13f48ef8158bfc9d"),
    (b"Jefe", b"what do ya want for nothing?",
     "750c783e6ab0b503eaa86e310a5db738"),
    (b"\xaa" * 16, b"\xdd" * 50, "56be34521d144c88dbb8c733f0e8b3f6"),
]

# RFC 2202 HMAC-SHA1 vectors (cases 1-3)
HMAC_SHA1_VECTORS = [
    (b"\x0b" * 20, b"Hi There", "b617318655057264e28bc0b6fb378c8ef146be00"),
    (b"Jefe", b"what do ya want for nothing?",
     "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79"),
    (b"\xaa" * 20, b"\xdd" * 50, "125d7342b9ac11cd91a39af48aa17b4f63f175d3"),
]


class TestHmac:
    @pytest.mark.parametrize("key,msg,expected", HMAC_MD5_VECTORS)
    def test_hmac_md5_rfc2202(self, key, msg, expected):
        assert hmac(MD5, key, msg).hex() == expected

    @pytest.mark.parametrize("key,msg,expected", HMAC_SHA1_VECTORS)
    def test_hmac_sha1_rfc2202(self, key, msg, expected):
        assert hmac(SHA1, key, msg).hex() == expected

    def test_long_key_is_hashed(self):
        # RFC 2202 case 6: 80-byte key
        key = b"\xaa" * 80
        msg = b"Test Using Larger Than Block-Size Key - Hash Key First"
        assert hmac(SHA1, key, msg).hex() == \
            "aa4ae5e15272d00e95705637ce8a3b55ed402112"

    @given(st.binary(max_size=100), st.binary(max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_matches_stdlib_hmac(self, key, msg):
        import hashlib
        import hmac as stdlib_hmac
        assert hmac(SHA1, key, msg) == stdlib_hmac.new(
            key, msg, hashlib.sha1).digest()


class TestSsl3Mac:
    def test_deterministic(self):
        a = ssl3_mac(SHA1, b"secret" * 4, 0, 23, b"payload")
        b = ssl3_mac(SHA1, b"secret" * 4, 0, 23, b"payload")
        assert a == b

    def test_mac_sizes(self):
        assert len(ssl3_mac(SHA1, b"k" * 20, 0, 23, b"x")) == 20
        assert len(ssl3_mac(MD5, b"k" * 16, 0, 23, b"x")) == 16

    @pytest.mark.parametrize("mutation", [
        ("secret", b"secret2" * 3),
        ("seq", 1),
        ("content_type", 22),
        ("data", b"payloae"),
    ])
    def test_any_input_change_changes_mac(self, mutation):
        base = dict(secret=b"secret" * 4, seq=0, content_type=23,
                    data=b"payload")
        ref = ssl3_mac(SHA1, base["secret"], base["seq"],
                       base["content_type"], base["data"])
        field, value = mutation
        changed = dict(base)
        changed[field] = value
        got = ssl3_mac(SHA1, changed["secret"], changed["seq"],
                       changed["content_type"], changed["data"])
        assert got != ref

    def test_sequence_number_range_checked(self):
        with pytest.raises(ValueError):
            ssl3_mac(SHA1, b"k", -1, 23, b"x")
        with pytest.raises(ValueError):
            ssl3_mac(SHA1, b"k", 1 << 64, 23, b"x")

    def test_max_sequence_number_ok(self):
        assert ssl3_mac(SHA1, b"k", (1 << 64) - 1, 23, b"x")

    @given(st.binary(min_size=1, max_size=40), st.integers(0, 1000),
           st.binary(max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_never_equal_across_digests(self, secret, seq, data):
        md5_mac = ssl3_mac(MD5, secret, seq, 23, data)
        sha_mac = ssl3_mac(SHA1, secret, seq, 23, data)
        assert md5_mac != sha_mac[:16]

    def test_charged_as_mac_function(self, isolated_profiler):
        ssl3_mac(SHA1, b"k" * 20, 0, 23, b"data")
        assert "mac" in isolated_profiler.functions
