"""The ssldump-style wire tracer."""

import pytest

from repro import perf
from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, SslClient, SslServer
from repro.ssl.loopback import make_server_identity
from repro.ssl.trace import WireTracer, format_trace


@pytest.fixture(scope="module")
def traced_handshake():
    key, cert = make_server_identity(512, seed=b"trace")
    sp, cp = perf.Profiler(), perf.Profiler()
    tracer = WireTracer()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"tr-s"))
    with perf.activate(cp):
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(b"tr-c"))
        client.start_handshake()
    for _ in range(8):
        with perf.activate(cp):
            c_out = client.pending_output()
        with perf.activate(sp):
            s_out = server.pending_output()
        if not c_out and not s_out:
            break
        if c_out:
            tracer.feed("client", c_out)
            with perf.activate(sp):
                server.receive(c_out)
        if s_out:
            tracer.feed("server", s_out)
            with perf.activate(cp):
                client.receive(s_out)
    with perf.activate(cp):
        client.write(b"app data payload")
        app = client.pending_output()
    tracer.feed("client", app)
    with perf.activate(sp):
        server.receive(app)
    return tracer


class TestFullHandshakeTrace:
    def test_figure1_message_sequence(self, traced_handshake):
        descriptions = [e.description for e in traced_handshake.events]
        expected_order = [
            "client_hello", "server_hello", "certificate",
            "server_hello_done", "client_key_exchange",
            "change_cipher_spec", "finished (encrypted)",
            "change_cipher_spec", "finished (encrypted)",
            "application_data (encrypted)",
        ]
        pos = 0
        for want in expected_order:
            while pos < len(descriptions) and \
                    want not in descriptions[pos]:
                pos += 1
            assert pos < len(descriptions), (want, descriptions)

    def test_directions_alternate_sensibly(self, traced_handshake):
        first = traced_handshake.events[0]
        assert first.direction == "client->server"
        assert first.description == "client_hello"

    def test_format_trace_lines(self, traced_handshake):
        text = format_trace(traced_handshake.events)
        assert "client->server" in text
        assert "server->client" in text
        assert text.count("\n") == len(traced_handshake.events)


class TestTracerUnits:
    def test_plaintext_appdata_flagged(self):
        from repro.ssl.record import ContentType, RecordLayer
        tracer = WireTracer()
        wire = RecordLayer().emit(ContentType.APPLICATION_DATA, b"oops")
        [event] = tracer.feed("client", wire)
        assert "plaintext!" in event.description

    def test_alert_decoding(self):
        from repro.ssl.record import ContentType, RecordLayer
        tracer = WireTracer()
        wire = RecordLayer().emit(ContentType.ALERT, bytes([2, 40]))
        [event] = tracer.feed("server", wire)
        assert event.description == "alert: handshake_failure (fatal)"

    def test_v2_hello_recognized(self):
        from repro.ssl.handshake import build_v2_client_hello, v2_record
        tracer = WireTracer()
        wire = v2_record(build_v2_client_hello(0x0300, (0x0A,), b"C" * 16))
        [event] = tracer.feed("client", wire)
        assert "v2 client_hello" in event.description

    def test_partial_delivery_buffers(self):
        from repro.ssl.record import ContentType, RecordLayer
        tracer = WireTracer()
        wire = RecordLayer().emit(ContentType.HANDSHAKE, b"\x00\x00\x00\x00")
        assert tracer.feed("client", wire[:3]) == []
        [event] = tracer.feed("client", wire[3:])
        assert event.description == "hello_request"

    def test_coalesced_messages_in_one_record(self):
        from repro.ssl.handshake import ServerHelloDone
        from repro.ssl.record import ContentType, RecordLayer
        tracer = WireTracer()
        payload = ServerHelloDone().to_bytes() * 2
        wire = RecordLayer().emit(ContentType.HANDSHAKE, payload)
        [event] = tracer.feed("server", wire)
        assert event.description == "server_hello_done, server_hello_done"

    def test_unknown_sender_rejected(self):
        with pytest.raises(ValueError):
            WireTracer().feed("eve", b"")

    def test_custom_labels(self):
        tracer = WireTracer(client_label="browser", server_label="bank")
        from repro.ssl.record import ContentType, RecordLayer
        wire = RecordLayer().emit(ContentType.ALERT, bytes([1, 0]))
        [event] = tracer.feed("client", wire)
        assert event.direction == "browser->bank"
