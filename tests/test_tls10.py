"""TLS 1.0 support: PRF vectors, record format, negotiation, interop."""

import pytest

from repro import perf
from repro.crypto.mac import tls_mac
from repro.crypto.md5 import MD5
from repro.crypto.sha1 import SHA1
from repro.crypto.rand import PseudoRandom
from repro.ssl import DES_CBC3_SHA, AES128_SHA, RC4_SHA, SessionCache, \
    SslClient, SslServer
from repro.ssl import kdf
from repro.ssl.errors import BadRecordMac
from repro.ssl.loopback import pump
from repro.ssl.record import (
    ConnectionState, ContentType, KeyMaterial, SSL3_VERSION, TLS1_VERSION,
)


def tls_pair(identity, suite=DES_CBC3_SHA, client_version=TLS1_VERSION,
             max_version=TLS1_VERSION, session=None, cache=None):
    key, cert = identity
    sp, cp = perf.Profiler(), perf.Profiler()
    with perf.activate(sp):
        server = SslServer(key, cert, suites=(suite,),
                           max_version=max_version, session_cache=cache,
                           rng=PseudoRandom(b"tls-s"))
    with perf.activate(cp):
        client = SslClient(suites=(suite,), version=client_version,
                           session=session, rng=PseudoRandom(b"tls-c"))
        client.start_handshake()
    pump(client, server, cp, sp)
    return client, server, cp, sp


class TestTlsPrf:
    def test_known_vector(self):
        """The widely circulated TLS 1.0 PRF test vector."""
        out = kdf.tls_prf(b"\xab" * 48, b"PRF Testvector", b"\xcd" * 64, 104)
        assert out[:16].hex() == "d3d4d1e349b5d515044666d51de32bab"

    def test_length_exact(self):
        for n in (0, 1, 12, 48, 104, 200):
            assert len(kdf.tls_prf(b"secret", b"label", b"seed", n)) == n

    def test_label_and_seed_sensitivity(self):
        base = kdf.tls_prf(b"s", b"l", b"seed", 16)
        assert kdf.tls_prf(b"s", b"l2", b"seed", 16) != base
        assert kdf.tls_prf(b"s", b"l", b"seed2", 16) != base
        assert kdf.tls_prf(b"s2", b"l", b"seed", 16) != base

    def test_master_secret_differs_from_sslv3(self):
        pre, cr, sr = bytes(48), bytes(range(32)), bytes(range(32, 64))
        assert kdf.tls_master_secret(pre, cr, sr) != \
            kdf.master_secret(pre, cr, sr)

    def test_finished_labels_differ(self):
        master = bytes(48)
        m, s = MD5(b"transcript"), SHA1(b"transcript")
        client_vd = kdf.tls_finished(m.copy(), s.copy(), master, True)
        server_vd = kdf.tls_finished(m.copy(), s.copy(), master, False)
        assert len(client_vd) == len(server_vd) == 12
        assert client_vd != server_vd


class TestTlsRecord:
    def _states(self, suite):
        block = kdf.tls_key_block(bytes(48), bytes(32), bytes(32),
                                  suite.key_material_length())
        mk, kk, ik = suite.mac_key_len, suite.key_len, suite.iv_len
        material = KeyMaterial(block[:mk], block[2 * mk:2 * mk + kk],
                               block[2 * (mk + kk):2 * (mk + kk) + ik])
        tx = ConnectionState(suite, material, version=TLS1_VERSION)
        rx = ConnectionState(
            suite, KeyMaterial(material.mac_secret, material.key,
                               material.iv), version=TLS1_VERSION)
        return tx, rx

    def test_roundtrip(self):
        tx, rx = self._states(DES_CBC3_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"tls record" * 7)
        assert rx.open(ContentType.APPLICATION_DATA,
                       body) == b"tls record" * 7

    def test_tls_padding_bytes_carry_length(self):
        """A same-key SSLv3 receiver must reject TLS padding and vice
        versa (different MAC construction catches it first)."""
        tx, rx = self._states(AES128_SHA)
        body = tx.seal(ContentType.APPLICATION_DATA, b"q" * 10)
        assert rx.open(ContentType.APPLICATION_DATA, body) == b"q" * 10

    def test_mac_construction_differs_from_sslv3(self):
        from repro.crypto.mac import ssl3_mac
        secret = bytes(range(20))
        tls = tls_mac(SHA1, secret, 0, 23, TLS1_VERSION, b"data")
        ssl = ssl3_mac(SHA1, secret, 0, 23, b"data")
        assert tls != ssl

    def test_tls_mac_covers_version(self):
        secret = bytes(20)
        a = tls_mac(SHA1, secret, 0, 23, 0x0301, b"data")
        b = tls_mac(SHA1, secret, 0, 23, 0x0302, b"data")
        assert a != b

    def test_version_mismatch_between_peers_fails(self):
        tx, _ = self._states(DES_CBC3_SHA)
        block = kdf.tls_key_block(bytes(48), bytes(32), bytes(32),
                                  DES_CBC3_SHA.key_material_length())
        mk, kk, ik = (DES_CBC3_SHA.mac_key_len, DES_CBC3_SHA.key_len,
                      DES_CBC3_SHA.iv_len)
        material = KeyMaterial(block[:mk], block[2 * mk:2 * mk + kk],
                               block[2 * (mk + kk):2 * (mk + kk) + ik])
        rx_ssl3 = ConnectionState(DES_CBC3_SHA, material,
                                  version=SSL3_VERSION)
        body = tx.seal(ContentType.APPLICATION_DATA, b"versioned")
        with pytest.raises(BadRecordMac):
            rx_ssl3.open(ContentType.APPLICATION_DATA, body)

    def test_unsupported_version_rejected(self):
        with pytest.raises(ValueError):
            ConnectionState(DES_CBC3_SHA,
                            KeyMaterial(bytes(20), bytes(24), bytes(8)),
                            version=0x0302)


class TestTlsHandshake:
    @pytest.mark.parametrize("suite", [DES_CBC3_SHA, AES128_SHA, RC4_SHA],
                             ids=lambda s: s.name)
    def test_handshake_completes(self, identity512, suite):
        client, server, cp, sp = tls_pair(identity512, suite)
        assert client.handshake_complete and server.handshake_complete
        assert client.version == server.version == TLS1_VERSION
        assert client.master_secret == server.master_secret

    def test_application_data(self, identity512):
        client, server, cp, sp = tls_pair(identity512)
        with perf.activate(cp):
            client.write(b"over tls 1.0" * 30)
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"over tls 1.0" * 30

    def test_finished_is_12_bytes(self, identity512):
        client, server, _, _ = tls_pair(identity512)
        # Indirect: verify_data computation yields 12 bytes for TLS.
        assert len(client._compute_verify_data(True)) == 12
        assert len(server._compute_verify_data(False)) == 12

    def test_server_caps_version(self, identity512):
        client, server, _, _ = tls_pair(identity512,
                                        max_version=SSL3_VERSION)
        assert client.version == server.version == SSL3_VERSION
        assert client.handshake_complete

    def test_ssl3_client_unaffected(self, identity512):
        client, server, _, _ = tls_pair(identity512,
                                        client_version=SSL3_VERSION)
        assert client.version == server.version == SSL3_VERSION

    def test_premaster_carries_offered_version(self, identity512):
        """Rollback defence: a TLS client's pre-master says 0x0301 even if
        the server negotiated down to SSLv3 -- both sides must agree."""
        client, server, _, _ = tls_pair(identity512,
                                        max_version=SSL3_VERSION,
                                        client_version=TLS1_VERSION)
        # Handshake completed: server validated 0x0301 in the pre-master.
        assert server.handshake_complete

    def test_tls_resumption(self, identity512):
        cache = SessionCache()
        c1, s1, _, _ = tls_pair(identity512, cache=cache)
        c2, s2, _, _ = tls_pair(identity512, cache=cache,
                                session=c1.session)
        assert s2.resumed and c2.resumed
        assert c2.version == TLS1_VERSION

    def test_tls_and_ssl3_masters_differ(self, identity512):
        tls_client, _, _, _ = tls_pair(identity512)
        ssl_client, _, _, _ = tls_pair(identity512,
                                       client_version=SSL3_VERSION)
        assert tls_client.master_secret != ssl_client.master_secret

    def test_tls_handshake_cost_similar_to_ssl3(self, identity512):
        """The version change moves hashing work around but RSA still
        dominates: totals within 20%."""
        _, _, _, sp_tls = tls_pair(identity512)
        _, _, _, sp_ssl = tls_pair(identity512,
                                   client_version=SSL3_VERSION)
        ratio = sp_tls.total_cycles() / sp_ssl.total_cycles()
        assert 0.8 < ratio < 1.25


class TestExportSuites:
    """40-bit export suites: short secrets expanded to full write keys."""

    @pytest.mark.parametrize("version", [SSL3_VERSION, TLS1_VERSION],
                             ids=["sslv3", "tls10"])
    def test_export_handshake_and_transfer(self, identity512, version):
        from repro.ssl.ciphersuites import EXP_RC4_MD5
        client, server, cp, sp = tls_pair(identity512, suite=EXP_RC4_MD5,
                                          client_version=version)
        assert client.handshake_complete and server.handshake_complete
        with perf.activate(cp):
            client.write(b"weak but working" * 8)
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"weak but working" * 8

    def test_export_des_cbc(self, identity512):
        from repro.ssl.ciphersuites import EXP_DES_CBC_SHA
        client, server, cp, sp = tls_pair(identity512,
                                          suite=EXP_DES_CBC_SHA,
                                          client_version=SSL3_VERSION)
        assert client.handshake_complete
        with perf.activate(cp):
            client.write(b"des export path!" * 4)
        with perf.activate(sp):
            server.receive(client.pending_output())
            assert server.read() == b"des export path!" * 4

    def test_key_block_is_smaller_for_export(self):
        from repro.ssl.ciphersuites import EXP_RC4_MD5, RC4_MD5
        assert EXP_RC4_MD5.key_material_length() < \
            RC4_MD5.key_material_length()
        assert EXP_RC4_MD5.key_material_length() == 2 * (16 + 5)

    def test_export_keys_differ_per_direction(self, identity512):
        """The MD5 expansion orders the randoms differently per side, so
        write keys differ even from identical short secrets."""
        from repro.ssl.ciphersuites import EXP_RC4_MD5
        client, server, _, _ = tls_pair(identity512, suite=EXP_RC4_MD5,
                                        client_version=SSL3_VERSION)
        c_state, s_state = client._build_states()
        ck, sk, civ, siv = client._expand_export_keys(
            EXP_RC4_MD5, b"\x01" * 5, b"\x01" * 5)
        assert ck != sk


class TestTlsEnvironment:
    def test_run_session_version_knob(self, identity512):
        from repro.ssl.loopback import run_session
        key, cert = identity512
        result = run_session(b"tls session" * 10, key=key, cert=cert,
                             version=TLS1_VERSION)
        assert result.echoed == b"tls session" * 10
        assert result.server.version == TLS1_VERSION

    def test_webserver_over_tls(self, identity512):
        from repro.webserver import RequestWorkload, WebServerSimulator
        key, cert = identity512
        sim = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                 version=TLS1_VERSION)
        result = sim.run(RequestWorkload.fixed(1024), 1)
        assert result.requests_completed == 1 and result.failures == 0
        # (With the fast 512-bit CRT fixture the crypto share is small;
        # the Table 1 dominance claim is checked at the paper's config.)
        assert result.module_shares()["libcrypto"] > 0.05
        assert result.crypto_category_shares()["public"] > 0.3
