"""Unit tests for the CPU cost model."""

import pytest

from repro.perf import CpuModel, DEFAULT_COSTS, PENTIUM4, mix
from repro.perf.isa import ALL_MNEMONICS


class TestCpuModel:
    def test_default_frequency_is_papers_machine(self):
        assert PENTIUM4.frequency_hz == pytest.approx(2.26e9)

    def test_every_mnemonic_priced(self):
        for name in ALL_MNEMONICS:
            assert name in DEFAULT_COSTS

    def test_missing_cost_rejected(self):
        with pytest.raises(ValueError, match="missing"):
            CpuModel(costs={"movl": 0.5})

    def test_cycles_linear_in_counts(self):
        m = mix(movl=10)
        assert PENTIUM4.cycles(m * 2) == pytest.approx(
            2 * PENTIUM4.cycles(m))

    def test_cycles_additive(self):
        a, b = mix(movl=3), mix(mull=2)
        assert PENTIUM4.cycles(a + b) == pytest.approx(
            PENTIUM4.cycles(a) + PENTIUM4.cycles(b))

    def test_stall_factor_scales_cycles(self):
        m = mix(xorl=100)
        assert PENTIUM4.cycles(m, 1.5) == pytest.approx(
            1.5 * PENTIUM4.cycles(m))

    def test_stall_factor_must_be_positive(self):
        with pytest.raises(ValueError):
            PENTIUM4.cycles(mix(movl=1), 0)

    def test_cpi_of_empty_mix_is_zero(self):
        from repro.perf import InstrMix
        assert PENTIUM4.cpi(InstrMix.empty()) == 0.0

    def test_cpi_is_cycles_over_instructions(self):
        m = mix(movl=4, mull=1)
        assert PENTIUM4.cpi(m) == pytest.approx(
            PENTIUM4.cycles(m) / 5)

    def test_multiply_costs_more_than_logical(self):
        assert DEFAULT_COSTS["mull"] > 5 * DEFAULT_COSTS["xorl"]

    def test_cost_memo_does_not_leak_between_models(self):
        m = mix(movl=100)
        base = PENTIUM4.cycles(m)
        slow = CpuModel(name="slow", costs={k: v * 2
                                            for k, v in DEFAULT_COSTS.items()})
        assert slow.cycles(m) == pytest.approx(2 * base)
        assert PENTIUM4.cycles(m) == pytest.approx(base)


class TestDerivedMetrics:
    def test_seconds(self):
        assert PENTIUM4.seconds(2.26e9) == pytest.approx(1.0)

    def test_throughput_mbps(self):
        # 1 MB in 2.26e9 cycles (1 s) = 1 MB/s
        assert PENTIUM4.throughput_mbps(1_000_000, 2.26e9) == pytest.approx(
            1.0)

    def test_throughput_requires_positive_cycles(self):
        with pytest.raises(ValueError):
            PENTIUM4.throughput_mbps(100, 0)

    def test_path_length(self):
        assert PENTIUM4.path_length(5000, 100) == pytest.approx(50.0)

    def test_path_length_requires_positive_bytes(self):
        with pytest.raises(ValueError):
            PENTIUM4.path_length(100, 0)


class TestAlternativeCores:
    def test_models_cover_all_mnemonics(self):
        from repro.perf import PENTIUM3, WIDE_CORE
        from repro.perf.isa import ALL_MNEMONICS
        for cpu in (PENTIUM3, WIDE_CORE):
            for name in ALL_MNEMONICS:
                assert name in cpu.costs, (cpu.name, name)

    def test_wide_core_cheaper_everywhere(self):
        from repro.perf import PENTIUM4, WIDE_CORE
        m = mix(movl=100, xorl=50, mull=10, roll=20)
        assert WIDE_CORE.cycles(m) < PENTIUM4.cycles(m)
        assert WIDE_CORE.frequency_hz > PENTIUM4.frequency_hz

    def test_p6_rotates_cheaper_than_p4(self):
        """The microarchitectural quirk the models encode: the P4's slow
        shifter versus the P6's fast barrel shifter."""
        from repro.perf import PENTIUM3, PENTIUM4
        rotates = mix(roll=100)
        alu = mix(addl=100)
        p4_ratio = PENTIUM4.cycles(rotates) / PENTIUM4.cycles(alu)
        p6_ratio = PENTIUM3.cycles(rotates) / PENTIUM3.cycles(alu)
        assert p6_ratio < p4_ratio

    def test_multiplier_relative_cost_drops_on_wide_core(self):
        from repro.perf import PENTIUM4, WIDE_CORE
        assert (WIDE_CORE.costs["mull"] / WIDE_CORE.costs["addl"]) < \
            (PENTIUM4.costs["mull"] / PENTIUM4.costs["addl"])
