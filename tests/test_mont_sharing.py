"""Montgomery context reuse across a key's lifetime and across key families.

RSA keys cache one :class:`MontgomeryContext` per ``(modulus, reduction
style)``; batch key sets and their synthesized batch keys adopt the first
member's cache so a whole same-modulus family percolates and exponentiates
through literally the same context objects (no repeated ``BN_MONT_CTX_set``
setup, one ``RR`` per modulus).  These tests pin the *identity* of the
shared objects, not just value equality.
"""

from __future__ import annotations

import pytest

from repro.crypto.batch_rsa import BatchRsaDecryptor, generate_batch_keys
from repro.crypto.rand import PseudoRandom
from repro.crypto.rsa import RsaError


@pytest.fixture(scope="module")
def keyset():
    return generate_batch_keys(512, 4,
                               rng=PseudoRandom(b"mont-sharing-test"))


def test_context_cached_per_key(rsa512):
    assert rsa512._ctx_n() is rsa512._ctx_n()
    assert rsa512._ctx_p() is rsa512._ctx_p()
    assert rsa512._ctx_q() is rsa512._ctx_q()


def test_context_cache_keyed_by_reduction_style(rsa512):
    original_style = rsa512.mont_reduction
    interleaved = rsa512._ctx_n()
    rsa512.mont_reduction = "separate"
    try:
        separate = rsa512._ctx_n()
        assert separate is not interleaved
        assert separate.reduction == "separate"
    finally:
        rsa512.mont_reduction = original_style
    # Toggling back reuses the originally built context, not a new one.
    assert rsa512._ctx_n() is interleaved


def test_keyset_members_share_contexts(keyset):
    first = keyset.members[0]
    for member in keyset.members[1:]:
        assert member._mont_cache is first._mont_cache
        assert member._ctx_n() is first._ctx_n()
        assert member._ctx_p() is first._ctx_p()
        assert member._ctx_q() is first._ctx_q()


def test_decryptor_reuses_family_context(keyset):
    decryptor = BatchRsaDecryptor(keyset)
    assert decryptor._ctx_n() is keyset.members[0]._ctx_n()
    e_product = 1
    for e in keyset.exponents:
        e_product *= e
    batch_key = decryptor._batch_key(e_product)
    assert batch_key._mont_cache is keyset.members[0]._mont_cache
    assert batch_key._ctx_n() is keyset.members[0]._ctx_n()
    # Cached per (product, crt-mode, style): same object on re-request.
    assert decryptor._batch_key(e_product) is batch_key


def test_share_montgomery_rejects_foreign_modulus(rsa512, rsa1024):
    with pytest.raises(RsaError):
        rsa1024.share_montgomery(rsa512)
