"""Batch RSA: product-tree kernels, Shacham-Boneh decryptor, handshake
batching queue, and the concurrent web-server integration."""

import pytest

from repro import perf
from repro.bignum import (
    BigNum, ExponentTree, crt_split_exponent, mod_exp_int,
)
from repro.crypto.batch_rsa import (
    BatchRsaDecryptor, BatchRsaError, BatchRsaKeySet, generate_batch_keys,
)
from repro.crypto.rand import PseudoRandom
from repro.crypto.rsa import RsaError, generate_key
from repro.ssl.ciphersuites import DES_CBC3_SHA
from repro.ssl.client import SslClient
from repro.ssl.errors import HandshakeFailure
from repro.ssl.loopback import pump
from repro.ssl.server import HandshakeBatcher, SslServer
from repro.ssl.x509 import make_self_signed
from repro.webserver.simulator import WebServerSimulator
from repro.webserver.workload import RequestWorkload


@pytest.fixture(scope="session")
def batch_keys4():
    """A deterministic 4-member 512-bit batch key set (e = 3, 5, 7, 11)."""
    return generate_batch_keys(512, 4, rng=PseudoRandom(b"batch-fixture"))


def encrypt_for(keyset, index, message, seed=b"enc"):
    rng = PseudoRandom(seed + bytes([index]))
    return keyset.member(index).public().encrypt(message, rng)


# ---------------------------------------------------------------------------
# Product-tree kernels
# ---------------------------------------------------------------------------

class TestProductTree:
    def test_root_product(self):
        tree = ExponentTree([3, 5, 7, 11])
        assert tree.root.product == 3 * 5 * 7 * 11
        assert [leaf.index for leaf in tree.root.leaves()] == [0, 1, 2, 3]

    def test_odd_sizes_build(self):
        for n in (1, 2, 3, 5, 8):
            exps = [3, 5, 7, 11, 13, 17, 19, 23][:n]
            tree = ExponentTree(exps)
            prod = 1
            for e in exps:
                prod *= e
            assert tree.root.product == prod
            assert len(tree.root.leaves()) == n

    def test_rejects_non_coprime(self):
        with pytest.raises(ValueError):
            ExponentTree([3, 9])

    def test_rejects_even_or_small(self):
        with pytest.raises(ValueError):
            ExponentTree([3, 4])
        with pytest.raises(ValueError):
            ExponentTree([1, 3])

    def test_crt_split_exponent(self):
        for el, er in ((3, 5), (15, 7), (3 * 5 * 7, 11), (5, 3)):
            x = crt_split_exponent(el, er)
            assert x % el == 0
            assert x % er == 1
            assert 0 < x < el * er

    def test_crt_split_rejects_common_factor(self):
        with pytest.raises(ValueError):
            crt_split_exponent(15, 3)

    def test_mod_exp_int_matches_pow(self):
        m = BigNum.from_int(0xFFF1)
        for base in (2, 1234567, 0xFFF0):
            for k in (0, 1, 2, 3, 17, 1155):
                got = mod_exp_int(BigNum.from_int(base), k, m)
                assert got.to_int() == pow(base, k, 0xFFF1)


# ---------------------------------------------------------------------------
# Key-set construction
# ---------------------------------------------------------------------------

class TestBatchKeySet:
    def test_generated_members_share_modulus(self, batch_keys4):
        ks = batch_keys4
        assert len(ks) == 4
        assert ks.exponents == (3, 5, 7, 11)
        for member in ks.members[1:]:
            assert member.n == ks.members[0].n

    def test_members_are_working_rsa_keys(self, batch_keys4):
        rng = PseudoRandom(b"roundtrip")
        for i, member in enumerate(batch_keys4.members):
            ct = member.public().encrypt(b"member-%d" % i, rng)
            assert member.decrypt(ct) == b"member-%d" % i

    def test_index_for_by_identity_and_exponent(self, batch_keys4):
        ks = batch_keys4
        for i, member in enumerate(ks.members):
            assert ks.index_for(member) == i

    def test_index_for_rejects_foreign_key(self, batch_keys4):
        other = generate_key(512, rng=PseudoRandom(b"foreign"))
        with pytest.raises(BatchRsaError):
            batch_keys4.index_for(other)

    def test_rejects_mismatched_moduli(self, batch_keys4):
        other = generate_key(512, rng=PseudoRandom(b"other"))
        with pytest.raises(BatchRsaError):
            BatchRsaKeySet([batch_keys4.member(0), other])

    def test_rejects_duplicate_exponents(self, batch_keys4):
        with pytest.raises(BatchRsaError):
            BatchRsaKeySet([batch_keys4.member(0), batch_keys4.member(0)])

    def test_generate_accepts_composite_coprime_exponents(self):
        """The prime search validates gcd(e, phi), not divisibility: a
        composite exponent like 9 can share its factor 3 with phi while
        9 does not divide phi, and the old check then crashed on the
        modular inverse instead of retrying."""
        ks = generate_batch_keys(128, 2, exponents=(5, 9),
                                 rng=PseudoRandom(b"composite-e0"))
        assert ks.exponents == (5, 9)
        rng = PseudoRandom(b"composite-rt")
        for member in ks.members:
            ct = member.public().encrypt(b"msg", rng)
            assert member.decrypt(ct) == b"msg"

    def test_generate_rejects_bad_sizes(self):
        with pytest.raises(BatchRsaError):
            generate_batch_keys(512, 9)  # only 8 default exponents
        with pytest.raises(BatchRsaError):
            generate_batch_keys(63, 2)


# ---------------------------------------------------------------------------
# Batched decryption: equivalence with the per-key private op
# ---------------------------------------------------------------------------

class TestBatchDecryptor:
    @pytest.mark.parametrize("indices", [(0,), (0, 1), (0, 1, 2),
                                         (0, 1, 2, 3), (3, 1)])
    def test_raw_batch_matches_raw_private(self, batch_keys4, indices):
        """The tentpole invariant: batched == per-key, any batch shape."""
        ks = batch_keys4
        dec = BatchRsaDecryptor(ks)
        rng = PseudoRandom(b"raw" + bytes(indices))
        items = [(i, BigNum.from_bytes(rng.bytes(ks.size)).mod(ks.n))
                 for i in indices]
        batched = dec.raw_batch(items)
        singles = [ks.member(i).raw_private(c) for i, c in items]
        assert batched == singles

    @pytest.mark.parametrize("blinding", [True, False])
    def test_equivalence_blinding_on_off(self, batch_keys4, blinding):
        ks = batch_keys4
        dec = BatchRsaDecryptor(ks, blinding=blinding)
        rng = PseudoRandom(b"blind")
        items = [(i, BigNum.from_bytes(rng.bytes(ks.size)).mod(ks.n))
                 for i in range(4)]
        batched = dec.raw_batch(items)
        singles = [ks.member(i).raw_private(c) for i, c in items]
        assert batched == singles

    @pytest.mark.parametrize("use_crt", [True, False])
    def test_equivalence_crt_on_off(self, batch_keys4, use_crt):
        ks = batch_keys4
        old = [m.use_crt for m in ks.members]
        try:
            for m in ks.members:
                m.use_crt = use_crt
            dec = BatchRsaDecryptor(ks)
            rng = PseudoRandom(b"crt")
            items = [(i, BigNum.from_bytes(rng.bytes(ks.size)).mod(ks.n))
                     for i in range(3)]
            assert dec.raw_batch(items) == [
                ks.member(i).raw_private(c) for i, c in items]
        finally:
            for m, flag in zip(ks.members, old):
                m.use_crt = flag

    def test_decrypt_batch_pkcs1_roundtrip(self, batch_keys4):
        ks = batch_keys4
        dec = BatchRsaDecryptor(ks)
        messages = [b"pre-master-%02d" % i for i in range(4)]
        items = [(i, encrypt_for(ks, i, messages[i])) for i in range(4)]
        assert dec.decrypt_batch(items) == messages

    def test_decrypt_batch_bad_padding_is_none_not_error(self, batch_keys4):
        """One corrupt member must not fail (or distinguish) the batch."""
        ks = batch_keys4
        dec = BatchRsaDecryptor(ks)
        items = [(i, encrypt_for(ks, i, b"ok-%d" % i)) for i in range(4)]
        rng = PseudoRandom(b"garbage")
        items[2] = (2, BigNum.from_bytes(rng.bytes(ks.size))
                    .mod(ks.n).to_bytes(ks.size))
        out = dec.decrypt_batch(items)
        assert out[0] == b"ok-0" and out[1] == b"ok-1" and out[3] == b"ok-3"
        assert out[2] is None

    def test_raw_batch_rejects_duplicate_members(self, batch_keys4):
        dec = BatchRsaDecryptor(batch_keys4)
        c = BigNum.from_int(12345)
        with pytest.raises(BatchRsaError):
            dec.raw_batch([(0, c), (0, c)])

    def test_raw_batch_rejects_unknown_index(self, batch_keys4):
        dec = BatchRsaDecryptor(batch_keys4)
        with pytest.raises(BatchRsaError):
            dec.raw_batch([(7, BigNum.from_int(5))])

    def test_raw_batch_rejects_unreduced_input(self, batch_keys4):
        dec = BatchRsaDecryptor(batch_keys4)
        with pytest.raises(RsaError):
            dec.raw_batch([(0, batch_keys4.n), (1, BigNum.from_int(5))])

    def test_empty_batch(self, batch_keys4):
        assert BatchRsaDecryptor(batch_keys4).raw_batch([]) == []

    def test_batch_amortizes_cycles(self, batch_keys4):
        """A batch of 4 must cost well under 4 single private ops."""
        ks = batch_keys4
        dec = BatchRsaDecryptor(ks)
        rng = PseudoRandom(b"cycles")
        items = [(i, BigNum.from_bytes(rng.bytes(ks.size)).mod(ks.n))
                 for i in range(4)]
        batch_prof = perf.Profiler()
        with perf.activate(batch_prof):
            dec.raw_batch(items)
        single_prof = perf.Profiler()
        with perf.activate(single_prof):
            for i, c in items:
                ks.member(i).raw_private(c)
        assert batch_prof.total_cycles() < 0.75 * single_prof.total_cycles()


# ---------------------------------------------------------------------------
# The handshake batching queue
# ---------------------------------------------------------------------------

class TestHandshakeBatcher:
    def _submit(self, batcher, ks, index, results, message=b"m"):
        ct = encrypt_for(ks, index, message, seed=b"q")
        batcher.submit(ks.member(index), ct,
                       lambda pm, i=index: results.append((i, pm)))

    def test_flush_when_batch_fills(self, batch_keys4):
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2)
        results = []
        self._submit(batcher, ks, 0, results, b"a")
        assert len(batcher) == 1 and not batcher.ready and not results
        self._submit(batcher, ks, 1, results, b"b")
        # Submission never flushes inline (attribution: the submitter is
        # mid-dispatch); it only marks the queue ready for the driver.
        assert batcher.ready and not results
        batcher.flush()
        assert len(batcher) == 0
        assert results == [(0, b"a"), (1, b"b")]
        assert batcher.batches == {2: 1}

    def test_timeout_flushes_partial_batch(self, batch_keys4):
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=4, timeout_ticks=3)
        results = []
        self._submit(batcher, ks, 0, results)
        batcher.tick(2)
        assert not results  # deadline not reached yet
        batcher.tick(1)
        assert [i for i, _ in results] == [0]
        assert batcher.batches == {1: 1}

    def test_same_member_splits_into_subbatches(self, batch_keys4):
        """Duplicate exponents cannot share a batch; greedy rounds split."""
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2, timeout_ticks=1)
        results = []
        self._submit(batcher, ks, 0, results, b"x")
        self._submit(batcher, ks, 0, results, b"y")
        assert not results  # two size-1 sub-batches would be premature
        batcher.tick(1)
        assert sorted(pm for _, pm in results) == [b"x", b"y"]
        assert batcher.batches == {1: 2}

    def test_flush_isolates_resume_failures(self, batch_keys4):
        """A continuation that raises (a handshake dying at Finished)
        must not abort the flush loop and strand the rest of the batch."""
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=3)
        results = []

        def explode(pm):
            results.append((0, "raised"))
            raise HandshakeFailure("client finished hash mismatch")

        batcher.submit(ks.member(0), encrypt_for(ks, 0, b"bad", seed=b"q"),
                       explode)
        self._submit(batcher, ks, 1, results, b"ok-1")
        self._submit(batcher, ks, 2, results, b"ok-2")
        batcher.flush()
        assert len(batcher) == 0
        assert results == [(0, "raised"), (1, b"ok-1"), (2, b"ok-2")]

    def test_wrong_size_ciphertext_resolves_immediately(self, batch_keys4):
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2)
        results = []
        batcher.submit(ks.member(0), b"short",
                       lambda pm: results.append(pm))
        assert results == [None]
        assert len(batcher) == 0


# ---------------------------------------------------------------------------
# Server integration: suspended handshakes resume from a batch flush
# ---------------------------------------------------------------------------

class TestBatchedHandshake:
    def _pair(self, ks, index, batcher, seed):
        cert = make_self_signed(f"CN=batch-{index}", ks.member(index))
        server = SslServer(ks.member(index), cert, suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(seed + b"-s"), batcher=batcher)
        client = SslClient(suites=(DES_CBC3_SHA,),
                           rng=PseudoRandom(seed + b"-c"))
        client.start_handshake()
        return client, server

    def test_two_handshakes_share_one_batch(self, batch_keys4):
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2)
        prof = perf.Profiler()
        c1, s1 = self._pair(ks, 0, batcher, b"one")
        c2, s2 = self._pair(ks, 1, batcher, b"two")
        # First connection parks in the batch queue: the pump goes quiet
        # with the handshake incomplete and the kx held.
        pump(c1, s1, prof, prof)
        assert not s1.handshake_complete
        assert len(batcher) == 1
        # Second connection fills the batch; the flush resumes both.
        pump(c2, s2, prof, prof)
        assert len(batcher) == 0
        pump(c1, s1, prof, prof)
        assert s1.handshake_complete and c1.handshake_complete
        assert s2.handshake_complete and c2.handshake_complete
        assert batcher.batches == {2: 1}

    def test_failed_handshake_does_not_poison_batch(self, batch_keys4):
        """One garbled ClientKeyExchange in a batch fails *only its own*
        handshake.  The Bleichenbacher countermeasure steers the bad
        ciphertext to a Finished-time failure inside the flush; pre-fix,
        that exception aborted the resume loop mid-iteration, stranding
        every later batch member and propagating into the unrelated
        connection whose receive() triggered the flush."""
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2)
        prof = perf.Profiler()
        c1, s1 = self._pair(ks, 0, batcher, b"bad")
        c2, s2 = self._pair(ks, 1, batcher, b"good")
        with perf.activate(prof):
            s1.receive(c1.pending_output())
            c1.receive(s1.pending_output())
            flight = bytearray(c1.pending_output())  # kx + ccs + finished
        # Flip a bit inside the RSA ciphertext (5-byte record header +
        # 4-byte handshake header): the decrypt yields garbage, a random
        # pre-master is substituted, and s1 must die at Finished.
        flight[9] ^= 0xFF
        with perf.activate(prof):
            s1.receive(bytes(flight))
        assert len(batcher) == 1 and not s1.handshake_complete
        # The healthy handshake fills the batch; its receive() flushes,
        # s1's resume fails, and s2 must still complete.
        pump(c2, s2, prof, prof)
        assert len(batcher) == 0
        assert s1.closed and not s1.handshake_complete
        assert s2.handshake_complete and c2.handshake_complete
        assert batcher.batches == {2: 1}

    def test_stale_continuation_after_close_is_ignored(self, batch_keys4):
        """A connection closed while parked in the batch queue must not
        be resumed against its torn-down state when the flush fires."""
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=2)
        prof = perf.Profiler()
        c1, s1 = self._pair(ks, 0, batcher, b"park")
        c2, s2 = self._pair(ks, 1, batcher, b"fill")
        pump(c1, s1, prof, prof)
        assert len(batcher) == 1 and not s1.handshake_complete
        s1.close()
        pump(c2, s2, prof, prof)  # fills the batch and flushes
        assert len(batcher) == 0
        assert not s1.handshake_complete  # stale resume returned early
        assert s2.handshake_complete and c2.handshake_complete

    def test_resumed_connection_carries_data(self, batch_keys4):
        ks = batch_keys4
        batcher = HandshakeBatcher(ks, batch_size=1)  # flush per submit
        prof = perf.Profiler()
        client, server = self._pair(ks, 0, batcher, b"data")
        pump(client, server, prof, prof)
        assert server.handshake_complete
        client.write(b"hello batch rsa")
        server.receive(client.pending_output())
        assert server.read() == b"hello batch rsa"


# ---------------------------------------------------------------------------
# Web-server simulator: concurrency makes batches form under load
# ---------------------------------------------------------------------------

class TestConcurrentSimulator:
    def test_batches_form_under_concurrency(self, batch_keys4):
        sim = WebServerSimulator(key_set=batch_keys4, use_crt=True,
                                 seed=b"batch-sim")
        result = sim.run(RequestWorkload.fixed(1024), 8, concurrency=4)
        assert result.requests_completed == 8
        assert result.failures == 0
        assert result.batched_ops == 8
        assert result.batches.get(4, 0) >= 1

    def test_stragglers_flush_on_timeout(self, batch_keys4):
        # 5 requests at concurrency 4: the last connection can never fill
        # a 4-batch and must complete via a partial flush.
        sim = WebServerSimulator(key_set=batch_keys4, use_crt=True,
                                 seed=b"straggler")
        result = sim.run(RequestWorkload.fixed(512), 5, concurrency=4)
        assert result.requests_completed == 5
        assert result.failures == 0
        assert sum(size * count for size, count in result.batches.items()) \
            == 5

    def test_concurrent_unbatched_matches_sequential(self, identity512):
        key, cert = identity512
        wl = RequestWorkload.fixed(1024)
        seq = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                 seed=b"seq").run(wl, 4)
        conc = WebServerSimulator(key=key, cert=cert, use_crt=True,
                                  seed=b"conc").run(wl, 4, concurrency=4)
        assert conc.requests_completed == seq.requests_completed == 4
        assert conc.failures == 0
        assert conc.bytes_served == seq.bytes_served
