"""The standalone crypto benchmark driver (paper setup 3.3)."""

import pytest

from repro.crypto.bench import (
    ALGORITHMS, Measurement, aes_block_breakdown, characteristics,
    des_block_breakdown, hash_phase_breakdown, instruction_mix,
    key_setup_shares, measure_cipher, measure_rsa,
    rsa_step_breakdown,
)
from repro.perf import PENTIUM4, WIDE_CORE


class TestMeasureCipher:
    def test_result_fields(self):
        m = measure_cipher("aes", 1024)
        assert m.nbytes == 1024
        assert m.cycles > 0 and m.instructions > 0
        assert 0 < m.cpi < 2
        assert m.key_setup_cycles > 0
        assert 0 < m.key_setup_share < 0.5

    @pytest.mark.parametrize("bad", [0, -16, 100, 17])
    def test_size_validation(self, bad):
        with pytest.raises(ValueError):
            measure_cipher("aes", bad)

    def test_unknown_cipher(self):
        with pytest.raises(KeyError):
            measure_cipher("chacha20", 1024)

    def test_deterministic(self):
        a = measure_cipher("3des", 2048)
        b = measure_cipher("3des", 2048)
        assert a.cycles == b.cycles
        assert a.instructions == b.instructions

    def test_cost_linear_in_size(self):
        small = measure_cipher("rc4", 2048)
        large = measure_cipher("rc4", 4096)
        # Data-pass cost doubles; key setup stays fixed.
        delta = large.cycles - small.cycles
        assert delta == pytest.approx(
            small.cycles - small.key_setup_cycles, rel=0.05)

    def test_aes256_variant(self):
        m128 = measure_cipher("aes", 2048)
        m256 = measure_cipher("aes256", 2048)
        assert m256.cycles > m128.cycles  # 14 rounds vs 10

    def test_cpu_parameter(self):
        p4 = measure_cipher("aes", 1024, cpu=PENTIUM4)
        wide = measure_cipher("aes", 1024, cpu=WIDE_CORE)
        assert wide.cycles < p4.cycles
        assert wide.instructions == p4.instructions


class TestMeasureRsa:
    def test_warm_vs_cold(self):
        cold = measure_rsa(512, warm=False)
        warm = measure_rsa(512, warm=True)
        # Cold includes Montgomery setup + blinding initialization.
        assert cold.cycles > warm.cycles

    def test_step_breakdown_complete(self):
        m = measure_rsa(512)
        steps = rsa_step_breakdown(m)
        assert [s for s, _ in steps] == [
            "init", "data_to_bn", "blinding", "computation", "bn_to_data",
            "block_parsing"]
        assert sum(c for _, c in steps) == pytest.approx(m.cycles, rel=0.01)

    def test_reduction_style_plumbed(self):
        inter = measure_rsa(512, mont_reduction="interleaved")
        sep = measure_rsa(512, mont_reduction="separate")
        assert sep.cycles > inter.cycles


class TestBreakdownHelpers:
    def test_hash_phase_sums(self):
        for name in ("md5", "sha1", "sha256"):
            rows = hash_phase_breakdown(name, 1024)
            assert [p for p, _ in rows] == ["Init", "Update", "Final"]
            assert all(c > 0 for _, c in rows)

    def test_aes_breakdown_key_sizes(self):
        with pytest.raises(KeyError):
            aes_block_breakdown(512)
        assert len(aes_block_breakdown(192)) == 3

    def test_des_breakdown_variants(self):
        with pytest.raises(KeyError):
            des_block_breakdown("2des")
        des = des_block_breakdown("des")
        tdes = des_block_breakdown("3des")
        assert tdes[1][1] == pytest.approx(3 * des[1][1])

    def test_instruction_mix_shares(self):
        top = instruction_mix("aes", nbytes=1024, top=5)
        assert len(top) == 5
        shares = [s for _, s in top]
        assert shares == sorted(shares, reverse=True)
        assert sum(shares) < 1.0

    def test_instruction_mix_unknown(self):
        with pytest.raises(KeyError):
            instruction_mix("enigma")

    def test_key_setup_shares_structure(self):
        shares = key_setup_shares(sizes=(1024, 2048))
        assert set(shares) == {"aes", "des", "3des", "rc4"}
        for series in shares.values():
            assert [s for s, _ in series] == [1024, 2048]

    def test_characteristics_covers_all(self):
        table = characteristics(nbytes=2048, rsa_bits=512)
        assert set(table) == set(ALGORITHMS)
        for c in table.values():
            assert c.cpi > 0 and c.throughput_mbps > 0


class TestMeasurementProperties:
    def test_zero_guards(self):
        m = Measurement(name="x", nbytes=0, cycles=0, instructions=0)
        assert m.cpi == 0.0
        assert m.path_length == 0.0
        assert m.key_setup_share == 0.0
