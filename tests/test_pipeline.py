"""The out-of-order pipeline scheduler simulation."""

import itertools

import pytest

from repro.perf import mix
from repro.perf.pipeline import (
    DEPENDENCY_PATTERNS, PipelineConfig, PipelineResult, simulate,
    simulate_kernel,
)
from repro.perf.trace import synthesize_trace


def run(trace, pattern=(0,), **cfg):
    return simulate(iter(trace), itertools.cycle(pattern),
                    PipelineConfig(**cfg))


class TestScheduler:
    def test_empty_trace(self):
        result = run([])
        assert result.instructions == 0 and result.cycles == 0

    def test_single_instruction(self):
        result = run(["addl"])
        assert result.instructions == 1
        assert result.cycles == 1  # alu latency

    def test_independent_work_fills_width(self):
        """Width-3 with no dependencies: ~3 IPC on 1-cycle ops."""
        result = run(["addl"] * 300)
        assert result.ipc == pytest.approx(3.0, rel=0.05)

    def test_serial_chain_limits_to_latency(self):
        """A pure distance-1 chain retires one op per latency."""
        result = run(["addl"] * 100, pattern=(1,))
        assert result.cpi == pytest.approx(1.0, rel=0.05)

    def test_memory_port_limits_loads(self):
        loads = ["movl"] * 300
        one_port = run(loads, mem_ports=1)
        two_ports = run(loads, mem_ports=2)
        assert one_port.cpi == pytest.approx(2 * two_ports.cpi, rel=0.1)

    def test_mul_interval_throttles(self):
        mulls = ["mull"] * 60
        fast = run(mulls, mul_interval=1)
        slow = run(mulls, mul_interval=10)
        assert slow.cycles > 5 * fast.cycles

    def test_window_hides_long_latency_when_independent(self):
        """Independent mulls overlap inside the window."""
        trace = ["mull" if i % 10 == 0 else "addl" for i in range(300)]
        wide = run(trace, window=32)
        narrow = run(trace, window=1)
        assert wide.cycles < narrow.cycles

    def test_window_one_degenerates_to_in_order(self):
        result = run(["movl"] * 50, pattern=(1,), window=1)
        # Each load waits for the previous: latency-2 steps.
        assert result.cpi == pytest.approx(2.0, rel=0.15)

    def test_mixed_latency_chain(self):
        # alternate mull/addl chained: each op waits for the previous.
        trace = ["mull" if i % 2 == 0 else "addl" for i in range(80)]
        result = run(trace, pattern=(1,))
        # Average of mul (14) and alu (1) latency per step.
        assert result.cpi == pytest.approx(7.5, rel=0.15)

    def test_deterministic(self):
        trace = list(synthesize_trace(mix(movl=40, addl=40, mull=10)))
        a = run(trace, pattern=(2, 0))
        b = run(trace, pattern=(2, 0))
        assert (a.cycles, a.instructions) == (b.cycles, b.instructions)


class TestKernelSimulation:
    def test_all_patterns_have_kernels(self):
        for kernel in ("md5", "sha1", "aes", "rc4", "rsa"):
            assert kernel in DEPENDENCY_PATTERNS

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError):
            simulate_kernel("blowfish", mix(movl=10))

    def test_md5_stalls_more_than_sha1(self):
        import repro.crypto.md5 as md5_mod
        import repro.crypto.sha1 as sha1_mod
        md5_sim = simulate_kernel("md5", md5_mod.MD5_BLOCK, length=2000)
        sha_sim = simulate_kernel("sha1", sha1_mod.SHA1_BLOCK, length=2000)
        assert md5_sim.cpi > sha_sim.cpi

    def test_result_properties(self):
        r = PipelineResult(instructions=100, cycles=50)
        assert r.cpi == 0.5
        assert r.ipc == 2.0
        empty = PipelineResult(0, 0)
        assert empty.cpi == 0.0 and empty.ipc == 0.0
